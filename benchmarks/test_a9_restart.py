"""A9 — paper §3.1(1): the RAM-only index across a restart.

Paper: "hash table entries are kept in memory space only, not disk
space.  Due to this index management policy, the deduplication module
cannot find some duplicate data.  However that is not a big deal."

This experiment quantifies "not a big deal": one mid-stream restart
loses the index, so duplicates of *pre-restart* content get stored
again — but the index rebuilds as new content flows, so the loss is a
bounded one-time space cost, not a lasting throughput or correctness
problem.
"""

from repro.bench.experiments import a9_restart
from repro.bench.reporting import Table


def test_a9_restart(once):
    result = once(a9_restart)

    table = Table("A9 - dedup across one mid-stream restart "
                  "(dial: 2.0)",
                  ["metric", "no restart", "with restart"])
    table.add_row("dedup ratio", result.baseline_dedup_ratio,
                  result.restarted_dedup_ratio)
    table.add_row("physical MiB",
                  result.baseline_physical_bytes / 1024**2,
                  result.restarted_physical_bytes / 1024**2)
    table.print()
    print(f"duplicates the lost index missed: "
          f"{result.duplicates_missed}")
    print(f"one-time space overhead: {result.space_overhead:.1%}")

    # The restart really cost some deduplication...
    assert result.restarted_dedup_ratio < result.baseline_dedup_ratio
    assert result.duplicates_missed > 0
    assert result.space_overhead > 0.02

    # ...but it is bounded — "not a big deal": well under half of the
    # dedup win survives being wiped, because only duplicates of
    # pre-restart content are affected and the index rebuilds.
    assert result.space_overhead < 0.60
    assert result.restarted_dedup_ratio > 1.3
