"""P9 — multi-tenant traffic plane performance (engineering + paper).

The PR that added the tenancy subsystem is held to two promises:

1. **Identity** — a one-tenant mix under the default policy reproduces
   the pinned single-stream golden digests in all four modes, the
   ring-sketch estimator is float-identical to the retained naive
   scan, and on the committed mixed-locality scenario prioritized
   admission beats the shared LRU while inline + compaction recover
   >= 95% of the oracle dedup ratio.  Always runs; timing-free.
2. **Speed** — the O(1) ring-sketch estimator beats the naive
   O(window) per-chunk scan by >= 2x geomean across the pinned window
   sizes.  Wall-clock thresholds are only meaningful on the reference
   container, so the gate sits behind ``REPRO_PERF_TIMING=1``; the
   measured rates are always recorded in ``BENCH_tenancy.json``.
"""

import os

from repro.bench.tenancy import (
    REQUIRED_TENANCY_SPEEDUP,
    bench_estimator,
    run_tenancy_bench,
)

#: Opt-in for machine-dependent wall-clock assertions.
TIMING_ENFORCED = os.environ.get("REPRO_PERF_TIMING") == "1"


def test_tenancy_identity_and_speedup(once):
    """Equivalence holds everywhere; the estimator speedup meets the
    bar on the reference machine."""
    results = once(run_tenancy_bench, quick=True,
                   out_path="BENCH_tenancy.json")

    # Identity: the tenancy plane must be invisible at one tenant,
    # the sketch must match the scan, and the policy experiment must
    # reproduce.
    identity = results["degenerate_identity"]
    assert identity["fields_ok"], (
        f"one-tenant mix drifted from the pinned golden digests: "
        f"{identity.get('mismatches')}")
    assert results["estimator_equivalence"]["fields_ok"]
    gain = results["admission_gain"]
    assert gain["fields_ok"], (
        f"prioritized admission lost its edge: hit gain "
        f"{gain['hit_gain']:.2f}x (need {gain['required_hit_gain']}x), "
        f"recovery {gain['recovery_fraction']:.3f} "
        f"(need {gain['required_recovery']})")
    assert results["fields_ok"]

    # Sanity on the measured numbers (always), thresholds only on the
    # reference machine.
    for scenario in ("estimator_w64", "estimator_w1024"):
        assert results[scenario]["seconds"] > 0
    assert results["mix_emit"]["chunks_per_s"] > 0
    assert results["admission"]["recovery_fraction"] >= 0.95
    assert results["aggregate_speedup"] > 0
    if TIMING_ENFORCED:
        assert results["aggregate_speedup"] >= REQUIRED_TENANCY_SPEEDUP, (
            f"estimator aggregate speedup "
            f"{results['aggregate_speedup']:.2f}x is below the "
            f"required {REQUIRED_TENANCY_SPEEDUP}x")


def test_tenancy_profile_hook():
    """--profile wraps the run in cProfile and surfaces hot functions."""
    result = bench_estimator(64, repeats=1, n=10_000)
    assert result["observations_per_s"] > 0
    profiled = run_tenancy_bench(quick=True, profile=True, out_path=None)
    assert "profile_top" in profiled
    assert "cumulative" in profiled["profile_top"]
