"""P6 — batched functional-plane performance (engineering, not paper).

The perf-opt PR that batched the functional plane (array-native chunk
windows, window fingerprinting through a payload-hash memo, grouped
codec dispatch with a cross-window result memo, inlined FTL run
accounting) is held to two promises:

1. **Identity** — per-mode report digests match the pre-batching
   goldens with ``batched_functional`` on AND with the retained
   per-chunk path, and the golden E4 fields still match exactly.
   This always runs; it is assert-only and timing-free.
2. **Speed** — the geometric mean across the four functional-plane
   scenarios (chunk materialize, fingerprint window, codec dispatch,
   destage accounting) is >= 2x the seed-commit baselines.
   Wall-clock thresholds are only meaningful on the reference
   container, so the assertion is gated behind ``REPRO_PERF_TIMING=1``;
   without it the timings are still measured and written to
   ``BENCH_pipeline.json`` for inspection.
"""

import os

from repro.bench.pipeline import (
    REQUIRED_PIPELINE_SPEEDUP,
    bench_codec_dispatch,
    run_pipeline_bench,
)

#: Opt-in for machine-dependent wall-clock assertions.
TIMING_ENFORCED = os.environ.get("REPRO_PERF_TIMING") == "1"


def test_pipeline_identity_and_speedup(once):
    """Golden fields are identical; functional-plane speedup meets the bar."""
    results = once(run_pipeline_bench, quick=True,
                   out_path="BENCH_pipeline.json")

    # Identity: the batched plane must not move a single report field,
    # whichever way the flag points.
    reports = results["golden_reports"]
    assert reports["fields_ok"], (
        f"per-mode report digests drifted from the pre-batching "
        f"goldens: {reports.get('mismatches')}")
    equivalence = results["batched_equivalence"]
    assert equivalence["fields_ok"], (
        f"per-chunk reference path no longer matches the goldens: "
        f"{equivalence.get('mismatches')}")
    assert results["fields_ok"]

    # Sanity on the measured numbers (always), threshold only on the
    # reference machine.
    for scenario in ("chunk_materialize", "fingerprint_window",
                     "codec_dispatch", "destage_account"):
        assert results[scenario]["seconds"] > 0
    assert results["aggregate_speedup"] > 0
    if TIMING_ENFORCED:
        assert results["aggregate_speedup"] >= REQUIRED_PIPELINE_SPEEDUP, (
            f"functional-plane aggregate speedup "
            f"{results['aggregate_speedup']:.2f}x is below the "
            f"required {REQUIRED_PIPELINE_SPEEDUP}x")


def test_pipeline_profile_hook():
    """--profile wraps the run in cProfile and surfaces hot functions."""
    result = bench_codec_dispatch(repeats=1)
    assert result["chunks_per_s"] > 0
    profiled = run_pipeline_bench(quick=True, profile=True, out_path=None)
    assert "profile_top" in profiled
    assert "cumulative" in profiled["profile_top"]
