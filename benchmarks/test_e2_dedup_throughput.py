"""E2 — paper §4(1): parallel deduplication throughput.

Paper: "the GPU-supported data deduplication scheme can improve
throughput by 15% over CPU-only data deduplication scheme.  In addition,
it shows three times the throughput of the SSD."

Reproduced shape: GPU-assisted ~ +15% over CPU-only; GPU-assisted ~ 3x
the SSD's ~80 K IOPS.
"""

from conftest import pipeline_chunks

from repro.bench.experiments import SSD_IOPS, e2_dedup
from repro.bench.reporting import Table


def test_e2_dedup_throughput(once):
    results = once(e2_dedup, n_chunks=pipeline_chunks())
    cpu_only = results["cpu_only"]
    gpu_assisted = results["gpu_assisted"]
    gain = gpu_assisted.speedup_over(cpu_only) - 1.0

    table = Table("E2 - dedup-only throughput (dedup ratio 2.0)",
                  ["configuration", "K IOPS", "vs SSD", "vs CPU-only"])
    table.add_row("SSD (yardstick)", SSD_IOPS / 1e3, "1.00x", "-")
    table.add_row("CPU-only dedup", cpu_only.iops / 1e3,
                  f"{cpu_only.iops / SSD_IOPS:.2f}x", "1.00x")
    table.add_row("GPU-assisted dedup", gpu_assisted.iops / 1e3,
                  f"{gpu_assisted.iops / SSD_IOPS:.2f}x",
                  f"{1 + gain:.3f}x")
    table.print()

    # Paper: +15.0% for GPU assistance (we accept 10-20%).
    assert 0.10 < gain < 0.20
    # Paper: ~3x the SSD's throughput.
    assert 2.5 < gpu_assisted.iops / SSD_IOPS < 3.5
    # The GPU really did resolve duplicates.
    assert gpu_assisted.counters["gpu_hits"] > 0
    # Both runs found the same uniques (offload changes timing only).
    assert (cpu_only.counters["uniques"]
            == gpu_assisted.counters["uniques"])
