"""A11 — paper §3.1(2): the local-memory tiled lookup kernel.

The paper's GPU bins use a linear, continuous layout *because* it tiles
into local memory naturally.  This ablation compares the per-thread
global-scan kernel against the workgroup-per-bin tiled kernel: once a
batch directs several queries at the same bin, staging the bin once
through local memory beats streaming it from global memory per query.
"""

from repro.bench.experiments import a11_kernel_variants
from repro.bench.reporting import Table


def test_a11_kernel_variants(once):
    rows = once(a11_kernel_variants)

    table = Table("A11 - lookup kernel variants (256 bins, 64 K entries)",
                  ["batch", "simple (us)", "tiled (us)",
                   "global MB simple", "global MB tiled"])
    for row in rows:
        table.add_row(row.batch, row.simple_seconds * 1e6,
                      row.tiled_seconds * 1e6,
                      row.simple_global_bytes / 1e6,
                      row.tiled_global_bytes / 1e6)
    table.print()

    # The tiled kernel's global traffic is bounded by the table size,
    # not by the query count: the gap grows with the batch.
    for row in rows:
        assert row.tiled_global_bytes <= row.simple_global_bytes
    big = rows[-1]
    assert big.tiled_global_bytes < big.simple_global_bytes / 2

    # And at large batches the launch itself is faster.
    assert big.tiled_seconds < big.simple_seconds
