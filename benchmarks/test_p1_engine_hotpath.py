"""P1 — simulator substrate hot-path performance (engineering, not paper).

The perf-opt PR that introduced the zero-delay run queue, slotted
events, the uncontended resource fast path, and coalesced CPU charges
is held to two promises:

1. **Identity** — the science is untouched: every E4 report still
   carries the exact golden field values captured before the change.
   This always runs; it is assert-only and timing-free.
2. **Speed** — the E4 integration-mode battery runs >= 1.5x faster
   than the seed-commit baseline.  Wall-clock thresholds are only
   meaningful on the reference container, so this assertion is gated
   behind ``REPRO_PERF_TIMING=1``; without it the timings are still
   measured and written to ``BENCH_engine.json`` for inspection.
"""

import os

from repro.bench.perf import (
    GOLDEN_E4_CHUNKS,
    bench_e4,
    bench_event_hops,
    bench_resource_churn,
    run_engine_bench,
)

#: Opt-in for machine-dependent wall-clock assertions.
TIMING_ENFORCED = os.environ.get("REPRO_PERF_TIMING") == "1"

#: The PR's acceptance bar for the E4 battery on the reference machine.
REQUIRED_E4_SPEEDUP = 1.5


def test_engine_microbench_smoke(once):
    """Microbenchmarks run and report sane, positive rates."""
    hops = once(bench_event_hops, processes=50, hops=200)
    assert hops["events"] == 50 * 200
    assert hops["events_per_s"] > 0

    churn = bench_resource_churn(processes=25, cycles=200)
    assert churn["acquisitions"] == 25 * 200
    assert churn["acq_per_s"] > 0


def test_e4_report_identity_and_speedup(once):
    """Golden E4 fields are byte-identical; speedup meets the bar."""
    results = once(run_engine_bench, chunks=GOLDEN_E4_CHUNKS,
                   out_path="BENCH_engine.json")
    e4 = results["e4"]

    # Identity: the optimization must not move a single report field.
    for mode, entry in e4["modes"].items():
        assert entry["fields_ok"], (
            f"{mode}: golden report fields drifted: "
            f"{entry.get('mismatches')}")
    assert e4["fields_ok"]

    # Timings are always recorded; the threshold is reference-machine
    # specific and only enforced when explicitly requested.
    assert e4["total_seconds"] > 0
    if TIMING_ENFORCED:
        assert e4["aggregate_speedup"] >= REQUIRED_E4_SPEEDUP, (
            f"E4 battery speedup {e4['aggregate_speedup']:.2f}x "
            f"is below the required {REQUIRED_E4_SPEEDUP}x")


def test_e4_profile_hook():
    """--profile wraps the run in cProfile and surfaces hot functions."""
    result = bench_e4(chunks=512, repeats=1, profile=True)
    assert "profile_top" in result
    assert "cumulative" in result["profile_top"]
