"""P2 — functional data-plane hot-loop performance (engineering, not paper).

The perf-opt PR that vectorized the codec hot loops (shared rolling
3-byte key array, slice-doubling match extension, occurrence-indexed
match finding, slice copy-out decoders, fingerprint-keyed codec memo)
is held to two promises:

1. **Identity** — every encoded stream is byte-identical to the pre-PR
   encoders: the golden sha256 digests of all (producer, block) streams
   and the A7 segment-sweep report fields still match exactly.  This
   always runs; it is assert-only and timing-free.
2. **Speed** — combined QuickLZ + LZSS encode throughput on the 4 KiB
   mixed corpus is >= 2x the seed-commit baseline.  Wall-clock
   thresholds are only meaningful on the reference container, so the
   assertion is gated behind ``REPRO_PERF_TIMING=1``; without it the
   timings are still measured and written to ``BENCH_dataplane.json``
   for inspection.
"""

import os

from repro.bench.dataplane import (
    REQUIRED_ENCODE_SPEEDUP,
    bench_encode,
    run_dataplane_bench,
)

#: Opt-in for machine-dependent wall-clock assertions.
TIMING_ENFORCED = os.environ.get("REPRO_PERF_TIMING") == "1"


def test_dataplane_identity_and_speedup(once):
    """Golden streams are byte-identical; encode speedup meets the bar."""
    results = once(run_dataplane_bench, quick=True,
                   out_path="BENCH_dataplane.json")

    # Identity: the fast path must not move a single output byte.
    streams = results["golden_streams"]
    assert streams["fields_ok"], (
        f"encoded streams drifted from the pre-fast-path goldens: "
        f"{streams.get('mismatches')}")
    a7 = results["golden_a7"]
    assert a7["fields_ok"], (
        f"A7 segment-sweep fields drifted: {a7.get('mismatches')}")
    assert results["fields_ok"]

    # Sanity on the measured numbers (always), threshold only on the
    # reference machine.
    combined = results["encode"]["combined"]
    assert combined["mb_per_s"] > 0
    if TIMING_ENFORCED:
        assert combined["speedup"] >= REQUIRED_ENCODE_SPEEDUP, (
            f"combined encode speedup {combined['speedup']:.2f}x is "
            f"below the required {REQUIRED_ENCODE_SPEEDUP}x")


def test_dataplane_memo_effectiveness(once):
    """The duplicate-heavy memo scenario actually hits and pays off."""
    from repro.bench.dataplane import bench_memo

    memo = once(bench_memo)
    # 4 unique contents, 8 copies each, two passes through the memoized
    # compressor: everything after the first sight of each content hits.
    assert memo["unique_contents"] == 4
    assert memo["hit_rate"] > 0.9
    assert memo["warm_speedup_vs_unmemoized"] > 1.0


def test_dataplane_profile_hook():
    """--profile wraps the run in cProfile and surfaces hot functions."""
    result = bench_encode(repeats=1)
    assert result["combined"]["mb_per_s"] > 0
    profiled = run_dataplane_bench(quick=True, profile=True,
                                   out_path=None)
    assert "profile_top" in profiled
    assert "cumulative" in profiled["profile_top"]
