"""A7 — paper §3.2(2): segments-per-chunk trade in the GPU LZ kernel.

The paper's GPU compressor puts multiple threads on one 4 KiB chunk by
splitting it into overlapping segments.  More segments mean a shorter
per-thread critical path (so small batches stop being latency-bound) at
the cost of a slightly worse compression ratio (a thread cannot match
into its own segment's future, and greedy parses restart at each seam).
This ablation measures both sides with the *real* kernel and the real
CPU post-processing, on calibrated ratio-2.0 content.
"""

from repro.bench.experiments import a7_segment_sweep
from repro.bench.reporting import Table


def test_a7_segment_sweep(once):
    rows = once(a7_segment_sweep)

    table = Table("A7 - GPU LZ segments per 4 KiB chunk",
                  ["segments", "achieved ratio", "ratio loss vs serial",
                   "critical path (us)"])
    for row in rows:
        table.add_row(row.segments, row.ratio,
                      f"{row.ratio_loss_vs_serial * 100:.2f}%",
                      row.kernel_critical_path_s * 1e6)
    table.print()

    by_segments = {row.segments: row for row in rows}

    # One segment == the serial parse: zero loss.
    assert abs(by_segments[1].ratio_loss_vs_serial) < 1e-9

    # The paper's operating point (multiple threads per chunk) costs
    # only a few percent of ratio...
    assert by_segments[8].ratio_loss_vs_serial < 0.05

    # ...while cutting the per-thread critical path by ~8x.
    assert (by_segments[1].kernel_critical_path_s
            > by_segments[8].kernel_critical_path_s * 6)

    # Loss grows (weakly) with segmentation; latency shrinks with it.
    losses = [row.ratio_loss_vs_serial for row in rows]
    assert losses == sorted(losses)
    criticals = [row.kernel_critical_path_s for row in rows]
    assert criticals == sorted(criticals, reverse=True)
