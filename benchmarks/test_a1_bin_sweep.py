"""A1 — paper §3.1(1): lock-free bin-based indexing scales with cores.

The design argument for bins is that "multiple computing threads can
check the chunks of multiple hash tables at the same time without
locking mechanism".  This ablation (a) sweeps the CPU thread count and
checks near-linear dedup scaling, and (b) reports how evenly SHA-1
prefixes balance the bins.
"""

from conftest import sweep_chunks

from repro.bench.experiments import a1_bin_balance, a1_thread_scaling
from repro.bench.reporting import Table


def test_a1_thread_scaling(once):
    rows = once(a1_thread_scaling, n_chunks=sweep_chunks())

    table = Table("A1 - dedup throughput vs CPU threads (lock-free bins)",
                  ["threads", "K IOPS", "speedup vs 1T"])
    base = rows[0].iops
    for row in rows:
        table.add_row(row.threads, row.iops / 1e3,
                      f"{row.iops / base:.2f}x")
    table.print()

    by_threads = {row.threads: row.iops for row in rows}
    # Physical cores scale near-linearly (no lock serialization).
    assert by_threads[4] / by_threads[1] > 3.0
    # SMT threads help less than physical cores, but still help.
    assert by_threads[8] > by_threads[4] * 1.1
    # Monotone overall.
    series = [row.iops for row in rows]
    assert series == sorted(series)


def test_a1_bin_balance(once):
    balance = once(a1_bin_balance)
    table = Table("A1 - bin occupancy balance (mean/max, 100 K entries)",
                  ["prefix bytes", "bins", "balance"])
    for prefix_bytes, value in balance.items():
        table.add_row(prefix_bytes, 256 ** prefix_bytes, value)
    table.print()
    # A 1-byte prefix packs ~400 entries/bin: SHA-1 spreads them well.
    assert balance[1] > 0.7
