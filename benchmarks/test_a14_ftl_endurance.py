"""A14 — extension: FTL-level compound endurance.

The paper's §1 argument is that inline reduction saves SSD endurance by
writing less.  At the FTL layer the saving *compounds*: fewer host
writes AND an emptier device, so the garbage collector copies fewer
valid pages per erase and the write-amplification factor itself drops.
This experiment drives identical logical churn through a page-mapped
FTL with and without a 4x reduction (dedup 2.0 x comp 2.0) in front.
"""

from repro.bench.experiments import a14_ftl_endurance
from repro.bench.reporting import Table


def test_a14_ftl_endurance(once):
    rows = once(a14_ftl_endurance)

    table = Table("A14 - FTL wear under identical logical churn",
                  ["strategy", "utilization", "write amp",
                   "NAND pages", "erases"])
    for row in rows:
        table.add_row(row.strategy, row.utilization,
                      row.write_amplification, row.nand_pages,
                      row.erases)
    table.print()

    by_strategy = {row.strategy: row for row in rows}
    raw = by_strategy["raw"]
    reduced = by_strategy["reduced"]

    # The reduced device runs emptier...
    assert reduced.utilization < raw.utilization / 2

    # ...so GC has easy victims and WA itself is lower (second-order
    # endurance win, on top of the 4x fewer host writes).
    assert reduced.write_amplification < raw.write_amplification
    assert raw.write_amplification > 1.3  # churn at 85% fill hurts

    # Compound effect: NAND programming gap exceeds the 4x reduction.
    assert raw.nand_pages / reduced.nand_pages > 4.5

    erase_gap = raw.erases / max(1, reduced.erases)
    print(f"compound endurance gain: "
          f"{raw.nand_pages / reduced.nand_pages:.1f}x NAND pages, "
          f"{erase_gap:.1f}x erases")
