"""E4 — paper Fig. 2 / §4(3): throughput of the four integration modes.

Paper: "Allocating the GPU for compression is the best choice among the
integration methods.  This is because data compression, which has a high
performance gain when using a GPU, monopolizes the GPU."  And the
headline: "GPU-supported integration shows a performance improvement of
89.7% over parallel data reduction operations using CPU (deduplication
ratio 2.0, compression 2.0)."

Reproduced shape: GPU_COMP wins; GPU_BOTH loses to GPU_COMP because
latency-critical index lookups queue behind compression batches on the
in-order device queue; GPU_COMP ~ +90% over CPU_ONLY.
"""

from conftest import pipeline_chunks

from repro.bench.experiments import e4_integration
from repro.bench.reporting import BarChart, Table
from repro.core.modes import IntegrationMode


def test_e4_integration_modes(once):
    results = once(e4_integration, n_chunks=pipeline_chunks())

    chart = BarChart("E4 / Fig. 2 - integration-mode throughput "
                     "(dedup 2.0 x comp 2.0)", unit=" K IOPS")
    table = Table("E4 - integration modes",
                  ["mode", "K IOPS", "vs CPU-only", "cpu util",
                   "gpu util", "gpu queue wait (us)"])
    cpu_only = results[IntegrationMode.CPU_ONLY]
    for mode in IntegrationMode.all_modes():
        report = results[mode]
        chart.add_bar(mode.value, report.iops / 1e3)
        table.add_row(mode.value, report.iops / 1e3,
                      f"{report.speedup_over(cpu_only):.3f}x",
                      report.cpu_utilization, report.gpu_utilization,
                      report.gpu_mean_queue_wait_s * 1e6)
    chart.print()
    table.print()

    gpu_comp = results[IntegrationMode.GPU_COMP]
    gpu_both = results[IntegrationMode.GPU_BOTH]
    gpu_dedup = results[IntegrationMode.GPU_DEDUP]

    # Paper's ordering: GPU-for-compression is the best choice.
    assert gpu_comp.iops > gpu_both.iops
    assert gpu_both.iops > gpu_dedup.iops
    assert gpu_dedup.iops > cpu_only.iops

    # Paper's headline: +89.7% for the best GPU integration over
    # CPU-only (we accept +70%..+110%).
    gain = gpu_comp.speedup_over(cpu_only) - 1.0
    assert 0.70 < gain < 1.10

    # The mechanism behind GPU_BOTH < GPU_COMP: its launches wait longer
    # behind each other on the in-order queue.
    assert (gpu_both.gpu_mean_queue_wait_s
            > gpu_comp.gpu_mean_queue_wait_s)

    # Every mode computes the same reduction (timing differs, outcome
    # must not).
    uniques = {r.counters["uniques"] for r in results.values()}
    assert len(uniques) == 1
