"""P5 — dedup index-plane performance (engineering, not paper).

The perf-opt PR that fast-pathed the index plane (shared fingerprint
decomposition cache, broadcast GPU bin lookups, batched flush installs,
bisect-based tree probes, memoized kernel costs) is held to two
promises:

1. **Identity** — per-mode report digests, SIMT-vs-vectorized kernel
   slot equality, and the golden E4 fields all still match exactly.
   This always runs; it is assert-only and timing-free.
2. **Speed** — the geometric mean across the four index scenarios
   (buffer probe, tree probe, GPU batch lookup, flush install) is
   >= 2x the seed-commit baselines.  Wall-clock thresholds are only
   meaningful on the reference container, so the assertion is gated
   behind ``REPRO_PERF_TIMING=1``; without it the timings are still
   measured and written to ``BENCH_dedup.json`` for inspection.
"""

import os

from repro.bench.dedup import (
    REQUIRED_INDEX_SPEEDUP,
    bench_gpu_batch_lookup,
    run_dedup_bench,
)

#: Opt-in for machine-dependent wall-clock assertions.
TIMING_ENFORCED = os.environ.get("REPRO_PERF_TIMING") == "1"


def test_dedup_identity_and_speedup(once):
    """Golden fields are identical; index speedup meets the bar."""
    results = once(run_dedup_bench, quick=True,
                   out_path="BENCH_dedup.json")

    # Identity: the fast path must not move a single report field or
    # kernel slot.
    reports = results["golden_reports"]
    assert reports["fields_ok"], (
        f"per-mode report digests drifted from the pre-fast-path "
        f"goldens: {reports.get('mismatches')}")
    kernels = results["kernel_equivalence"]
    assert kernels["fields_ok"], (
        "vectorized / SIMT / tiled kernels disagree on slot output")
    assert results["fields_ok"]

    # Sanity on the measured numbers (always), threshold only on the
    # reference machine.
    for scenario in ("buffer_probe", "tree_probe", "gpu_batch_lookup",
                     "flush_install"):
        assert results[scenario]["seconds"] > 0
    assert results["aggregate_speedup"] > 0
    if TIMING_ENFORCED:
        assert results["aggregate_speedup"] >= REQUIRED_INDEX_SPEEDUP, (
            f"index-plane aggregate speedup "
            f"{results['aggregate_speedup']:.2f}x is below the "
            f"required {REQUIRED_INDEX_SPEEDUP}x")


def test_dedup_profile_hook():
    """--profile wraps the run in cProfile and surfaces hot functions."""
    result = bench_gpu_batch_lookup(repeats=1, stored=1024, batch=512,
                                    passes=1)
    assert result["queries_per_s"] > 0
    profiled = run_dedup_bench(quick=True, profile=True, out_path=None)
    assert "profile_top" in profiled
    assert "cumulative" in profiled["profile_top"]
