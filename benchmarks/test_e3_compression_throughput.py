"""E3 — paper §4(2): parallel compression throughput vs compressibility.

Paper: "The CPU-based compression method has lower performance (about
50 K IOPS) than SSD throughput (about 80 K IOPS) when the compression
ratio is low, but the GPU-based parallel compression method has the
performance of 100 K IOPS even when the compression ratio is low.  It
always shows higher performance than SSD throughput."  And overall:
"GPU performance is 88.3% better than CPU performance."

Reproduced shape: CPU ~50 K at low ratio and below the SSD line there;
GPU ~100 K, above the SSD line at *every* ratio; GPU-over-CPU ~1.9x at
ratio 2.0; CPU throughput rises with compressibility.
"""

from conftest import sweep_chunks

from repro.bench.experiments import SSD_IOPS, e3_compression
from repro.bench.reporting import Table


def test_e3_compression_throughput(once):
    rows = once(e3_compression, n_chunks=sweep_chunks())

    table = Table("E3 - compression-only throughput vs compression ratio",
                  ["comp ratio", "CPU K IOPS", "GPU K IOPS",
                   "SSD K IOPS", "GPU/CPU"])
    for row in rows:
        table.add_row(row.comp_ratio, row.cpu_iops / 1e3,
                      row.gpu_iops / 1e3, row.ssd_iops / 1e3,
                      f"{row.gpu_advantage:.2f}x")
    table.print()

    by_ratio = {row.comp_ratio: row for row in rows}
    low = by_ratio[1.2]

    # Paper: CPU ~50 K IOPS at low ratio, below the SSD line.
    assert 40e3 < low.cpu_iops < 60e3
    assert low.cpu_iops < SSD_IOPS

    # Paper: GPU ~100 K IOPS even at low ratio.
    assert 90e3 < low.gpu_iops < 125e3

    # Paper: GPU beats the SSD line at every ratio.
    for row in rows:
        assert row.gpu_iops > SSD_IOPS

    # Paper: 88.3% GPU-over-CPU at the 2.0 operating point (we accept
    # 1.6-2.2x).
    assert 1.6 < by_ratio[2.0].gpu_advantage < 2.2

    # Paper: "the throughput is high when the compression ratio is high"
    # (the CPU encoder strides through matches).
    cpu_series = [row.cpu_iops for row in rows]
    assert cpu_series == sorted(cpu_series)
