"""A8 — paper §5: the related-work baselines the design argues against.

Two comparisons the paper makes in prose, reproduced as measurements:

* **P-Dedupe-class locked index** — Xia et al. parallelize dedup but
  "did not consider the operation of indexing which is known as main
  bottleneck"; a conventional shared hash table serializes all threads
  on one lock, which is exactly what bin partitioning removes.
* **GHOST-class GPU-only indexing** — Kim et al. offload indexing to the
  GPU unconditionally; the paper's critique is that "they did not
  consider utilizing CPU that performs better than GPU for indexing".
  Below saturation, forcing every lookup through a GPU batch pays a
  batch-fill + launch round trip per chunk; the paper's rule ("use GPU
  only when CPU utilization is full") keeps light-load latency at
  CPU-probe scale.
"""

from repro.bench.experiments import a8_index_locking, a8_offload_policy
from repro.bench.reporting import Table


def test_a8_locked_index_baseline(once):
    rows = once(a8_index_locking)

    table = Table("A8a - lock-free bins vs one global index lock "
                  "(dedup-only, 8 threads)",
                  ["index discipline", "K IOPS", "mean latency (us)"])
    for row in rows:
        table.add_row(row.discipline, row.iops / 1e3,
                      row.mean_latency_s * 1e6)
    table.print()

    by_discipline = {row.discipline: row for row in rows}
    # Bins must win big: the global lock serializes the index stage.
    speedup = (by_discipline["bins"].iops
               / by_discipline["global"].iops)
    assert speedup > 1.8
    # And latency under the lock is visibly worse.
    assert (by_discipline["global"].mean_latency_s
            > by_discipline["bins"].mean_latency_s * 1.5)


def test_a8_offload_policy_baseline(once):
    rows = once(a8_offload_policy)

    table = Table("A8b - offload policy at light load (50 K IOPS paced)",
                  ["policy", "K IOPS", "mean latency (us)",
                   "peak latency (us)"])
    for row in rows:
        table.add_row(row.policy, row.iops / 1e3,
                      row.mean_latency_s * 1e6,
                      row.peak_latency_s * 1e6)
    table.print()

    by_policy = {row.policy: row for row in rows}
    # Both policies keep up with the offered load...
    for row in rows:
        assert row.iops > 45e3
    # ...but always-offload pays an order of magnitude in latency.
    assert (by_policy["always"].mean_latency_s
            > by_policy["saturation"].mean_latency_s * 10)
    # The paper's rule keeps light-load latency at CPU-probe scale.
    assert by_policy["saturation"].mean_latency_s < 100e-6
