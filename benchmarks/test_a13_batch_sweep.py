"""A13 — extension: compression batch size on the shared device queue.

Fig. 2's mechanism in one sweep: the compression batch size sets how
long each launch occupies the in-order device queue.  Too small and
launch overhead saturates the GPU; too large and GPU_BOTH's index
lookups stall behind multi-millisecond kernels.  At the paper's
operating regime (large batches) GPU_COMP wins, as the paper reports;
at the sweet spot a tuned GPU_BOTH recovers — the contention penalty is
a batching artifact, not a law.
"""

from conftest import sweep_chunks

from repro.bench.experiments import a13_batch_sweep
from repro.bench.reporting import Table
from repro.core.modes import IntegrationMode


def test_a13_batch_sweep(once):
    rows = once(a13_batch_sweep, n_chunks=sweep_chunks())

    table = Table("A13 - compression batch size vs throughput",
                  ["mode", "comp batch", "K IOPS", "gpu util",
                   "queue wait (us)"])
    for row in rows:
        table.add_row(row.mode.value, row.comp_batch, row.iops / 1e3,
                      row.gpu_utilization,
                      row.gpu_mean_queue_wait_s * 1e6)
    table.print()

    both = {r.comp_batch: r for r in rows
            if r.mode is IntegrationMode.GPU_BOTH}
    comp = {r.comp_batch: r for r in rows
            if r.mode is IntegrationMode.GPU_COMP}

    # Non-monotone in both modes: a sweet spot exists.
    for series in (both, comp):
        values = [series[b].iops for b in sorted(series)]
        peak = max(values)
        assert values[0] < peak and values[-1] < peak

    # The paper's regime: at large batches GPU_COMP beats GPU_BOTH.
    assert comp[512].iops > both[512].iops
    assert comp[256].iops > both[256].iops

    # The extension result: at the sweet spot GPU_BOTH recovers (the
    # index offload pays once contention is small).
    best_both = max(r.iops for r in both.values())
    best_comp = max(r.iops for r in comp.values())
    assert best_both > best_comp * 0.95

    # Queue waits grow with batch size in GPU_BOTH — the mechanism.
    waits = [both[b].gpu_mean_queue_wait_s for b in sorted(both)]
    assert waits[-1] > waits[0]
