"""A12 — extension: chunking strategies under insertion shift.

The paper's block workloads use fixed 4 KiB chunks (block I/O is
aligned by construction), but an adoptable dedup system also ingests
file-like streams, where a single insertion shifts every later byte.
This experiment re-writes a stream with 14 bytes inserted near the
front: fixed chunking finds almost nothing again, content-defined
chunking re-synchronizes almost immediately — the classic CDC result.
"""

from repro.bench.experiments import a12_chunking_shift
from repro.bench.reporting import Table


def test_a12_chunking_shift(once):
    rows = once(a12_chunking_shift)

    table = Table("A12 - dedup of a shifted re-write, by chunker",
                  ["strategy", "chunks (2nd pass)", "duplicates found",
                   "dedup fraction"])
    for row in rows:
        table.add_row(row.strategy, row.chunks_second_pass,
                      row.duplicates_found, row.dedup_fraction)
    table.print()

    by_strategy = {row.strategy: row for row in rows}
    fixed = by_strategy["fixed"]
    cdc = by_strategy["content_defined"]

    # Fixed chunking: only the chunk(s) before the insertion survive.
    assert fixed.dedup_fraction < 0.15

    # CDC re-synchronizes: the bulk of the shifted copy deduplicates.
    assert cdc.dedup_fraction > 0.6

    # The contrast is the whole point.
    assert cdc.dedup_fraction > fixed.dedup_fraction + 0.4
