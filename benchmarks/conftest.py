"""Shared benchmark configuration.

Benchmarks run scaled-down streams by default so the whole suite stays
in CI-friendly territory; set ``REPRO_BENCH_CHUNKS=524288`` to rerun
every pipeline experiment at the paper's full 2 GB (4 KiB x 512 Ki
chunks).  Scaling the stream does not move the steady-state throughput
numbers materially — the cost model is per-chunk and index depths only
grow logarithmically — but the full-size run is the configuration
EXPERIMENTS.md quotes.
"""

import os

import pytest

#: Default chunk counts per experiment class (overridable via env).
DEFAULT_PIPELINE_CHUNKS = 65536
DEFAULT_SWEEP_CHUNKS = 32768


def pipeline_chunks() -> int:
    """Chunk count for single-configuration pipeline experiments."""
    return int(os.environ.get("REPRO_BENCH_CHUNKS",
                              DEFAULT_PIPELINE_CHUNKS))


def sweep_chunks() -> int:
    """Chunk count per point of multi-configuration sweeps."""
    return int(os.environ.get("REPRO_BENCH_CHUNKS",
                              DEFAULT_SWEEP_CHUNKS)) // 2


@pytest.fixture
def once(benchmark):
    """Run the experiment exactly once under pytest-benchmark timing.

    The experiments are deterministic simulations — repeating them
    measures nothing new and would multiply minutes-long runs.
    """
    def run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)
    return run
