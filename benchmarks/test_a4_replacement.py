"""A4 — paper §3.3: GPU-bin replacement policies.

Paper: "Currently, random based replacement policy is applied" — stated
as an implementation choice, not a tuned one.  This ablation drives
capacity-starved GPU bins with a Zipf-skewed fingerprint stream and
compares random against FIFO and LRU, confirming that (a) LRU is best
when recency matters, and (b) random is a defensible default, landing
within a few points of LRU without any bookkeeping.
"""

from repro.bench.experiments import a4_replacement
from repro.bench.reporting import Table


def test_a4_replacement(once):
    rows = once(a4_replacement)

    table = Table("A4 - GPU-bin replacement under Zipf reuse "
                  "(bins 8 entries, working set >> capacity)",
                  ["policy", "hit rate", "evictions"])
    for row in rows:
        table.add_row(row.policy, row.hit_rate, row.evictions)
    table.print()

    by_policy = {row.policy: row for row in rows}

    # Eviction pressure was real for every policy.
    assert all(row.evictions > 500 for row in rows)

    # LRU exploits the skew best.
    assert by_policy["lru"].hit_rate >= by_policy["random"].hit_rate
    assert by_policy["lru"].hit_rate >= by_policy["fifo"].hit_rate

    # The paper's random default stays within 5 points of LRU.
    assert (by_policy["lru"].hit_rate
            - by_policy["random"].hit_rate) < 0.05
