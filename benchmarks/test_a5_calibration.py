"""A5 — paper §4(3): dummy-I/O calibration across platforms.

Paper: "because hardware specifications may be different on different
platforms, we cannot guarantee that this integration is always right.
Therefore, before assigning processors to each data reduction operation,
the performance of these integration methods is compared using dummy
I/O ... we can ensure the best performance even if the target platform
is different."

Reproduced: the calibrator picks GPU_COMP on the paper's testbed, and a
*different* answer on platforms where the trade flips (a weak GPU, a
much larger CPU) — proving the mode choice is platform-dependent, which
is the paper's entire reason for shipping the calibrator.
"""

from repro.bench.experiments import a5_calibration
from repro.bench.reporting import Table
from repro.core.modes import IntegrationMode


def test_a5_calibration(once):
    results = once(a5_calibration)

    table = Table("A5 - dummy-I/O calibration across platforms",
                  ["platform", "best mode", "best K IOPS",
                   "cpu-only K IOPS", "advantage"])
    for platform, result in results.items():
        best = result.iops_by_mode[result.best_mode]
        cpu_only = result.iops_by_mode[IntegrationMode.CPU_ONLY]
        table.add_row(platform, result.best_mode.value, best / 1e3,
                      cpu_only / 1e3,
                      f"{result.speedup_over_cpu_only():.2f}x")
    table.print()
    for platform, result in results.items():
        print(f"--- {platform} ---")
        print(result.table())

    # On the paper's testbed, GPU-for-compression wins (Fig. 2).
    assert results["testbed"].best_mode is IntegrationMode.GPU_COMP

    # On a weak GPU the compression offload stops paying: the winner is
    # NOT a compression-on-GPU mode.
    assert not results["weak_gpu"].best_mode.gpu_for_compression

    # A big CPU narrows the GPU's edge substantially versus the testbed.
    assert (results["big_cpu"].speedup_over_cpu_only()
            < results["testbed"].speedup_over_cpu_only() * 0.8)

    # The calibrator's pick is self-consistent: it really is the argmax.
    for result in results.values():
        assert result.iops_by_mode[result.best_mode] == max(
            result.iops_by_mode.values())
