"""A3 — paper §3.3: what the bin buffer buys.

The bin buffer exists for two reasons the paper states: temporal
locality ("chunks are more likely to find duplicates in the bin buffer")
and flush shaping ("this creates the appropriate sequential writes for
the SSD").  This ablation sweeps the buffer budget and reports both
effects.
"""

from conftest import sweep_chunks

from repro.bench.experiments import a3_bin_buffer
from repro.bench.reporting import Table


def test_a3_bin_buffer(once):
    rows = once(a3_bin_buffer, n_chunks=sweep_chunks())

    table = Table("A3 - bin-buffer budget sweep (dedup-only)",
                  ["buffer entries", "dup hits in buffer",
                   "mean flush size (chunks)", "K IOPS"])
    for row in rows:
        table.add_row(row.buffer_total, row.buffer_hit_fraction,
                      row.mean_flush_chunks, row.iops / 1e3)
    table.print()

    # Bigger buffers absorb more duplicate hits (temporal locality).
    fractions = [row.buffer_hit_fraction for row in rows]
    assert fractions == sorted(fractions)
    assert fractions[-1] > fractions[0] + 0.1

    # Bigger buffers flush fuller bins -> larger sequential writes.
    flush_sizes = [row.mean_flush_chunks for row in rows]
    assert flush_sizes[-1] > flush_sizes[0] * 1.5
