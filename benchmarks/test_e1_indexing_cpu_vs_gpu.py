"""E1 — paper §3.1(3): CPU vs GPU indexing execution time.

Paper: "Preliminary experiments show that CPU performance is 4.16 to
5.45 times better than GPU performance in terms of execution time.  For
GPU indexing, the execution time is fixed because of the inevitable time
at which the GPU kernel starts."

Reproduced shape:
* at inline-realistic batch sizes (a few dozen lookups) the CPU wins by
  roughly the paper's 4.16-5.45x band;
* the GPU batch time is nearly flat across batch sizes (launch floor);
* the advantage shrinks as batches grow — which is why the scheduler
  only hands the GPU overflow work, never the latency-critical path.
"""

from repro.bench.experiments import e1_indexing
from repro.bench.reporting import Table


def test_e1_indexing_cpu_vs_gpu(once):
    rows = once(e1_indexing)

    table = Table("E1 - indexing batch execution time (CPU vs GPU)",
                  ["batch", "cpu (us)", "gpu (us)", "cpu advantage"])
    for row in rows:
        table.add_row(row.batch, row.cpu_seconds * 1e6,
                      row.gpu_seconds * 1e6, f"{row.cpu_advantage:.2f}x")
    table.print()

    by_batch = {row.batch: row for row in rows}

    # GPU execution time is launch-dominated: near-flat across a 16x
    # range of batch sizes ("the execution time is fixed").
    gpu_times = [row.gpu_seconds for row in rows]
    assert max(gpu_times) < min(gpu_times) * 1.25

    # CPU advantage in/above the paper's band at inline batch sizes...
    assert by_batch[32].cpu_advantage > 4.16
    # ...the paper's 4.16-5.45x band is crossed within the small-batch
    # regime...
    in_band = [row for row in rows
               if 4.16 <= row.cpu_advantage <= 5.45]
    assert in_band, "no batch size landed in the paper's band"
    # ...and the advantage decays monotonically with batch size (the
    # launch floor amortizes away), vanishing by a few hundred lookups.
    advantages = [row.cpu_advantage for row in rows]
    assert advantages == sorted(advantages, reverse=True)
    assert by_batch[256].cpu_advantage < 2.0
