"""A10 — extension: what inline reduction costs on the *read* path.

The paper measures the write path; a primary storage system also serves
reads.  This experiment shows reduction is nearly free on reads: LZ
decode is ~an order of magnitude cheaper than encode, and the SSD's page
granularity means a half-size compressed chunk still costs one page
read — so random-read throughput stays SSD-bound with a small CPU tax.
"""

from repro.bench.experiments import a10_read_path
from repro.bench.reporting import Table


def test_a10_read_path(once):
    rows = once(a10_read_path)

    table = Table("A10 - random 4 KiB chunk reads, reduced vs raw store",
                  ["store", "K IOPS", "mean latency (us)", "cpu util",
                   "ssd util"])
    for row in rows:
        table.add_row(row.strategy, row.iops / 1e3,
                      row.mean_latency_s * 1e6, row.cpu_utilization,
                      row.ssd_utilization)
    table.print()

    by_strategy = {row.strategy: row for row in rows}
    reduced = by_strategy["reduced"]
    raw = by_strategy["raw"]

    # Reads stay SSD-bound either way.
    assert reduced.ssd_utilization > 0.9
    assert raw.ssd_utilization > 0.9

    # Reduction costs < 15% of read throughput...
    assert reduced.iops > raw.iops * 0.85

    # ...and the CPU tax of decompression is visible but small.
    assert reduced.cpu_utilization > raw.cpu_utilization
    assert reduced.cpu_utilization < 0.5
