"""A15 — extension: delta compression for near-duplicates (DEC-class).

Exact deduplication is blind to *near*-identical chunks — a VM image
rebuilt with one changed timestamp defeats it completely.  Resemblance
sketches plus copy/insert delta encoding (the DEC / Shilane et al. line
of work around the paper) capture them: a 6-edit 4 KiB chunk deltas to
tens of bytes.  This experiment pushes a near-duplicate-heavy stream
through three reduction stacks, everything functional and round-trip
verified by the unit tests.
"""

from repro.bench.experiments import a15_delta_reduction
from repro.bench.reporting import Table


def test_a15_delta_reduction(once):
    rows = once(a15_delta_reduction, n_chunks=250)

    table = Table("A15 - reduction stacks on a near-duplicate stream "
                  "(25% exact dups, 35% near dups)",
                  ["stack", "physical KiB", "reduction", "deltas"])
    for row in rows:
        table.add_row(row.stack, row.physical_bytes / 1024,
                      f"{row.reduction_ratio:.2f}x", row.deltas_encoded)
    table.print()

    by_stack = {row.stack: row for row in rows}

    # Dedup beats plain LZ (it removes the exact duplicates)...
    assert (by_stack["dedup+lz"].reduction_ratio
            > by_stack["lz_only"].reduction_ratio * 1.2)

    # ...and the delta stage beats dedup substantially (it removes the
    # near-duplicates dedup cannot see).
    assert (by_stack["dedup+delta+lz"].reduction_ratio
            > by_stack["dedup+lz"].reduction_ratio * 1.4)

    # The win really came from delta encodings.
    assert by_stack["dedup+delta+lz"].deltas_encoded > 20
