"""A2 — paper §3.1(1): prefix-truncation memory arithmetic.

Paper: "Assuming that the storage capacity is 4 TB, the chunk size is
8 KB, and the index size is 32 bytes ... the storage system requires
16 GB of memory for the index. ... If the storage system uses a 2-byte
prefix value, we can save 1 GB of memory in this way."

This ablation regenerates that arithmetic from the index implementation
and confirms truncation never costs correctness (the bin id *is* the
truncated prefix, so lookups stay exact).
"""

import hashlib

from repro.bench.experiments import a2_prefix_truncation
from repro.bench.reporting import Table
from repro.dedup.bins import BinTable

GIB = 1024**3


def test_a2_memory_table(once):
    rows = once(a2_prefix_truncation)

    table = Table("A2 - index memory at 4 TB / 8 KB chunks (32 B entries)",
                  ["prefix bytes", "entries (M)", "index (GiB)",
                   "saved vs full (GiB)"])
    for row in rows:
        table.add_row(row.prefix_bytes, row.entries / 1e6,
                      row.memory_bytes / GIB, row.saved_vs_full / GIB)
    table.print()

    by_prefix = {row.prefix_bytes: row for row in rows}
    # The paper's two numbers, exactly.
    assert by_prefix[0].memory_bytes == 16 * GIB
    assert by_prefix[2].saved_vs_full == 1 * GIB


def test_a2_truncation_preserves_exactness(once):
    """Dropping the prefix loses nothing: the bin number encodes it."""
    def check():
        table = BinTable(prefix_bytes=2)
        fingerprints = [hashlib.sha1(str(i).encode()).digest()
                        for i in range(5000)]
        for fp in fingerprints:
            table.insert(fp, True)
        assert all(table.lookup(fp) for fp in fingerprints)
        absent = [hashlib.sha1(f"absent{i}".encode()).digest()
                  for i in range(5000)]
        assert not any(table.lookup(fp) for fp in absent)
        # And the promised savings are real.
        assert table.memory_saved_bytes() == 2 * 5000
        return table

    once(check)
