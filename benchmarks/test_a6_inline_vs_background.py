"""A6 — paper §1 motivation: inline reduction spares NAND endurance.

Paper: "One way to conceal the overhead of data reduction operations is
to store all of the data ... and then perform data reduction in the
background ... However, this generates more write I/O than systems
without the data reduction operations.  Therefore, it is not applicable
to SSD-based storage systems due to write endurance problems."

Reproduced: the inline pipeline programs only the reduced bytes; the
background strategy programs the full raw stream *plus* the reduced
rewrite — several times more NAND traffic for the same logical data.
"""

from conftest import sweep_chunks

from repro.bench.experiments import a6_inline_vs_background
from repro.bench.reporting import Table


def test_a6_inline_vs_background(once):
    result = once(a6_inline_vs_background, n_chunks=sweep_chunks())

    mib = 1024**2
    table = Table("A6 - NAND bytes programmed per strategy "
                  "(dedup 2.0 x comp 2.0)",
                  ["strategy", "NAND MiB", "write amplification"])
    table.add_row("inline reduction",
                  result.inline_nand_bytes / mib,
                  result.inline_nand_bytes / result.logical_bytes)
    table.add_row("background reduction",
                  result.background_nand_bytes / mib,
                  result.background_nand_bytes / result.logical_bytes)
    table.print()

    # Inline programs less than the logical volume (reduction works).
    assert result.inline_nand_bytes < result.logical_bytes

    # Background programs more than the logical volume (raw + rewrite).
    assert result.background_nand_bytes > result.logical_bytes

    # The paper's endurance argument: a multi-x NAND traffic gap.
    assert result.endurance_advantage > 2.5
