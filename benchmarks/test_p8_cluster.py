"""P8 — sharded cluster plane performance (engineering, not paper).

The PR that sharded the reduction engine across a simulated cluster is
held to two promises:

1. **Identity** — the merged cluster report is byte-identical across
   executor choices, its aggregate counters match the 1-node oracle at
   every node count (pinned sha256 digests), and a rebalance never
   loses a bin.  Always runs; assert-only and timing-free.
2. **Speed** — the mask-based router beats the per-chunk reference
   path by >= 2x geomean, and the multiprocessing executor at 4 nodes
   beats the serial 1-node run by >= 2x wall clock.  Wall-clock
   thresholds are only meaningful on the reference container, so both
   sit behind ``REPRO_PERF_TIMING=1`` — and the mp gate additionally
   requires >= 4 usable cores (on a 1-core container the four shard
   processes just timeslice one CPU and mp is *slower*; the measured
   value and ``host_cpus`` are still recorded in
   ``BENCH_cluster.json`` so the snapshot is interpretable).
"""

import os

from repro.bench.cluster import (
    MP_GATE_MIN_CPUS,
    REQUIRED_CLUSTER_SPEEDUP,
    REQUIRED_MP_SPEEDUP,
    bench_route_split,
    host_cpus,
    run_cluster_bench,
)

#: Opt-in for machine-dependent wall-clock assertions.
TIMING_ENFORCED = os.environ.get("REPRO_PERF_TIMING") == "1"


def test_cluster_identity_and_speedup(once):
    """Equivalence holds everywhere; speedups meet the bar on the
    reference machine."""
    results = once(run_cluster_bench, quick=True,
                   out_path="BENCH_cluster.json")

    # Identity: sharding and executor choice must be invisible.
    equivalence = results["node_equivalence"]
    assert equivalence["fields_ok"], (
        f"merged reports drifted from the pinned golden digests or "
        f"the 1-node oracle: {equivalence.get('mismatches')}")
    executors = results["executor_identity"]
    assert executors["fields_ok"], (
        f"serial and mp merged reports differ: "
        f"{executors.get('mismatches')}")
    assert results["rebalance_residency"]["fields_ok"]
    assert results["mp_speedup"]["aggregates_match"]
    assert results["fields_ok"]

    # Sanity on the measured numbers (always), thresholds only on the
    # reference machine.
    for scenario in ("bin_ids", "route_split"):
        assert results[scenario]["seconds"] > 0
    assert results["aggregate_speedup"] > 0
    assert results["mp_speedup"]["speedup_vs_serial"] > 0
    if TIMING_ENFORCED:
        assert results["aggregate_speedup"] >= REQUIRED_CLUSTER_SPEEDUP, (
            f"routed-path aggregate speedup "
            f"{results['aggregate_speedup']:.2f}x is below the "
            f"required {REQUIRED_CLUSTER_SPEEDUP}x")
    if TIMING_ENFORCED and host_cpus() >= MP_GATE_MIN_CPUS:
        mp = results["mp_speedup"]
        assert mp["speedup_vs_serial"] >= REQUIRED_MP_SPEEDUP, (
            f"mp 4-node speedup {mp['speedup_vs_serial']:.2f}x over "
            f"serial 1-node is below the required "
            f"{REQUIRED_MP_SPEEDUP}x on a {mp['host_cpus']}-cpu host")


def test_cluster_profile_hook():
    """--profile wraps the run in cProfile and surfaces hot functions."""
    result = bench_route_split(repeats=1)
    assert result["chunks_per_s"] > 0
    profiled = run_cluster_bench(quick=True, profile=True, out_path=None)
    assert "profile_top" in profiled
    assert "cumulative" in profiled["profile_top"]
