"""E5 — paper Fig. 1: the integrated workflow, edge by edge.

Fig. 1 is the workflow diagram of the integrated system.  This
experiment runs the full GPU_BOTH pipeline and prints how many chunks
travelled each decision edge, asserting that *every* edge of the figure
is actually exercised: GPU index hit, bin-buffer hit, bin-tree hit,
unique -> compression -> bin-buffer update, and bin-buffer flush ->
storage + GPU-bin update.
"""

from conftest import pipeline_chunks

from repro.bench.experiments import e5_workflow
from repro.bench.reporting import Table


def test_e5_workflow_fig1(once):
    # Half the pipeline default: enough stream for bins to fill, flush,
    # and populate the GPU index so the GPU-hit edge carries traffic.
    report = once(e5_workflow, n_chunks=pipeline_chunks() // 2)
    total = report.chunks
    counters = report.counters

    table = Table("E5 / Fig. 1 - workflow decision-edge traffic",
                  ["edge", "chunks", "fraction"])
    rows = [
        ("GPU index hit -> duplicate", counters["gpu_hits"]),
        ("bin-buffer hit -> duplicate", counters["buffer_hits"]),
        ("bin-tree hit -> duplicate", counters["tree_hits"]),
        ("in-flight twin -> duplicate",
         counters.get("pending_hits", 0)),
        ("unique -> compress -> buffer", counters["uniques"]),
        ("bin-buffer flush -> storage+GPU", counters["flushes"]),
    ]
    for label, count in rows:
        table.add_row(label, count, count / total)
    table.print()

    # Every Fig. 1 edge saw traffic.
    assert counters["gpu_hits"] > 0
    assert counters["buffer_hits"] > 0
    assert counters["uniques"] > 0
    assert counters["flushes"] > 0

    # Conservation: every chunk took exactly one terminal edge.
    terminal = (counters["gpu_hits"] + counters["buffer_hits"]
                + counters["tree_hits"]
                + counters.get("pending_hits", 0)
                + counters.get("race_duplicates", 0)
                + counters["uniques"])
    assert terminal == total

    # The flushes really destaged sequential writes (the shutdown drain
    # adds further batches for the still-staged bins).
    assert report.destage_batches >= counters["flushes"]
    assert report.nand_bytes_written > 0

    # The dedup dial came back out of the metadata ledger.
    assert 1.8 < report.dedup_ratio < 2.2
