"""Tests for SSD read-retry error injection."""

import pytest

from repro.errors import ConfigError
from repro.sim import Environment
from repro.storage import BlockRequest, RequestKind, SAMSUNG_SSD_830, SsdModel
from repro.storage.ssd import SsdSpec
from dataclasses import replace


def flaky_spec(probability):
    return replace(SAMSUNG_SSD_830, read_retry_probability=probability)


def run_reads(spec, n=200, seed=1):
    env = Environment()
    ssd = SsdModel(env, spec, seed=seed)

    def reader():
        for _ in range(n):
            yield from ssd.submit(BlockRequest(RequestKind.READ, 0, 4096))

    env.process(reader())
    env.run()
    return env, ssd


class TestReadRetries:
    def test_clean_device_never_retries(self):
        env, ssd = run_reads(SAMSUNG_SSD_830)
        assert ssd.read_retries == 0

    def test_flaky_device_retries_and_slows(self):
        clean_env, _ = run_reads(SAMSUNG_SSD_830)
        flaky_env, flaky = run_reads(flaky_spec(0.2))
        assert flaky.read_retries > 10
        assert flaky_env.now > clean_env.now * 1.2

    def test_retry_rate_tracks_probability(self):
        _, mild = run_reads(flaky_spec(0.05), n=1000)
        _, severe = run_reads(flaky_spec(0.30), n=1000)
        assert severe.read_retries > mild.read_retries * 3

    def test_writes_unaffected(self):
        env = Environment()
        ssd = SsdModel(env, flaky_spec(0.5))

        def writer():
            for _ in range(100):
                yield from ssd.submit(
                    BlockRequest(RequestKind.WRITE, 0, 4096))

        env.process(writer())
        env.run()
        assert ssd.read_retries == 0

    def test_deterministic_under_seed(self):
        _, a = run_reads(flaky_spec(0.2), seed=7)
        _, b = run_reads(flaky_spec(0.2), seed=7)
        assert a.read_retries == b.read_retries

    def test_invalid_probability_rejected(self):
        with pytest.raises(ConfigError):
            flaky_spec(1.0)
        with pytest.raises(ConfigError):
            flaky_spec(-0.1)
