"""The runtime twin of the memo-purity contract (verify_memos).

The static REP701/REP702 rules prove the memoized producers pure and
the shared views unmutated *as written*; :class:`repro.verify.
MemoVerifier` re-checks the same invariants on a live pipeline.  These
tests pin the three behaviours the twin is trusted for: a clean
pipeline verifies clean with byte-identical reports, a deliberately
poisoned memo entry is caught on its first reuse, and frozen batch
columns turn aliasing writes into immediate errors.
"""

import numpy as np
import pytest

from repro.compression.memo import CodecMemo
from repro.compression.quicklz import QuickLzCodec
from repro.core.calibration import run_mode
from repro.core.config import PipelineConfig
from repro.core.modes import IntegrationMode
from repro.errors import SanitizerError
from repro.sim import Environment
from repro.verify import MemoVerifier
from repro.workload.vdbench import VdbenchStream


class TestSampling:
    def test_first_hit_always_replays(self):
        verifier = MemoVerifier(sample_every=1000)
        calls = []
        verifier.on_hit("site", b"x", lambda: calls.append(1) or b"x")
        assert calls == [1]
        assert verifier.hits_replayed == 1

    def test_deterministic_cadence_per_site(self):
        verifier = MemoVerifier(sample_every=4)
        for _ in range(8):
            verifier.on_hit("site", b"x", lambda: b"x")
        # Hits 1 and 5 are in the sample, the rest are not.
        assert verifier.hits_seen == 8
        assert verifier.hits_replayed == 2
        assert not verifier.violations

    def test_sites_sample_independently(self):
        verifier = MemoVerifier(sample_every=16)
        for site in ("a", "b", "c"):
            verifier.on_hit(site, b"x", lambda: b"x")
        assert verifier.hits_replayed == 3

    def test_bad_sample_every_rejected(self):
        with pytest.raises(ValueError):
            MemoVerifier(sample_every=0)


class TestDivergence:
    def test_divergent_replay_is_recorded(self):
        verifier = MemoVerifier(sample_every=1)
        verifier.on_hit("codec:quicklz", b"cached", lambda: b"fresh")
        assert len(verifier.violations) == 1
        assert "codec:quicklz" in verifier.violations[0]
        assert verifier.finish_violations() == verifier.violations

    def test_numpy_values_compare_by_content(self):
        verifier = MemoVerifier(sample_every=1)
        verifier.on_hit("arr", np.arange(4), lambda: np.arange(4))
        assert not verifier.violations
        verifier.on_hit("arr2", np.arange(4), lambda: np.arange(5))
        assert len(verifier.violations) == 1

    def test_violation_list_is_capped(self):
        verifier = MemoVerifier(sample_every=1)
        for i in range(50):
            verifier.on_hit(f"site{i}", b"a", lambda: b"b")
        assert len(verifier.violations) == 32
        assert verifier.hits_replayed == 50

    def test_finish_check_surfaces_violations(self):
        env = Environment()
        verifier = MemoVerifier(sample_every=1)
        env.register_finishable(verifier)
        verifier.on_hit("poisoned", b"a", lambda: b"b")
        with pytest.raises(SanitizerError, match="poisoned"):
            env.finish_check()


class TestFreezing:
    def test_frozen_array_rejects_writes_same_object(self):
        verifier = MemoVerifier()
        array = np.arange(8, dtype=np.int64)
        out = verifier.freeze_array(array)
        assert out is array
        assert verifier.arrays_frozen == 1
        with pytest.raises(ValueError):
            array[0] = 99

    def test_freeze_is_idempotent(self):
        verifier = MemoVerifier()
        array = np.arange(4)
        verifier.freeze_array(array)
        verifier.freeze_array(array)
        assert verifier.arrays_frozen == 1

    def test_vdbench_batch_columns_frozen(self):
        stream = VdbenchStream(seed=7)
        stream.verifier = MemoVerifier()
        batch = stream.next_batch(16)
        with pytest.raises(ValueError):
            batch.offsets[0] = 999
        with pytest.raises(ValueError):
            batch.sizes[0] = 0


class TestCodecMemoTwin:
    def test_clean_codec_hits_verify_clean(self):
        codec = QuickLzCodec(memo=CodecMemo())
        codec.memo.verifier = MemoVerifier(sample_every=1)
        data = bytes(range(256)) * 8
        blob = codec.encode(data)
        assert codec.encode(data) == blob  # memo hit, replayed
        assert codec.memo.verifier.hits_seen == 1
        assert codec.memo.verifier.hits_replayed == 1
        assert not codec.memo.verifier.violations

    def test_poisoned_memo_entry_caught_on_first_reuse(self):
        from repro.compression.memo import payload_fingerprint
        codec = QuickLzCodec(memo=CodecMemo())
        codec.memo.verifier = MemoVerifier(sample_every=1)
        data = bytes(range(256)) * 8
        codec.encode(data)
        key = (QuickLzCodec._MEMO_TAG, payload_fingerprint(data))
        codec.memo._entries[key] = b"\x00corrupted"
        codec.encode(data)
        assert len(codec.memo.verifier.violations) == 1
        assert "codec:quicklz" in codec.memo.verifier.violations[0]


class TestPipelineIntegration:
    def test_cpu_only_payload_run_verifies_clean(self):
        config = PipelineConfig(verify_memos=True)
        # run() calls finish_check when verify_memos is set; a clean
        # run completing at all means zero divergences.
        report = run_mode(IntegrationMode.CPU_ONLY, 512,
                          base_config=config, payload=True)
        assert report.chunks == 512

    def test_gpu_comp_payload_run_verifies_clean(self):
        config = PipelineConfig(verify_memos=True)
        report = run_mode(IntegrationMode.GPU_COMP, 512,
                          base_config=config, payload=True)
        assert report.chunks == 512

    def test_verification_leaves_reports_byte_identical(self):
        plain = run_mode(IntegrationMode.CPU_ONLY, 512, payload=True)
        verified = run_mode(IntegrationMode.CPU_ONLY, 512,
                            base_config=PipelineConfig(verify_memos=True),
                            payload=True)
        assert plain == verified
