"""Golden-schedule determinism of the optimized engine.

The zero-delay run queue, the uncontended resource fast path, and the
coalesced CPU charge all reorder *implementation* work — none of them
may reorder *simulated* work.  Two identically-seeded pipeline runs
must produce byte-identical reports and dispatch the same events in the
same order at the same timestamps.  A scheduling regression (a dropped
tie-breaker, an eid assigned in a different order) shows up here as a
trace divergence long before it corrupts a paper-level number.
"""

import dataclasses

from repro.core.config import PipelineConfig
from repro.core.modes import IntegrationMode
from repro.core.pipeline import ReductionPipeline
from repro.cpu.model import SimCpu
from repro.gpu.device import GpuDevice
from repro.sim import Environment
from repro.storage.ssd import SsdModel
from repro.workload.vdbench import VdbenchStream


def _traced_run(mode: IntegrationMode, n_chunks: int, seed: int):
    """One pipeline run with the engine's dispatch-trace hook armed."""
    # finish_check: every traced run must also wind down cleanly (no
    # live processes, scheduled events, or held slots left behind).
    config = PipelineConfig().with_overrides(mode=mode, finish_check=True)
    env = Environment()
    trace: list = []
    env._trace = trace
    needs_gpu = mode.gpu_for_dedup or mode.gpu_for_compression
    pipeline = ReductionPipeline(
        env, config, cpu=SimCpu(env),
        gpu=GpuDevice(env) if needs_gpu else None,
        ssd=SsdModel(env))
    stream = VdbenchStream(dedup_ratio=2.0, comp_ratio=2.0,
                           chunk_size=config.chunk_size, seed=seed)
    report = pipeline.run(stream.chunks(n_chunks), total=n_chunks)
    return report, trace


def test_identical_seeds_identical_schedules():
    """Same seed twice -> same report fields AND same event ordering."""
    for mode in (IntegrationMode.CPU_ONLY, IntegrationMode.GPU_BOTH):
        report_a, trace_a = _traced_run(mode, 512, seed=1234)
        report_b, trace_b = _traced_run(mode, 512, seed=1234)
        assert dataclasses.asdict(report_a) == dataclasses.asdict(report_b)
        assert len(trace_a) == len(trace_b)
        assert trace_a == trace_b, (
            f"{mode.value}: event schedules diverged at index "
            f"{next(i for i, (a, b) in enumerate(zip(trace_a, trace_b)) if a != b)}")


def test_different_seeds_differ():
    """Sanity: the trace hook actually discriminates distinct runs."""
    report_a, _ = _traced_run(IntegrationMode.CPU_ONLY, 512, seed=1234)
    report_b, _ = _traced_run(IntegrationMode.CPU_ONLY, 512, seed=4321)
    assert (dataclasses.asdict(report_a)
            != dataclasses.asdict(report_b))


def test_trace_timestamps_monotonic():
    """Dispatch order never runs time backwards, run-queue included."""
    _report, trace = _traced_run(IntegrationMode.GPU_COMP, 256, seed=7)
    assert trace, "trace hook captured nothing"
    times = [t for t, _name in trace]
    assert all(a <= b for a, b in zip(times, times[1:]))
    assert times[0] == 0.0
