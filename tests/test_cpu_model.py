"""Unit tests for the CPU spec, cost table and timed executor."""

import pytest

from repro.cpu import CpuCosts, CpuSpec, DEFAULT_COSTS, I7_2600K, SimCpu
from repro.errors import ConfigError
from repro.sim import Environment


class TestCpuSpec:
    def test_default_testbed_spec(self):
        assert I7_2600K.cores == 4
        assert I7_2600K.threads == 8
        assert I7_2600K.freq_hz == pytest.approx(3.4e9)

    def test_thread_hz_applies_smt_derate(self):
        assert I7_2600K.thread_hz == pytest.approx(3.4e9 * 0.65)

    def test_chip_hz_aggregates_threads(self):
        assert I7_2600K.chip_hz == pytest.approx(8 * 3.4e9 * 0.65)

    def test_no_smt_means_full_speed_threads(self):
        spec = CpuSpec(name="x", cores=4, threads=4, freq_hz=2.0e9)
        assert spec.thread_hz == pytest.approx(2.0e9)

    def test_invalid_threads_rejected(self):
        with pytest.raises(ConfigError):
            CpuSpec(name="x", cores=4, threads=2, freq_hz=1e9)

    def test_invalid_frequency_rejected(self):
        with pytest.raises(ConfigError):
            CpuSpec(name="x", cores=1, threads=1, freq_hz=0.0)

    def test_invalid_derate_rejected(self):
        with pytest.raises(ConfigError):
            CpuSpec(name="x", cores=1, threads=2, freq_hz=1e9,
                    smt_derate=1.5)


class TestCpuCosts:
    def test_sha1_scales_with_bytes(self):
        costs = DEFAULT_COSTS
        small = costs.sha1_cycles(1024)
        large = costs.sha1_cycles(4096)
        assert large > small
        assert large - small == pytest.approx(costs.sha1_per_byte * 3072)

    def test_cdc_chunking_costs_more_than_fixed(self):
        costs = DEFAULT_COSTS
        assert (costs.chunking_cycles(4096, content_defined=True)
                > costs.chunking_cycles(4096, content_defined=False))

    def test_lz_encode_cheaper_at_high_ratio(self):
        costs = DEFAULT_COSTS
        assert (costs.lz_encode_cycles(4096, comp_ratio=4.0)
                < costs.lz_encode_cycles(4096, comp_ratio=1.2))

    def test_lz_encode_clamps_subunit_ratio(self):
        costs = DEFAULT_COSTS
        assert (costs.lz_encode_cycles(4096, comp_ratio=0.5)
                == costs.lz_encode_cycles(4096, comp_ratio=1.0))

    def test_postprocess_much_cheaper_than_encode(self):
        costs = DEFAULT_COSTS
        assert (costs.postprocess_cycles(4096)
                < 0.5 * costs.lz_encode_cycles(4096, comp_ratio=2.0))

    def test_with_overrides_returns_new_table(self):
        costs = DEFAULT_COSTS.with_overrides(sha1_per_byte=20.0)
        assert costs.sha1_per_byte == 20.0
        assert DEFAULT_COSTS.sha1_per_byte == 13.0  # calibrated default

    def test_bin_tree_probe_scales_with_levels(self):
        costs = DEFAULT_COSTS
        assert costs.bin_tree_probe(8) > costs.bin_tree_probe(2)


class TestSimCpu:
    def test_seconds_conversion(self):
        env = Environment()
        cpu = SimCpu(env)
        cycles = cpu.spec.thread_hz  # exactly one second of work
        assert cpu.seconds(cycles) == pytest.approx(1.0)

    def test_negative_cycles_rejected(self):
        env = Environment()
        cpu = SimCpu(env)
        with pytest.raises(ConfigError):
            cpu.seconds(-1)

    def test_parallel_tasks_overlap(self):
        env = Environment()
        cpu = SimCpu(env)
        one_second = cpu.spec.thread_hz

        def task():
            yield from cpu.execute(one_second)

        for _ in range(cpu.spec.threads):
            env.process(task())
        env.run()
        # All 8 threads run concurrently: makespan is 1 s, not 8 s.
        assert env.now == pytest.approx(1.0)

    def test_oversubscription_serializes(self):
        env = Environment()
        cpu = SimCpu(env)
        one_second = cpu.spec.thread_hz

        def task():
            yield from cpu.execute(one_second)

        for _ in range(cpu.spec.threads * 2):
            env.process(task())
        env.run()
        assert env.now == pytest.approx(2.0)

    def test_utilization_under_full_load(self):
        env = Environment()
        cpu = SimCpu(env)

        def task():
            yield from cpu.execute(cpu.spec.thread_hz)

        for _ in range(cpu.spec.threads):
            env.process(task())
        env.run()
        assert cpu.utilization() == pytest.approx(1.0)

    def test_is_saturated_signal(self):
        env = Environment()
        cpu = SimCpu(env)
        saturation_seen = []

        def worker():
            yield from cpu.execute_for(1.0)

        def probe():
            yield env.timeout(0.5)
            saturation_seen.append(cpu.is_saturated())

        for _ in range(cpu.spec.threads):
            env.process(worker())
        env.process(probe())
        env.run()
        assert saturation_seen == [True]
        assert not cpu.is_saturated()

    def test_cycles_charged_accumulates(self):
        env = Environment()
        cpu = SimCpu(env)

        def task():
            yield from cpu.execute(1000.0)

        env.process(task())
        env.process(task())
        env.run()
        assert cpu.cycles_charged == pytest.approx(2000.0)

    def test_throughput_matches_chip_rate(self):
        """N tasks of C cycles on T threads finish in N*C/chip_hz seconds."""
        env = Environment()
        cpu = SimCpu(env)
        n_tasks, cycles = 64, 1.0e9

        def task():
            yield from cpu.execute(cycles)

        for _ in range(n_tasks):
            env.process(task())
        env.run()
        expected = n_tasks * cycles / cpu.spec.chip_hz
        assert env.now == pytest.approx(expected)
