"""Unit tests for the timed read pipeline."""

import hashlib

import pytest

from repro.core.readpath import ReadPipeline
from repro.errors import ConfigError, MetadataError
from repro.sim import Environment
from repro.storage import MetadataStore


def fp(n: int) -> bytes:
    return hashlib.sha1(n.to_bytes(8, "big")).digest()


def populated_store(n_chunks=32, compressed_size=2048):
    store = MetadataStore()
    for i in range(n_chunks):
        store.store_unique(fp(i), 4096, compressed_size)
        store.map_logical(i * 4096, fp(i), 4096)
    return store


class TestReadPipeline:
    def test_serves_all_reads(self):
        env = Environment()
        pipeline = ReadPipeline(env, populated_store())
        report = pipeline.run([i * 4096 for i in range(32)])
        assert report.reads == 32
        assert report.bytes_served == 32 * 4096
        assert report.iops > 0

    def test_decompression_counted_for_compressed_chunks(self):
        env = Environment()
        pipeline = ReadPipeline(env, populated_store(compressed_size=2048))
        report = pipeline.run([0, 4096])
        assert report.decompressed == 2

    def test_raw_chunks_skip_decompression(self):
        env = Environment()
        pipeline = ReadPipeline(env, populated_store(compressed_size=4096))
        report = pipeline.run([0, 4096])
        assert report.decompressed == 0

    def test_decompress_flag_disables_decode(self):
        env = Environment()
        pipeline = ReadPipeline(env, populated_store(),
                                decompress=False)
        report = pipeline.run([0])
        assert report.decompressed == 0

    def test_decompression_costs_time(self):
        def run(compressed_size, decompress=True):
            env = Environment()
            pipeline = ReadPipeline(
                env, populated_store(compressed_size=compressed_size),
                decompress=decompress, window=1)
            return pipeline.run([i * 4096 for i in range(16)])

        with_decode = run(2048)
        without_decode = run(2048, decompress=False)
        assert with_decode.duration_s > without_decode.duration_s

    def test_unmapped_offset_raises(self):
        env = Environment()
        pipeline = ReadPipeline(env, populated_store())
        with pytest.raises(MetadataError):
            pipeline.run([10**9])

    def test_empty_read_list_rejected(self):
        env = Environment()
        pipeline = ReadPipeline(env, populated_store())
        with pytest.raises(ConfigError):
            pipeline.run([])

    def test_invalid_window_rejected(self):
        env = Environment()
        with pytest.raises(ConfigError):
            ReadPipeline(env, populated_store(), window=0)

    def test_latency_below_duration(self):
        env = Environment()
        pipeline = ReadPipeline(env, populated_store(), window=4)
        report = pipeline.run([i * 4096 for i in range(32)])
        assert 0 < report.mean_latency_s <= report.duration_s

    def test_dedup_sharing_serves_shared_chunks(self):
        store = MetadataStore()
        store.store_unique(fp(1), 4096, 2048)
        for slot in range(8):
            store.map_logical(slot * 4096, fp(1), 4096)
        env = Environment()
        pipeline = ReadPipeline(env, store)
        report = pipeline.run([slot * 4096 for slot in range(8)])
        assert report.reads == 8
        assert report.bytes_served == 8 * 4096
