"""Pre-fast-path reference implementations of the data-plane hot loops.

These are the byte-at-a-time encoders/decoders exactly as they existed
before the data-plane fast path (shared key array, slice-doubling match
extension, slice copy-out) replaced their inner loops.  They are kept
in-tree as *executable specifications*: ``test_dataplane_equivalence``
asserts the production codecs emit byte-identical streams on an
adversarial corpus, and round-trips each stream through both decoder
generations.

Deliberately slow — do not import from production code.
"""

from __future__ import annotations

import struct
from typing import Optional

from repro.compression.lz_common import (
    DEFAULT_PARAMS,
    Literal,
    LzParams,
    Match,
    Token,
    tokens_to_bytes,
)
from repro.errors import CompressionError, CorruptStreamError

_QLZ_MIN_MATCH = 3
_QLZ_MAX_MATCH = 258
_QLZ_MAX_OFFSET = 0xFFFF
_QLZ_HASH_BITS = 13

_MAX_CHAIN = 64


def _qlz_hash3(a: int, b: int, c: int) -> int:
    value = (a << 16) | (b << 8) | c
    return ((value * 2654435761) >> (32 - _QLZ_HASH_BITS)) \
        & ((1 << _QLZ_HASH_BITS) - 1)


class ReferenceQuickLzCodec:
    """The pre-fast-path QuickLZ codec, per-byte loops and all."""

    def encode(self, data: bytes) -> bytes:
        n = len(data)
        out = bytearray(struct.pack(">I", n))
        table: list[int] = [-1] * (1 << _QLZ_HASH_BITS)

        flags = 0
        flag_bit = 0
        flag_pos = len(out)
        out.append(0)
        pos = 0

        def close_group() -> None:
            nonlocal flags, flag_bit, flag_pos
            out[flag_pos] = flags
            flags = 0
            flag_bit = 0
            flag_pos = len(out)
            out.append(0)

        while pos < n:
            if flag_bit == 8:
                close_group()
            match_len = 0
            match_off = 0
            if pos + _QLZ_MIN_MATCH <= n:
                key = _qlz_hash3(data[pos], data[pos + 1], data[pos + 2])
                candidate = table[key]
                table[key] = pos
                if candidate >= 0 and pos - candidate <= _QLZ_MAX_OFFSET:
                    limit = min(n - pos, _QLZ_MAX_MATCH)
                    length = 0
                    while (length < limit
                           and data[candidate + length] == data[pos + length]):
                        length += 1
                    if length >= _QLZ_MIN_MATCH:
                        match_len = length
                        match_off = pos - candidate
            if match_len:
                flags |= 1 << flag_bit
                out.append(match_len - _QLZ_MIN_MATCH)
                out.append((match_off - 1) >> 8)
                out.append((match_off - 1) & 0xFF)
                for inside in range(pos + 1, pos + match_len, 4):
                    if inside + _QLZ_MIN_MATCH <= n:
                        table[_qlz_hash3(data[inside], data[inside + 1],
                                         data[inside + 2])] = inside
                pos += match_len
            else:
                out.append(data[pos])
                pos += 1
            flag_bit += 1

        if flag_bit == 0 and flag_pos == len(out) - 1:
            del out[flag_pos]
        else:
            out[flag_pos] = flags
        return bytes(out)

    def decode(self, blob: bytes) -> bytes:
        if len(blob) < 4:
            raise CorruptStreamError("container shorter than its header")
        (original_length,) = struct.unpack(">I", blob[:4])
        out = bytearray()
        pos = 4
        while len(out) < original_length:
            if pos >= len(blob):
                raise CorruptStreamError("container truncated mid-stream")
            flags = blob[pos]
            pos += 1
            for bit in range(8):
                if len(out) >= original_length:
                    break
                if flags & (1 << bit):
                    if pos + 3 > len(blob):
                        raise CorruptStreamError(
                            "container truncated in a match")
                    length = blob[pos] + _QLZ_MIN_MATCH
                    offset = ((blob[pos + 1] << 8) | blob[pos + 2]) + 1
                    pos += 3
                    if offset > len(out):
                        raise CorruptStreamError(
                            f"match offset {offset} exceeds produced "
                            f"output {len(out)}")
                    start = len(out) - offset
                    for i in range(length):
                        out.append(out[start + i])
                else:
                    out.append(blob[pos])
                    pos += 1
        if len(out) != original_length:
            raise CompressionError(
                f"decoded {len(out)} bytes, expected {original_length}")
        return bytes(out)


def _lzss_hash3(data: bytes, pos: int) -> int:
    return (data[pos] << 16) | (data[pos + 1] << 8) | data[pos + 2]


class ReferenceMatchFinder:
    """The pre-fast-path hash-chain finder (list chains, byte loops)."""

    def __init__(self, data: bytes, params: LzParams = DEFAULT_PARAMS):
        self.data = data
        self.params = params
        self._chains: dict[int, list[int]] = {}

    def insert(self, pos: int) -> None:
        if pos + 3 <= len(self.data):
            chain = self._chains.setdefault(_lzss_hash3(self.data, pos), [])
            chain.append(pos)
            if len(chain) > _MAX_CHAIN:
                del chain[0]

    def longest_match(self, pos: int,
                      min_start: int = 0) -> Optional[Match]:
        data, params = self.data, self.params
        limit = min(len(data) - pos, params.max_match)
        if limit < params.min_match or pos + 3 > len(data):
            return None
        window_start = max(min_start, pos - params.window)
        best_len = params.min_match - 1
        best_dist = 0
        for candidate in reversed(self._chains.get(
                _lzss_hash3(data, pos), ())):
            if candidate < window_start:
                break
            length = 0
            while (length < limit
                   and data[candidate + length] == data[pos + length]):
                length += 1
            if length > best_len:
                best_len = length
                best_dist = pos - candidate
                if length >= limit:
                    break
        if best_len >= params.min_match:
            return Match(distance=best_dist, length=best_len)
        return None


class ReferenceLzssCodec:
    """The pre-fast-path LZSS encoder (greedy or lazy parse)."""

    def __init__(self, params: LzParams = DEFAULT_PARAMS,
                 lazy: bool = False):
        self.params = params
        self.lazy = lazy

    def encode_to_tokens(self, data: bytes) -> list[Token]:
        finder = ReferenceMatchFinder(data, self.params)
        tokens: list[Token] = []
        pos = 0
        n = len(data)
        while pos < n:
            match = finder.longest_match(pos)
            if match is not None and self.lazy and pos + 1 < n:
                finder.insert(pos)
                next_match = finder.longest_match(pos + 1)
                if next_match is not None and next_match.length > match.length:
                    tokens.append(Literal(data[pos]))
                    pos += 1
                    continue
                match_here = match
            else:
                match_here = match
            if match_here is not None:
                tokens.append(match_here)
                for offset in range(match_here.length):
                    finder.insert(pos + offset)
                pos += match_here.length
            else:
                tokens.append(Literal(data[pos]))
                finder.insert(pos)
                pos += 1
        return tokens

    def encode(self, data: bytes) -> bytes:
        return tokens_to_bytes(self.encode_to_tokens(data), len(data),
                               self.params)


def reference_decode_tokens(tokens) -> bytes:
    """The pre-fast-path token expander (per-byte overlapping copies)."""
    out = bytearray()
    for token in tokens:
        if isinstance(token, Match):
            if token.distance > len(out):
                raise CorruptStreamError(
                    f"match distance {token.distance} exceeds produced "
                    f"output {len(out)}")
            start = len(out) - token.distance
            for i in range(token.length):
                out.append(out[start + i])
        else:
            out.append(token.value)
    return bytes(out)


def reference_segment_tokens(chunk: bytes, start: int, end: int,
                             params: LzParams = DEFAULT_PARAMS
                             ) -> list[Token]:
    """The pre-fast-path GPU segment search over ``chunk[start:end]``.

    Mirrors ``SegmentLzKernel._search_segment``: the finder is pre-seeded
    with the window of history before the segment, then parses greedily,
    clamping matches at the segment end.
    """
    finder = ReferenceMatchFinder(chunk, params)
    for pos in range(max(0, start - params.window), start):
        finder.insert(pos)
    tokens: list[Token] = []
    pos = start
    while pos < end:
        match = finder.longest_match(pos)
        if match is not None and pos + match.length <= end:
            tokens.append(match)
            for offset in range(match.length):
                finder.insert(pos + offset)
            pos += match.length
        else:
            tokens.append(Literal(chunk[pos]))
            finder.insert(pos)
            pos += 1
    return tokens
