"""Tests for the block request model, SSD timing/wear, and metadata."""

import hashlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import BlockRangeError, MetadataError
from repro.sim import Environment
from repro.storage import (
    BlockRequest,
    MetadataStore,
    RequestKind,
    SAMSUNG_SSD_830,
    SsdModel,
)


def fp(n: int) -> bytes:
    return hashlib.sha1(n.to_bytes(8, "big")).digest()


class TestBlockRequest:
    def test_end(self):
        req = BlockRequest(RequestKind.WRITE, 4096, 8192)
        assert req.end == 12288

    def test_negative_offset_rejected(self):
        with pytest.raises(BlockRangeError):
            BlockRequest(RequestKind.READ, -1, 10)

    def test_zero_size_rejected(self):
        with pytest.raises(BlockRangeError):
            BlockRequest(RequestKind.READ, 0, 0)

    def test_capacity_check(self):
        req = BlockRequest(RequestKind.WRITE, 0, 2048)
        req.validate_against(4096)
        with pytest.raises(BlockRangeError):
            req.validate_against(1024)


class TestSsdSpec:
    def test_830_hits_the_papers_80k_iops(self):
        """The paper quotes ~80 K IOPS for the SSD; the model must agree."""
        assert SAMSUNG_SSD_830.write_iops_4k == pytest.approx(80e3, rel=0.1)

    def test_write_bandwidth_consistent(self):
        assert SAMSUNG_SSD_830.write_bps == pytest.approx(320e6, rel=0.1)

    def test_page_program_time_realistic(self):
        # MLC-era NAND programs a page in ~0.1-1 ms.
        assert 50e-6 < SAMSUNG_SSD_830.page_program_s < 1e-3


class TestSsdModel:
    def _run_writes(self, n, size=4096, concurrency=None):
        env = Environment()
        ssd = SsdModel(env)

        def writer(k):
            for _ in range(k):
                yield from ssd.submit(
                    BlockRequest(RequestKind.WRITE, 0, size))

        streams = concurrency or ssd.spec.channels
        per_stream = n // streams
        for _ in range(streams):
            env.process(writer(per_stream))
        env.run()
        return env, ssd, streams * per_stream

    def test_full_concurrency_reaches_rated_iops(self):
        env, ssd, completed = self._run_writes(800)
        iops = completed / env.now
        assert iops == pytest.approx(SAMSUNG_SSD_830.write_iops_4k, rel=0.1)

    def test_qd1_sees_nand_latency(self):
        env, ssd, completed = self._run_writes(80, concurrency=1)
        iops = completed / env.now
        # One stream cannot keep 8 channels busy.
        assert iops < SAMSUNG_SSD_830.write_iops_4k / 4

    def test_reads_faster_than_writes(self):
        env = Environment()
        ssd = SsdModel(env)
        write = ssd.service_time(BlockRequest(RequestKind.WRITE, 0, 4096))
        read = ssd.service_time(BlockRequest(RequestKind.READ, 0, 4096))
        assert read < write

    def test_sequential_writes_slightly_cheaper(self):
        env = Environment()
        ssd = SsdModel(env)
        seq = ssd.service_time(
            BlockRequest(RequestKind.WRITE, 0, 65536, sequential=True))
        rand = ssd.service_time(
            BlockRequest(RequestKind.WRITE, 0, 65536, sequential=False))
        assert seq < rand

    def test_wear_accounting_rounds_to_pages(self):
        env = Environment()
        ssd = SsdModel(env)

        def proc():
            yield from ssd.submit(BlockRequest(RequestKind.WRITE, 0, 100))

        env.process(proc())
        env.run()
        assert ssd.host_bytes_written == 100
        assert ssd.nand_bytes_written == 4096  # one full page programmed

    def test_write_amplification(self):
        env = Environment()
        ssd = SsdModel(env)

        def proc():
            for _ in range(4):
                yield from ssd.submit(
                    BlockRequest(RequestKind.WRITE, 0, 2048))

        env.process(proc())
        env.run()
        assert ssd.write_amplification(4 * 2048) == pytest.approx(2.0)

    def test_out_of_range_rejected(self):
        env = Environment()
        ssd = SsdModel(env)

        def proc():
            yield from ssd.submit(BlockRequest(
                RequestKind.WRITE, SAMSUNG_SSD_830.capacity_bytes, 4096))

        env.process(proc())
        with pytest.raises(BlockRangeError):
            env.run()

    def test_trim_is_cheap_and_counted(self):
        env = Environment()
        ssd = SsdModel(env)

        def proc():
            yield from ssd.submit(BlockRequest(RequestKind.TRIM, 0, 4096))

        env.process(proc())
        env.run()
        assert ssd.trims == 1
        assert ssd.nand_bytes_written == 0
        assert env.now < 1e-4


class TestMetadataStore:
    def test_store_and_resolve(self):
        store = MetadataStore()
        store.store_unique(fp(1), size=4096, compressed_size=2048)
        store.map_logical(0, fp(1), size=4096)
        record = store.resolve(0)
        assert record.fingerprint == fp(1)
        assert record.refcount == 1

    def test_duplicate_store_rejected(self):
        store = MetadataStore()
        store.store_unique(fp(1), 4096, 2048)
        with pytest.raises(MetadataError):
            store.store_unique(fp(1), 4096, 2048)

    def test_dedup_shares_physical(self):
        store = MetadataStore()
        store.store_unique(fp(1), 4096, 2048)
        store.map_logical(0, fp(1), 4096)
        store.map_logical(4096, fp(1), 4096)
        assert store.logical_bytes == 8192
        assert store.physical_bytes == 2048
        assert store.resolve(0).refcount == 2
        assert store.reduction_ratio() == pytest.approx(4.0)
        assert store.dedup_ratio() == pytest.approx(2.0)

    def test_overwrite_releases_old_mapping(self):
        store = MetadataStore()
        store.store_unique(fp(1), 4096, 4096)
        store.store_unique(fp(2), 4096, 4096)
        store.map_logical(0, fp(1), 4096)
        store.map_logical(0, fp(2), 4096)
        assert store.logical_bytes == 4096
        assert store.unique_chunks == 1  # fp(1) was freed at refcount 0
        assert store.resolve(0).fingerprint == fp(2)
        store.verify_invariants()

    def test_unmap_frees_at_zero_refs(self):
        store = MetadataStore()
        store.store_unique(fp(1), 4096, 1000)
        store.map_logical(0, fp(1), 4096)
        store.unmap_logical(0)
        assert store.unique_chunks == 0
        assert store.physical_bytes == 0
        assert store.logical_bytes == 0
        with pytest.raises(MetadataError):
            store.resolve(0)

    def test_refcount_underflow_detected(self):
        store = MetadataStore()
        store.store_unique(fp(1), 4096, 1000)
        with pytest.raises(MetadataError):
            store.drop_reference(fp(1))

    def test_unknown_reference_rejected(self):
        store = MetadataStore()
        with pytest.raises(MetadataError):
            store.add_reference(fp(99))

    def test_index_memory_sizing(self):
        store = MetadataStore()
        for i in range(10):
            store.store_unique(fp(i), 4096, 4096)
        assert store.index_memory_bytes(entry_bytes=32) == 320

    @given(st.lists(st.tuples(st.integers(0, 30), st.integers(0, 10)),
                    max_size=80))
    @settings(max_examples=40, deadline=None)
    def test_ledger_invariants_property(self, ops):
        """Random map/overwrite sequences keep the ledger consistent."""
        store = MetadataStore()
        for offset_slot, content in ops:
            fingerprint = fp(content)
            if store.lookup(fingerprint) is None:
                store.store_unique(fingerprint, 4096, 2048 + content)
            store.map_logical(offset_slot * 4096, fingerprint, 4096)
            store.verify_invariants()
        assert store.logical_bytes == store.mapped_offsets * 4096
