# repro-lint: module=repro.bench.fakememo
"""Fixture: REP701 — memoized producers must infer pure."""

AUDIT_LOG = []


def impure_producer(data: bytes) -> bytes:
    AUDIT_LOG.append(len(data))
    return data[:8]


def pure_producer(data: bytes) -> bytes:
    return data[:8]


class Memo:
    def __init__(self):
        self._entries = {}

    def lookup_bad(self, key, data):
        cached = self._entries.get(key)
        if cached is not None:
            return cached
        value = impure_producer(data)
        self._entries[key] = value  # expect REP701 on this line (25)
        return value

    def lookup_ok(self, key, data):
        cached = self._entries.get(key)
        if cached is not None:
            return cached
        value = pure_producer(data)
        self._entries[key] = value
        return value
