# repro-lint: module=repro.sim.fakeio
"""Fixture: REP401 — the substrate importing a domain package."""

from repro.dedup import bins  # expect REP401 on this line (4)
from repro.errors import SimulationError  # allowed

__all__ = ["bins", "SimulationError"]
