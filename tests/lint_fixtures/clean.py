# repro-lint: module=repro.sim.fakeclean
"""Fixture: a file every rule should pass."""

import random


class Tidy:
    __slots__ = ("_rng",)

    def __init__(self, *, seed: int):
        self._rng = random.Random(seed)

    def draw(self) -> float:
        return self._rng.random()


def tidy_process(env):
    yield env.timeout(1.0)
