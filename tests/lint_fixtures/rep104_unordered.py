# repro-lint: module=repro.core.scheduler.fixture
"""Fixture: REP104 — hash-order iteration feeding schedule decisions."""


def dispatch_order(batches: dict) -> list:
    ready = {"index", "compress", "destage"}
    order = []
    for task in ready:  # expect REP104 on this line (8)
        order.append(task)
    for batch in batches.values():  # expect REP104 on this line (10)
        order.append(batch)
    first = min({"a", "b"})  # expect REP104 on this line (12)
    order.append(first)
    for batch in sorted(batches.values()):  # sorted() is exempt
        order.append(batch)
    return order
