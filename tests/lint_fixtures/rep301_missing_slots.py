# repro-lint: module=repro.cpu.model.fixture
"""Fixture: REP301 — hot-path class without __slots__."""

from dataclasses import dataclass


class HotPathThing:  # expect REP301 on this line (7)
    def __init__(self, value):
        self.value = value


class SlottedIsFine:
    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value


@dataclass(slots=True)
class SlottedDataclassIsFine:
    value: int


class FixtureError(Exception):
    """Exceptions are exempt."""
