# repro-lint: module=repro.bench.fixture
"""Fixture: REP801 — shard-private cluster state outside repro.cluster."""
from repro.cluster import ClusterEngine, SerialExecutor
from repro.cluster.executor import _shard_worker_main


def peek_worker_state(executor: SerialExecutor) -> int:
    worker = executor._workers[0]  # expect REP801 on this line (8)
    return worker._engine.counters["uniques"]  # expect REP801 (9)


def spawn_raw_worker(conn, spec) -> None:
    _shard_worker_main(conn, 0, spec)  # expect REP801 on this line (13)


def merged_report_is_fine(engine: ClusterEngine) -> dict:
    return engine.run().merged  # mediated access: no finding
