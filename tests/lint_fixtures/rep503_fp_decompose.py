# repro-lint: module=repro.dedup.fakeindex
"""Fixture: REP503 — fingerprint decomposed outside the audited helper."""

from repro.dedup.index_base import decompose


def bin_of(fingerprint: bytes) -> int:
    prefix = fingerprint[:2]  # expect REP503 on this line (8)
    return int.from_bytes(prefix, "big")  # expect REP503 on this line (9)


def suffix_of(fp: bytes) -> bytes:
    return fp[2:]  # expect REP503 on this line (13)


def shared_view_is_fine(fingerprint: bytes) -> int:
    return decompose(fingerprint, 2).bin_id


def plain_lookup_is_fine(fingerprint: bytes, table: dict) -> object:
    return table[fingerprint]  # subscript without a slice: legal


def other_bytes_are_fine(payload: bytes) -> bytes:
    return payload[4:8]  # not a fingerprint name: legal
