# repro-lint: module=repro.dedup.index_base
"""Fixture: REP704 — module-level mutable state must be audited.

Claiming the ``index_base`` module name lets ``_CACHES`` exercise the
audited-singleton exemption (``shared_state_audited``).
"""

from collections import OrderedDict

TABLE = {}  # expect REP704 on this line (9)
RECENT = OrderedDict()  # expect REP704 on this line (10)
_CACHES = {}  # audited singleton: no finding
LIMITS = (4, 8)  # immutable: no finding
__all__ = ["TABLE", "LIMITS"]  # dunder: no finding
