# repro-lint: module=repro.dedup.fakepolicy
"""Fixture: REP103 — RNG-owning class with a defaulted seed."""

import random


class FakePolicy:
    def __init__(self, seed: int = 0):  # expect REP103 on this line (8)
        self._rng = random.Random(seed)


class RequiredSeedIsFine:
    def __init__(self, *, seed: int):
        self._rng = random.Random(seed)
