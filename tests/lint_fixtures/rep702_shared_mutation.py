# repro-lint: module=repro.compression.lz_common
"""Fixture: REP702 — no mutation through shared cache views.

Claiming the ``lz_common`` module name makes the local ``key3_array``
resolve as the configured shared-view provider, so its return value
carries a ``shared`` root exactly like the real cached key array.
"""


def key3_array(data):
    return bytearray(data)


def _zero_first(buf):
    buf[0] = 0


def corrupt_direct(data):
    view = key3_array(data)
    view[0] = 0  # expect REP702 on this line (20)
    return view


def corrupt_via_callee(data):
    view = key3_array(data)
    _zero_first(view)  # expect REP702 on this line (26): lifted write
    return view


def copy_is_fine(data):
    view = key3_array(data)
    fresh = bytearray(view)
    fresh[0] = 0
    return fresh
