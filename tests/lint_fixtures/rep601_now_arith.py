# repro-lint: module=repro.core.pipeline.fixture
"""Fixture: REP601 — derived env.now arithmetic outside the tracer."""


def sample_latency(env, admitted: float) -> float:
    waited = env.now - admitted  # expect REP601 on this line (6)
    delay = deadline_for(env) - env.now  # expect REP601 on this line (7)
    granted = env.now  # reading the clock alone is fine
    return waited + delay + (granted - admitted)  # local floats are fine


def deadline_for(env) -> float:
    return env.now + 0.5  # additive scheduling math is fine
