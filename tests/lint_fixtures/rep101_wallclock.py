# repro-lint: module=repro.sim.fakeclock
"""Fixture: REP101 — wall-clock reads in simulation-scoped code."""

import time
from datetime import datetime


def stamp() -> float:
    return time.time()  # expect REP101 on this line (9)


def label() -> str:
    return datetime.now().isoformat()  # expect REP101 on this line (13)
