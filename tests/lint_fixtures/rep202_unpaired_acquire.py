# repro-lint: module=repro.core.fakepool
"""Fixture: REP202 — try_acquire without release_acquired."""


class LeakyWorker:
    def __init__(self, pool):
        self.pool = pool

    def grab(self) -> bool:
        return self.pool.try_acquire()  # expect REP202 on this line (10)


class PairedWorker:
    def __init__(self, pool):
        self.pool = pool

    def grab(self) -> bool:
        return self.pool.try_acquire()

    def done(self) -> None:
        self.pool.release_acquired()
