# repro-lint: module=repro.sim.fakesuppressed
"""Fixture: inline suppression silences a finding."""

import time


def profiled_stamp() -> float:
    return time.time()  # repro-lint: disable=REP101
