# repro-lint: module=repro.compression.fixture
"""Fixture: REP502 — per-byte match-extension loops in data-plane code."""


def extend(data: bytes, a: int, b: int, limit: int) -> int:
    i = 0
    while i < limit and data[a + i] == data[b + i]:  # expect REP502 (7)
        i += 1
    return i


def copy_out(out: bytearray, blob: bytes, pos: int, length: int) -> None:
    i = 0
    while blob[pos + i] == out[i]:  # expect REP502 (14)
        i += 1


def scan_for(bin_ids, order, end: int, n: int, bid: int) -> int:
    while end < n and bin_ids[order[end]] == bid:  # value scan: fine
        end += 1
    return end
