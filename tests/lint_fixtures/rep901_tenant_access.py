# repro-lint: module=repro.bench.fixture
"""Fixture: REP901 — tenant-private admission state outside repro.tenancy."""
from repro.tenancy import PrioritizedCache, TenancyController
from repro.tenancy.spec import TenantMixStream


def peek_estimator_state(controller: TenancyController) -> float:
    sketch = controller._estimators[0]  # expect REP901 on this line (8)
    return sum(sketch._counts.values())  # expect REP901 (9)


def rig_residency(cache: PrioritizedCache) -> None:
    cache._quotas[0] = cache.capacity  # expect REP901 on this line (13)


def steal_scheduling_rng(stream: TenantMixStream) -> float:
    return stream._sched_rng.random()  # expect REP901 on this line (17)


def mediated_readout_is_fine(controller: TenancyController) -> dict:
    return controller.counters()  # mediated access: no finding
