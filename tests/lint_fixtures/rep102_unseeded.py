# repro-lint: module=repro.obs.fakerng
"""Fixture: REP102 — ambient/unseeded randomness."""

import random


def jitter() -> float:
    return random.random()  # expect REP102 on this line (8)


def make_rng() -> random.Random:
    return random.Random()  # expect REP102 on this line (12)


def seeded_is_fine() -> random.Random:
    return random.Random(42)
