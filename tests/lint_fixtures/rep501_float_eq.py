# repro-lint: module=repro.core.pipeline.fixture
"""Fixture: REP501 — exact equality on simulated time."""


def admit(env, deadline: float) -> bool:
    if env.now == deadline:  # expect REP501 on this line (6)
        return True
    if env.peek() != deadline:  # expect REP501 on this line (8)
        return False
    return env.now >= deadline  # ordering comparisons are fine
