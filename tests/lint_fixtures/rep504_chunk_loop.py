# repro-lint: module=repro.core.pipeline.fixture
"""Fixture: REP504 — per-chunk loops in batched functional-plane code."""


def hash_all(chunks):
    for chunk in chunks:  # expect REP504 (6)
        chunk.fingerprint = hash(chunk.payload)


def sizes_of(window):
    return [chunk.size for chunk in window]  # expect REP504 (11)


def admit(windows):
    for window in windows:  # iterating the window *stream* is fine
        submit(window)


def drain(pending):
    for entry in pending:  # not a chunk sequence name: fine
        entry.flush()


def submit(window):
    pass
