# repro-lint: module=repro.core.fakeproc
"""Fixture: REP201 — process generators yielding non-events."""


def broken_process(env):
    yield 42  # expect REP201 on this line (6)
    yield  # expect REP201 on this line (7)


def fine_process(env):
    yield env.timeout(1.0)
