# repro-lint: module=repro.core.fakesched
"""Fixture: REP203 — private engine API outside repro.sim."""


def sneaky_schedule(env, event):
    env._schedule(event, 1, 0.0)  # expect REP203 on this line (6)


def sneaky_trigger(event):
    event._trigger_now(None)  # expect REP203 on this line (10)
