# repro-lint: module=repro.workload.fakerng
"""Fixture: REP703 — RNG provenance and visible hand-offs."""

import os
import random


def system_rng() -> float:
    gen = random.SystemRandom()  # expect REP703 on this line (9)
    return gen.uniform(0.0, 1.0)


def tainted_seed() -> float:
    rng = random.Random(os.urandom(8))  # expect REP703 on this line (14)
    return rng.random()


def leak_into(consumer) -> None:
    rng = random.Random(7)
    consumer(rng)  # expect REP703 on this line (20): untracked flow


def stash(table: dict, seed: int) -> None:
    table["rng"] = random.Random(seed)  # expect REP703 (24): escape


def make_rng(seed: int) -> random.Random:
    return random.Random(seed)  # expect REP703 (28): public return


def _private_factory(seed: int) -> random.Random:
    return random.Random(seed)  # private factory: fine


def _draw(rng: random.Random) -> float:
    return rng.random()


def tracked_is_fine(seed: int) -> float:
    return _draw(random.Random(seed))  # same-module hand-off: fine
