"""Fast-path equivalence properties for the dedup index plane.

The PR that vectorized the index plane (decomposition cache, broadcast
GPU lookups, batched flush installs, bisect tree probes) promised
*byte-identical* behaviour.  These tests hold it to that: random
interleavings of inserts, flush installs, lookups and capacity
overflows must agree across the vectorized kernel, the SIMT kernel and
a plain-dict oracle that replays the same seeded eviction draws; the
B-tree must keep its invariants through split bursts; and a kernel's
cost must not depend on whether it has executed yet.
"""

import hashlib

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dedup.btree import BTree
from repro.dedup.gpu_index import GpuBinIndex
from repro.dedup.index_base import decompose, decomposition_cache
from repro.dedup.replacement import RandomReplacement
from repro.gpu.kernels.indexing_tiled import TiledBinLookupKernel

PREFIX_BYTES = 1
BIN_CAPACITY = 3
#: Tiny universe with only four distinct prefixes: collisions and
#: bin-capacity overflow are the common case, not the corner case.
N_PREFIXES = 4
UNIVERSE = 48


def fp(i: int) -> bytes:
    body = hashlib.sha1(i.to_bytes(8, "big")).digest()
    return bytes([i % N_PREFIXES]) + body[1:]


class OracleBins:
    """Ground truth: plain lists plus the same seeded eviction draws."""

    def __init__(self, seed: int):
        self.policy = RandomReplacement(seed=seed)
        self.bins: dict[int, list[tuple[int, int]]] = {}

    def insert(self, fingerprint: bytes) -> None:
        view = decompose(fingerprint, PREFIX_BYTES)
        slots = self.bins.setdefault(view.bin_id, [])
        if len(slots) < BIN_CAPACITY:
            slots.append((view.lo, view.hi))
        else:
            victim = self.policy.choose_victim(view.bin_id, BIN_CAPACITY)
            slots[victim] = (view.lo, view.hi)

    def lookup_slot(self, fingerprint: bytes) -> int:
        view = decompose(fingerprint, PREFIX_BYTES)
        for slot, words in enumerate(self.bins.get(view.bin_id, [])):
            if words == (view.lo, view.hi):
                return slot
        return -1


ops_strategy = st.lists(
    st.one_of(
        # Single insert.
        st.tuples(st.just("insert"), st.integers(0, UNIVERSE - 1)),
        # Flush-style batched install of several fingerprints.
        st.tuples(st.just("flush"),
                  st.lists(st.integers(0, UNIVERSE - 1),
                           min_size=1, max_size=12)),
        # Batched lookup.
        st.tuples(st.just("lookup"),
                  st.lists(st.integers(0, UNIVERSE - 1),
                           min_size=1, max_size=12)),
    ),
    min_size=1, max_size=24)


class TestIndexInterleavingProperty:
    @given(ops=ops_strategy, seed=st.integers(0, 2 ** 16))
    @settings(max_examples=60, deadline=None)
    def test_vectorized_simt_and_oracle_agree(self, ops, seed):
        index = GpuBinIndex(prefix_bytes=PREFIX_BYTES,
                            bin_capacity=BIN_CAPACITY,
                            policy=RandomReplacement(seed=seed))
        oracle = OracleBins(seed=seed)
        for op, arg in ops:
            if op == "insert":
                index.insert(fp(arg))
                oracle.insert(fp(arg))
            elif op == "flush":
                entries = [(fp(i), None) for i in arg]
                index.update_from_flush(entries)
                for fingerprint, _value in entries:
                    oracle.insert(fingerprint)
            else:
                probes = [fp(i) for i in arg]
                plain = index.make_kernel(probes).execute()
                simt = index.make_kernel(probes, use_simt=True).execute()
                tiled = index.make_kernel(probes, tiled=True).execute()
                expected = [oracle.lookup_slot(p) for p in probes]
                assert plain.tolist() == expected
                assert simt.tolist() == expected
                assert tiled.tolist() == expected

    @given(seed=st.integers(0, 2 ** 16))
    @settings(max_examples=20, deadline=None)
    def test_batched_flush_matches_per_entry_inserts(self, seed):
        """One flush install == the same entries inserted one by one."""
        batched = GpuBinIndex(prefix_bytes=PREFIX_BYTES,
                              bin_capacity=BIN_CAPACITY,
                              policy=RandomReplacement(seed=seed))
        serial = GpuBinIndex(prefix_bytes=PREFIX_BYTES,
                             bin_capacity=BIN_CAPACITY,
                             policy=RandomReplacement(seed=seed))
        entries = [(fp(i), None) for i in range(UNIVERSE)]
        batched.update_from_flush(entries)
        for fingerprint, _value in entries:
            serial.insert(fingerprint)
        assert batched.evictions == serial.evictions
        assert len(batched) == len(serial)
        probes = [fp(i) for i in range(UNIVERSE)]
        assert batched.make_kernel(probes).execute().tolist() \
            == serial.make_kernel(probes).execute().tolist()


class TestBTreeProperties:
    @given(keys=st.lists(st.binary(min_size=4, max_size=12),
                         min_size=1, max_size=200),
           min_degree=st.integers(2, 4))
    @settings(max_examples=60, deadline=None)
    def test_invariants_survive_split_bursts(self, keys, min_degree):
        tree = BTree(min_degree=min_degree)
        reference: dict[bytes, int] = {}
        for i, key in enumerate(keys):
            tree.insert(key, i)
            reference[key] = i
            tree.check_invariants()
        assert len(tree) == len(reference)
        for key, value in reference.items():
            assert tree.search(key) == value
        assert [k for k, _ in tree.items()] == sorted(reference)

    @given(pairs=st.lists(
        st.tuples(st.binary(min_size=4, max_size=12), st.integers()),
        min_size=0, max_size=80),
        min_degree=st.integers(2, 4))
    @settings(max_examples=60, deadline=None)
    def test_insert_run_matches_serial_inserts(self, pairs, min_degree):
        """Covers both the fresh-leaf fast path (few unique keys) and
        the per-entry fallback (runs larger than one node)."""
        bulk = BTree(min_degree=min_degree)
        serial = BTree(min_degree=min_degree)
        installed = bulk.insert_run(pairs)
        new = sum(serial.insert(k, v) for k, v in pairs)
        bulk.check_invariants()
        serial.check_invariants()
        assert installed == new
        assert len(bulk) == len(serial)
        assert bulk.height == serial.height
        assert list(bulk.items()) == list(serial.items())


class TestCostMemoization:
    def _populated_index(self) -> GpuBinIndex:
        index = GpuBinIndex(prefix_bytes=PREFIX_BYTES,
                            bin_capacity=64,
                            policy=RandomReplacement(seed=5))
        for i in range(UNIVERSE):
            index.insert(fp(i))
        return index

    def test_cost_before_execute_equals_cost_after(self):
        probes = [fp(i) for i in range(0, UNIVERSE, 2)]
        for tiled in (False, True):
            priced = self._populated_index().make_kernel(probes,
                                                         tiled=tiled)
            executed = self._populated_index().make_kernel(probes,
                                                           tiled=tiled)
            executed.execute()
            # The device prices a launch up front; the answer must not
            # change once the kernel has actually run.
            assert priced.cost() == executed.cost()

    def test_cost_is_memoized(self):
        probes = [fp(i) for i in range(8)]
        for tiled in (False, True):
            kernel = self._populated_index().make_kernel(probes,
                                                         tiled=tiled)
            assert kernel.cost() is kernel.cost()
            kernel.execute()
            assert kernel.cost() is kernel.cost()

    def test_tiled_kernel_cost_stable_across_paths(self):
        index = self._populated_index()
        probes = [fp(i) for i in range(0, UNIVERSE, 3)]
        vec = index.make_kernel(probes, tiled=True)
        simt = TiledBinLookupKernel(index.make_batch(probes),
                                    index.table_view(),
                                    costs=index.costs, use_simt=True)
        vec.execute()
        simt.execute()
        assert vec.cost() == simt.cost()


class TestDecompositionCache:
    def test_components_share_one_cache(self):
        cache = decomposition_cache(PREFIX_BYTES)
        view = decompose(fp(0), PREFIX_BYTES)
        assert cache[fp(0)] is view
        assert decompose(fp(0), PREFIX_BYTES) is view

    def test_view_matches_manual_decomposition(self):
        fingerprint = fp(7)
        view = decompose(fingerprint, 2)
        assert view.bin_id == int.from_bytes(fingerprint[:2], "big")
        assert view.suffix == fingerprint[2:]
        assert view.lo == int.from_bytes(fingerprint[2:10], "big")
        assert view.hi == int.from_bytes(fingerprint[10:18], "big")
