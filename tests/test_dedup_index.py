"""Tests for the B-tree, bin table, bin buffer, GPU index and policies."""

import hashlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dedup import (
    BinBuffer,
    BinTable,
    BTree,
    FifoReplacement,
    GpuBinIndex,
    LruReplacement,
    RandomReplacement,
    ReferenceIndex,
)
from repro.errors import IndexError_


def fp(n: int) -> bytes:
    """Deterministic 20-byte fingerprint for integer n."""
    return hashlib.sha1(n.to_bytes(8, "big")).digest()


fingerprints = st.integers(0, 10_000).map(fp)


class TestBTree:
    def test_empty_search(self):
        assert BTree().search(b"missing") is None

    def test_insert_and_search(self):
        tree = BTree(min_degree=2)
        for i in range(100):
            assert tree.insert(fp(i), i) is True
        for i in range(100):
            assert tree.search(fp(i)) == i
        assert tree.search(fp(1000)) is None
        assert len(tree) == 100

    def test_update_existing_key(self):
        tree = BTree(min_degree=2)
        tree.insert(b"key", 1)
        assert tree.insert(b"key", 2) is False
        assert tree.search(b"key") == 2
        assert len(tree) == 1

    def test_height_grows_logarithmically(self):
        tree = BTree(min_degree=2)
        for i in range(1000):
            tree.insert(fp(i), i)
        # t=2 (2-3-4 tree): height <= ~log2(1000) + 1.
        assert 4 <= tree.height <= 11

    def test_items_sorted(self):
        tree = BTree(min_degree=3)
        keys = [fp(i) for i in range(200)]
        for key in keys:
            tree.insert(key, None)
        listed = [k for k, _ in tree.items()]
        assert listed == sorted(keys)

    def test_invariants_after_many_inserts(self):
        tree = BTree(min_degree=2)
        for i in range(500):
            tree.insert(fp(i * 7), i)
            if i % 100 == 0:
                tree.check_invariants()
        tree.check_invariants()

    def test_bad_degree_rejected(self):
        with pytest.raises(IndexError_):
            BTree(min_degree=1)

    @given(st.lists(st.binary(min_size=1, max_size=12), max_size=300),
           st.integers(2, 8))
    @settings(max_examples=40, deadline=None)
    def test_matches_dict_property(self, keys, degree):
        tree = BTree(min_degree=degree)
        reference = {}
        for i, key in enumerate(keys):
            tree.insert(key, i)
            reference[key] = i
        tree.check_invariants()
        assert len(tree) == len(reference)
        for key, value in reference.items():
            assert tree.search(key) == value
        assert [k for k, _ in tree.items()] == sorted(reference)


class TestBinTable:
    def test_insert_lookup(self):
        table = BinTable()
        assert table.insert(fp(1), "a") is True
        assert table.insert(fp(1), "b") is False
        assert table.lookup(fp(1)) == "b"
        assert table.lookup(fp(2)) is None
        assert len(table) == 1

    def test_bin_selection_uses_prefix(self):
        table = BinTable(prefix_bytes=2)
        f = fp(42)
        assert table.bin_of(f) == int.from_bytes(f[:2], "big")
        assert table.suffix_of(f) == f[2:]

    def test_bins_partition_the_keyspace(self):
        table = BinTable(prefix_bytes=1)
        for i in range(2000):
            table.insert(fp(i), i)
        assert table.occupied_bins() > 200  # SHA-1 spreads prefixes
        assert sum(table.bin_sizes()) == 2000

    def test_balance_near_one_for_hashed_keys(self):
        table = BinTable(prefix_bytes=1)
        for i in range(20000):
            table.insert(fp(i), i)
        assert table.balance() > 0.5

    def test_memory_math_matches_paper(self):
        """4 TB / 8 KB chunks, 32 B entries => 16 GB; 2 B prefix => 1 GB."""
        table = BinTable(prefix_bytes=2)
        n_entries = 4 * 1024**4 // (8 * 1024)
        per_full_entry = 32
        full = n_entries * per_full_entry
        assert full == 16 * 1024**3
        saved_per_entry = table.prefix_bytes
        assert n_entries * saved_per_entry == 1024**3

    def test_memory_accounting(self):
        table = BinTable(prefix_bytes=2)
        for i in range(100):
            table.insert(fp(i), i)
        assert table.memory_bytes(metadata_bytes=12) == 100 * (18 + 12)
        assert table.memory_saved_bytes() == 200

    def test_hit_rate_statistics(self):
        table = BinTable()
        table.insert(fp(1), 1)
        table.lookup(fp(1))
        table.lookup(fp(2))
        assert table.hit_rate() == 0.5

    def test_bin_depth_grows(self):
        table = BinTable(prefix_bytes=1, min_degree=2)
        f = fp(3)
        assert table.bin_depth(f) == 1
        # Fill the specific bin of fp(3) so its tree gains height.
        target_bin = table.bin_of(f)
        added = 0
        i = 0
        while added < 200:
            candidate = fp(i)
            if table.bin_of(candidate) == target_bin:
                table.insert(candidate, i)
                added += 1
            i += 1
        assert table.bin_depth(f) >= 3

    def test_invalid_prefix_rejected(self):
        with pytest.raises(IndexError_):
            BinTable(prefix_bytes=0)

    def test_bad_fingerprint_rejected(self):
        with pytest.raises(IndexError_):
            BinTable().lookup(b"short")

    @given(st.lists(st.integers(0, 500), max_size=300))
    @settings(max_examples=40, deadline=None)
    def test_matches_reference_index_property(self, numbers):
        table = BinTable(prefix_bytes=2, min_degree=2)
        reference = ReferenceIndex()
        for n in numbers:
            assert table.insert(fp(n), n) == reference.insert(fp(n), n)
        assert len(table) == len(reference)
        for n in set(numbers) | {9999}:
            assert table.lookup(fp(n)) == reference.lookup(fp(n))


class TestBinBuffer:
    def test_stage_and_probe(self):
        buffer = BinBuffer(per_bin_capacity=8)
        assert buffer.lookup(fp(1)) is None
        assert buffer.add(fp(1), "v") is None
        assert buffer.lookup(fp(1)) == "v"
        assert len(buffer) == 1

    def test_flush_on_full_bin(self):
        buffer = BinBuffer(prefix_bytes=1, per_bin_capacity=4)
        target_bin = None
        flushed = None
        added = []
        i = 0
        while flushed is None:
            f = fp(i)
            bin_id = int.from_bytes(f[:1], "big")
            if target_bin is None:
                target_bin = bin_id
            if bin_id == target_bin:
                added.append(f)
                flushed = buffer.add(f, i)
            i += 1
        assert flushed.bin_id == target_bin
        assert flushed.count == 4
        assert [e[0] for e in flushed.entries] == added
        # Flushed entries are gone from the buffer.
        assert buffer.lookup(added[0]) is None

    def test_double_stage_rejected(self):
        buffer = BinBuffer(per_bin_capacity=8)
        buffer.add(fp(1), 1)
        with pytest.raises(IndexError_):
            buffer.add(fp(1), 1)

    def test_flush_all_drains(self):
        buffer = BinBuffer(per_bin_capacity=100)
        for i in range(50):
            buffer.add(fp(i), i)
        events = buffer.flush_all()
        assert sum(e.count for e in events) == 50
        assert len(buffer) == 0
        assert buffer.staged_bins() == 0

    def test_hit_rate(self):
        buffer = BinBuffer(per_bin_capacity=100)
        buffer.add(fp(1), 1)
        buffer.lookup(fp(1))
        buffer.lookup(fp(1))
        buffer.lookup(fp(2))
        assert buffer.hit_rate() == pytest.approx(2 / 3)


class TestGpuBinIndex:
    def test_insert_then_hit(self):
        index = GpuBinIndex()
        index.insert(fp(1))
        assert index.lookup_host([fp(1), fp(2)]) == [True, False]
        assert len(index) == 1

    def test_agrees_with_reference(self):
        index = GpuBinIndex(bin_capacity=4096)
        reference = ReferenceIndex()
        for i in range(500):
            index.insert(fp(i))
            reference.insert(fp(i), True)
        probes = [fp(i) for i in range(0, 1000, 7)]
        hits = index.lookup_host(probes)
        assert hits == [reference.lookup(p) is not None for p in probes]

    def test_eviction_when_bin_full(self):
        index = GpuBinIndex(prefix_bytes=1, bin_capacity=2,
                            policy=FifoReplacement())
        # Find three fingerprints sharing one bin.
        shared = []
        i = 0
        target = None
        while len(shared) < 3:
            f = fp(i)
            bin_id = int.from_bytes(f[:1], "big")
            if target is None:
                target = bin_id
            if bin_id == target:
                shared.append(f)
            i += 1
        for f in shared:
            index.insert(f)
        assert index.evictions == 1
        hits = index.lookup_host(shared)
        # FIFO evicted the first; the last two must remain.
        assert hits == [False, True, True]

    def test_update_from_flush(self):
        buffer = BinBuffer(prefix_bytes=2, per_bin_capacity=1)
        index = GpuBinIndex(prefix_bytes=2)
        event = buffer.add(fp(5), "value")
        assert event is not None
        assert index.update_from_flush(event.entries) == 1
        assert index.lookup_host([fp(5)]) == [True]

    def test_device_memory_accounting(self):
        from repro.gpu import DeviceMemory
        memory = DeviceMemory(10**6)
        index = GpuBinIndex(bin_capacity=16, memory=memory)
        index.insert(fp(1))
        assert memory.used_bytes == 16 * 16  # one bin allocated
        assert index.device_bytes() == 16 * 16

    def test_simt_kernel_agrees(self):
        index = GpuBinIndex()
        for i in range(64):
            index.insert(fp(i))
        probes = [fp(i) for i in range(0, 128, 5)]
        plain = index.make_kernel(probes).execute()
        simt = index.make_kernel(probes, use_simt=True).execute()
        assert list(plain) == list(simt)

    def test_hit_statistics(self):
        index = GpuBinIndex()
        index.insert(fp(1))
        index.lookup_host([fp(1), fp(2), fp(1)])
        assert index.lookups == 3
        assert index.hits == 2
        assert index.hit_rate() == pytest.approx(2 / 3)

    @given(st.sets(st.integers(0, 200), max_size=60),
           st.lists(st.integers(0, 300), max_size=60))
    @settings(max_examples=30, deadline=None)
    def test_no_false_results_property(self, stored, probed):
        index = GpuBinIndex(bin_capacity=4096)
        for n in stored:
            index.insert(fp(n))
        hits = index.lookup_host([fp(n) for n in probed])
        assert hits == [n in stored for n in probed]


class TestReplacementPolicies:
    def test_random_in_range(self):
        policy = RandomReplacement(seed=1)
        for _ in range(100):
            assert 0 <= policy.choose_victim(0, 8) < 8

    def test_random_deterministic_with_seed(self):
        a = [RandomReplacement(seed=3).choose_victim(0, 100)
             for _ in range(1)]
        b = [RandomReplacement(seed=3).choose_victim(0, 100)
             for _ in range(1)]
        assert a == b

    def test_fifo_cycles(self):
        policy = FifoReplacement()
        victims = [policy.choose_victim(7, 3) for _ in range(6)]
        assert victims == [0, 1, 2, 0, 1, 2]

    def test_fifo_per_bin_cursors(self):
        policy = FifoReplacement()
        assert policy.choose_victim(1, 4) == 0
        assert policy.choose_victim(2, 4) == 0
        assert policy.choose_victim(1, 4) == 1

    def test_lru_prefers_untouched(self):
        policy = LruReplacement()
        for slot in range(4):
            policy.on_insert(0, slot)
        policy.on_hit(0, 0)  # slot 0 is now the most recent
        assert policy.choose_victim(0, 4) == 1

    def test_lru_forget_bin(self):
        policy = LruReplacement()
        policy.on_insert(0, 3)
        policy.forget_bin(0)
        assert policy.choose_victim(0, 4) == 0

    def test_empty_bin_rejected(self):
        for policy in (RandomReplacement(seed=0), FifoReplacement(),
                       LruReplacement()):
            with pytest.raises(IndexError_):
                policy.choose_victim(0, 0)
