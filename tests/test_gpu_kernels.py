"""Tests for the GPU kernels and the CPU post-processing that refines them."""

import hashlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression import LzssCodec
from repro.compression.postprocess import (
    merge_segments,
    refine_to_container,
    validate_segments,
)
from repro.errors import CompressionError, KernelError
from repro.gpu import GpuDevice
from repro.gpu.kernels import (
    BinLookupKernel,
    DescriptorLzKernel,
    LookupBatch,
    SegmentLzKernel,
    Sha1Kernel,
)
from repro.sim import Environment


def _compressible(n: int) -> bytes:
    pattern = b"storage systems love repeated patterns; " \
              b"dedup and compression exploit them. "
    return (pattern * (n // len(pattern) + 1))[:n]


def _incompressible(n: int, seed: int = 11) -> bytes:
    import random
    rng = random.Random(seed)
    return bytes(rng.randrange(256) for _ in range(n))


def _make_table(entries):
    """Build a bin table {bin_id: (lo, hi, count)} from (bin, lo, hi)."""
    table = {}
    for bin_id, lo, hi in entries:
        lo_arr, hi_arr, count = table.get(
            bin_id, (np.zeros(16, dtype=np.uint64),
                     np.zeros(16, dtype=np.uint64), 0))
        lo_arr[count] = lo
        hi_arr[count] = hi
        table[bin_id] = (lo_arr, hi_arr, count + 1)
    return table


class TestBinLookupKernel:
    def test_hit_and_miss(self):
        table = _make_table([(0, 111, 222), (0, 333, 444), (1, 555, 666)])
        batch = LookupBatch.from_queries(
            [(0, 333, 444), (1, 555, 666), (1, 999, 999), (2, 1, 1)])
        slots = BinLookupKernel(batch, table).execute()
        assert list(slots) == [1, 0, -1, -1]

    def test_simt_path_matches_vectorized(self):
        table = _make_table(
            [(b % 4, 1000 + b, 2000 + b) for b in range(40)])
        queries = [(b % 4, 1000 + b, 2000 + b) for b in range(0, 40, 3)]
        queries += [(0, 5, 5), (3, 7, 7)]
        batch = LookupBatch.from_queries(queries)
        vec = BinLookupKernel(batch, table).execute()
        simt = BinLookupKernel(batch, table, use_simt=True).execute()
        assert np.array_equal(vec, simt)

    def test_empty_batch_rejected(self):
        with pytest.raises(KernelError):
            LookupBatch.from_queries([])

    def test_cost_scales_with_bin_occupancy(self):
        small = _make_table([(0, i, i) for i in range(2)])
        big = _make_table([(0, i, i) for i in range(16)])
        batch = LookupBatch.from_queries([(0, 99, 99)])
        assert (BinLookupKernel(batch, big).cost().lane_cycles_total
                > BinLookupKernel(batch, small).cost().lane_cycles_total)

    def test_unknown_bin_scans_nothing(self):
        batch = LookupBatch.from_queries([(7, 1, 2)])
        kernel = BinLookupKernel(batch, {})
        assert list(kernel.execute()) == [-1]
        assert kernel.cost().critical_path_cycles == 0.0

    def test_pcie_footprint(self):
        batch = LookupBatch.from_queries([(0, 1, 2)] * 100)
        kernel = BinLookupKernel(batch, {})
        assert kernel.bytes_in() == 100 * 20
        assert kernel.bytes_out() == 100 * 8


class TestSegmentLzKernel:
    def test_segments_tile_chunk(self):
        chunk = _compressible(4096)
        outputs = SegmentLzKernel([chunk], segments_per_chunk=8).execute()
        segs = outputs[0]
        assert [s.start for s in segs] == [i * 512 for i in range(8)]
        assert segs[-1].end == 4096
        validate_segments(segs, 4096)

    def test_roundtrip_through_postprocess(self):
        chunk = _compressible(4096)
        outputs = SegmentLzKernel([chunk], segments_per_chunk=8).execute()
        blob = refine_to_container(chunk, outputs[0])
        assert LzssCodec().decode(blob) == chunk

    def test_roundtrip_incompressible(self):
        chunk = _incompressible(4096)
        outputs = SegmentLzKernel([chunk], segments_per_chunk=8).execute()
        blob = refine_to_container(chunk, outputs[0])
        assert LzssCodec().decode(blob) == chunk

    def test_multiple_chunks_independent(self):
        chunks = [_compressible(2048), _incompressible(2048)]
        outputs = SegmentLzKernel(chunks, segments_per_chunk=4).execute()
        for chunk, per_chunk in zip(chunks, outputs):
            assert LzssCodec().decode(
                refine_to_container(chunk, per_chunk)) == chunk

    def test_simt_mode_same_results(self):
        chunk = _compressible(1024)
        plain = SegmentLzKernel([chunk], segments_per_chunk=4).execute()
        simt = SegmentLzKernel([chunk], segments_per_chunk=4,
                               use_simt=True).execute()
        assert [s.tokens for s in plain[0]] == [s.tokens for s in simt[0]]

    def test_simt_stats_refine_cost(self):
        chunk = _compressible(1024)
        kernel = SegmentLzKernel([chunk], segments_per_chunk=4,
                                 use_simt=True)
        analytic = kernel.cost().lane_cycles_total
        kernel.execute()
        measured = kernel.cost().lane_cycles_total
        assert measured != analytic  # stats actually feed the cost

    def test_ratio_close_to_serial_lzss(self):
        """Segment parallelism costs a little ratio, not a lot (A7)."""
        chunk = _compressible(4096)
        serial = len(LzssCodec().encode(chunk))
        outputs = SegmentLzKernel([chunk], segments_per_chunk=8).execute()
        parallel = len(refine_to_container(chunk, outputs[0]))
        assert parallel <= serial * 1.25

    def test_empty_batch_rejected(self):
        with pytest.raises(KernelError):
            SegmentLzKernel([])

    def test_bad_segment_count_rejected(self):
        with pytest.raises(KernelError):
            SegmentLzKernel([b"x" * 64], segments_per_chunk=0)

    def test_single_segment_equals_greedy_serial(self):
        chunk = _compressible(1024)
        outputs = SegmentLzKernel([chunk], segments_per_chunk=1).execute()
        blob = refine_to_container(chunk, outputs[0])
        serial = LzssCodec().encode(chunk)
        assert LzssCodec().decode(blob) == chunk
        assert len(blob) == len(serial)

    @given(st.binary(min_size=1, max_size=1500), st.integers(1, 8))
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_property(self, chunk, segments):
        outputs = SegmentLzKernel(
            [chunk], segments_per_chunk=segments).execute()
        blob = refine_to_container(chunk, outputs[0])
        assert LzssCodec().decode(blob) == chunk

    @given(st.integers(0, 255), st.integers(100, 3000), st.integers(2, 8))
    @settings(max_examples=25, deadline=None)
    def test_runs_roundtrip_property(self, byte, n, segments):
        chunk = bytes([byte]) * n
        outputs = SegmentLzKernel(
            [chunk], segments_per_chunk=segments).execute()
        blob = refine_to_container(chunk, outputs[0])
        assert LzssCodec().decode(blob) == chunk


class TestPostprocessValidation:
    def test_gap_detected(self):
        chunk = _compressible(1024)
        outputs = SegmentLzKernel([chunk], segments_per_chunk=4).execute()[0]
        outputs[1].start += 1  # corrupt tiling
        with pytest.raises(CompressionError):
            merge_segments(chunk, outputs)

    def test_wrong_expansion_detected(self):
        chunk = _compressible(1024)
        outputs = SegmentLzKernel([chunk], segments_per_chunk=4).execute()[0]
        outputs[2].tokens.pop()  # now expands short
        with pytest.raises(CompressionError):
            merge_segments(chunk, outputs)

    def test_seam_repair_never_hurts(self):
        chunk = _compressible(4096)
        outputs = SegmentLzKernel([chunk], segments_per_chunk=8).execute()[0]
        repaired = len(refine_to_container(chunk, outputs,
                                           repair_seams=True))
        raw = len(refine_to_container(chunk, outputs, repair_seams=False))
        assert repaired <= raw


class TestDescriptorLzKernel:
    def test_synthetic_sizes_follow_ratio(self):
        kernel = DescriptorLzKernel([4096, 4096], [2.0, 4.0])
        assert kernel.execute() == [2048, 1024]

    def test_subunit_ratio_clamped(self):
        kernel = DescriptorLzKernel([4096], [0.5])
        assert kernel.execute() == [4096]

    def test_cost_matches_payload_kernel_scale(self):
        """Descriptor and payload kernels must price similar batches in
        the same ballpark, or benchmark modes would disagree."""
        chunks = [_compressible(4096)] * 4
        payload = SegmentLzKernel(chunks, segments_per_chunk=8).cost()
        descriptor = DescriptorLzKernel([4096] * 4, [2.0] * 4,
                                        segments_per_chunk=8).cost()
        assert descriptor.lane_cycles_total == pytest.approx(
            payload.lane_cycles_total, rel=0.01)

    def test_length_mismatch_rejected(self):
        with pytest.raises(KernelError):
            DescriptorLzKernel([4096], [2.0, 3.0])


class TestSha1Kernel:
    def test_digests_match_hashlib(self):
        chunks = [b"alpha", b"beta", _compressible(4096)]
        digests = Sha1Kernel(chunks).execute()
        assert digests == [hashlib.sha1(c).digest() for c in chunks]

    def test_cost_scales_with_bytes(self):
        small = Sha1Kernel([b"x" * 512]).cost()
        large = Sha1Kernel([b"x" * 4096]).cost()
        assert large.lane_cycles_total > small.lane_cycles_total
        assert large.critical_path_cycles > small.critical_path_cycles

    def test_empty_batch_rejected(self):
        with pytest.raises(KernelError):
            Sha1Kernel([])


class TestKernelsOnDevice:
    def test_lz_launch_through_device(self):
        env = Environment()
        gpu = GpuDevice(env)
        chunk = _compressible(4096)
        kernel = SegmentLzKernel([chunk] * 4, segments_per_chunk=8)
        result = {}

        def proc():
            result["out"] = yield from gpu.launch(kernel)

        env.process(proc())
        env.run()
        assert len(result["out"]) == 4
        assert env.now > gpu.spec.launch_overhead_s

    def test_index_launch_latency_floor(self):
        """Small lookup batches are latency-bound: doubling the batch
        barely moves the launch time (paper: 'execution time is fixed')."""
        env = Environment()
        gpu = GpuDevice(env)
        table = _make_table([(0, i, i) for i in range(16)])
        t_small = gpu.launch_time(BinLookupKernel(
            LookupBatch.from_queries([(0, 1, 1)] * 64), table))
        t_large = gpu.launch_time(BinLookupKernel(
            LookupBatch.from_queries([(0, 1, 1)] * 256), table))
        assert t_large < t_small * 1.5
