"""The observability layer: tracer, metrics, exporters, attribution.

Two families of tests:

* **Unit** — tracer/record semantics (validation, splits, the span
  context manager), the metrics registry, and the Chrome-trace
  validator on hand-built payloads.
* **Integration** — the acceptance criteria: a traced E4 run must leave
  the report byte-identical to an untraced run, tile >= 95% of the mean
  inline latency with stage spans, split the GPU-index and compression
  stages into queue wait vs. service, and export schema-valid Chrome
  ``trace_event`` JSON.
"""

import dataclasses
import json

import pytest

from repro.core.calibration import run_mode
from repro.core.config import PipelineConfig
from repro.core.modes import IntegrationMode
from repro.core.pipeline import ReductionPipeline
from repro.cpu.model import SimCpu
from repro.errors import TraceError
from repro.obs import (
    NULL_TRACER,
    CriticalPathReport,
    MetricsRegistry,
    NullTracer,
    SimTracer,
    chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.stages import (
    DEDUP_COUNTER_KEYS,
    INLINE_STAGES,
    STAGE_ADMISSION,
    STAGE_CHUNK,
    STAGE_COMPRESS,
    STAGE_GPU_INDEX,
)
from repro.obs.tracer import Span
from repro.sim import Environment
from repro.sim.histogram import LatencyHistogram

#: Small-but-realistic traced-run scale: large enough that batching,
#: contention and destage all happen, small enough for test wall-clock.
N_CHUNKS = 512


def traced_run(mode: IntegrationMode, chunks: int = N_CHUNKS, **kwargs):
    tracer = SimTracer()
    report = run_mode(mode, chunks, tracer=tracer, **kwargs)
    return report, tracer


@pytest.fixture(scope="module")
def gpu_both_run():
    return traced_run(IntegrationMode.GPU_BOTH)


# -- null tracer -------------------------------------------------------------

class TestNullTracer:
    def test_disabled_and_noop(self):
        tracer = NullTracer()
        assert tracer.enabled is False
        assert tracer.bind(object()) is None
        assert tracer.record("x", start=0.0, end=1.0) is None
        assert tracer.record_since("x", 1, 0.0) is None
        assert tracer.record_split(("a",), 1, 0.0, weights=(1,),
                                   expected_service_s=0.0) is None

    def test_span_context_manager_is_shared_noop(self):
        with NULL_TRACER.span("stage", resource="r", extra=1) as handle:
            assert handle is NULL_TRACER.span("other")


# -- sim tracer --------------------------------------------------------------

class TestSimTracer:
    def test_unbound_now_raises(self):
        with pytest.raises(TraceError, match="not bound"):
            SimTracer().now()

    def test_rebind_same_env_ok_other_env_rejected(self):
        env = Environment()
        tracer = SimTracer()
        tracer.bind(env)
        tracer.bind(env)  # idempotent
        with pytest.raises(TraceError, match="already bound"):
            tracer.bind(Environment())

    def test_record_end_defaults_to_now(self):
        env = Environment()
        tracer = SimTracer(env)

        def proc():
            yield env.timeout(2.0)
            tracer.record("stage", 7, start=0.5)

        env.process(proc())
        env.run()
        (span,) = tracer.spans
        assert span.start == 0.5 and span.end == 2.0
        assert span.duration == pytest.approx(1.5)
        assert span.chunk_id == 7

    def test_record_rejects_negative_duration(self):
        tracer = SimTracer(Environment())
        with pytest.raises(TraceError, match="ends before"):
            tracer.record("stage", start=2.0, end=1.0)

    def test_queue_wait_bounds(self):
        tracer = SimTracer(Environment())
        with pytest.raises(TraceError, match="queue_wait"):
            tracer.record("s", start=0.0, end=1.0, queue_wait=-0.5)
        with pytest.raises(TraceError, match="queue_wait"):
            tracer.record("s", start=0.0, end=1.0, queue_wait=1.5)
        # Float-epsilon overshoot clamps instead of raising.
        span = tracer.record("s", start=0.0, end=1.0,
                             queue_wait=1.0 + 1e-13)
        assert span.queue_wait == 1.0
        assert span.service == pytest.approx(0.0)

    def test_record_since_derives_queue_wait(self):
        env = Environment()
        tracer = SimTracer(env)

        def proc():
            yield env.timeout(1.0)
            tracer.record_since("stage", 1, 0.0,
                                expected_service_s=0.25)

        env.process(proc())
        env.run()
        (span,) = tracer.spans
        assert span.queue_wait == pytest.approx(0.75)
        assert span.service == pytest.approx(0.25)

    def test_record_split_tiles_exactly(self):
        env = Environment()
        tracer = SimTracer(env)

        def proc():
            yield env.timeout(1.0)
            tracer.record_split(("a", "b"), 3, 0.0, weights=(1.0, 3.0),
                                expected_service_s=0.8)

        env.process(proc())
        env.run()
        first, second = tracer.spans
        # Contention wait (0.2) lands on the first stage; the service
        # portion splits 1:3; the spans tile [0, 1] with no gap.
        assert first.start == 0.0
        assert first.queue_wait == pytest.approx(0.2)
        assert first.service == pytest.approx(0.2)
        assert second.start == first.end
        assert second.end == 1.0  # pinned exactly, no float residue
        assert second.service == pytest.approx(0.6)

    def test_record_split_validates_inputs(self):
        tracer = SimTracer(Environment())
        with pytest.raises(TraceError, match="align"):
            tracer.record_split(("a", "b"), 1, 0.0, weights=(1.0,),
                                expected_service_s=0.0)
        with pytest.raises(TraceError, match="non-positive"):
            tracer.record_split(("a",), 1, 0.0, weights=(0.0,),
                                expected_service_s=0.0)

    def test_span_context_manager_records_on_exit(self):
        env = Environment()
        tracer = SimTracer(env)

        def proc():
            with tracer.span("stage", resource="track", bytes=42):
                yield env.timeout(0.5)

        env.process(proc())
        env.run()
        (span,) = tracer.spans
        assert (span.start, span.end) == (0.0, 0.5)
        assert span.resource == "track"
        assert span.attrs == {"bytes": 42}


# -- metrics registry --------------------------------------------------------

class TestMetricsRegistry:
    def test_get_or_create_and_kind_conflict(self):
        registry = MetricsRegistry()
        counter = registry.counter("a.b")
        assert registry.counter("a.b") is counter
        with pytest.raises(TraceError, match="Counter"):
            registry.gauge("a.b")

    def test_counter_cannot_decrease(self):
        counter = MetricsRegistry().counter("c")
        counter.inc(5)
        with pytest.raises(TraceError, match="decrease"):
            counter.inc(-1)

    def test_absorb_counters_is_delta_idempotent(self):
        registry = MetricsRegistry()
        live = {"hits": 3, "misses": 1}
        registry.absorb_counters("cache", live)
        registry.absorb_counters("cache", live)
        assert registry.value("cache.hits") == 3
        live["hits"] = 10
        registry.absorb_counters("cache", live)
        assert registry.value("cache.hits") == 10

    def test_attach_histogram_shares_storage(self):
        registry = MetricsRegistry()
        hist = LatencyHistogram()
        metric = registry.attach_histogram("lat", hist)
        hist.record(0.5)
        assert registry.value("lat")["max"] == 0.5
        assert registry.attach_histogram("lat", hist) is metric
        with pytest.raises(TraceError, match="different histogram"):
            registry.attach_histogram("lat", LatencyHistogram())

    def test_snapshot_sorted_and_rendered(self):
        registry = MetricsRegistry()
        registry.counter("z.last").inc(2)
        registry.gauge("a.first").set(1.5)
        assert list(registry.snapshot()) == ["a.first", "z.last"]
        assert "z.last" in registry.render()
        assert "z.last" not in registry.render(prefixes=["a"])
        with pytest.raises(TraceError, match="unknown"):
            registry.value("nope")


# -- chrome exporter / validator ---------------------------------------------

def _spans_for_export():
    return [
        Span(STAGE_CHUNK, 0, 0.0, 2e-3),
        Span("chunking", 0, 0.0, 1e-3, queue_wait=2e-4),
        Span("commit", 0, 1e-3, 2e-3),
        Span(STAGE_CHUNK, 1, 1e-3, 3e-3),
        Span("chunking", 1, 1e-3, 3e-3),
        Span("ssd_write", None, 0.0, 5e-4, resource="ssd",
             attrs={"bytes": 4096}),
    ]


class TestChromeExport:
    def test_payload_shape_and_metadata(self):
        payload = chrome_trace(_spans_for_export())
        events = payload["traceEvents"]
        names = {e["name"] for e in events if e["ph"] == "M"}
        assert {"process_name", "thread_name"} <= names
        slices = [e for e in events if e["ph"] == "X"]
        # Chunk 0's envelope overlaps chunk 1's: distinct lanes.
        tids = {e["tid"] for e in slices if e.get("args", {})
                .get("chunk_id") is not None}
        assert len(tids) >= 2
        micro = [e["ts"] for e in slices]
        assert all(ts >= 0 for ts in micro)
        assert validate_chrome_trace(payload) == []

    def test_args_carry_span_detail(self):
        payload = chrome_trace(_spans_for_export())
        ssd = [e for e in payload["traceEvents"]
               if e.get("cat") == "ssd"]
        assert ssd and ssd[0]["args"]["bytes"] == 4096

    def test_write_chrome_trace_roundtrip(self, tmp_path):
        path = tmp_path / "trace.json"
        payload = write_chrome_trace(str(path), _spans_for_export())
        assert json.loads(path.read_text()) == payload

    def test_validator_rejects_malformed_payloads(self):
        assert validate_chrome_trace([]) != []
        assert validate_chrome_trace({"traceEvents": "x"}) != []
        missing = {"traceEvents": [{"ph": "X", "name": "s"}]}
        assert any("missing" in p
                   for p in validate_chrome_trace(missing))
        negative = {"traceEvents": [
            {"name": "s", "ph": "X", "ts": -5.0, "dur": 1.0,
             "pid": 1, "tid": 1}]}
        assert validate_chrome_trace(negative) != []

    def test_validator_rejects_overlapping_lane(self):
        # Two slices on one tid that overlap without nesting.
        bad = {"traceEvents": [
            {"name": "a", "ph": "X", "ts": 0.0, "dur": 10.0,
             "pid": 1, "tid": 1},
            {"name": "b", "ph": "X", "ts": 5.0, "dur": 10.0,
             "pid": 1, "tid": 1}]}
        assert any("overlap" in p.lower()
                   for p in validate_chrome_trace(bad))

    def test_validator_caps_problem_list(self):
        bad = {"traceEvents": [{"ph": "X"}] * 100}
        assert len(validate_chrome_trace(bad, max_problems=5)) == 5


# -- integration: the acceptance criteria ------------------------------------

class TestTracedRunAcceptance:
    @pytest.mark.parametrize("mode", [IntegrationMode.GPU_BOTH,
                                      IntegrationMode.CPU_ONLY])
    def test_null_tracer_runs_byte_identical(self, mode):
        untraced = dataclasses.asdict(run_mode(mode, N_CHUNKS))
        explicit_null = dataclasses.asdict(
            run_mode(mode, N_CHUNKS, tracer=NULL_TRACER))
        traced, _ = traced_run(mode)
        assert dataclasses.asdict(traced) == untraced == explicit_null

    def test_chunk_envelopes_match_admissions(self, gpu_both_run):
        report, tracer = gpu_both_run
        envelopes = [s for s in tracer.spans if s.stage == STAGE_CHUNK]
        assert len(envelopes) == N_CHUNKS
        assert len({s.chunk_id for s in envelopes}) == N_CHUNKS
        mean = sum(s.duration for s in envelopes) / N_CHUNKS
        assert mean == pytest.approx(report.mean_latency_s, rel=1e-9)

    def test_spans_well_formed(self, gpu_both_run):
        _, tracer = gpu_both_run
        for span in tracer.spans:
            assert span.end >= span.start
            assert 0.0 <= span.queue_wait <= span.duration + 1e-12
            assert span.stage
        admissions = [s for s in tracer.spans
                      if s.stage == STAGE_ADMISSION]
        assert len(admissions) == N_CHUNKS

    def test_critical_path_coverage(self, gpu_both_run):
        report, tracer = gpu_both_run
        critical = CriticalPathReport.from_spans(tracer.spans)
        assert critical.n_chunks == N_CHUNKS
        assert critical.mean_latency_s == pytest.approx(
            report.mean_latency_s, rel=1e-9)
        # Acceptance gate: inline stage attributions account for >= 95%
        # of the mean latency (they tile it, so ~100%).
        assert critical.coverage >= 0.95
        assert {b.stage for b in critical.stages} <= set(INLINE_STAGES)

    def test_gpu_index_and_compress_split_queue_vs_service(
            self, gpu_both_run):
        _, tracer = gpu_both_run
        critical = CriticalPathReport.from_spans(tracer.spans)
        by_stage = {b.stage: b for b in critical.stages}
        for stage in (STAGE_GPU_INDEX, STAGE_COMPRESS):
            breakdown = by_stage[stage]
            assert breakdown.spans > 0
            assert breakdown.queue_wait_s > 0.0
            assert breakdown.service_s > 0.0
            assert breakdown.total_s == pytest.approx(
                breakdown.queue_wait_s + breakdown.service_s)

    def test_chrome_export_validates_clean(self, gpu_both_run):
        _, tracer = gpu_both_run
        payload = chrome_trace(tracer.spans)
        assert validate_chrome_trace(payload) == []
        assert len(payload["traceEvents"]) > len(tracer.spans)

    def test_report_render_and_json(self, gpu_both_run):
        _, tracer = gpu_both_run
        critical = CriticalPathReport.from_spans(tracer.spans)
        text = critical.render()
        assert "critical path over 512 chunks" in text
        assert "gpu_index" in text
        decoded = json.loads(critical.to_json())
        assert decoded["n_chunks"] == N_CHUNKS
        assert decoded["coverage"] >= 0.95


# -- pipeline metrics publication --------------------------------------------

class TestPublishMetrics:
    def test_registry_matches_report(self):
        from repro.cpu.model import I7_2600K
        from repro.gpu.device import GpuDevice, RADEON_HD_7970
        from repro.storage.ssd import SAMSUNG_SSD_830, SsdModel
        from repro.workload.vdbench import VdbenchStream

        env = Environment()
        config = PipelineConfig().with_overrides(
            mode=IntegrationMode.GPU_BOTH)
        cpu = SimCpu(env, I7_2600K)
        gpu = GpuDevice(env, RADEON_HD_7970)
        ssd = SsdModel(env, SAMSUNG_SSD_830)
        pipeline = ReductionPipeline(env, config, cpu=cpu, gpu=gpu,
                                     ssd=ssd)
        stream = VdbenchStream(chunk_size=config.chunk_size, seed=7)
        report = pipeline.run(stream.chunks(256), total=256)

        registry = pipeline.publish_metrics()
        assert registry.value("pipeline.chunks_done") == 256
        # The report snapshots counters before the shutdown drain;
        # the registry reads the live (post-drain) values, so flushes
        # and restarts may only have grown since.
        for key in DEDUP_COUNTER_KEYS:
            live = registry.value(f"dedup.{key}")
            snapshot = report.counters.get(key, 0)
            if key in ("flushes", "restarts"):
                assert live >= snapshot
            else:
                assert live == snapshot
        latency = registry.value("pipeline.latency_s")
        assert latency["mean"] == pytest.approx(report.mean_latency_s)
        assert registry.value("ssd.nand_bytes_written") \
            == report.nand_bytes_written
        # Re-publishing into the same registry is a no-op (delta = 0).
        before = registry.snapshot()
        assert pipeline.publish_metrics(registry).snapshot() == before


class TestVolumeMetrics:
    def test_volume_metrics_namespaces(self):
        from repro.storage.volume import ReducedVolume

        volume = ReducedVolume(chunk_size=4096)
        payload = bytes(range(256)) * 16
        volume.write(0, payload * 2)  # second copy deduplicates
        registry = volume.metrics()
        assert registry.value("dedup.uniques") >= 1
        assert registry.value("volume.logical_bytes") \
            == volume.logical_bytes
        assert registry.value("compress.cpu.chunks_compressed") >= 1
        assert registry.value("volume.dedup_ratio") \
            == pytest.approx(volume.dedup_ratio())
