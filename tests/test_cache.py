"""Tests for the chunk cache and its read-pipeline integration."""

import hashlib

import pytest

from repro.core.cache import ChunkCache
from repro.core.readpath import ReadPipeline
from repro.errors import ConfigError
from repro.sim import Environment
from repro.storage import MetadataStore
from repro.workload.patterns import ZipfPattern


def fp(n: int) -> bytes:
    return hashlib.sha1(n.to_bytes(8, "big")).digest()


def populated_store(n_chunks=64, compressed_size=2048):
    store = MetadataStore()
    for i in range(n_chunks):
        store.store_unique(fp(i), 4096, compressed_size)
        store.map_logical(i * 4096, fp(i), 4096)
    return store


class TestChunkCache:
    def test_miss_then_hit(self):
        cache = ChunkCache(16384)
        assert not cache.lookup(0)
        cache.fill(0, 4096)
        assert cache.lookup(0)
        assert cache.hit_rate() == 0.5

    def test_lru_eviction_order(self):
        cache = ChunkCache(3 * 4096)
        for offset in (0, 4096, 8192):
            cache.fill(offset, 4096)
        cache.lookup(0)            # 0 becomes most recent
        cache.fill(12288, 4096)    # evicts 4096 (the LRU)
        assert cache.lookup(0)
        assert not cache.lookup(4096)
        assert cache.evictions == 1

    def test_capacity_respected(self):
        cache = ChunkCache(2 * 4096)
        for offset in range(0, 10 * 4096, 4096):
            cache.fill(offset, 4096)
        assert cache.used_bytes <= 2 * 4096
        assert len(cache) == 2

    def test_oversized_entry_skipped(self):
        cache = ChunkCache(1024)
        cache.fill(0, 4096)
        assert len(cache) == 0

    def test_invalidate(self):
        cache = ChunkCache(16384)
        cache.fill(0, 4096)
        cache.invalidate(0)
        assert not cache.lookup(0)
        assert cache.invalidations == 1
        assert cache.used_bytes == 0

    def test_refill_same_offset_no_double_count(self):
        cache = ChunkCache(16384)
        cache.fill(0, 4096)
        cache.fill(0, 2048)
        assert cache.used_bytes == 2048
        assert len(cache) == 1

    def test_invalid_capacity(self):
        with pytest.raises(ConfigError):
            ChunkCache(0)


class TestCachedReadPipeline:
    def _run(self, offsets, cache=None, window=1):
        # window=1 serializes reads; with deep queues concurrent misses
        # on the same cold offset would all go to media (realistic, but
        # not what these unit tests measure).
        env = Environment()
        pipeline = ReadPipeline(env, populated_store(), cache=cache,
                                window=window)
        return pipeline.run(offsets)

    def test_repeat_reads_hit_cache(self):
        cache = ChunkCache(64 * 4096)
        report = self._run([0, 0, 0, 4096, 0], cache=cache)
        assert report.cache_hits == 3
        assert cache.hit_rate() == pytest.approx(3 / 5)

    def test_cache_hits_skip_media_and_decode(self):
        cache = ChunkCache(64 * 4096)
        offsets = [0] * 32
        cached = self._run(offsets, cache=cache)
        uncached = self._run(offsets, cache=None)
        assert cached.duration_s < uncached.duration_s / 3
        assert cached.decompressed == 1  # only the first miss decoded

    def test_zipf_workload_gets_high_hit_rate(self):
        cache = ChunkCache(8 * 4096)  # 12.5% of the working set
        pattern = ZipfPattern(64, skew=1.2, seed=4)
        offsets = [pattern.next_slot() * 4096 for _ in range(2000)]
        report = self._run(offsets, cache=cache)
        assert report.cache_hits / len(offsets) > 0.5

    def test_without_cache_no_hits_reported(self):
        report = self._run([0, 0, 0])
        assert report.cache_hits == 0
