"""Tests for refcount-based instant cloning on the reduced volume."""

import pytest

from repro.errors import BlockRangeError, MetadataError
from repro.storage import ReducedVolume
from repro.workload.datagen import BlockContentGenerator

CHUNK = 4096


def content(salt: int) -> bytes:
    return BlockContentGenerator(2.0, seed=8).make_block(CHUNK, salt=salt)


class TestCloneRange:
    def test_clone_reads_identically(self):
        volume = ReducedVolume()
        data = content(1) + content(2)
        volume.write(0, data)
        volume.clone_range(0, 16 * CHUNK, len(data))
        assert volume.read(16 * CHUNK, len(data)) == data

    def test_clone_moves_no_data(self):
        volume = ReducedVolume()
        volume.write(0, content(1))
        before = volume.physical_bytes
        volume.clone_range(0, 8 * CHUNK, CHUNK)
        assert volume.physical_bytes == before  # shared, not copied
        assert volume.logical_bytes == 2 * CHUNK
        assert volume.engine.metadata.resolve(0).refcount == 2

    def test_clone_diverges_on_overwrite(self):
        volume = ReducedVolume()
        original = content(1)
        volume.write(0, original)
        volume.clone_range(0, 8 * CHUNK, CHUNK)
        replacement = content(2)
        volume.write(8 * CHUNK, replacement)       # write to the clone
        assert volume.read(0, CHUNK) == original   # source untouched
        assert volume.read(8 * CHUNK, CHUNK) == replacement

    def test_source_overwrite_leaves_clone(self):
        volume = ReducedVolume()
        original = content(1)
        volume.write(0, original)
        volume.clone_range(0, 8 * CHUNK, CHUNK)
        volume.write(0, content(3))                # write to the source
        assert volume.read(8 * CHUNK, CHUNK) == original

    def test_clone_of_unmapped_range_raises(self):
        volume = ReducedVolume()
        with pytest.raises(MetadataError):
            volume.clone_range(0, 8 * CHUNK, CHUNK)

    def test_unaligned_clone_rejected(self):
        volume = ReducedVolume()
        volume.write(0, content(1))
        with pytest.raises(BlockRangeError):
            volume.clone_range(0, 100, CHUNK)

    def test_overlapping_clone_rejected(self):
        volume = ReducedVolume()
        volume.write(0, content(1) + content(2))
        with pytest.raises(BlockRangeError):
            volume.clone_range(0, CHUNK, 2 * CHUNK)

    def test_clone_chain(self):
        volume = ReducedVolume()
        data = content(5)
        volume.write(0, data)
        volume.clone_range(0, 8 * CHUNK, CHUNK)
        volume.clone_range(8 * CHUNK, 16 * CHUNK, CHUNK)
        assert volume.read(16 * CHUNK, CHUNK) == data
        assert volume.engine.metadata.resolve(0).refcount == 3
        volume.engine.metadata.verify_invariants()

    def test_clone_survives_restart(self):
        """Cloning resolves by record, not by fingerprint, so it works
        on data whose index entries a restart wiped."""
        volume = ReducedVolume()
        data = content(7)
        volume.write(0, data)
        volume.restart()
        volume.clone_range(0, 8 * CHUNK, CHUNK)
        assert volume.read(8 * CHUNK, CHUNK) == data

    def test_discard_of_clone_keeps_source(self):
        volume = ReducedVolume()
        data = content(9)
        volume.write(0, data)
        volume.clone_range(0, 8 * CHUNK, CHUNK)
        volume.discard(8 * CHUNK, CHUNK)
        assert volume.read(0, CHUNK) == data
        assert volume.engine.metadata.resolve(0).refcount == 1
