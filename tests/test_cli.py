"""Tests for the command-line interface."""

import pytest

from repro.cli import GPU_PRESETS, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.mode == "gpu_comp"
        assert args.chunks == 16384
        assert args.dedup_ratio == 2.0

    def test_run_mode_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--mode", "nonsense"])

    def test_gpu_preset_choices(self):
        assert set(GPU_PRESETS) == {"testbed", "weak", "none"}
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--gpu", "imaginary"])

    def test_codec_requires_file(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["codec"])


class TestRunCommand:
    def test_cpu_only_run(self, capsys):
        code = main(["run", "--mode", "cpu_only", "--chunks", "1024",
                     "--gpu", "none"])
        out = capsys.readouterr().out
        assert code == 0
        assert "K IOPS" in out
        assert "dedup ratio" in out

    def test_gpu_mode_without_gpu_fails_cleanly(self, capsys):
        code = main(["run", "--mode", "gpu_comp", "--chunks", "1024",
                     "--gpu", "none"])
        err = capsys.readouterr().err
        assert code == 2
        assert "needs a GPU" in err

    def test_custom_platform(self, capsys):
        code = main(["run", "--mode", "cpu_only", "--chunks", "1024",
                     "--gpu", "none", "--cpu-cores", "2",
                     "--cpu-threads", "2", "--cpu-ghz", "2.0"])
        assert code == 0

    def test_workload_dials(self, capsys):
        code = main(["run", "--mode", "cpu_only", "--chunks", "1024",
                     "--gpu", "none", "--dedup-ratio", "3.0",
                     "--comp-ratio", "1.5"])
        out = capsys.readouterr().out
        assert code == 0
        # The dedup dial should be visible in the report (~3x).
        assert "dedup ratio" in out


class TestTraceCommand:
    def test_summary_format_prints_attribution(self, capsys):
        code = main(["trace", "--chunks", "256", "--format", "summary"])
        out = capsys.readouterr().out
        assert code == 0
        assert "critical path over 256 chunks" in out
        assert "stage coverage" in out

    def test_chrome_format_writes_valid_trace(self, tmp_path, capsys):
        import json

        from repro.obs import validate_chrome_trace

        out_path = tmp_path / "trace.json"
        code = main(["trace", "--chunks", "256", "--out",
                     str(out_path)])
        assert code == 0
        payload = json.loads(out_path.read_text())
        assert validate_chrome_trace(payload) == []
        assert "Perfetto" in capsys.readouterr().out

    def test_json_format(self, tmp_path, capsys):
        import json

        code = main(["trace", "--chunks", "256", "--format", "json",
                     "--out", str(tmp_path / "trace.json")])
        out = capsys.readouterr().out
        assert code == 0
        decoded = json.loads(out.split("\ntrace:")[0])
        assert decoded["n_chunks"] == 256
        assert decoded["coverage"] >= 0.95

    def test_gpu_mode_without_gpu_fails_cleanly(self, capsys):
        code = main(["trace", "--gpu", "none"])
        assert code == 2
        assert "needs a GPU" in capsys.readouterr().err

    def test_run_with_trace_flag(self, tmp_path, capsys):
        out_path = tmp_path / "run_trace.json"
        code = main(["run", "--mode", "cpu_only", "--chunks", "256",
                     "--gpu", "none", "--trace", str(out_path)])
        assert code == 0
        assert out_path.exists()
        assert "events ->" in capsys.readouterr().out


class TestCalibrateCommand:
    def test_calibrate_testbed(self, capsys):
        code = main(["calibrate", "--chunks", "2048"])
        out = capsys.readouterr().out
        assert code == 0
        assert "commit to" in out
        assert "gpu_comp" in out or "gpu_both" in out

    def test_calibrate_without_gpu(self, capsys):
        code = main(["calibrate", "--chunks", "2048", "--gpu", "none"])
        out = capsys.readouterr().out
        assert code == 0
        assert "cpu_only" in out


class TestCodecCommand:
    def test_roundtrip_report(self, tmp_path, capsys):
        target = tmp_path / "data.bin"
        target.write_bytes(b"compress me please " * 500)
        code = main(["codec", str(target), "--codec", "lzss"])
        out = capsys.readouterr().out
        assert code == 0
        assert "round-trip verified" in out
        assert "ratio" in out

    def test_missing_file(self, tmp_path, capsys):
        code = main(["codec", str(tmp_path / "absent.bin")])
        assert code == 2

    def test_empty_file(self, tmp_path, capsys):
        target = tmp_path / "empty.bin"
        target.write_bytes(b"")
        code = main(["codec", str(target)])
        assert code == 2

    def test_limit_respected(self, tmp_path, capsys):
        target = tmp_path / "big.bin"
        target.write_bytes(b"x" * 10000)
        code = main(["codec", str(target), "--limit", "1000"])
        out = capsys.readouterr().out
        assert code == 0
        assert "1,000 B" in out


class TestBenchCommand:
    def test_list_experiments(self, capsys):
        code = main(["bench", "list"])
        out = capsys.readouterr().out
        assert code == 0
        for expected in ("e1", "e4", "a9", "a14"):
            assert expected in out.split()

    def test_unknown_experiment(self, capsys):
        code = main(["bench", "zz"])
        err = capsys.readouterr().err
        assert code == 2
        assert "unknown experiment" in err

    def test_run_dataclass_result(self, capsys):
        code = main(["bench", "a9"])
        out = capsys.readouterr().out
        assert code == 0
        assert "duplicates_missed" in out

    def test_run_list_result(self, capsys):
        code = main(["bench", "a14"])
        out = capsys.readouterr().out
        assert code == 0
        assert "write_amplification" in out

    def test_run_dict_result(self, capsys):
        code = main(["bench", "a5"])
        out = capsys.readouterr().out
        assert code == 0
        assert "best_mode" in out or "testbed" in out
