"""Tests for bit I/O, the Huffman coder, and the combined codec."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.bitio import BitReader, BitWriter
from repro.compression.huffman import (
    HuffmanCodec,
    LzssHuffmanCodec,
    _canonical_codes,
    _code_lengths,
)
from repro.compression.lzss import LzssCodec
from repro.errors import CorruptStreamError
from repro.workload.datagen import BlockContentGenerator


class TestBitIO:
    def test_single_bits_roundtrip(self):
        writer = BitWriter()
        bits = [1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1]
        for bit in bits:
            writer.write_bit(bit)
        reader = BitReader(writer.getvalue())
        assert [reader.read_bit() for _ in range(len(bits))] == bits

    def test_multi_bit_fields_roundtrip(self):
        writer = BitWriter()
        writer.write_bits(0b101, 3)
        writer.write_bits(0b11110000, 8)
        writer.write_bits(0b1, 1)
        reader = BitReader(writer.getvalue())
        assert reader.read_bits(3) == 0b101
        assert reader.read_bits(8) == 0b11110000
        assert reader.read_bits(1) == 0b1

    def test_overflowing_value_rejected(self):
        with pytest.raises(ValueError):
            BitWriter().write_bits(8, 3)

    def test_exhausted_reader_raises(self):
        reader = BitReader(b"")
        with pytest.raises(CorruptStreamError):
            reader.read_bit()

    def test_padding_is_zero(self):
        writer = BitWriter()
        writer.write_bits(0b1, 1)
        assert writer.getvalue() == bytes([0b10000000])

    @given(st.lists(st.tuples(st.integers(0, 2**16 - 1),
                              st.integers(1, 16)), max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, fields):
        writer = BitWriter()
        clipped = [(value & ((1 << width) - 1), width)
                   for value, width in fields]
        for value, width in clipped:
            writer.write_bits(value, width)
        reader = BitReader(writer.getvalue())
        for value, width in clipped:
            assert reader.read_bits(width) == value


class TestCodeConstruction:
    def test_two_symbols_get_one_bit_each(self):
        from collections import Counter
        lengths = _code_lengths(Counter({65: 10, 66: 1}))
        assert lengths == {65: 1, 66: 1}

    def test_skewed_frequencies_get_shorter_codes(self):
        from collections import Counter
        lengths = _code_lengths(Counter({0: 1000, 1: 10, 2: 10, 3: 1}))
        assert lengths[0] < lengths[3]

    def test_canonical_codes_are_prefix_free(self):
        from collections import Counter
        lengths = _code_lengths(Counter(b"abracadabra alakazam"))
        codes = _canonical_codes(lengths)
        as_strings = [format(code, f"0{length}b")
                      for code, length in codes.values()]
        for a in as_strings:
            for b in as_strings:
                if a != b:
                    assert not b.startswith(a)

    def test_kraft_inequality_holds(self):
        from collections import Counter
        lengths = _code_lengths(Counter(bytes(range(200)) * 3 + b"aaa"))
        assert sum(2.0 ** -l for l in lengths.values()) <= 1.0 + 1e-9


class TestHuffmanCodec:
    def test_empty(self):
        codec = HuffmanCodec()
        assert codec.decode(codec.encode(b"")) == b""

    def test_single_symbol_run(self):
        codec = HuffmanCodec()
        data = b"a" * 1000
        blob = codec.encode(data)
        assert codec.decode(blob) == data
        assert len(blob) < 200  # ~1 bit/symbol

    def test_text_compresses(self):
        codec = HuffmanCodec()
        data = (b"the entropy of english text is well under "
                b"eight bits per character ") * 30
        blob = codec.encode(data)
        assert codec.decode(blob) == data
        assert len(blob) < len(data) * 0.75

    def test_uniform_bytes_incompressible(self):
        codec = HuffmanCodec()
        data = bytes(range(256)) * 8
        blob = codec.encode(data)
        assert codec.decode(blob) == data
        assert len(blob) >= len(data)  # 8 bits/symbol + table

    def test_truncated_container_rejected(self):
        codec = HuffmanCodec()
        with pytest.raises(CorruptStreamError):
            codec.decode(b"\x00\x00")

    def test_corrupt_codebook_rejected(self):
        codec = HuffmanCodec()
        blob = bytearray(codec.encode(b"hello world"))
        blob[7] = 0  # zero code length
        with pytest.raises(CorruptStreamError):
            codec.decode(bytes(blob))

    @given(st.binary(max_size=4096))
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_property(self, data):
        codec = HuffmanCodec()
        assert codec.decode(codec.encode(data)) == data


class TestLzssHuffmanCodec:
    def test_roundtrip(self):
        codec = LzssHuffmanCodec()
        data = BlockContentGenerator(2.0, seed=5).make_block(4096, salt=1)
        assert codec.decode(codec.encode(data)) == data

    def test_beats_plain_lzss_on_text(self):
        combined = LzssHuffmanCodec()
        plain = LzssCodec(lazy=True)
        data = (b"storage systems adore entropy coding after "
                b"lz matching removed the repeats ") * 50
        assert len(combined.encode(data)) < len(plain.encode(data))

    def test_works_in_reduced_volume(self):
        from repro.storage import ReducedVolume
        volume = ReducedVolume(codec=LzssHuffmanCodec())
        data = BlockContentGenerator(2.0, seed=6).make_block(4096, salt=2)
        volume.write(0, data)
        assert volume.read(0, 4096) == data
        assert volume.physical_bytes < 4096

    @given(st.binary(max_size=2048))
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_property(self, data):
        codec = LzssHuffmanCodec()
        assert codec.decode(codec.encode(data)) == data

    def test_ratio_helper(self):
        codec = LzssHuffmanCodec()
        assert codec.ratio(b"") == 1.0
        assert codec.ratio(b"abc" * 500) > 3.0
