"""Tests for the GPU batcher and the timed integrated pipeline."""

import pytest

from repro.core import IntegrationMode, PipelineConfig, ReductionPipeline
from repro.core.batcher import GpuBatcher
from repro.errors import ConfigError
from repro.gpu import GpuDevice, Kernel, KernelCost
from repro.sim import Environment
from repro.workload import VdbenchStream


class _EchoKernel(Kernel):
    """Returns its items; tiny fixed cost."""

    name = "echo"

    def __init__(self, items):
        self.items = items

    def execute(self):
        return [item * 10 for item in self.items]

    def cost(self):
        return KernelCost(name=self.name, threads=len(self.items),
                          lane_cycles_total=1e3, critical_path_cycles=1e3,
                          bytes_read=0.0, bytes_written=0.0)


def _make_batcher(env, gpu, batch_size=4, max_wait=1e-3):
    return GpuBatcher(
        env, gpu,
        make_kernel=_EchoKernel,
        split_results=lambda items, raw: raw,
        batch_size=batch_size, max_wait_s=max_wait, name="echo")


class TestGpuBatcher:
    def test_full_batch_single_launch(self):
        env = Environment()
        gpu = GpuDevice(env)
        batcher = _make_batcher(env, gpu, batch_size=4)
        results = {}

        def submitter(i):
            result = yield batcher.submit(i)
            results[i] = result

        for i in range(4):
            env.process(submitter(i))
        env.run(until=0.5)
        assert results == {i: i * 10 for i in range(4)}
        assert batcher.batches_launched == 1

    def test_partial_batch_launches_after_wait(self):
        env = Environment()
        gpu = GpuDevice(env)
        batcher = _make_batcher(env, gpu, batch_size=100, max_wait=2e-3)
        done_at = {}

        def submitter():
            yield batcher.submit(1)
            done_at["t"] = env.now

        env.process(submitter())
        env.run(until=0.5)
        assert "t" in done_at
        assert done_at["t"] >= 2e-3  # waited for the window
        assert batcher.items_processed == 1

    def test_items_across_multiple_batches(self):
        env = Environment()
        gpu = GpuDevice(env)
        batcher = _make_batcher(env, gpu, batch_size=3, max_wait=1e-4)
        count = [0]

        def submitter(i):
            yield batcher.submit(i)
            count[0] += 1

        for i in range(10):
            env.process(submitter(i))
        env.run(until=1.0)
        assert count[0] == 10
        assert batcher.batches_launched >= 4  # 3+3+3+1

    def test_invalid_params_rejected(self):
        env = Environment()
        gpu = GpuDevice(env)
        with pytest.raises(ConfigError):
            _make_batcher(env, gpu, batch_size=0)


def run_pipeline(mode, n_chunks=512, payload=False, **config_overrides):
    defaults = dict(
        mode=mode,
        window=64,
        gpu_index_batch=16,
        gpu_comp_batch=16,
        gpu_batch_wait_s=5e-4,
        bin_buffer_capacity=8,
        bin_buffer_total=64,
        gpu_bin_capacity=4096,
    )
    defaults.update(config_overrides)
    config = PipelineConfig(**defaults)
    env = Environment()
    pipeline = ReductionPipeline(env, config)
    stream = VdbenchStream(dedup_ratio=2.0, comp_ratio=2.0, seed=21,
                           payload=payload)
    report = pipeline.run(stream.chunks(n_chunks), total=n_chunks)
    return report, pipeline, stream


class TestPipelineFunctional:
    def test_cpu_only_processes_everything(self):
        report, pipeline, stream = run_pipeline(IntegrationMode.CPU_ONLY)
        assert report.chunks == 512
        assert report.duration_s > 0
        assert report.counters["uniques"] == stream.stats.uniques
        assert report.duplicates_found + report.counters["uniques"] \
            + report.counters.get("pending_hits", 0) == 512

    def test_dedup_ratio_matches_workload(self):
        report, _, stream = run_pipeline(IntegrationMode.CPU_ONLY,
                                         n_chunks=2000)
        assert report.dedup_ratio == pytest.approx(
            stream.stats.dedup_ratio, rel=0.01)

    def test_all_modes_agree_functionally(self):
        """Every mode must find the same uniques — offload must never
        change the *outcome*, only the timing."""
        uniques = {}
        for mode in IntegrationMode.all_modes():
            report, _, _ = run_pipeline(mode, n_chunks=1024)
            uniques[mode] = report.counters["uniques"]
        assert len(set(uniques.values())) == 1

    def test_gpu_comp_uses_gpu(self):
        report, _, _ = run_pipeline(IntegrationMode.GPU_COMP)
        assert report.gpu_kernels > 0
        assert report.gpu_utilization > 0

    def test_cpu_only_never_touches_gpu(self):
        report, pipeline, _ = run_pipeline(IntegrationMode.CPU_ONLY)
        assert report.gpu_kernels == 0
        assert pipeline.gpu is None

    def test_gpu_dedup_offloads_lookups(self):
        report, _, _ = run_pipeline(IntegrationMode.GPU_DEDUP,
                                    n_chunks=2048)
        # Once bins flush, GPU lookups start resolving duplicates.
        assert report.counters["gpu_hits"] > 0

    def test_payload_mode_end_to_end(self):
        """Real bytes through the timed pipeline: real SHA-1 dedup and
        real compression sizes."""
        report, pipeline, stream = run_pipeline(
            IntegrationMode.CPU_ONLY, n_chunks=96, payload=True)
        assert report.counters["uniques"] == stream.stats.uniques
        assert 1.2 < report.comp_ratio < 3.5
        pipeline.dedup.metadata.verify_invariants()

    def test_payload_gpu_comp_roundtrip_sizes(self):
        report, pipeline, _ = run_pipeline(
            IntegrationMode.GPU_COMP, n_chunks=96, payload=True)
        assert report.comp_ratio > 1.2
        assert report.gpu_kernels > 0

    def test_compression_only_mode(self):
        config = dict(enable_dedup=False)
        report, pipeline, _ = run_pipeline(IntegrationMode.CPU_ONLY,
                                           **config)
        assert report.counters == {}
        assert report.comp_ratio > 1.5
        assert pipeline.dedup is None

    def test_dedup_only_mode(self):
        report, _, _ = run_pipeline(IntegrationMode.CPU_ONLY,
                                    enable_compression=False)
        assert report.comp_ratio == 1.0
        assert report.dedup_ratio == pytest.approx(2.0, rel=0.15)

    def test_destage_writes_reach_ssd(self):
        report, pipeline, _ = run_pipeline(IntegrationMode.CPU_ONLY,
                                           n_chunks=2048)
        assert report.destage_batches > 0
        assert report.nand_bytes_written > 0

    def test_destage_disabled(self):
        report, _, _ = run_pipeline(IntegrationMode.CPU_ONLY,
                                    destage_enabled=False)
        assert report.nand_bytes_written == 0

    def test_empty_run_rejected(self):
        env = Environment()
        pipeline = ReductionPipeline(
            env, PipelineConfig(mode=IntegrationMode.CPU_ONLY))
        with pytest.raises(ConfigError):
            pipeline.run(iter([]), total=0)

    def test_report_iops_consistency(self):
        report, _, _ = run_pipeline(IntegrationMode.CPU_ONLY)
        assert report.iops == pytest.approx(
            report.chunks / report.duration_s)
        assert report.mb_per_s == pytest.approx(
            report.bytes_in / report.duration_s / 1e6)

    def test_window_smaller_than_batch_rejected(self):
        with pytest.raises(ConfigError):
            PipelineConfig(mode=IntegrationMode.GPU_COMP, window=8,
                           gpu_comp_batch=64)


class TestPipelinePerformanceShape:
    """Coarse shape checks; the benchmarks assert the precise bands."""

    def test_gpu_comp_beats_cpu_only(self):
        cpu_only, _, _ = run_pipeline(IntegrationMode.CPU_ONLY,
                                      n_chunks=4096, window=1024,
                                      gpu_comp_batch=256,
                                      gpu_index_batch=256)
        gpu_comp, _, _ = run_pipeline(IntegrationMode.GPU_COMP,
                                      n_chunks=4096, window=1024,
                                      gpu_comp_batch=256,
                                      gpu_index_batch=256)
        assert gpu_comp.speedup_over(cpu_only) > 1.3

    def test_dedup_only_faster_than_integrated(self):
        dedup_only, _, _ = run_pipeline(IntegrationMode.CPU_ONLY,
                                        n_chunks=4096,
                                        enable_compression=False)
        integrated, _, _ = run_pipeline(IntegrationMode.CPU_ONLY,
                                        n_chunks=4096)
        assert dedup_only.iops > integrated.iops * 1.5

    def test_high_ratio_compresses_faster_on_cpu(self):
        def run_ratio(ratio):
            config = PipelineConfig(mode=IntegrationMode.CPU_ONLY,
                                    enable_dedup=False)
            env = Environment()
            pipeline = ReductionPipeline(env, config)
            stream = VdbenchStream(dedup_ratio=1.0, comp_ratio=ratio,
                                   seed=5)
            return pipeline.run(stream.chunks(2048), total=2048)

        assert run_ratio(4.0).iops > run_ratio(1.2).iops * 1.15


class TestConfigKnobs:
    def test_tiled_index_kernel_same_outcome(self):
        plain, _, _ = run_pipeline(IntegrationMode.GPU_DEDUP,
                                   n_chunks=2048)
        tiled, _, _ = run_pipeline(IntegrationMode.GPU_DEDUP,
                                   n_chunks=2048, gpu_index_tiled=True)
        assert plain.counters["uniques"] == tiled.counters["uniques"]
        # Same duplicates resolved, whichever kernel ran.
        assert plain.duplicates_found == tiled.duplicates_found

    def test_priority_queue_flag_runs(self):
        report, pipeline, _ = run_pipeline(IntegrationMode.GPU_BOTH,
                                           n_chunks=1024,
                                           gpu_queue_priority=True)
        assert report.chunks == 1024
        assert pipeline.gpu.priority_queue

    def test_arrival_pacing_caps_throughput(self):
        paced, _, _ = run_pipeline(IntegrationMode.CPU_ONLY,
                                   n_chunks=1024,
                                   arrival_rate_iops=10e3)
        assert paced.iops == pytest.approx(10e3, rel=0.05)
        # Well below saturation, latency is per-chunk service time.
        assert paced.cpu_utilization < 0.5

    def test_latency_percentiles_reported(self):
        report, _, _ = run_pipeline(IntegrationMode.CPU_ONLY,
                                    n_chunks=1024)
        p = report.latency_percentiles
        assert p["p50"] <= p["p99"] <= p["max"]
        assert report.mean_latency_s == pytest.approx(p["mean"])

    def test_invalid_policy_rejected(self):
        from repro.errors import ConfigError
        with pytest.raises(ConfigError):
            PipelineConfig(gpu_index_policy="whenever")

    def test_invalid_locking_rejected(self):
        from repro.errors import ConfigError
        with pytest.raises(ConfigError):
            PipelineConfig(index_locking="mutexes")
