"""Structural tests for every experiment function, at tiny scale.

The benchmarks assert the *paper's shape* at full scale; these tests
assert the experiment code itself is sound (fields populated, units
sane, invariants hold) fast enough for the normal test run.
"""

import pytest

from repro.bench.experiments import (
    SSD_IOPS,
    a1_bin_balance,
    a1_thread_scaling,
    a2_prefix_truncation,
    a3_bin_buffer,
    a4_replacement,
    a6_inline_vs_background,
    a7_segment_sweep,
    a8_index_locking,
    a8_offload_policy,
    a9_restart,
    a10_read_path,
    e1_indexing,
    e2_dedup,
    e3_compression,
    e4_integration,
    e5_workflow,
)
from repro.bench.reporting import BarChart, Table
from repro.core.modes import IntegrationMode


class TestReporting:
    def test_table_renders_aligned(self):
        table = Table("t", ["a", "bb"])
        table.add_row(1, 2.5)
        table.add_row("xx", 100.25)
        lines = table.render().splitlines()
        assert lines[0] == "t"
        assert "a" in lines[2] and "bb" in lines[2]
        assert len({len(line) for line in lines[2:]}) == 1

    def test_table_row_arity_checked(self):
        table = Table("t", ["a"])
        with pytest.raises(ValueError):
            table.add_row(1, 2)

    def test_barchart_scales_to_peak(self):
        chart = BarChart("c", width=10)
        chart.add_bar("big", 100.0)
        chart.add_bar("small", 10.0)
        rendered = chart.render()
        assert rendered.count("#") == 11  # 10 + 1 (floor of small)

    def test_barchart_empty(self):
        assert "no data" in BarChart("c").render()


class TestHeadlineExperiments:
    def test_e1_rows_populated(self):
        rows = e1_indexing(batch_sizes=(16, 64), n_entries=2048)
        assert [r.batch for r in rows] == [16, 64]
        for row in rows:
            assert row.cpu_seconds > 0 and row.gpu_seconds > 0
            assert row.cpu_advantage == pytest.approx(
                row.gpu_seconds / row.cpu_seconds)

    def test_e2_structure(self):
        results = e2_dedup(n_chunks=2048)
        assert set(results) == {"cpu_only", "gpu_assisted"}
        for report in results.values():
            assert report.chunks == 2048
            assert report.iops > SSD_IOPS  # dedup beats the SSD line

    def test_e3_rows(self):
        rows = e3_compression(ratios=(1.5, 3.0), n_chunks=2048)
        assert [r.comp_ratio for r in rows] == [1.5, 3.0]
        for row in rows:
            assert row.gpu_iops > row.cpu_iops > 0

    def test_e4_all_modes_present(self):
        results = e4_integration(n_chunks=2048)
        assert set(results) == set(IntegrationMode.all_modes())

    def test_e5_counters_conserve(self):
        report = e5_workflow(n_chunks=2048)
        counters = report.counters
        terminal = (counters["gpu_hits"] + counters["buffer_hits"]
                    + counters["tree_hits"]
                    + counters.get("pending_hits", 0)
                    + counters.get("race_duplicates", 0)
                    + counters["uniques"])
        assert terminal == 2048


class TestAblations:
    def test_a1_scaling_rows(self):
        rows = a1_thread_scaling(thread_counts=(1, 4), n_chunks=2048)
        assert rows[1].iops > rows[0].iops * 3

    def test_a1_balance(self):
        balance = a1_bin_balance(prefix_bytes_options=(1,),
                                 n_entries=5000)
        assert 0 < balance[1] <= 1.0

    def test_a2_paper_numbers(self):
        rows = a2_prefix_truncation()
        by_prefix = {r.prefix_bytes: r for r in rows}
        assert by_prefix[0].memory_bytes == 16 * 1024**3
        assert by_prefix[2].saved_vs_full == 1024**3

    def test_a3_rows(self):
        rows = a3_bin_buffer(totals=(256, 4096), n_chunks=4096)
        assert rows[1].buffer_hit_fraction >= rows[0].buffer_hit_fraction

    def test_a4_policies_all_run(self):
        rows = a4_replacement(n_uniques=256, n_lookups=2000,
                              bin_capacity=4)
        assert {r.policy for r in rows} == {"random", "fifo", "lru"}
        assert all(0 <= r.hit_rate <= 1 for r in rows)

    def test_a6_endurance_gap(self):
        result = a6_inline_vs_background(n_chunks=4096)
        assert result.background_nand_bytes > result.inline_nand_bytes

    def test_a7_single_segment_lossless(self):
        rows = a7_segment_sweep(segment_counts=(1, 4), n_blocks=2)
        assert abs(rows[0].ratio_loss_vs_serial) < 1e-9

    def test_a8_locking(self):
        rows = a8_index_locking(n_chunks=2048)
        by_discipline = {r.discipline: r for r in rows}
        assert by_discipline["bins"].iops > by_discipline["global"].iops

    def test_a8_policy_latency(self):
        rows = a8_offload_policy(n_chunks=1024)
        by_policy = {r.policy: r for r in rows}
        assert (by_policy["always"].mean_latency_s
                > by_policy["saturation"].mean_latency_s)

    def test_a9_restart_loses_some_dedup(self):
        result = a9_restart(n_chunks=3000)
        assert result.restarted_dedup_ratio < result.baseline_dedup_ratio
        assert result.duplicates_missed > 0

    def test_a10_read_strategies(self):
        rows = a10_read_path(n_chunks=1024, n_reads=1024)
        assert {r.strategy for r in rows} == {"reduced", "raw"}
        for row in rows:
            assert row.iops > 0


class TestExtensionExperiments:
    def test_a11_rows(self):
        from repro.bench.experiments import a11_kernel_variants
        rows = a11_kernel_variants(batch_sizes=(64, 512),
                                   n_entries=8192)
        assert [r.batch for r in rows] == [64, 512]
        for row in rows:
            assert row.tiled_global_bytes <= row.simple_global_bytes

    def test_a12_rows(self):
        from repro.bench.experiments import a12_chunking_shift
        rows = a12_chunking_shift(stream_bytes=32 * 1024)
        assert {r.strategy for r in rows} == {"fixed", "content_defined"}

    def test_a13_rows(self):
        from repro.bench.experiments import a13_batch_sweep
        rows = a13_batch_sweep(batch_sizes=(64, 256), n_chunks=2048)
        assert len(rows) == 4  # 2 modes x 2 batch sizes
        assert all(r.iops > 0 for r in rows)

    def test_a14_rows(self):
        from repro.bench.experiments import a14_ftl_endurance
        rows = a14_ftl_endurance(blocks=16, pages_per_block=16,
                                 churn_rounds=4)
        by_strategy = {r.strategy: r for r in rows}
        assert (by_strategy["reduced"].nand_pages
                < by_strategy["raw"].nand_pages)

    def test_a15_rows(self):
        from repro.bench.experiments import a15_delta_reduction
        rows = a15_delta_reduction(n_chunks=60)
        by_stack = {r.stack: r for r in rows}
        assert (by_stack["dedup+delta+lz"].physical_bytes
                <= by_stack["dedup+lz"].physical_bytes)

    def test_registry_complete(self):
        from repro.bench.experiments import registry
        names = set(registry())
        for expected in ("e1", "e2", "e3", "e4", "e5", "a9", "a13",
                         "a14", "a15"):
            assert expected in names
