"""End-to-end tests for the functional ReducedVolume."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression import LzssCodec
from repro.errors import BlockRangeError, MetadataError
from repro.storage import ReducedVolume
from repro.workload.datagen import BlockContentGenerator


def compressible(n: int, salt: int = 0) -> bytes:
    return BlockContentGenerator(2.0, seed=9).make_block(n, salt=salt)


class TestWriteReadRoundtrip:
    def test_single_chunk(self):
        volume = ReducedVolume()
        data = compressible(4096)
        volume.write(0, data)
        assert volume.read(0, 4096) == data

    def test_multi_chunk_write(self):
        volume = ReducedVolume()
        data = b"".join(compressible(4096, salt=s) for s in range(8))
        volume.write(0, data)
        assert volume.read(0, len(data)) == data

    def test_short_tail_chunk(self):
        volume = ReducedVolume()
        data = compressible(4096) + b"tail-bytes"
        volume.write(0, data)
        assert volume.read(0, len(data)) == data

    def test_incompressible_data_stored_raw(self):
        import random
        rng = random.Random(1)
        volume = ReducedVolume()
        data = bytes(rng.randrange(256) for _ in range(4096))
        volume.write(0, data)
        assert volume.read(0, 4096) == data
        # Raw storage: physical == logical for this chunk.
        assert volume.physical_bytes == 4096

    def test_unaligned_write_rejected(self):
        volume = ReducedVolume()
        with pytest.raises(BlockRangeError):
            volume.write(100, b"x" * 4096)

    def test_unaligned_read_rejected(self):
        volume = ReducedVolume()
        volume.write(0, compressible(4096))
        with pytest.raises(BlockRangeError):
            volume.read(1, 10)

    def test_unmapped_read_raises(self):
        volume = ReducedVolume()
        with pytest.raises(MetadataError):
            volume.read(0, 4096)

    def test_empty_write_is_noop(self):
        volume = ReducedVolume()
        volume.write(0, b"")
        assert volume.logical_bytes == 0

    @given(st.lists(st.tuples(st.integers(0, 15), st.integers(0, 5)),
                    min_size=1, max_size=30))
    @settings(max_examples=25, deadline=None)
    def test_random_writes_roundtrip_property(self, writes):
        """Random aligned writes (with overwrites) always read back."""
        volume = ReducedVolume()
        shadow = {}
        for slot, content_id in writes:
            data = compressible(4096, salt=content_id)
            volume.write(slot * 4096, data)
            shadow[slot] = data
        for slot, data in shadow.items():
            assert volume.read(slot * 4096, 4096) == data
        volume.engine.metadata.verify_invariants()


class TestReduction:
    def test_dedup_across_offsets(self):
        volume = ReducedVolume()
        data = compressible(4096)
        for slot in range(10):
            volume.write(slot * 4096, data)
        assert volume.dedup_ratio() == pytest.approx(10.0)
        assert volume.engine.metadata.unique_chunks == 1

    def test_compression_reduces_physical(self):
        volume = ReducedVolume()
        volume.write(0, compressible(4096))
        assert 0 < volume.physical_bytes < 4096

    def test_combined_reduction_ratio(self):
        volume = ReducedVolume()
        data = compressible(4096)
        volume.write(0, data)
        volume.write(4096, data)
        # dedup 2.0 x compression ~2.0 => reduction ~4.0
        assert volume.reduction_ratio() > 3.0

    def test_compression_disabled(self):
        volume = ReducedVolume(enable_compression=False)
        data = compressible(4096)
        volume.write(0, data)
        assert volume.physical_bytes == 4096
        assert volume.read(0, 4096) == data

    def test_custom_codec(self):
        volume = ReducedVolume(codec=LzssCodec())
        data = compressible(4096)
        volume.write(0, data)
        assert volume.read(0, 4096) == data

    def test_overwrite_releases_space(self):
        volume = ReducedVolume()
        volume.write(0, compressible(4096, salt=1))
        first_physical = volume.physical_bytes
        volume.write(0, compressible(4096, salt=2))
        # Old chunk freed, new one stored: physical stays in the same
        # ballpark instead of doubling.
        assert volume.physical_bytes < first_physical * 1.8
        assert volume.logical_bytes == 4096

    def test_discard_frees_space(self):
        volume = ReducedVolume()
        volume.write(0, compressible(4096))
        volume.discard(0, 4096)
        assert volume.logical_bytes == 0
        assert volume.physical_bytes == 0

    def test_discard_unaligned_rejected(self):
        volume = ReducedVolume()
        with pytest.raises(BlockRangeError):
            volume.discard(0, 100)

    def test_destage_accounting_via_flush(self):
        volume = ReducedVolume(bin_buffer_capacity=1, bin_buffer_total=None)
        volume.write(0, compressible(4096, salt=1))
        volume.write(4096, compressible(4096, salt=2))
        assert volume.destaged_bytes > 0
