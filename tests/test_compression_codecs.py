"""Unit and property tests for the LZSS and QuickLZ codecs."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression import (
    DEFAULT_PARAMS,
    Literal,
    LzParams,
    LzssCodec,
    Match,
    QuickLzCodec,
    bytes_to_tokens,
    decode_tokens,
    tokens_to_bytes,
)
from repro.errors import CompressionError, CorruptStreamError


def _compressible(n: int) -> bytes:
    """Highly repetitive test payload."""
    pattern = b"the quick brown fox jumps over the lazy dog. "
    return (pattern * (n // len(pattern) + 1))[:n]


def _incompressible(n: int, seed: int = 7) -> bytes:
    """Pseudo-random payload with full byte entropy."""
    import random
    rng = random.Random(seed)
    return bytes(rng.randrange(256) for _ in range(n))


class TestLzParams:
    def test_defaults_fit_bit_fields(self):
        assert DEFAULT_PARAMS.window == 4096
        assert DEFAULT_PARAMS.max_match - DEFAULT_PARAMS.min_match == 15

    def test_window_too_large_rejected(self):
        with pytest.raises(CompressionError):
            LzParams(window=8192)

    def test_length_range_too_wide_rejected(self):
        with pytest.raises(CompressionError):
            LzParams(min_match=3, max_match=30)


class TestTokenContainer:
    def test_literal_roundtrip(self):
        tokens = [Literal(b) for b in b"hello"]
        blob = tokens_to_bytes(tokens, 5)
        parsed, length = bytes_to_tokens(blob)
        assert length == 5
        assert parsed == tokens

    def test_match_roundtrip(self):
        tokens = [Literal(b) for b in b"abcabc"] + [Match(3, 6)]
        blob = tokens_to_bytes(tokens, 12)
        parsed, _ = bytes_to_tokens(blob)
        assert parsed[-1] == Match(3, 6)

    def test_header_length_mismatch_rejected(self):
        with pytest.raises(CompressionError):
            tokens_to_bytes([Literal(0)], 5)

    def test_truncated_container_rejected(self):
        tokens = [Literal(b) for b in b"hello world"]
        blob = tokens_to_bytes(tokens, 11)
        with pytest.raises(CorruptStreamError):
            bytes_to_tokens(blob[:-2])

    def test_short_header_rejected(self):
        with pytest.raises(CorruptStreamError):
            bytes_to_tokens(b"\x00\x00")

    def test_forward_reference_rejected(self):
        # A match at the start of the stream references data that does not
        # exist yet; the parser must refuse it.
        bad = tokens_to_bytes(
            [Literal(b) for b in b"xyzxyz"] + [Match(3, 6)], 12)
        # Flip the first flags byte so the first token is parsed as a match.
        corrupted = bad[:4] + bytes([bad[4] | 1]) + bad[5:]
        with pytest.raises(CorruptStreamError):
            bytes_to_tokens(corrupted)

    def test_decode_tokens_overlapping_copy(self):
        # Classic LZ run-length trick: distance 1, length 8.
        out = decode_tokens([Literal(ord("a")), Match(1, 8)])
        assert out == b"a" * 9

    def test_decode_tokens_bad_distance(self):
        with pytest.raises(CorruptStreamError):
            decode_tokens([Match(5, 3)])

    def test_literal_validation(self):
        with pytest.raises(CompressionError):
            Literal(300)

    def test_match_validation(self):
        with pytest.raises(CompressionError):
            Match(9999, 5).validate(DEFAULT_PARAMS)
        with pytest.raises(CompressionError):
            Match(1, 100).validate(DEFAULT_PARAMS)


class TestLzssCodec:
    def test_empty_input(self):
        codec = LzssCodec()
        assert codec.decode(codec.encode(b"")) == b""

    def test_single_byte(self):
        codec = LzssCodec()
        assert codec.decode(codec.encode(b"x")) == b"x"

    def test_compressible_roundtrip_and_ratio(self):
        codec = LzssCodec()
        data = _compressible(4096)
        blob = codec.encode(data)
        assert codec.decode(blob) == data
        assert len(blob) < len(data) / 2  # repetitive text compresses well

    def test_incompressible_roundtrip(self):
        codec = LzssCodec()
        data = _incompressible(4096)
        blob = codec.encode(data)
        assert codec.decode(blob) == data
        # Random data expands slightly (flag overhead), never corrupts.
        assert len(blob) <= len(data) * 9 // 8 + 8

    def test_run_length_data(self):
        codec = LzssCodec()
        data = b"\x00" * 4096
        blob = codec.encode(data)
        assert codec.decode(blob) == data
        assert len(blob) < 600  # max_match=18 caps the per-token stride

    def test_lazy_parse_never_worse_much(self):
        greedy = LzssCodec(lazy=False)
        lazy = LzssCodec(lazy=True)
        data = _compressible(4096)
        assert lazy.decode(lazy.encode(data)) == data
        # Lazy matching should be at least roughly as good as greedy.
        assert len(lazy.encode(data)) <= len(greedy.encode(data)) * 1.02

    def test_ratio_helper(self):
        codec = LzssCodec()
        assert codec.ratio(b"") == 1.0
        assert codec.ratio(_compressible(4096)) > 2.0
        assert codec.ratio(_incompressible(4096)) < 1.05

    def test_matches_never_cross_window(self):
        codec = LzssCodec(params=LzParams(window=16))
        data = _compressible(600)
        for token in codec.encode_to_tokens(data):
            if isinstance(token, Match):
                assert token.distance <= 16
        assert codec.decode(codec.encode(data)) == data

    @given(st.binary(max_size=2048))
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_property(self, data):
        codec = LzssCodec()
        assert codec.decode(codec.encode(data)) == data

    @given(st.binary(max_size=1024))
    @settings(max_examples=30, deadline=None)
    def test_lazy_roundtrip_property(self, data):
        codec = LzssCodec(lazy=True)
        assert codec.decode(codec.encode(data)) == data

    @given(st.integers(0, 255), st.integers(1, 3000))
    @settings(max_examples=30, deadline=None)
    def test_runs_roundtrip_property(self, byte, n):
        codec = LzssCodec()
        data = bytes([byte]) * n
        assert codec.decode(codec.encode(data)) == data


class TestQuickLzCodec:
    def test_empty_input(self):
        codec = QuickLzCodec()
        assert codec.decode(codec.encode(b"")) == b""

    def test_compressible_roundtrip(self):
        codec = QuickLzCodec()
        data = _compressible(4096)
        blob = codec.encode(data)
        assert codec.decode(blob) == data
        assert len(blob) < len(data)

    def test_incompressible_roundtrip(self):
        codec = QuickLzCodec()
        data = _incompressible(4096)
        assert codec.decode(codec.encode(data)) == data

    def test_long_match_lengths(self):
        # QuickLZ matches reach 258 bytes; a long run exercises that.
        codec = QuickLzCodec()
        data = b"ab" * 2048
        blob = codec.encode(data)
        assert codec.decode(blob) == data
        assert len(blob) < 200

    def test_far_offsets_beyond_lzss_window(self):
        # Repeat separated by > 4 KiB: QuickLZ's 16-bit offsets find it,
        # so the repeated needle costs far less than a fresh one would.
        needle = b"0123456789abcdef" * 4
        middle = _incompressible(5000, seed=3)
        codec = QuickLzCodec()
        with_repeat = codec.encode(needle + middle + needle)
        without_repeat = codec.encode(
            needle + middle + _incompressible(len(needle), seed=9))
        assert codec.decode(with_repeat) == needle + middle + needle
        assert len(with_repeat) < len(without_repeat) - 30

    def test_truncated_stream_rejected(self):
        codec = QuickLzCodec()
        blob = codec.encode(_compressible(256))
        with pytest.raises(CorruptStreamError):
            codec.decode(blob[:-1])

    def test_short_header_rejected(self):
        with pytest.raises(CorruptStreamError):
            QuickLzCodec().decode(b"\x00")

    def test_quicklz_long_matches_beat_lzss_on_periodic_text(self):
        """258-byte matches stride periodic data far faster than LZSS's
        18-byte length cap, so QuickLZ wins big here (the flip side of its
        weaker single-entry match table)."""
        data = _compressible(4096)
        assert len(QuickLzCodec().encode(data)) < len(
            LzssCodec().encode(data)) / 2

    @given(st.binary(max_size=2048))
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_property(self, data):
        codec = QuickLzCodec()
        assert codec.decode(codec.encode(data)) == data

    @given(st.integers(0, 255), st.integers(1, 4000))
    @settings(max_examples=30, deadline=None)
    def test_runs_roundtrip_property(self, byte, n):
        codec = QuickLzCodec()
        data = bytes([byte]) * n
        assert codec.decode(codec.encode(data)) == data

    @given(st.binary(min_size=8, max_size=64), st.integers(2, 40))
    @settings(max_examples=30, deadline=None)
    def test_repeated_block_roundtrip_property(self, block, reps):
        codec = QuickLzCodec()
        data = block * reps
        assert codec.decode(codec.encode(data)) == data
