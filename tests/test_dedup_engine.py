"""Tests for the dedup engine's functional state machine."""

import hashlib

import pytest

from repro.dedup.engine import DedupEngine
from repro.dedup.gpu_index import GpuBinIndex
from repro.errors import DedupError
from repro.types import Chunk


def chunk_of(content: bytes, offset: int = 0, size: int = 4096) -> Chunk:
    payload = (content * (size // len(content) + 1))[:size]
    c = Chunk(offset=offset, size=size, payload=payload)
    c.fingerprint = hashlib.sha1(payload).digest()
    return c


def synthetic_chunk(uid: int, offset: int) -> Chunk:
    return Chunk(offset=offset, size=4096,
                 fingerprint=hashlib.sha1(str(uid).encode()).digest(),
                 comp_ratio=2.0)


class TestIndexingPaths:
    def test_fresh_chunk_is_unique(self):
        engine = DedupEngine()
        outcome = engine.cpu_index(chunk_of(b"aaa"))
        assert not outcome.duplicate
        assert outcome.path == "unique"

    def test_buffer_hit_after_commit(self):
        engine = DedupEngine()
        first = chunk_of(b"aaa", offset=0)
        engine.cpu_index(first)
        first.compressed_size = 2048
        engine.commit_unique(first)
        twin = chunk_of(b"aaa", offset=4096)
        outcome = engine.cpu_index(twin)
        assert outcome.duplicate and outcome.path == "buffer"
        assert engine.counters["buffer_hits"] == 1

    def test_tree_hit_after_flush(self):
        # Tiny buffer: one insert fills the bin and flushes to the tree.
        engine = DedupEngine(bin_buffer_capacity=1)
        first = chunk_of(b"aaa", offset=0)
        engine.cpu_index(first)
        first.compressed_size = 2048
        _cycles, batch, _ = engine.commit_unique(first)
        assert batch is not None
        twin = chunk_of(b"aaa", offset=4096)
        outcome = engine.cpu_index(twin)
        assert outcome.duplicate and outcome.path == "tree"

    def test_partial_index_skips_tree(self):
        engine = DedupEngine(bin_buffer_capacity=1)
        first = chunk_of(b"aaa", offset=0)
        engine.cpu_index(first)
        first.compressed_size = 2048
        engine.commit_unique(first)  # flushed to tree
        twin = chunk_of(b"aaa", offset=4096)
        # Partial indexing only sees the (now empty) buffer.
        outcome = engine.cpu_index_partial(twin)
        assert not outcome.duplicate

    def test_partial_cheaper_than_full(self):
        engine = DedupEngine()
        full = engine.cpu_index(chunk_of(b"x", offset=0))
        partial = engine.cpu_index_partial(chunk_of(b"y", offset=4096))
        assert partial.cpu_cycles < full.cpu_cycles


class TestCommits:
    def test_commit_unique_then_duplicate_shares_space(self):
        engine = DedupEngine()
        first = chunk_of(b"data", offset=0)
        engine.cpu_index(first)
        first.compressed_size = 1000
        engine.commit_unique(first)
        twin = chunk_of(b"data", offset=4096)
        assert engine.cpu_index(twin).duplicate
        engine.commit_duplicate(twin)
        assert engine.metadata.logical_bytes == 8192
        assert engine.metadata.physical_bytes == 1000
        assert twin.compressed_size == 1000  # inherited from the record

    def test_commit_duplicate_without_record_raises(self):
        engine = DedupEngine()
        orphan = chunk_of(b"zzz")
        with pytest.raises(DedupError):
            engine.commit_duplicate(orphan)

    def test_race_downgrade(self):
        engine = DedupEngine()
        a = chunk_of(b"same", offset=0)
        b = chunk_of(b"same", offset=4096)
        engine.cpu_index(a)
        engine.cpu_index(b)  # both saw "unique"
        a.compressed_size = 1500
        b.compressed_size = 1500
        _c1, _b1, first_unique = engine.commit_unique(a)
        _c2, _b2, second_unique = engine.commit_unique(b)
        assert first_unique and not second_unique
        assert engine.counters["race_duplicates"] == 1
        assert engine.metadata.unique_chunks == 1

    def test_flush_populates_tree_and_gpu(self):
        gpu_index = GpuBinIndex(prefix_bytes=2)
        engine = DedupEngine(bin_buffer_capacity=1, gpu_index=gpu_index)
        chunk = chunk_of(b"flushme")
        engine.cpu_index(chunk)
        chunk.compressed_size = 2000
        _cycles, batch, _ = engine.commit_unique(chunk)
        assert batch is not None
        assert batch.chunk_count == 1
        assert batch.payload_bytes == 2000
        assert len(engine.bin_table) == 1
        assert gpu_index.lookup_host([chunk.fingerprint]) == [True]

    def test_drain_flushes_everything(self):
        engine = DedupEngine(bin_buffer_capacity=100)
        for i in range(10):
            chunk = synthetic_chunk(i, offset=i * 4096)
            engine.cpu_index(chunk)
            chunk.compressed_size = 2048
            engine.commit_unique(chunk)
        assert len(engine.bin_buffer) == 10
        batches = engine.drain()
        assert sum(b.chunk_count for b in batches) == 10
        assert len(engine.bin_table) == 10
        assert len(engine.bin_buffer) == 0

    def test_dedup_ratio_reporting(self):
        engine = DedupEngine()
        for offset, content in enumerate([b"a", b"b", b"a", b"a"]):
            chunk = chunk_of(content, offset=offset * 4096)
            if engine.cpu_index(chunk).duplicate:
                engine.commit_duplicate(chunk)
            else:
                chunk.compressed_size = 4096
                engine.commit_unique(chunk)
        assert engine.dedup_ratio() == pytest.approx(2.0)

    def test_ingest_cycles_scale_with_chunk_size(self):
        engine = DedupEngine()
        small = Chunk(offset=0, size=1024, comp_ratio=1.0,
                      fingerprint=bytes(20))
        large = Chunk(offset=0, size=8192, comp_ratio=1.0,
                      fingerprint=bytes(20))
        assert engine.ingest_cycles(large) > engine.ingest_cycles(small)

    def test_descriptor_mode_stream(self):
        """Synthetic fingerprints drive the same machinery as payloads."""
        engine = DedupEngine()
        dup_hits = 0
        for offset, uid in enumerate([1, 2, 3, 1, 2, 1]):
            chunk = synthetic_chunk(uid, offset=offset * 4096)
            if engine.cpu_index(chunk).duplicate:
                engine.commit_duplicate(chunk)
                dup_hits += 1
            else:
                chunk.compressed_size = 2048
                engine.commit_unique(chunk)
        assert dup_hits == 3
        assert engine.metadata.unique_chunks == 3
