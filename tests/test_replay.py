"""Tests for trace replay against the volume and the timed pipeline."""

import pytest

from repro.core import IntegrationMode, PipelineConfig, ReductionPipeline
from repro.errors import WorkloadError
from repro.sim import Environment
from repro.storage import ReducedVolume
from repro.workload import TraceRecorder
from repro.workload.replay import (
    ReplayStats,
    VolumeReplayer,
    trace_write_chunks,
)

CHUNK = 4096


def simple_trace():
    trace = TraceRecorder()
    trace.record("write", 0, 4 * CHUNK)
    trace.record("write", 8 * CHUNK, 2 * CHUNK)
    trace.record("read", 0, 2 * CHUNK)
    trace.record("write", 0, CHUNK)       # overwrite
    trace.record("read", 0, CHUNK)
    trace.record("read", 8 * CHUNK, 2 * CHUNK)
    return trace


class TestVolumeReplayer:
    def test_replay_verifies_all_reads(self):
        volume = ReducedVolume()
        replayer = VolumeReplayer(volume)
        stats = replayer.replay(simple_trace())
        assert stats.verified
        assert stats.writes == 3
        assert stats.reads == 3
        assert stats.bytes_written == 7 * CHUNK

    def test_overwrite_changes_content(self):
        volume = ReducedVolume()
        replayer = VolumeReplayer(volume)
        trace = TraceRecorder()
        trace.record("write", 0, CHUNK)
        first = volume_read_after(volume, replayer, trace)
        trace2 = TraceRecorder()
        trace2.record("write", 0, CHUNK)
        replayer.replay(trace2)
        second = volume.read(0, CHUNK)
        assert first != second  # generation bumps the content

    def test_content_pool_drives_dedup(self):
        volume = ReducedVolume()
        replayer = VolumeReplayer(volume, content_pool=4)
        trace = TraceRecorder()
        for slot in range(32):
            trace.record("write", slot * CHUNK, CHUNK)
        stats = replayer.replay(trace)
        assert stats.verified
        # 32 writes drawn from 4 contents: heavy dedup.
        assert volume.engine.metadata.unique_chunks <= 4
        assert volume.dedup_ratio() >= 8.0

    def test_unaligned_trace_rejected(self):
        volume = ReducedVolume()
        replayer = VolumeReplayer(volume)
        trace = TraceRecorder()
        trace.record("write", 100, CHUNK)
        with pytest.raises(WorkloadError):
            replayer.replay(trace)

    def test_reads_of_unwritten_extents_skipped(self):
        volume = ReducedVolume()
        replayer = VolumeReplayer(volume)
        trace = TraceRecorder()
        trace.record("read", 0, CHUNK)
        stats = replayer.replay(trace)
        assert stats.verified
        assert stats.reads == 1

    def test_replay_stats_verified_property(self):
        stats = ReplayStats(read_mismatches=0)
        assert stats.verified
        assert not ReplayStats(read_mismatches=1).verified


def volume_read_after(volume, replayer, trace):
    replayer.replay(trace)
    return volume.read(0, CHUNK)


class TestTraceWriteChunks:
    def test_writes_only(self):
        chunks = list(trace_write_chunks(simple_trace()))
        assert len(chunks) == 7  # 4 + 2 + 1 write chunks, reads skipped

    def test_overwrite_gets_new_fingerprint(self):
        trace = TraceRecorder()
        trace.record("write", 0, CHUNK)
        trace.record("write", 0, CHUNK)
        chunks = list(trace_write_chunks(trace))
        assert chunks[0].fingerprint != chunks[1].fingerprint

    def test_content_pool_shares_fingerprints(self):
        trace = TraceRecorder()
        for slot in range(64):
            trace.record("write", slot * CHUNK, CHUNK)
        chunks = list(trace_write_chunks(trace, content_pool=4))
        assert len({c.fingerprint for c in chunks}) <= 4

    def test_chunks_feed_the_timed_pipeline(self):
        trace = TraceRecorder()
        for slot in range(256):
            trace.record("write", slot * CHUNK, CHUNK)
        chunks = list(trace_write_chunks(trace, content_pool=64))
        config = PipelineConfig(mode=IntegrationMode.CPU_ONLY,
                                window=64)
        env = Environment()
        pipeline = ReductionPipeline(env, config)
        report = pipeline.run(iter(chunks), total=len(chunks))
        assert report.chunks == 256
        assert report.dedup_ratio > 2.0  # 256 writes over <=64 contents

    def test_unaligned_rejected(self):
        trace = TraceRecorder()
        trace.record("write", 0, 100)
        with pytest.raises(WorkloadError):
            list(trace_write_chunks(trace))
