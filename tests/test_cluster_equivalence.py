"""Cluster sharding equivalence: N shards must change nothing.

The cluster's contract (DESIGN.md §14) is that partitioning the bin
index over N nodes is *invisible* in the reduction outcome:

- **partition invariance** — the merged ``aggregate`` section (chunk/
  byte/counter totals, compression sums, destage totals) of an N-node
  run equals the 1-node oracle exactly, for any node count, shard
  assignment and workload mix.  Duplicates share a fingerprint, hence
  a bin, hence a shard — so every per-bin dedup decision sees the same
  history it would have seen unsharded.
- **executor identity** — the serial and multiprocessing executors
  produce byte-identical merged reports (same canonical JSON, same
  sha256), because per-shard reports are plain data folded in fixed
  shard order and all NetLink charges are issued parent-side.
- **residency** — the shard map covers every bin exactly once, before
  and after any greedy rebalance, and a rebalance strictly improves
  (or leaves) the imbalance it optimizes.
- **routing** — the mask-based split preserves per-shard chunk order
  and loses nothing versus a per-chunk filter.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.cluster import _route_per_chunk, golden_config
from repro.cluster import (
    ClusterConfig,
    ClusterEngine,
    ClusterRouter,
    ShardMap,
)
from repro.workload import VdbenchStream

#: Workload mixes that stress distinct sharding failure modes:
#: dup-heavy (per-bin dedup state), skewed (hot shards), uniform
#: (every bin in play).
CORPORA = {
    "dup_heavy": dict(dedup_ratio=4.0, locality=0.9),
    "skewed": dict(dedup_ratio=3.0, locality=0.95),
    "uniform": dict(dedup_ratio=1.0, locality=0.0),
}


def _run(nodes, corpus="dup_heavy", **overrides):
    params = dict(chunks=512, **CORPORA[corpus])
    params.update(overrides)
    return ClusterEngine(golden_config(nodes, **params)).run()


class TestPartitionInvariance:
    @given(nodes=st.sampled_from([2, 3, 4, 8]),
           corpus=st.sampled_from(sorted(CORPORA)),
           assignment=st.sampled_from(["range", "interleave"]),
           seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=16, deadline=None)
    def test_aggregate_matches_one_node_oracle(self, nodes, corpus,
                                               assignment, seed):
        oracle = _run(1, corpus, seed=seed)
        sharded = _run(nodes, corpus, seed=seed, assignment=assignment)
        assert sharded.merged["aggregate"] == oracle.merged["aggregate"]

    def test_no_race_duplicates_under_sharding(self):
        """Strict per-chunk index->commit sequencing within a shard
        means the in-flight race path never opens."""
        for nodes in (1, 4):
            counters = _run(nodes).merged["aggregate"]["counters"]
            assert counters["race_duplicates"] == 0

    def test_payload_mode_matches_oracle(self):
        oracle = _run(1, payload=True, chunk_size=1024)
        sharded = _run(4, payload=True, chunk_size=1024)
        assert sharded.merged["aggregate"] == oracle.merged["aggregate"]

    def test_per_shard_chunks_sum_to_corpus(self):
        result = _run(4)
        per_shard = result.merged["cluster"]["per_shard"]
        assert sum(entry["chunks"] for entry in per_shard) == 512


class TestExecutorIdentity:
    @given(nodes=st.sampled_from([1, 2, 4]),
           corpus=st.sampled_from(sorted(CORPORA)))
    @settings(max_examples=6, deadline=None)
    def test_serial_and_mp_reports_byte_identical(self, nodes, corpus):
        serial = _run(nodes, corpus, chunks=256)
        mp = _run(nodes, corpus, chunks=256, executor="mp")
        assert serial.to_json() == mp.to_json()
        assert serial.digest() == mp.digest()

    def test_payload_mode_byte_identical(self):
        serial = _run(2, chunks=256, payload=True, chunk_size=1024)
        mp = _run(2, chunks=256, payload=True, chunk_size=1024,
                  executor="mp")
        assert serial.to_json() == mp.to_json()


class TestShardMapResidency:
    @given(nodes=st.integers(min_value=1, max_value=16),
           assignment=st.sampled_from(["range", "interleave"]),
           prefix_bytes=st.sampled_from([1, 2]))
    @settings(max_examples=24, deadline=None)
    def test_every_bin_on_exactly_one_shard(self, nodes, assignment,
                                            prefix_bytes):
        shard_map = ShardMap(nodes, prefix_bytes=prefix_bytes,
                             assignment=assignment)
        table = shard_map.table
        assert table.shape == (shard_map.n_bins,)
        assert int(table.min()) >= 0
        assert int(table.max()) < nodes
        # bins_of partitions: every bin appears once across shards.
        total = sum(len(shard_map.bins_of(s)) for s in range(nodes))
        assert total == shard_map.n_bins

    @given(seed=st.integers(min_value=0, max_value=2**16),
           nodes=st.sampled_from([2, 4, 8]))
    @settings(max_examples=16, deadline=None)
    def test_rebalance_preserves_residency_and_improves(self, seed,
                                                        nodes):
        rng = np.random.default_rng(seed)
        shard_map = ShardMap(nodes, prefix_bytes=1)
        loads = rng.integers(0, 1 << 16, size=shard_map.n_bins)
        before = shard_map.imbalance(loads)
        result = shard_map.rebalance(loads)
        table = shard_map.table
        assert table.shape == (shard_map.n_bins,)
        assert int(table.min()) >= 0 and int(table.max()) < nodes
        assert result.imbalance_after <= before + 1e-12
        # Every recorded move lands where the table says it landed.
        for move in result.moves:
            assert table[move.bin_id] == move.dst

    def test_rebalanced_map_still_partition_invariant(self):
        """Routing with a repaired table is still a partition, so the
        aggregate oracle holds after a rebalance."""
        engine = _run_engine_with_rebalance()
        rerun = ClusterEngine(engine.config,
                              shard_map=engine.shard_map).run()
        oracle = ClusterEngine(golden_config(
            1, chunks=512, **CORPORA["skewed"])).run()
        assert rerun.merged["aggregate"] == oracle.merged["aggregate"]


def _run_engine_with_rebalance():
    engine = ClusterEngine(golden_config(
        4, chunks=512, **CORPORA["skewed"]))
    engine.run()
    engine.plan_rebalance()
    return engine


class TestRouterEquivalence:
    @given(seed=st.integers(min_value=0, max_value=2**16),
           nodes=st.sampled_from([1, 2, 4, 8]))
    @settings(max_examples=16, deadline=None)
    def test_mask_split_matches_per_chunk_filter(self, seed, nodes):
        stream = VdbenchStream(seed=seed)
        batch = stream.next_batch(128)
        shard_map = ShardMap(nodes)
        routed = ClusterRouter(shard_map).split(batch)
        reference = _route_per_chunk(batch, shard_map)
        assert [w.shard for w in routed] == [w.shard for w in reference]
        for fast, slow in zip(routed, reference):
            assert fast.fingerprints == slow.fingerprints
            assert np.array_equal(fast.offsets, slow.offsets)
            assert np.array_equal(fast.sizes, slow.sizes)
            assert np.array_equal(fast.comp_ratios, slow.comp_ratios)

    def test_split_preserves_window_order_within_shard(self):
        # dedup_ratio=1.0 -> all-unique fingerprints, so stream
        # position is recoverable by .index().
        stream = VdbenchStream(seed=7, dedup_ratio=1.0)
        batch = stream.next_batch(256)
        router = ClusterRouter(ShardMap(4))
        for routed in router.split(batch):
            original = [batch.fingerprints.index(fp)
                        for fp in routed.fingerprints]
            assert original == sorted(original)


class TestConfigValidation:
    def test_unknown_executor_rejected(self):
        from repro.errors import ConfigError
        with pytest.raises(ConfigError):
            ClusterConfig(executor="threads")

    def test_mismatched_shard_map_rejected(self):
        from repro.errors import ConfigError
        with pytest.raises(ConfigError):
            ClusterEngine(golden_config(4), shard_map=ShardMap(2))
