"""Cross-cutting property tests: determinism, conservation, equivalence.

These properties span modules: they are what a downstream user silently
relies on (same seed = same answer; chunks are conserved; every
compression path agrees with the reference decoder; the metadata ledger
survives arbitrary operation interleavings).
"""

import hashlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression import LzssCodec, QuickLzCodec
from repro.compression.huffman import HuffmanCodec, LzssHuffmanCodec
from repro.compression.postprocess import refine_to_container
from repro.core import IntegrationMode, PipelineConfig, ReductionPipeline
from repro.errors import MetadataError
from repro.gpu.kernels.lz import SegmentLzKernel
from repro.sim import Environment
from repro.storage import MetadataStore
from repro.workload import VdbenchStream


def fp(n: int) -> bytes:
    return hashlib.sha1(n.to_bytes(8, "big")).digest()


def run_pipeline(mode=IntegrationMode.GPU_COMP, n=768, seed=3,
                 **overrides):
    defaults = dict(mode=mode, window=64, gpu_index_batch=16,
                    gpu_comp_batch=16, gpu_batch_wait_s=5e-4,
                    bin_buffer_capacity=8, bin_buffer_total=64)
    defaults.update(overrides)
    config = PipelineConfig(**defaults)
    env = Environment()
    pipeline = ReductionPipeline(env, config)
    stream = VdbenchStream(dedup_ratio=2.0, comp_ratio=2.0, seed=seed)
    return pipeline.run(stream.chunks(n), total=n)


class TestDeterminism:
    def test_pipeline_runs_are_bit_identical(self):
        a = run_pipeline(seed=11)
        b = run_pipeline(seed=11)
        assert a.duration_s == b.duration_s
        assert a.counters == b.counters
        assert a.gpu_kernels == b.gpu_kernels

    def test_different_seeds_differ(self):
        a = run_pipeline(seed=11)
        b = run_pipeline(seed=12)
        assert a.counters != b.counters

    @given(st.sampled_from(list(IntegrationMode)))
    @settings(max_examples=8, deadline=None)
    def test_every_mode_is_deterministic_property(self, mode):
        a = run_pipeline(mode=mode, n=256)
        b = run_pipeline(mode=mode, n=256)
        assert a.duration_s == b.duration_s


class TestConservation:
    @given(st.integers(1, 4).map(lambda k: 256 * k),
           st.integers(0, 10**6))
    @settings(max_examples=10, deadline=None)
    def test_every_chunk_takes_one_terminal_edge_property(self, n, seed):
        report = run_pipeline(mode=IntegrationMode.GPU_BOTH, n=n,
                              seed=seed)
        counters = report.counters
        terminal = (counters["gpu_hits"] + counters["buffer_hits"]
                    + counters["tree_hits"]
                    + counters.get("pending_hits", 0)
                    + counters.get("race_duplicates", 0)
                    + counters["uniques"])
        assert terminal == n

    def test_bytes_in_matches_chunks(self):
        report = run_pipeline(n=512)
        assert report.bytes_in == 512 * 4096


class TestCompressionPathEquivalence:
    """Every producer must satisfy the one reference decoder."""

    @given(st.binary(min_size=1, max_size=1200), st.integers(1, 8))
    @settings(max_examples=40, deadline=None)
    def test_gpu_path_decodes_with_reference_decoder(self, data, segs):
        outputs = SegmentLzKernel([data], segments_per_chunk=segs) \
            .execute()[0]
        blob = refine_to_container(data, outputs)
        assert LzssCodec().decode(blob) == data

    @given(st.binary(max_size=1500))
    @settings(max_examples=40, deadline=None)
    def test_all_codecs_roundtrip_the_same_input(self, data):
        for codec in (LzssCodec(), LzssCodec(lazy=True), QuickLzCodec(),
                      HuffmanCodec(), LzssHuffmanCodec()):
            assert codec.decode(codec.encode(data)) == data

    @given(st.binary(min_size=64, max_size=1024))
    @settings(max_examples=25, deadline=None)
    def test_compression_never_corrupts_even_when_it_expands(self, data):
        codec = LzssCodec()
        blob = codec.encode(data)
        assert codec.decode(blob) == data


class TestMetadataFuzz:
    op = st.one_of(
        st.tuples(st.just("map"), st.integers(0, 12), st.integers(0, 6)),
        st.tuples(st.just("unmap"), st.integers(0, 12), st.just(0)),
        st.tuples(st.just("restart"), st.just(0), st.just(0)),
        st.tuples(st.just("sweep"), st.just(0), st.just(0)),
    )

    @given(st.lists(op, max_size=60))
    @settings(max_examples=40, deadline=None)
    def test_ledger_survives_interleavings_property(self, ops):
        store = MetadataStore()
        generation = 0
        for name, slot, content in ops:
            if name == "map":
                key = fp(content + generation * 1000)
                if store.lookup(key) is None:
                    store.store_unique(key, 4096, 2048)
                store.map_logical(slot * 4096, key, 4096)
            elif name == "unmap":
                try:
                    store.unmap_logical(slot * 4096)
                except MetadataError:
                    pass  # unmapped offset: legal refusal
            elif name == "restart":
                store.detach_fingerprint_index()
                generation += 1
            else:
                store.sweep_unreferenced()
            store.verify_invariants()
        assert store.logical_bytes == store.mapped_offsets * 4096

    @given(st.lists(st.integers(0, 5), min_size=1, max_size=40))
    @settings(max_examples=30, deadline=None)
    def test_refcounts_equal_mapping_multiplicity_property(self, writes):
        store = MetadataStore()
        for offset_slot, content in enumerate(writes):
            key = fp(content)
            if store.lookup(key) is None:
                store.store_unique(key, 4096, 1024)
            store.map_logical(offset_slot * 4096, key, 4096)
        from collections import Counter
        multiplicity = Counter(writes)
        for content, expected in multiplicity.items():
            assert store.lookup(fp(content)).refcount == expected
