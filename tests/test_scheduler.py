"""Tests for the offload scheduler."""

import pytest

from repro.core.scheduler import OffloadScheduler, SchedulerStats
from repro.cpu import SimCpu
from repro.errors import ConfigError
from repro.sim import Environment


def busy_cpu(env, fraction=1.0):
    cpu = SimCpu(env)
    n = int(cpu.spec.threads * fraction)

    def hog():
        yield from cpu.execute_for(100.0)

    for _ in range(n):
        env.process(hog())
    env.run(until=1.0)
    return cpu


class TestOffloadScheduler:
    def test_saturated_cpu_offloads(self):
        env = Environment()
        cpu = busy_cpu(env)
        scheduler = OffloadScheduler(cpu)
        assert scheduler.should_offload_index() is True
        assert scheduler.stats.offloaded == 1

    def test_idle_cpu_keeps_local(self):
        env = Environment()
        cpu = SimCpu(env)
        scheduler = OffloadScheduler(cpu)
        assert scheduler.should_offload_index() is False
        assert scheduler.stats.skipped_idle_cpu == 1

    def test_partially_busy_cpu_keeps_local(self):
        env = Environment()
        cpu = busy_cpu(env, fraction=0.5)
        scheduler = OffloadScheduler(cpu)
        assert scheduler.should_offload_index() is False

    def test_threshold_tunable(self):
        env = Environment()
        cpu = busy_cpu(env, fraction=0.5)
        scheduler = OffloadScheduler(cpu, saturation_threshold=0.4)
        assert scheduler.should_offload_index() is True

    def test_always_policy(self):
        env = Environment()
        scheduler = OffloadScheduler(SimCpu(env), policy="always")
        assert scheduler.should_offload_index() is True

    def test_never_policy(self):
        env = Environment()
        cpu = busy_cpu(env)
        scheduler = OffloadScheduler(cpu, policy="never")
        assert scheduler.should_offload_index() is False

    def test_no_gpu_never_offloads(self):
        env = Environment()
        cpu = busy_cpu(env)
        scheduler = OffloadScheduler(cpu, gpu_available=False)
        assert scheduler.should_offload_index() is False

    def test_invalid_policy_rejected(self):
        env = Environment()
        with pytest.raises(ConfigError):
            OffloadScheduler(SimCpu(env), policy="sometimes")

    def test_invalid_threshold_rejected(self):
        env = Environment()
        with pytest.raises(ConfigError):
            OffloadScheduler(SimCpu(env), saturation_threshold=0.0)

    def test_stats_fractions(self):
        stats = SchedulerStats(offloaded=3, kept_local=1)
        assert stats.decisions == 4
        assert stats.offload_fraction == pytest.approx(0.75)
        assert SchedulerStats().offload_fraction == 0.0
