"""Batched-vs-per-chunk equivalence over adversarial corpora.

The batched functional plane's contract is *byte identity*: with
``batched_functional`` on, every ``PipelineReport`` field — duration,
counters, utilizations, the shutdown drain's tail — must equal the
retained per-chunk path's, not approximately but exactly (DESIGN.md
§12).  The hypothesis suite here hammers that claim with the corpora
most likely to break a batch-level shortcut:

- **dup-heavy** — a handful of payloads repeated, so the hash memo and
  the codec result memo replay almost everything;
- **all-zero** — one degenerate payload, maximal memo aliasing;
- **incompressible** — pseudorandom bytes, the expansion-guard path;
- **byte-shifted** — rotations of one payload: near-identical content
  with distinct fingerprints, the memo's worst adversary.

The deterministic tests below pin the component-level identities the
end-to-end property rests on: batched vdbench emission, window
fingerprinting, grouped codec dispatch, FTL run accounting and the
vectored SSD write.
"""

import dataclasses
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chunkbatch import iter_windows
from repro.compression.parallel_cpu import CpuCompressor
from repro.core import IntegrationMode, PipelineConfig, ReductionPipeline
from repro.dedup.hashing import (
    PayloadHashMemo,
    fingerprint_chunk,
    fingerprint_window,
)
from repro.errors import DedupError
from repro.sim import Environment
from repro.storage import (
    SAMSUNG_SSD_830,
    BlockRequest,
    Ftl,
    FtlSpec,
    RequestKind,
    SsdModel,
)
from repro.types import Chunk
from repro.workload import VdbenchStream

CHUNK_SIZE = 256
CORPORA = ("dup_heavy", "all_zero", "incompressible", "byte_shifted")


def corpus_payloads(kind: str, n: int, seed: int) -> list[bytes]:
    rng = random.Random(seed)
    if kind == "dup_heavy":
        base = [rng.randbytes(CHUNK_SIZE) for _ in range(3)]
        return [base[rng.randrange(3)] for _ in range(n)]
    if kind == "all_zero":
        return [bytes(CHUNK_SIZE)] * n
    if kind == "incompressible":
        return [rng.randbytes(CHUNK_SIZE) for _ in range(n)]
    if kind == "byte_shifted":
        base = rng.randbytes(CHUNK_SIZE)
        return [base[i % CHUNK_SIZE:] + base[:i % CHUNK_SIZE]
                for i in range(n)]
    raise AssertionError(kind)


def corpus_chunks(payloads: list[bytes]) -> list[Chunk]:
    """Fresh Chunk objects (the pipeline mutates them in place)."""
    return [Chunk(offset=i * CHUNK_SIZE, size=CHUNK_SIZE, payload=p)
            for i, p in enumerate(payloads)]


def run_report(payloads: list[bytes], mode: IntegrationMode,
               batched: bool) -> dict:
    """One full pipeline run (shutdown drain included) as a dict."""
    config = PipelineConfig(
        mode=mode, batched_functional=batched, functional_batch=8,
        window=16, gpu_index_batch=8, gpu_comp_batch=8,
        gpu_batch_wait_s=5e-4, bin_buffer_capacity=8,
        bin_buffer_total=64)
    env = Environment()
    pipeline = ReductionPipeline(env, config)
    chunks = corpus_chunks(payloads)
    report = pipeline.run(iter(chunks), total=len(chunks))
    return dataclasses.asdict(report)


class TestEndToEndEquivalence:
    @given(kind=st.sampled_from(CORPORA),
           mode=st.sampled_from(list(IntegrationMode)),
           n=st.integers(4, 40),
           seed=st.integers(0, 10**6))
    @settings(max_examples=16, deadline=None)
    def test_batched_report_is_byte_identical_property(
            self, kind, mode, n, seed):
        payloads = corpus_payloads(kind, n, seed)
        batched = run_report(payloads, mode, batched=True)
        reference = run_report(payloads, mode, batched=False)
        assert batched == reference

    @pytest.mark.parametrize("mode", list(IntegrationMode))
    @pytest.mark.parametrize("kind", CORPORA)
    def test_every_corpus_mode_pair(self, kind, mode):
        payloads = corpus_payloads(kind, 24, seed=7)
        batched = run_report(payloads, mode, batched=True)
        reference = run_report(payloads, mode, batched=False)
        assert batched == reference


class TestBatchedWorkload:
    @pytest.mark.parametrize("payload", [False, True])
    def test_chunks_batched_equals_chunks(self, payload):
        kwargs = dict(dedup_ratio=2.0, comp_ratio=2.0, seed=97,
                      chunk_size=512, payload=payload)
        plain = list(VdbenchStream(**kwargs).chunks(300))
        windowed = list(VdbenchStream(**kwargs).chunks_batched(
            300, window=64))
        assert len(plain) == len(windowed)
        for a, b in zip(plain, windowed):
            assert (a.offset, a.size, a.payload, a.fingerprint,
                    a.comp_ratio) == (b.offset, b.size, b.payload,
                                      b.fingerprint, b.comp_ratio)

    def test_stream_stats_identical(self):
        a = VdbenchStream(dedup_ratio=3.0, comp_ratio=1.5, seed=5)
        b = VdbenchStream(dedup_ratio=3.0, comp_ratio=1.5, seed=5)
        list(a.chunks(500))
        list(b.chunks_batched(500, window=32))
        assert a.stats.__dict__ == b.stats.__dict__


class TestFingerprintWindow:
    def test_matches_per_chunk_hashing(self):
        payloads = corpus_payloads("dup_heavy", 64, seed=3)
        reference = corpus_chunks(payloads)
        for chunk in reference:
            fingerprint_chunk(chunk)
        windowed = corpus_chunks(payloads)
        memo = PayloadHashMemo()
        for window in iter_windows(iter(windowed), 16):
            fingerprint_window(window, memo=memo)
        assert [c.fingerprint for c in windowed] == \
            [c.fingerprint for c in reference]
        stats = memo.stats()
        assert stats["hits"] + stats["misses"] == 64
        assert stats["misses"] <= 3  # only distinct payloads hash

    def test_descriptor_passthrough_and_error(self):
        stream = VdbenchStream(dedup_ratio=2.0, comp_ratio=2.0, seed=1)
        window = list(stream.chunks(8))
        before = [c.fingerprint for c in window]
        fingerprint_window(window)
        assert [c.fingerprint for c in window] == before
        bare = Chunk(offset=0, size=64)
        with pytest.raises(DedupError):
            fingerprint_window([bare])

    def test_memo_eviction_bounded(self):
        memo = PayloadHashMemo(capacity=4)
        for i in range(16):
            memo.digest(i.to_bytes(4, "big"))
        stats = memo.stats()
        assert stats["entries"] <= 4
        assert stats["evictions"] == 12


class TestCompressWindow:
    def test_matches_per_chunk_compress(self):
        payloads = corpus_payloads("byte_shifted", 48, seed=9)
        reference = corpus_chunks(payloads)
        ref_comp = CpuCompressor()
        ref_results = [ref_comp.compress(c) for c in reference]
        windowed = corpus_chunks(payloads)
        win_comp = CpuCompressor()
        win_results = []
        for window in iter_windows(iter(windowed), 16):
            win_results.extend(win_comp.compress_window(window))
        assert [r.compressed_size for r in win_results] == \
            [r.compressed_size for r in ref_results]
        assert [c.compressed_size for c in windowed] == \
            [c.compressed_size for c in reference]
        assert win_comp.stats() == ref_comp.stats()

    def test_cross_window_replay_preserves_stats(self):
        """Dup-heavy: later windows replay results from earlier ones."""
        payloads = corpus_payloads("dup_heavy", 96, seed=21)
        reference = corpus_chunks(payloads)
        ref_comp = CpuCompressor()
        for chunk in reference:
            ref_comp.compress(chunk)
        windowed = corpus_chunks(payloads)
        win_comp = CpuCompressor()
        for window in iter_windows(iter(windowed), 8):
            win_comp.compress_window(window)
        assert win_comp.stats() == ref_comp.stats()
        assert [c.compressed_size for c in windowed] == \
            [c.compressed_size for c in reference]


class TestFtlWriteRun:
    def test_state_identical_to_per_page_writes(self):
        spec = FtlSpec(blocks=24, pages_per_block=16, gc_low_water=2)
        rng = random.Random(13)
        workload = [rng.randrange(220) for _ in range(8000)]
        per_page = Ftl(spec)
        for lpn in workload:
            per_page.write(lpn)
        run = Ftl(spec)
        run.write_run(workload)
        per_page.check_invariants()
        run.check_invariants()
        assert list(per_page._mapping.items()) == \
            list(run._mapping.items())
        assert per_page._free == run._free
        assert per_page.erase_counts() == run.erase_counts()
        assert (per_page.host_pages_written, per_page.nand_pages_written,
                per_page.gc_copies, per_page.erases) == \
            (run.host_pages_written, run.nand_pages_written,
             run.gc_copies, run.erases)
        assert per_page.write_amplification() == \
            run.write_amplification()


class TestSsdSubmitVector:
    SIZES = [4096, 100, 8192, 4097, 12288, 1]

    def _run(self, vectored: bool) -> tuple:
        env = Environment()
        ssd = SsdModel(env, SAMSUNG_SSD_830)

        def driver():
            if vectored:
                yield from ssd.submit_vector(list(self.SIZES),
                                             sequential=True)
            else:
                for size in self.SIZES:
                    yield from ssd.submit(BlockRequest(
                        RequestKind.WRITE, 0, size, sequential=True))

        env.process(driver())
        env.run()
        return (env.now, ssd.requests_completed, ssd.host_bytes_written,
                ssd.nand_bytes_written)

    def test_accounting_matches_per_request_submits(self):
        vec_now, *vec_counters = self._run(vectored=True)
        ref_now, *ref_counters = self._run(vectored=False)
        assert vec_counters == ref_counters
        # The coalesced service is the *sum* of the per-request
        # services, so the busy time agrees mathematically — but one
        # summed timeout and N accumulated ones round differently at
        # the last float bit.  That ULP is exactly why the
        # report-bearing shutdown drain stays event-per-batch
        # (DESIGN.md §12); here the vector API itself is pinned to
        # ULP-level agreement.
        assert vec_now == pytest.approx(ref_now, rel=1e-12)
