"""Tests for chunkers, the Rabin fingerprint, and the hashing stage."""

import hashlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dedup import ContentDefinedChunker, FixedChunker, RabinFingerprint
from repro.dedup.hashing import fingerprint_batch, fingerprint_chunk
from repro.errors import ChunkingError, ConfigError, DedupError
from repro.types import Chunk


class TestRabinFingerprint:
    def test_rolling_equals_direct_hash(self):
        data = bytes(range(200)) * 2
        window = 48
        rabin = RabinFingerprint(window=window)
        reference = RabinFingerprint(window=window)
        for pos, byte in enumerate(data):
            rolled = rabin.roll(byte)
            if pos + 1 >= window:
                direct = reference.hash_window(data[pos + 1 - window:pos + 1])
                assert rolled == direct, f"divergence at {pos}"

    def test_primed_flag(self):
        rabin = RabinFingerprint(window=4)
        for i in range(3):
            rabin.roll(i)
            assert not rabin.primed
        rabin.roll(3)
        assert rabin.primed

    def test_reset_clears_state(self):
        rabin = RabinFingerprint(window=4)
        for i in range(10):
            rabin.roll(i)
        rabin.reset()
        assert rabin.value == 0
        assert not rabin.primed

    def test_even_base_rejected(self):
        with pytest.raises(ChunkingError):
            RabinFingerprint(base=2)

    def test_invalid_byte_rejected(self):
        with pytest.raises(ChunkingError):
            RabinFingerprint().roll(300)

    @given(st.binary(min_size=48, max_size=300))
    @settings(max_examples=30, deadline=None)
    def test_window_position_independence(self, data):
        """The hash of a window depends only on its contents."""
        window = 48
        rabin_a = RabinFingerprint(window=window)
        for byte in data:
            rabin_a.roll(byte)
        rabin_b = RabinFingerprint(window=window)
        for byte in b"\xAA" * 100 + data:  # different preamble
            rabin_b.roll(byte)
        assert rabin_a.value == rabin_b.value


class TestFixedChunker:
    def test_exact_multiple(self):
        chunks = list(FixedChunker(4).chunk(b"abcdefgh"))
        assert [(c.offset, c.size) for c in chunks] == [(0, 4), (4, 4)]
        assert chunks[0].payload == b"abcd"

    def test_trailing_short_chunk(self):
        chunks = list(FixedChunker(4).chunk(b"abcdef"))
        assert chunks[-1].size == 2

    def test_empty_stream(self):
        assert list(FixedChunker(4).chunk(b"")) == []

    def test_base_offset_propagates(self):
        chunks = list(FixedChunker(4).chunk(b"abcdefgh", base_offset=100))
        assert [c.offset for c in chunks] == [100, 104]

    def test_invalid_size_rejected(self):
        with pytest.raises(ChunkingError):
            FixedChunker(0)

    @given(st.binary(max_size=5000), st.integers(1, 512))
    @settings(max_examples=40, deadline=None)
    def test_chunks_reassemble_property(self, data, size):
        chunks = list(FixedChunker(size).chunk(data))
        assert b"".join(c.payload for c in chunks) == data
        assert all(c.size <= size for c in chunks)


class TestContentDefinedChunker:
    def test_chunks_reassemble(self):
        data = bytes(range(256)) * 40
        chunker = ContentDefinedChunker(avg_size=1024)
        chunks = list(chunker.chunk(data))
        assert b"".join(c.payload for c in chunks) == data

    def test_size_bounds_respected(self):
        import random
        rng = random.Random(5)
        data = bytes(rng.randrange(256) for _ in range(64 * 1024))
        chunker = ContentDefinedChunker(avg_size=1024)
        chunks = list(chunker.chunk(data))
        for chunk in chunks[:-1]:
            assert chunker.min_size <= chunk.size <= chunker.max_size
        assert chunks[-1].size <= chunker.max_size

    def test_insertion_shifts_only_local_boundaries(self):
        """The CDC selling point: an insertion re-chunks only nearby data."""
        import random
        rng = random.Random(7)
        data = bytes(rng.randrange(256) for _ in range(32 * 1024))
        shifted = data[:1000] + b"INSERTED" + data[1000:]
        chunker = ContentDefinedChunker(avg_size=1024)
        import hashlib as h
        digests = {h.sha1(c.payload).digest()
                   for c in chunker.chunk(data)}
        shifted_digests = [h.sha1(c.payload).digest()
                           for c in chunker.chunk(shifted)]
        shared = sum(1 for d in shifted_digests if d in digests)
        assert shared / len(shifted_digests) > 0.7

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ChunkingError):
            ContentDefinedChunker(avg_size=1000)

    def test_bad_bounds_rejected(self):
        with pytest.raises(ChunkingError):
            ContentDefinedChunker(avg_size=1024, min_size=2048)

    def test_zero_runs_capped_at_max(self):
        chunker = ContentDefinedChunker(avg_size=256)
        chunks = list(chunker.chunk(b"\x00" * 10000))
        assert all(c.size <= chunker.max_size for c in chunks)
        assert b"".join(c.payload for c in chunks) == b"\x00" * 10000

    @given(st.binary(max_size=8192))
    @settings(max_examples=20, deadline=None)
    def test_reassembly_property(self, data):
        chunker = ContentDefinedChunker(avg_size=256)
        chunks = list(chunker.chunk(data))
        assert b"".join(c.payload for c in chunks) == data


class TestHashingStage:
    def test_payload_mode_hashes_real_bytes(self):
        chunk = Chunk(offset=0, size=5, payload=b"hello")
        assert fingerprint_chunk(chunk) == hashlib.sha1(b"hello").digest()
        assert chunk.fingerprint is not None

    def test_descriptor_mode_requires_synthetic_fingerprint(self):
        chunk = Chunk(offset=0, size=4096)
        with pytest.raises(DedupError):
            fingerprint_chunk(chunk)

    def test_descriptor_mode_passes_through(self):
        fp = bytes(range(20))
        chunk = Chunk(offset=0, size=4096, fingerprint=fp)
        assert fingerprint_chunk(chunk) == fp

    def test_batch(self):
        chunks = [Chunk(offset=i * 4, size=4, payload=bytes([i]) * 4)
                  for i in range(5)]
        digests = fingerprint_batch(chunks)
        assert digests == [hashlib.sha1(bytes([i]) * 4).digest()
                           for i in range(5)]

    def test_identical_payloads_share_fingerprints(self):
        a = Chunk(offset=0, size=4, payload=b"dupe")
        b = Chunk(offset=4, size=4, payload=b"dupe")
        assert fingerprint_chunk(a) == fingerprint_chunk(b)


class TestChunkType:
    def test_payload_length_checked(self):
        with pytest.raises(ConfigError):
            Chunk(offset=0, size=10, payload=b"short")

    def test_fingerprint_length_checked(self):
        with pytest.raises(ConfigError):
            Chunk(offset=0, size=4, payload=b"abcd", fingerprint=b"x")

    def test_effective_ratio_prefers_measured(self):
        chunk = Chunk(offset=0, size=4096, comp_ratio=3.0)
        assert chunk.effective_ratio() == 3.0
        chunk.compressed_size = 1024
        assert chunk.effective_ratio() == 4.0

    def test_effective_ratio_defaults_to_one(self):
        assert Chunk(offset=0, size=4096).effective_ratio() == 1.0
