"""Tests for the vdbench-substitute workload package."""

import hashlib
import io

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import WorkloadError
from repro.workload import (
    BlockContentGenerator,
    SequentialPattern,
    TraceRecord,
    TraceRecorder,
    UniformPattern,
    VdbenchStream,
    ZipfPattern,
    measured_ratio,
)


class TestBlockContentGenerator:
    def test_deterministic_per_salt(self):
        g1 = BlockContentGenerator(2.0, seed=5)
        g2 = BlockContentGenerator(2.0, seed=5)
        assert g1.make_block(4096, salt=7) == g2.make_block(4096, salt=7)

    def test_different_salts_differ(self):
        g = BlockContentGenerator(2.0, seed=5)
        assert g.make_block(4096, salt=1) != g.make_block(4096, salt=2)

    def test_calibration_hits_target(self):
        for target in (1.3, 2.0, 3.0):
            g = BlockContentGenerator(target, seed=3)
            achieved = g.calibrate(tolerance=0.05)
            assert achieved == pytest.approx(target, rel=0.08)

    def test_ratio_monotone_in_target(self):
        low = BlockContentGenerator(1.2, seed=1)
        high = BlockContentGenerator(3.5, seed=1)
        low.calibrate()
        high.calibrate()
        assert (measured_ratio(high.make_block(4096, salt=0))
                > measured_ratio(low.make_block(4096, salt=0)))

    def test_invalid_ratio_rejected(self):
        with pytest.raises(WorkloadError):
            BlockContentGenerator(0.5, seed=0)

    def test_invalid_size_rejected(self):
        with pytest.raises(WorkloadError):
            BlockContentGenerator(2.0, seed=0).make_block(0)


class TestVdbenchStream:
    def test_dedup_ratio_converges(self):
        stream = VdbenchStream(dedup_ratio=2.0, seed=11)
        for _ in stream.chunks(8000):
            pass
        assert stream.stats.dedup_ratio == pytest.approx(2.0, rel=0.07)

    def test_dedup_ratio_three(self):
        stream = VdbenchStream(dedup_ratio=3.0, seed=11)
        for _ in stream.chunks(9000):
            pass
        assert stream.stats.dedup_ratio == pytest.approx(3.0, rel=0.08)

    def test_no_dedup_all_unique(self):
        stream = VdbenchStream(dedup_ratio=1.0, seed=2)
        chunks = list(stream.chunks(100))
        fingerprints = {c.fingerprint for c in chunks}
        assert len(fingerprints) == 100

    def test_descriptor_chunks_carry_fingerprints_and_ratios(self):
        stream = VdbenchStream(seed=4)
        chunk = stream.next_chunk()
        assert chunk.payload is None
        assert len(chunk.fingerprint) == 20
        assert chunk.comp_ratio >= 1.0

    def test_duplicates_share_fingerprints(self):
        stream = VdbenchStream(dedup_ratio=4.0, seed=8)
        chunks = list(stream.chunks(2000))
        assert len({c.fingerprint for c in chunks}) == stream.stats.uniques

    def test_payload_mode_duplicates_are_byte_identical(self):
        stream = VdbenchStream(dedup_ratio=3.0, seed=6, payload=True)
        chunks = list(stream.chunks(300))
        digests = [hashlib.sha1(c.payload).digest() for c in chunks]
        ratio = len(digests) / len(set(digests))
        assert ratio == pytest.approx(3.0, rel=0.2)

    def test_payload_mode_compression_dial(self):
        stream = VdbenchStream(comp_ratio=2.0, dedup_ratio=1.0, seed=6,
                               payload=True)
        ratios = [measured_ratio(c.payload) for c in stream.chunks(20)]
        mean = sum(ratios) / len(ratios)
        assert mean == pytest.approx(2.0, rel=0.2)

    def test_offsets_are_sequential(self):
        stream = VdbenchStream(seed=1)
        chunks = list(stream.chunks(10))
        assert [c.offset for c in chunks] == [i * 4096 for i in range(10)]

    def test_chunks_for_bytes(self):
        stream = VdbenchStream(seed=1)
        chunks = list(stream.chunks_for_bytes(10 * 4096))
        assert len(chunks) == 10

    def test_locality_increases_recent_duplicates(self):
        local = VdbenchStream(dedup_ratio=2.0, seed=3, locality=1.0,
                              working_set=16)
        spread = VdbenchStream(dedup_ratio=2.0, seed=3, locality=0.0)

        def recent_fraction(stream):
            seen = []
            recent = 0
            dups = 0
            for chunk in stream.chunks(4000):
                if chunk.fingerprint in seen[-64:]:
                    recent += 1
                if chunk.fingerprint in seen:
                    dups += 1
                seen.append(chunk.fingerprint)
            return recent / max(1, dups)

        assert recent_fraction(local) > recent_fraction(spread) + 0.3

    def test_determinism(self):
        a = [c.fingerprint for c in VdbenchStream(seed=42).chunks(200)]
        b = [c.fingerprint for c in VdbenchStream(seed=42).chunks(200)]
        assert a == b

    def test_invalid_dials_rejected(self):
        with pytest.raises(WorkloadError):
            VdbenchStream(dedup_ratio=0.5)
        with pytest.raises(WorkloadError):
            VdbenchStream(comp_ratio=0.0)
        with pytest.raises(WorkloadError):
            VdbenchStream(locality=2.0)


class TestPatterns:
    def test_sequential_wraps(self):
        pattern = SequentialPattern(3)
        assert [pattern.next_slot() for _ in range(5)] == [0, 1, 2, 0, 1]

    def test_uniform_in_range_and_deterministic(self):
        a = UniformPattern(100, seed=1)
        b = UniformPattern(100, seed=1)
        draws_a = [a.next_slot() for _ in range(50)]
        draws_b = [b.next_slot() for _ in range(50)]
        assert draws_a == draws_b
        assert all(0 <= d < 100 for d in draws_a)

    def test_zipf_skews_to_low_slots(self):
        pattern = ZipfPattern(1000, skew=1.2, seed=3)
        draws = [pattern.next_slot() for _ in range(3000)]
        top_ten = sum(1 for d in draws if d < 10)
        assert top_ten / len(draws) > 0.3

    def test_zipf_invalid_skew(self):
        with pytest.raises(WorkloadError):
            ZipfPattern(10, skew=0.0, seed=0)

    def test_empty_pattern_rejected(self):
        with pytest.raises(WorkloadError):
            SequentialPattern(0)


class TestTrace:
    def test_record_roundtrip_through_text(self):
        recorder = TraceRecorder()
        recorder.record("write", 0, 4096, timestamp=1.5)
        recorder.record("read", 4096, 8192)
        text = io.StringIO()
        recorder.dump(text)
        text.seek(0)
        loaded = TraceRecorder.load(text)
        assert list(loaded) == list(recorder)

    def test_total_bytes_by_op(self):
        recorder = TraceRecorder()
        recorder.record("write", 0, 100)
        recorder.record("read", 0, 50)
        recorder.record("write", 0, 200)
        assert recorder.total_bytes("write") == 300
        assert recorder.total_bytes() == 350

    def test_malformed_line_rejected(self):
        with pytest.raises(WorkloadError):
            TraceRecord.from_line("nonsense")

    def test_invalid_op_rejected(self):
        with pytest.raises(WorkloadError):
            TraceRecord("delete", 0, 10)

    def test_comments_and_blanks_skipped(self):
        loaded = TraceRecorder.load(["# comment", "", "write 0 10"])
        assert len(loaded) == 1

    @given(st.lists(st.tuples(
        st.sampled_from(["read", "write"]),
        st.integers(0, 10**9), st.integers(1, 10**6)), max_size=50))
    @settings(max_examples=30, deadline=None)
    def test_text_roundtrip_property(self, records):
        recorder = TraceRecorder()
        for op, offset, size in records:
            recorder.record(op, offset, size)
        text = io.StringIO()
        recorder.dump(text)
        text.seek(0)
        assert list(TraceRecorder.load(text)) == list(recorder)
