"""Tests for the workgroup-tiled bin-lookup kernel."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import KernelError
from repro.gpu import GpuDevice
from repro.gpu.kernels.indexing import BinLookupKernel, LookupBatch
from repro.gpu.kernels.indexing_tiled import TiledBinLookupKernel
from repro.sim import Environment


def make_table(entries):
    table = {}
    for bin_id, lo, hi in entries:
        lo_arr, hi_arr, count = table.get(
            bin_id, (np.zeros(512, dtype=np.uint64),
                     np.zeros(512, dtype=np.uint64), 0))
        lo_arr[count] = lo
        hi_arr[count] = hi
        table[bin_id] = (lo_arr, hi_arr, count + 1)
    return table


def full_table(n_bins=4, per_bin=40):
    return make_table([(b, 1000 * b + i, 2000 * b + i)
                       for b in range(n_bins) for i in range(per_bin)])


class TestTiledLookup:
    def test_matches_simple_kernel(self):
        table = full_table()
        queries = ([(b, 1000 * b + i, 2000 * b + i)
                    for b in range(4) for i in range(0, 40, 7)]
                   + [(0, 1, 1), (2, 5, 5), (9, 9, 9)])
        batch = LookupBatch.from_queries(queries)
        simple = BinLookupKernel(batch, table).execute()
        tiled = TiledBinLookupKernel(batch, table).execute()
        assert np.array_equal(simple, tiled)

    def test_simt_path_with_barriers_matches(self):
        table = full_table(n_bins=3, per_bin=70)
        queries = [(b, 1000 * b + i, 2000 * b + i)
                   for b in range(3) for i in range(0, 70, 5)]
        queries += [(1, 42424242, 0)]
        batch = LookupBatch.from_queries(queries)
        plain = TiledBinLookupKernel(batch, table).execute()
        simt = TiledBinLookupKernel(batch, table, use_simt=True,
                                    tile_entries=32).execute()
        assert np.array_equal(plain, simt)

    def test_unknown_bin_misses(self):
        batch = LookupBatch.from_queries([(99, 1, 2)])
        assert list(TiledBinLookupKernel(batch, {}).execute()) == [-1]

    def test_invalid_tile_size_rejected(self):
        batch = LookupBatch.from_queries([(0, 1, 2)])
        with pytest.raises(KernelError):
            TiledBinLookupKernel(batch, {}, tile_entries=0)

    @given(st.lists(st.tuples(st.integers(0, 3), st.integers(0, 60)),
                    min_size=1, max_size=80))
    @settings(max_examples=30, deadline=None)
    def test_equivalence_property(self, raw_queries):
        table = full_table()
        queries = [(b, 1000 * b + i, 2000 * b + i)
                   for b, i in raw_queries]
        batch = LookupBatch.from_queries(queries)
        simple = BinLookupKernel(batch, table).execute()
        tiled = TiledBinLookupKernel(batch, table).execute()
        assert np.array_equal(simple, tiled)


class TestTiledCost:
    def test_global_reads_amortized_across_shared_bin(self):
        """Many queries on one bin: tiled stages the bin once, the simple
        kernel streams it per query."""
        table = full_table(n_bins=1, per_bin=500)
        queries = [(0, 7, 7)] * 64
        batch = LookupBatch.from_queries(queries)
        simple = BinLookupKernel(batch, table).cost()
        tiled = TiledBinLookupKernel(batch, table).cost()
        assert tiled.bytes_read < simple.bytes_read / 10

    def test_launch_time_wins_for_shared_bins(self):
        env = Environment()
        gpu = GpuDevice(env)
        table = full_table(n_bins=2, per_bin=500)
        queries = [(qi % 2, 7, 7) for qi in range(256)]
        batch = LookupBatch.from_queries(queries)
        simple = gpu.launch_time(BinLookupKernel(batch, table))
        tiled = gpu.launch_time(TiledBinLookupKernel(batch, table))
        assert tiled < simple

    def test_cost_available_before_execution(self):
        table = full_table()
        batch = LookupBatch.from_queries([(0, 1, 1), (1, 2, 2)])
        cost = TiledBinLookupKernel(batch, table).cost()
        assert cost.lane_cycles_total > 0
        assert cost.bytes_read > 0

    def test_pcie_footprint_same_as_simple(self):
        table = full_table()
        batch = LookupBatch.from_queries([(0, 1, 1)] * 10)
        simple = BinLookupKernel(batch, table)
        tiled = TiledBinLookupKernel(batch, table)
        assert tiled.bytes_in() == simple.bytes_in()
        assert tiled.bytes_out() == simple.bytes_out()
