"""Tests for delta compression and resemblance sketches."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.delta import DeltaCodec, SimilarityIndex, sketch
from repro.errors import CompressionError, CorruptStreamError


def noise(n, seed=0):
    rng = random.Random(seed)
    return bytes(rng.randrange(256) for _ in range(n))


def edited(data: bytes, n_edits: int, seed: int = 1) -> bytes:
    """A near-duplicate: a few point edits on a copy."""
    rng = random.Random(seed)
    out = bytearray(data)
    for _ in range(n_edits):
        out[rng.randrange(len(out))] = rng.randrange(256)
    return bytes(out)


class TestDeltaCodec:
    def test_identical_chunks_tiny_delta(self):
        codec = DeltaCodec()
        data = noise(4096)
        delta = codec.encode(data, data)
        assert codec.decode(data, delta) == data
        assert len(delta) < 40  # a handful of COPY ops

    def test_near_duplicate_small_delta(self):
        codec = DeltaCodec()
        base = noise(4096, seed=2)
        target = edited(base, n_edits=6)
        delta = codec.encode(base, target)
        assert codec.decode(base, delta) == target
        assert len(delta) < len(target) / 8

    def test_unrelated_chunks_fall_back_to_literals(self):
        codec = DeltaCodec()
        base = noise(4096, seed=3)
        target = noise(4096, seed=4)
        delta = codec.encode(base, target)
        assert codec.decode(base, delta) == target
        # No useful copies: delta ~ target + framing.
        assert len(delta) < len(target) + 64

    def test_empty_target(self):
        codec = DeltaCodec()
        assert codec.decode(b"ref", codec.encode(b"ref", b"")) == b""

    def test_insertion_in_middle(self):
        codec = DeltaCodec()
        base = noise(2048, seed=5)
        target = base[:1000] + b"NEW BYTES HERE" + base[1000:]
        delta = codec.encode(base, target)
        assert codec.decode(base, delta) == target
        assert len(delta) < 120

    def test_truncated_delta_rejected(self):
        codec = DeltaCodec()
        base = noise(1024, seed=6)
        delta = codec.encode(base, edited(base, 2))
        with pytest.raises(CorruptStreamError):
            codec.decode(base, delta[:-3])

    def test_unknown_op_rejected(self):
        codec = DeltaCodec()
        bad = bytes([0, 0, 0, 4, 0x7F])
        with pytest.raises(CorruptStreamError):
            codec.decode(b"ref", bad)

    def test_copy_outside_reference_rejected(self):
        import struct
        bad = struct.pack(">I", 10) + b"\x01" + struct.pack(">IH", 100, 10)
        with pytest.raises(CorruptStreamError):
            DeltaCodec().decode(b"short", bad)

    def test_ratio_helper(self):
        codec = DeltaCodec()
        base = noise(4096, seed=7)
        assert codec.ratio(base, edited(base, 3)) > 8.0

    @given(st.binary(max_size=1500), st.binary(max_size=1500))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, reference, target):
        codec = DeltaCodec()
        delta = codec.encode(reference, target)
        assert codec.decode(reference, delta) == target

    @given(st.binary(min_size=100, max_size=1200),
           st.integers(0, 20), st.integers(0, 100))
    @settings(max_examples=40, deadline=None)
    def test_edited_copy_roundtrip_property(self, base, edits, seed):
        codec = DeltaCodec()
        target = edited(base, min(edits, len(base)), seed=seed)
        delta = codec.encode(base, target)
        assert codec.decode(base, delta) == target


class TestSketch:
    def test_identical_chunks_identical_sketch(self):
        data = noise(4096, seed=8)
        assert sketch(data) == sketch(data)

    def test_near_duplicates_share_features(self):
        base = noise(4096, seed=9)
        target = edited(base, n_edits=4)
        a, b = sketch(base), sketch(target)
        shared = sum(1 for x, y in zip(a, b) if x == y)
        assert shared >= 1

    def test_unrelated_chunks_rarely_collide(self):
        collisions = 0
        for seed in range(20):
            a = sketch(noise(2048, seed=100 + seed))
            b = sketch(noise(2048, seed=200 + seed))
            collisions += sum(1 for x, y in zip(a, b) if x == y)
        assert collisions <= 1

    def test_tiny_input(self):
        assert len(sketch(b"ab", n_features=4)) == 4

    def test_invalid_feature_count(self):
        with pytest.raises(CompressionError):
            sketch(b"data", n_features=0)


class TestSimilarityIndex:
    def test_find_near_duplicate(self):
        index = SimilarityIndex()
        base = noise(4096, seed=10)
        index.insert(chunk_id=7, chunk_sketch=sketch(base))
        target = edited(base, n_edits=5)
        assert index.find_similar(sketch(target)) == 7

    def test_unrelated_chunk_misses(self):
        index = SimilarityIndex()
        index.insert(1, sketch(noise(4096, seed=11)))
        assert index.find_similar(sketch(noise(4096, seed=12))) is None

    def test_statistics(self):
        index = SimilarityIndex()
        data = noise(2048, seed=13)
        index.insert(1, sketch(data))
        index.find_similar(sketch(data))
        index.find_similar(sketch(noise(2048, seed=14)))
        assert index.lookups == 2
        assert index.matches == 1

    def test_first_writer_wins(self):
        index = SimilarityIndex()
        data = noise(2048, seed=15)
        index.insert(1, sketch(data))
        index.insert(2, sketch(data))
        assert index.find_similar(sketch(data)) == 1
