"""Tests for restart semantics (RAM-only index) and read integrity."""

import hashlib

import pytest

from repro.dedup.engine import DedupEngine
from repro.dedup.gpu_index import GpuBinIndex
from repro.errors import MetadataError
from repro.storage import MetadataStore, ReducedVolume
from repro.types import Chunk
from repro.workload.datagen import BlockContentGenerator


def compressible(n: int, salt: int = 0) -> bytes:
    return BlockContentGenerator(2.0, seed=3).make_block(n, salt=salt)


def fp(n: int) -> bytes:
    return hashlib.sha1(n.to_bytes(8, "big")).digest()


class TestMetadataRestart:
    def test_detach_makes_content_unfindable_but_readable(self):
        store = MetadataStore()
        store.store_unique(fp(1), 4096, 2048)
        store.map_logical(0, fp(1), 4096)
        assert store.lookup(fp(1)) is not None
        lost = store.detach_fingerprint_index()
        assert lost == 1
        assert store.lookup(fp(1)) is None          # not findable
        assert store.resolve(0).size == 4096        # still readable
        store.verify_invariants()

    def test_restore_after_restart_stores_twice(self):
        store = MetadataStore()
        store.store_unique(fp(1), 4096, 2048)
        store.map_logical(0, fp(1), 4096)
        store.detach_fingerprint_index()
        # Same content arrives again: it is stored as a new chunk.
        store.store_unique(fp(1), 4096, 2048)
        store.map_logical(4096, fp(1), 4096)
        assert store.unique_chunks == 2
        assert store.physical_bytes == 4096
        assert store.dedup_ratio() == pytest.approx(1.0)
        store.verify_invariants()

    def test_restart_counter(self):
        store = MetadataStore()
        store.detach_fingerprint_index()
        store.detach_fingerprint_index()
        assert store.restarts == 2


class TestEngineRestart:
    def _commit(self, engine, content, offset):
        chunk = Chunk(offset=offset, size=4096,
                      payload=(content * 4096)[:4096])
        import repro.dedup.hashing as hashing
        hashing.fingerprint_chunk(chunk)
        outcome = engine.cpu_index(chunk)
        if outcome.duplicate:
            engine.commit_duplicate(chunk)
            return "dup"
        chunk.compressed_size = 2048
        engine.commit_unique(chunk)
        return "unique"

    def test_duplicates_missed_after_restart(self):
        engine = DedupEngine(gpu_index=GpuBinIndex())
        assert self._commit(engine, b"a", 0) == "unique"
        assert self._commit(engine, b"a", 4096) == "dup"
        engine.restart()
        # The same content is no longer found: stored again.
        assert self._commit(engine, b"a", 8192) == "unique"
        assert engine.metadata.unique_chunks == 2
        assert engine.counters["restarts"] == 1

    def test_restart_drains_staged_data(self):
        engine = DedupEngine(bin_buffer_capacity=100)
        self._commit(engine, b"a", 0)
        self._commit(engine, b"b", 4096)
        assert len(engine.bin_buffer) == 2
        batches = engine.restart()
        assert sum(b.chunk_count for b in batches) == 2
        assert len(engine.bin_buffer) == 0
        assert len(engine.bin_table) == 0  # fresh tree

    def test_gpu_index_cleared_on_restart(self):
        from repro.gpu import DeviceMemory
        memory = DeviceMemory(10**7)
        gpu_index = GpuBinIndex(bin_capacity=16, memory=memory)
        engine = DedupEngine(bin_buffer_capacity=1, gpu_index=gpu_index)
        self._commit(engine, b"a", 0)  # flushes straight to GPU
        assert len(gpu_index) == 1
        assert memory.used_bytes > 0
        engine.restart()
        assert len(gpu_index) == 0
        assert memory.used_bytes == 0

    def test_dedup_recovers_for_new_writes(self):
        """Post-restart content written twice still dedups (the index
        works fine for everything after the restart)."""
        engine = DedupEngine()
        engine.restart()
        assert self._commit(engine, b"z", 0) == "unique"
        assert self._commit(engine, b"z", 4096) == "dup"


class TestVolumeRestartAndChecksums:
    def test_volume_survives_restart(self):
        volume = ReducedVolume()
        data = compressible(4096, salt=1)
        volume.write(0, data)
        volume.restart()
        assert volume.read(0, 4096) == data   # data survives
        volume.write(4096, data)              # but is stored twice now
        assert volume.dedup_ratio() == pytest.approx(1.0)
        assert volume.engine.metadata.unique_chunks == 2

    def test_checksum_detects_corruption(self):
        volume = ReducedVolume()
        data = compressible(4096, salt=2)
        volume.write(0, data)
        record = volume.engine.metadata.resolve(0)
        # Bit-rot on the stored blob.
        corrupted = bytearray(record.blob)
        corrupted[10] ^= 0xFF
        record.blob = bytes(corrupted)
        with pytest.raises(MetadataError, match="checksum mismatch"):
            volume.read(0, 4096)

    def test_checksum_can_be_disabled(self):
        volume = ReducedVolume(verify_checksums=False)
        data = compressible(4096, salt=2)
        volume.write(0, data)
        record = volume.engine.metadata.resolve(0)
        assert record.checksum is None

    def test_clean_data_always_verifies(self):
        volume = ReducedVolume()
        for slot in range(8):
            volume.write(slot * 4096, compressible(4096, salt=slot % 3))
        for slot in range(8):
            assert volume.read(slot * 4096, 4096) == \
                compressible(4096, salt=slot % 3)


class TestScrubber:
    def _populated(self, n=6):
        volume = ReducedVolume()
        for slot in range(n):
            volume.write(slot * 4096, compressible(4096, salt=slot))
        return volume

    def test_clean_volume_scrubs_clean(self):
        volume = self._populated()
        report = volume.scrub()
        assert report["scanned"] == 6
        assert report["verified"] == 6
        assert report["corrupt"] == 0
        assert report["corrupt_offsets"] == []

    def test_scrub_finds_bit_rot(self):
        volume = self._populated()
        record = volume.engine.metadata.resolve(2 * 4096)
        rotted = bytearray(record.blob)
        rotted[5] ^= 0x40
        record.blob = bytes(rotted)
        report = volume.scrub()
        assert report["corrupt"] == 1
        assert report["corrupt_offsets"] == [2 * 4096]
        # The rest of the volume still verifies.
        assert report["verified"] == 5

    def test_scrub_reports_shared_chunk_at_every_offset(self):
        volume = ReducedVolume()
        data = compressible(4096, salt=1)
        volume.write(0, data)
        volume.write(4096, data)  # dedup: same record
        record = volume.engine.metadata.resolve(0)
        record.blob = record.blob[:-1] + bytes([record.blob[-1] ^ 1])
        report = volume.scrub()
        assert report["corrupt"] == 2  # both logical offsets affected

    def test_scrub_without_checksums_is_unverifiable(self):
        volume = ReducedVolume(verify_checksums=False)
        volume.write(0, compressible(4096, salt=1))
        report = volume.scrub()
        assert report["unverifiable"] == 1
        assert report["verified"] == 0

    def test_undecodable_blob_counts_as_corrupt(self):
        volume = self._populated(n=2)
        record = volume.engine.metadata.resolve(0)
        record.blob = b"\x00\x01"  # hopeless container
        report = volume.scrub()
        assert report["corrupt"] >= 1
