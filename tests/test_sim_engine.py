"""Unit tests for the discrete-event simulation engine."""

import pytest

from repro.errors import SimulationError
from repro.sim import Environment, Interrupt


def test_clock_starts_at_zero():
    env = Environment()
    assert env.now == 0.0


def test_clock_custom_start():
    env = Environment(initial_time=5.0)
    assert env.now == 5.0


def test_timeout_advances_clock():
    env = Environment()
    seen = []

    def proc():
        yield env.timeout(3.5)
        seen.append(env.now)

    env.process(proc())
    env.run()
    assert seen == [3.5]


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(SimulationError):
        env.timeout(-1.0)


def test_timeout_value_is_delivered():
    env = Environment()
    got = []

    def proc():
        value = yield env.timeout(1.0, value="hello")
        got.append(value)

    env.process(proc())
    env.run()
    assert got == ["hello"]


def test_sequential_timeouts_accumulate():
    env = Environment()
    times = []

    def proc():
        for _ in range(4):
            yield env.timeout(2.0)
            times.append(env.now)

    env.process(proc())
    env.run()
    assert times == [2.0, 4.0, 6.0, 8.0]


def test_two_processes_interleave_deterministically():
    env = Environment()
    order = []

    def proc(name, delay):
        for _ in range(3):
            yield env.timeout(delay)
            order.append((name, env.now))

    env.process(proc("a", 1.0))
    env.process(proc("b", 1.5))
    env.run()
    # At t=3.0 both fire; b's timeout was created first (at t=1.5), so the
    # creation-order tiebreak resumes b before a.
    assert order == [
        ("a", 1.0), ("b", 1.5), ("a", 2.0), ("b", 3.0), ("a", 3.0),
        ("b", 4.5),
    ]


def test_tie_broken_by_creation_order():
    env = Environment()
    order = []

    def proc(name):
        yield env.timeout(1.0)
        order.append(name)

    env.process(proc("first"))
    env.process(proc("second"))
    env.run()
    assert order == ["first", "second"]


def test_run_until_time_stops_clock_exactly():
    env = Environment()

    def proc():
        while True:
            yield env.timeout(10.0)

    env.process(proc())
    env.run(until=25.0)
    assert env.now == 25.0


def test_run_until_past_raises():
    env = Environment(initial_time=10.0)
    with pytest.raises(SimulationError):
        env.run(until=5.0)


def test_run_until_event_returns_value():
    env = Environment()

    def proc():
        yield env.timeout(2.0)
        return 42

    p = env.process(proc())
    assert env.run(until=p) == 42
    assert env.now == 2.0


def test_process_waits_on_other_process():
    env = Environment()
    log = []

    def worker():
        yield env.timeout(5.0)
        return "done"

    def waiter(w):
        result = yield w
        log.append((env.now, result))

    w = env.process(worker())
    env.process(waiter(w))
    env.run()
    assert log == [(5.0, "done")]


def test_waiting_on_finished_process_resumes_immediately():
    env = Environment()
    log = []

    def worker():
        yield env.timeout(1.0)
        return "early"

    def waiter(w):
        yield env.timeout(10.0)
        result = yield w
        log.append((env.now, result))

    w = env.process(worker())
    env.process(waiter(w))
    env.run()
    assert log == [(10.0, "early")]


def test_exception_in_process_propagates_to_run():
    env = Environment()

    def bad():
        yield env.timeout(1.0)
        raise ValueError("boom")

    env.process(bad())
    with pytest.raises(ValueError, match="boom"):
        env.run()


def test_exception_caught_by_waiting_process():
    env = Environment()
    caught = []

    def bad():
        yield env.timeout(1.0)
        raise ValueError("boom")

    def waiter(b):
        try:
            yield b
        except ValueError as exc:
            caught.append(str(exc))

    b = env.process(bad())
    env.process(waiter(b))
    env.run()
    assert caught == ["boom"]


def test_yield_non_event_fails_process():
    env = Environment()

    def bad():
        yield 42

    env.process(bad())
    with pytest.raises(SimulationError, match="non-event"):
        env.run()


def test_event_succeed_wakes_waiter():
    env = Environment()
    log = []
    gate = env.event()

    def opener():
        yield env.timeout(3.0)
        gate.succeed("open")

    def waiter():
        value = yield gate
        log.append((env.now, value))

    env.process(opener())
    env.process(waiter())
    env.run()
    assert log == [(3.0, "open")]


def test_event_double_trigger_rejected():
    env = Environment()
    ev = env.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_event_fail_requires_exception():
    env = Environment()
    ev = env.event()
    with pytest.raises(SimulationError):
        ev.fail("not an exception")


def test_all_of_waits_for_slowest():
    env = Environment()
    log = []

    def proc():
        t1 = env.timeout(1.0, value="a")
        t2 = env.timeout(4.0, value="b")
        results = yield env.all_of([t1, t2])
        log.append((env.now, sorted(results.values())))

    env.process(proc())
    env.run()
    assert log == [(4.0, ["a", "b"])]


def test_any_of_fires_on_fastest():
    env = Environment()
    log = []

    def proc():
        t1 = env.timeout(1.0, value="fast")
        t2 = env.timeout(4.0, value="slow")
        results = yield env.any_of([t1, t2])
        log.append((env.now, list(results.values())))

    env.process(proc())
    env.run()
    assert log == [(1.0, ["fast"])]


def test_interrupt_delivers_cause():
    env = Environment()
    log = []

    def sleeper():
        try:
            yield env.timeout(100.0)
        except Interrupt as intr:
            log.append((env.now, intr.cause))

    def interrupter(target):
        yield env.timeout(2.0)
        target.interrupt(cause="wake up")

    target = env.process(sleeper())
    env.process(interrupter(target))
    env.run()
    assert log == [(2.0, "wake up")]


def test_interrupt_dead_process_raises():
    env = Environment()

    def quick():
        yield env.timeout(1.0)

    def late(target):
        yield env.timeout(5.0)
        target.interrupt()

    target = env.process(quick())
    env.process(late(target))
    with pytest.raises(SimulationError):
        env.run()


def test_peek_reports_next_event_time():
    env = Environment()

    def proc():
        yield env.timeout(7.0)

    env.process(proc())
    assert env.peek() == 0.0  # the Initialize event
    env.step()
    assert env.peek() == 7.0


def test_step_with_empty_calendar_raises():
    env = Environment()
    with pytest.raises(SimulationError):
        env.step()


def test_run_until_horizon_with_drained_calendar_advances_clock():
    env = Environment()

    def proc():
        yield env.timeout(1.0)

    env.process(proc())
    env.run(until=50.0)
    assert env.now == 50.0


def test_process_return_value_via_run():
    env = Environment()

    def proc():
        yield env.timeout(1.0)
        return {"answer": 7}

    p = env.process(proc())
    assert env.run(until=p) == {"answer": 7}


def test_nested_process_chains():
    env = Environment()

    def leaf(n):
        yield env.timeout(float(n))
        return n * 10

    def trunk():
        total = 0
        for n in range(1, 4):
            total += yield env.process(leaf(n))
        return total

    p = env.process(trunk())
    assert env.run(until=p) == 60
    assert env.now == 6.0


def test_non_generator_rejected():
    env = Environment()
    with pytest.raises(SimulationError):
        env.process(lambda: None)  # type: ignore[arg-type]


def test_interrupt_while_waiting_on_resource():
    """An interrupted waiter must not absorb a resource slot later."""
    from repro.sim import Resource
    env = Environment()
    res = Resource(env, capacity=1)
    order = []

    def holder():
        with res.request() as req:
            yield req
            yield env.timeout(10.0)

    def waiter():
        req = res.request()
        try:
            yield req
            order.append("waiter-granted")
        except Interrupt:
            order.append("waiter-interrupted")
            req.cancel()

    def interrupter(target):
        yield env.timeout(2.0)
        target.interrupt()

    def last():
        yield env.timeout(5.0)
        with res.request() as req:
            yield req
            order.append(("last", env.now))

    env.process(holder())
    target = env.process(waiter())
    env.process(interrupter(target))
    env.process(last())
    env.run()
    assert order == ["waiter-interrupted", ("last", 10.0)]


def test_all_of_propagates_failure():
    env = Environment()
    caught = []

    def bad():
        yield env.timeout(1.0)
        raise ValueError("inner")

    def waiter(b):
        t = env.timeout(5.0)
        try:
            yield env.all_of([t, b])
        except ValueError as exc:
            caught.append((env.now, str(exc)))

    b = env.process(bad())
    env.process(waiter(b))
    env.run()
    assert caught == [(1.0, "inner")]


def test_any_of_with_already_processed_event():
    env = Environment()
    log = []

    def early():
        yield env.timeout(1.0)
        return "early"

    def waiter(e):
        yield env.timeout(5.0)  # e finishes long before
        results = yield env.any_of([e, env.timeout(100.0)])
        log.append((env.now, list(results.values())))

    e = env.process(early())
    env.process(waiter(e))
    env.run(until=10.0)
    assert log == [(5.0, ["early"])]


def test_empty_all_of_fires_immediately():
    env = Environment()
    log = []

    def waiter():
        yield env.all_of([])
        log.append(env.now)

    env.process(waiter())
    env.run()
    assert log == [0.0]


def test_event_value_before_trigger_raises():
    env = Environment()
    ev = env.event()
    with pytest.raises(SimulationError):
        _ = ev.value
    with pytest.raises(SimulationError):
        _ = ev.ok


def test_deterministic_schedule_with_many_processes():
    """Two identical environments step through identical schedules."""
    def build():
        env = Environment()
        trace = []

        def worker(name, period):
            for _ in range(5):
                yield env.timeout(period)
                trace.append((name, env.now))

        for i in range(10):
            env.process(worker(i, 0.1 + 0.01 * i))
        env.run()
        return trace

    assert build() == build()
