"""Tests for delta-compressed storage on the reduced volume."""

import random

import pytest

from repro.storage import ReducedVolume
from repro.workload.datagen import BlockContentGenerator

CHUNK = 4096


def noise(seed: int) -> bytes:
    rng = random.Random(seed)
    return bytes(rng.randrange(256) for _ in range(CHUNK))


def edited(data: bytes, n_edits: int, seed: int = 1) -> bytes:
    rng = random.Random(seed)
    out = bytearray(data)
    for _ in range(n_edits):
        out[rng.randrange(len(out))] = rng.randrange(256)
    return bytes(out)


class TestDeltaVolume:
    def test_near_duplicate_stored_as_delta(self):
        volume = ReducedVolume(enable_delta=True)
        base = noise(1)
        volume.write(0, base)
        near = edited(base, 5)
        volume.write(CHUNK, near)
        assert volume.deltas_stored == 1
        # The delta record is tiny versus the raw chunk.
        record = volume.engine.metadata.resolve(CHUNK)
        assert record.compressed_size < CHUNK // 8
        # And both read back exactly.
        assert volume.read(0, CHUNK) == base
        assert volume.read(CHUNK, CHUNK) == near

    def test_delta_disabled_by_default(self):
        volume = ReducedVolume()
        base = noise(2)
        volume.write(0, base)
        volume.write(CHUNK, edited(base, 5))
        assert volume.deltas_stored == 0

    def test_unrelated_chunks_not_deltaed(self):
        volume = ReducedVolume(enable_delta=True)
        volume.write(0, noise(3))
        volume.write(CHUNK, noise(4))
        assert volume.deltas_stored == 0

    def test_chains_capped_at_depth_one(self):
        """A delta of a delta's plaintext still bases on a full chunk."""
        volume = ReducedVolume(enable_delta=True)
        base = noise(5)
        volume.write(0, base)
        first = edited(base, 4, seed=2)
        volume.write(CHUNK, first)
        second = edited(base, 4, seed=3)
        volume.write(2 * CHUNK, second)
        assert volume.deltas_stored == 2
        for offset, expected in ((0, base), (CHUNK, first),
                                 (2 * CHUNK, second)):
            record = volume.engine.metadata.resolve(offset)
            if record.delta_base_id is not None:
                base_record = volume.engine.metadata.get_record(
                    record.delta_base_id)
                assert base_record.delta_base_id is None  # depth 1
            assert volume.read(offset, CHUNK) == expected

    def test_base_survives_discard_while_delta_lives(self):
        volume = ReducedVolume(enable_delta=True)
        base = noise(6)
        volume.write(0, base)
        near = edited(base, 5)
        volume.write(CHUNK, near)
        volume.discard(0, CHUNK)   # drop the base's logical mapping
        volume.engine.metadata.sweep_unreferenced()
        # The delta still reads: its base was pinned by the delta ref.
        assert volume.read(CHUNK, CHUNK) == near
        volume.engine.metadata.verify_invariants()

    def test_sweeping_delta_releases_base(self):
        volume = ReducedVolume(enable_delta=True)
        base = noise(7)
        volume.write(0, base)
        volume.write(CHUNK, edited(base, 5))
        volume.discard(0, CHUNK)
        volume.discard(CHUNK, CHUNK)
        first_sweep = volume.engine.metadata.sweep_unreferenced()
        second_sweep = volume.engine.metadata.sweep_unreferenced()
        assert first_sweep > 0
        assert second_sweep > 0  # the base, released by the delta
        assert volume.engine.metadata.unique_chunks == 0
        volume.engine.metadata.verify_invariants()

    def test_scrub_covers_delta_records(self):
        volume = ReducedVolume(enable_delta=True)
        base = noise(8)
        volume.write(0, base)
        volume.write(CHUNK, edited(base, 5))
        report = volume.scrub()
        assert report["verified"] == 2
        # Corrupt the delta blob; scrub must notice.
        record = volume.engine.metadata.resolve(CHUNK)
        record.blob = record.blob[:-1] + bytes(
            [record.blob[-1] ^ 1]) if record.blob else b"x"
        report = volume.scrub()
        assert report["corrupt"] >= 1

    def test_space_accounting_with_deltas(self):
        volume = ReducedVolume(enable_delta=True)
        base = noise(9)
        volume.write(0, base)
        for i in range(6):
            volume.write((i + 1) * CHUNK, edited(base, 4, seed=10 + i))
        # 7 logical chunks; physical ~ one full chunk + six tiny deltas.
        assert volume.logical_bytes == 7 * CHUNK
        assert volume.physical_bytes < CHUNK + 6 * (CHUNK // 8)
        assert volume.reduction_ratio() > 4.0
        volume.engine.metadata.verify_invariants()

    def test_compressible_near_duplicates(self):
        """Delta vs LZ: the smaller representation wins per chunk."""
        content = BlockContentGenerator(2.0, seed=11)
        volume = ReducedVolume(enable_delta=True)
        base = content.make_block(CHUNK, salt=0)
        volume.write(0, base)
        near = edited(base, 3, seed=5)
        volume.write(CHUNK, near)
        assert volume.read(CHUNK, CHUNK) == near
        record = volume.engine.metadata.resolve(CHUNK)
        # Whichever path was chosen, it beat storing raw.
        assert record.compressed_size < CHUNK
