"""Tests for the page-mapped FTL and its garbage collector."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError, StorageError
from repro.storage.ftl import Ftl, FtlSpec


def small_ftl(blocks=8, pages=16, low_water=2):
    return Ftl(FtlSpec(blocks=blocks, pages_per_block=pages,
                       gc_low_water=low_water))


class TestBasics:
    def test_geometry_validation(self):
        with pytest.raises(ConfigError):
            FtlSpec(blocks=0, pages_per_block=8)
        with pytest.raises(ConfigError):
            FtlSpec(blocks=4, pages_per_block=8, gc_low_water=4)

    def test_write_then_read_location(self):
        ftl = small_ftl()
        ftl.write(7)
        block, page = ftl.read_location(7)
        assert ftl._blocks[block].pages[page] == 7

    def test_unmapped_read_raises(self):
        with pytest.raises(StorageError):
            small_ftl().read_location(1)

    def test_overwrite_invalidates_old_page(self):
        ftl = small_ftl()
        ftl.write(1)
        first = ftl.read_location(1)
        ftl.write(1)
        second = ftl.read_location(1)
        assert first != second
        assert ftl.host_pages_written == 2
        ftl.check_invariants()

    def test_trim_unmaps(self):
        ftl = small_ftl()
        ftl.write(1)
        ftl.trim(1)
        with pytest.raises(StorageError):
            ftl.read_location(1)
        assert ftl.mapped_pages == 0

    def test_sequential_fill_has_unit_wa(self):
        ftl = small_ftl()
        for lpn in range(64):
            ftl.write(lpn)
        assert ftl.write_amplification() == pytest.approx(1.0)
        assert ftl.gc_copies == 0


class TestGarbageCollection:
    def test_overwrites_trigger_gc(self):
        ftl = small_ftl(blocks=8, pages=16)
        # Fill 60% of exported space, then churn it.
        working_set = int(8 * 16 * 0.6)
        for lpn in range(working_set):
            ftl.write(lpn)
        for round_ in range(6):
            for lpn in range(working_set):
                ftl.write(lpn)
        assert ftl.erases > 0
        assert ftl.gc_copies > 0
        assert ftl.write_amplification() > 1.0
        ftl.check_invariants()

    def test_wa_grows_with_utilization(self):
        def churn(fill_fraction):
            ftl = small_ftl(blocks=16, pages=32)
            working_set = int(16 * 32 * fill_fraction)
            for lpn in range(working_set):
                ftl.write(lpn)
            import random
            rng = random.Random(3)
            for _ in range(working_set * 8):
                ftl.write(rng.randrange(working_set))
            ftl.check_invariants()
            return ftl.write_amplification()

        assert churn(0.85) > churn(0.5) + 0.2

    def test_all_data_survives_gc(self):
        import random
        rng = random.Random(9)
        ftl = small_ftl(blocks=8, pages=8)
        live = set()
        for _ in range(600):
            lpn = rng.randrange(40)
            ftl.write(lpn)
            live.add(lpn)
        for lpn in live:
            ftl.read_location(lpn)  # must all resolve
        ftl.check_invariants()

    def test_device_overfull_raises(self):
        ftl = small_ftl(blocks=4, pages=4, low_water=1)
        with pytest.raises(StorageError):
            # 16 uniques exactly fill the raw pages; the 17th has
            # nowhere to go and GC finds nothing reclaimable.
            for lpn in range(17):
                ftl.write(lpn)

    def test_trim_makes_space_reclaimable(self):
        ftl = small_ftl(blocks=4, pages=4, low_water=1)
        for lpn in range(10):
            ftl.write(lpn)
        for lpn in range(8):
            ftl.trim(lpn)
        # Freed pages let far more writes through.
        for lpn in range(100, 108):
            ftl.write(lpn)
        ftl.check_invariants()

    def test_erase_counts_reported(self):
        ftl = small_ftl(blocks=8, pages=8)
        for round_ in range(8):
            for lpn in range(30):
                ftl.write(lpn)
        counts = ftl.erase_counts()
        assert sum(counts) == ftl.erases
        assert ftl.erases > 0

    @given(st.lists(st.tuples(st.booleans(), st.integers(0, 30)),
                    max_size=400))
    @settings(max_examples=25, deadline=None)
    def test_mapping_never_corrupts_property(self, ops):
        ftl = small_ftl(blocks=8, pages=8)
        live = set()
        for is_write, lpn in ops:
            if is_write:
                ftl.write(lpn)
                live.add(lpn)
            else:
                ftl.trim(lpn)
                live.discard(lpn)
        ftl.check_invariants()
        assert ftl.mapped_pages == len(live)
        for lpn in live:
            ftl.read_location(lpn)
