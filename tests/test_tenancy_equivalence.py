"""The tenancy plane's contracts (DESIGN.md §15).

Three claims, pinned:

1. **Degenerate identity** — a one-tenant ``TenantMix`` under the
   default ``tenancy_policy="none"`` produces a ``PipelineReport``
   byte-identical to the single-stream path, in every integration
   mode.  The mix's scheduling RNG consumes *zero* draws for one
   tenant and tenant 0's address base is offset 0, so the chunk
   streams — and therefore the timed runs — are the same objects.

2. **Estimator equivalence** — the O(1) ring-sketch locality
   estimator computes float-identical estimates to the retained
   naive per-chunk scan (same EWMA expressions, same window-hit
   predicate), and its ranking agrees with the streams' ground-truth
   locality dials.

3. **Recovery** — on the committed mixed-locality scenario,
   prioritized admission beats the shared LRU on aggregate inline
   hit rate, and inline + out-of-line compaction together recover at
   least 95% of the offline-oracle dedup ratio; every inline-skipped
   duplicate is recovered by the compaction drain.
"""

import dataclasses
import hashlib
import json
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import IntegrationMode, PipelineConfig
from repro.core.calibration import run_mode
from repro.errors import WorkloadError
from repro.tenancy import (
    LocalityEstimator,
    NaiveLocalityEstimator,
    TenantMix,
    TenantMixStream,
    TenantSpec,
)
from repro.tenancy.runner import run_tenant_mix
from repro.workload import VdbenchStream

#: The committed mixed-locality scenario: a hot tenant whose working
#: set fits the inline cache against a cold scan that floods it.
HOT = TenantSpec(name="hot", seed=11, dedup_ratio=3.0, locality=0.95,
                 working_set=64)
COLD = TenantSpec(name="cold", seed=22, dedup_ratio=1.05, locality=0.0,
                  working_set=1 << 16)
SCENARIO = TenantMix(tenants=(HOT, COLD), seed=7)
SCENARIO_CACHE = 96
SCENARIO_CHUNKS = 8192


def report_digest(report) -> str:
    payload = json.dumps(dataclasses.asdict(report), sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()


class TestDegenerateIdentity:
    @pytest.mark.parametrize("mode", list(IntegrationMode))
    def test_one_tenant_mix_matches_single_stream(self, mode):
        mix = TenantMix(tenants=(TenantSpec(name="solo", seed=1234),),
                        seed=99)
        single = run_mode(mode, 512)
        multi = run_tenant_mix(mix, mode, 512)
        assert report_digest(multi.pipeline) == report_digest(single)
        assert multi.policy == "none"

    @given(seed=st.integers(0, 10**6),
           dedup_ratio=st.floats(1.0, 4.0),
           mode=st.sampled_from(list(IntegrationMode)))
    @settings(max_examples=8, deadline=None)
    def test_identity_property(self, seed, dedup_ratio, mode):
        mix = TenantMix(tenants=(TenantSpec(
            name="solo", seed=seed, dedup_ratio=dedup_ratio),), seed=0)
        single = run_mode(mode, 256, dedup_ratio=dedup_ratio, seed=seed)
        multi = run_tenant_mix(mix, mode, 256)
        assert dataclasses.asdict(multi.pipeline) == \
            dataclasses.asdict(single)

    def test_one_tenant_mix_consumes_no_parent_draws(self):
        mix = TenantMix(tenants=(TenantSpec(name="solo", seed=5),),
                        seed=1234)
        stream = TenantMixStream(mix)
        before = stream._sched_rng.getstate()
        list(stream.chunks(64))
        assert stream._sched_rng.getstate() == before


class TestMixEmission:
    MIX = TenantMix(tenants=(
        TenantSpec(name="a", seed=1, weight=2.0, dedup_ratio=3.0),
        TenantSpec(name="b", seed=2, clients=3, dedup_ratio=1.5),
        TenantSpec(name="c", seed=3, locality=0.9, working_set=16),
    ), seed=42)

    def test_batched_emission_is_elementwise_equal(self):
        plain = list(TenantMixStream(self.MIX).chunks(600))
        windowed = list(TenantMixStream(self.MIX).chunks_batched(
            600, window=64))
        assert len(plain) == len(windowed)
        for a, b in zip(plain, windowed):
            assert (a.tenant, a.offset, a.size, a.fingerprint,
                    a.comp_ratio) == (b.tenant, b.offset, b.size,
                                      b.fingerprint, b.comp_ratio)

    def test_tenant_streams_match_solo_vdbench(self):
        """Interleaving never perturbs a tenant's own content draws."""
        mix_chunks = list(TenantMixStream(self.MIX).chunks(900))
        for index, spec in enumerate(self.MIX.tenants):
            got = [c for c in mix_chunks if c.tenant == index]
            solo = VdbenchStream(
                dedup_ratio=spec.dedup_ratio,
                comp_ratio=spec.comp_ratio, seed=spec.seed,
                locality=spec.locality, working_set=spec.working_set)
            want = list(solo.chunks(len(got)))
            assert [c.fingerprint for c in got] == \
                [c.fingerprint for c in want]

    def test_closed_loop_weights_shape_traffic(self):
        counts = [0, 0, 0]
        for chunk in TenantMixStream(self.MIX).chunks(6000):
            counts[chunk.tenant] += 1
        # effective weights 2 : 3 : 1.
        assert counts[1] > counts[0] > counts[2]

    def test_open_loop_rates_shape_traffic(self):
        mix = TenantMix(tenants=(
            TenantSpec(name="fast", seed=1, arrival_rate_iops=3000.0),
            TenantSpec(name="slow", seed=2, arrival_rate_iops=1000.0),
        ), seed=9, open_loop=True)
        counts = [0, 0]
        for chunk in TenantMixStream(mix).chunks(4000):
            counts[chunk.tenant] += 1
        assert counts[0] > 2 * counts[1]

    def test_spec_round_trips_through_json(self):
        text = json.dumps(self.MIX.to_dict())
        assert TenantMix.from_json(text) == self.MIX

    def test_spec_validation(self):
        with pytest.raises(WorkloadError):
            TenantMix(tenants=(), seed=0)
        with pytest.raises(WorkloadError):
            TenantMix(tenants=(TenantSpec(name="a", seed=1),
                               TenantSpec(name="a", seed=2)), seed=0)
        with pytest.raises(WorkloadError):
            TenantMix(tenants=(TenantSpec(name="a", seed=1),
                               TenantSpec(name="b", seed=1)), seed=0)
        with pytest.raises(WorkloadError):
            TenantMix(tenants=(TenantSpec(name="a", seed=1),
                               TenantSpec(name="b", seed=2)),
                      seed=0, open_loop=True)


class TestEstimatorEquivalence:
    @given(window=st.integers(1, 64),
           universe=st.integers(1, 32),
           n=st.integers(1, 400),
           seed=st.integers(0, 10**6))
    @settings(max_examples=32, deadline=None)
    def test_sketch_matches_naive_scan(self, window, universe, n, seed):
        rng = random.Random(seed)
        fast = LocalityEstimator(window)
        naive = NaiveLocalityEstimator(window)
        for _ in range(n):
            fp = rng.randrange(universe).to_bytes(4, "big")
            fast.observe(fp)
            naive.observe(fp)
            assert fast.estimate == naive.estimate
            assert fast.hits == naive.hits
        assert fast.observed == naive.observed == n

    def test_estimator_ranks_streams_by_locality_dial(self):
        """Higher locality dial -> higher estimate, matching oracle."""
        estimates = []
        for locality in (0.0, 0.5, 0.95):
            stream = VdbenchStream(dedup_ratio=3.0, seed=31,
                                   locality=locality, working_set=32)
            estimator = LocalityEstimator(window=256)
            for chunk in stream.chunks(2000):
                estimator.observe(chunk.fingerprint)
            estimates.append(estimator.estimate)
        assert estimates[0] < estimates[1] < estimates[2]


class TestAdmissionAndRecovery:
    def _run(self, policy: str):
        config = PipelineConfig(tenancy_policy=policy,
                                tenancy_cache_entries=SCENARIO_CACHE)
        return run_tenant_mix(SCENARIO, IntegrationMode.CPU_ONLY,
                              SCENARIO_CHUNKS, base_config=config)

    def test_prioritized_beats_shared_lru_and_recovers(self):
        shared = self._run("shared_lru")
        prioritized = self._run("prioritized")
        assert prioritized.inline_hit_rate > shared.inline_hit_rate
        assert prioritized.recovery_fraction >= 0.95
        # The cold tenant is inline-skipped, the hot one never is.
        by_name = {t.name: t for t in prioritized.tenants}
        assert by_name["cold"].skips > 0
        assert by_name["hot"].skips == 0
        assert by_name["hot"].inline_hit_rate > \
            by_name["cold"].inline_hit_rate

    def test_compaction_recovers_skipped_duplicates(self):
        report = self._run("prioritized")
        compaction = report.compaction
        assert compaction["pending"] == 0
        assert compaction["epochs"] > 0
        assert compaction["reclaimed_bytes"] > 0
        # Every chunk either deduped inline or stored; compaction then
        # recovered enough shadows to close the gap to the oracle.
        assert report.effective_dedup_ratio == pytest.approx(
            report.oracle_dedup_ratio, rel=0.05)
        assert report.effective_dedup_ratio > \
            report.inline_dedup_ratio

    def test_per_tenant_slo_histograms_populated(self):
        report = self._run("prioritized")
        for tenant in report.tenants:
            assert tenant.chunks > 0
            assert tenant.latency["p99"] > 0.0
            assert tenant.latency["p50"] <= tenant.latency["p99"]

    @pytest.mark.parametrize("mode", list(IntegrationMode))
    def test_policies_run_in_every_mode(self, mode):
        config = PipelineConfig(tenancy_policy="prioritized",
                                tenancy_cache_entries=SCENARIO_CACHE)
        report = run_tenant_mix(SCENARIO, mode, 1024,
                                base_config=config)
        assert report.pipeline.chunks == 1024
        assert report.recovery_fraction >= 0.95
