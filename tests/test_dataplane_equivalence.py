"""Fast path vs pre-PR reference: byte-for-byte stream equivalence.

The data-plane fast path (shared rolling-key array, slice-doubling match
extension, occurrence-indexed match finding, slice copy-out, grouped
flag emission) promises *byte-identical* output.  These tests hold every
rewritten loop to that promise against the executable pre-PR
specifications in :mod:`tests.reference_codecs`, over an adversarial
corpus chosen to hit the rewrites' edge cases: overlapping copies of
every small period, matches that end exactly at limits and windows,
hash-collision-heavy content, sub-``min_match`` tails, and GPU segment
seams.
"""

import random

import pytest

from tests.reference_codecs import (
    ReferenceLzssCodec,
    ReferenceMatchFinder,
    ReferenceQuickLzCodec,
    reference_decode_tokens,
    reference_segment_tokens,
)
from repro.bench.dataplane import build_corpus
from repro.compression.lz_common import (
    DEFAULT_PARAMS,
    Literal,
    Match,
    common_prefix_length,
    common_prefix_length_pair,
    copy_match,
    decode_tokens,
)
from repro.compression.lzss import (
    IndexedMatchFinder,
    LzssCodec,
    MatchFinder,
)
from repro.compression.quicklz import QuickLzCodec
from repro.gpu.kernels.lz import SegmentLzKernel


def adversarial_corpus() -> list[tuple[str, bytes]]:
    """The bench corpus plus blocks built to stress the fast paths."""
    blocks = list(build_corpus())
    rng = random.Random(0xDA7A)
    # Overlapping-copy periods 1..8: copy_match's slice replication must
    # reproduce the per-byte periodic extension for every small period.
    for period in range(1, 9):
        unit = bytes(rng.randrange(256) for _ in range(period))
        blocks.append((f"period{period}", (unit * 600)[:2048]))
    # Match lengths pinned at the encoders' caps: runs of exactly
    # max_match (LZSS 18) and _MAX_MATCH (QuickLZ 258) plus one.
    blocks.append(("cap18", b"x" * 18 + b"Q" + b"x" * 19 + b"Q"))
    blocks.append(("cap258", b"y" * 258 + b"Q" + b"y" * 259))
    # A repeat at exactly the LZSS window distance, and one just past it.
    probe = bytes(rng.randrange(256) for _ in range(32))
    filler = bytes(rng.randrange(1, 255) for _ in range(4096 - 32))
    blocks.append(("window_edge", probe + filler[:4096 - 64] + probe))
    blocks.append(("window_past", probe + filler + probe))
    # Two-symbol soup: dense 3-byte key collisions, long chains.
    blocks.append(("soup", bytes(rng.choice(b"ab")
                                 for _ in range(2048))))
    # Low-entropy random: frequent short matches that fizzle inside the
    # 8-byte head scan of common_prefix_length.
    blocks.append(("lowent", bytes(rng.randrange(16)
                                   for _ in range(2048))))
    # Text with long-range self-similarity for the lazy parse.
    sentence = b"it was the best of times, it was the worst of times. "
    blocks.append(("dickens", (sentence * 40)[:2048]))
    for size in (0, 1, 2, 3, 4, 7):
        blocks.append((f"tiny{size}",
                       bytes(rng.randrange(256) for _ in range(size))))
    return blocks


CORPUS = adversarial_corpus()
IDS = [name for name, _ in CORPUS]
PAYLOADS = [payload for _, payload in CORPUS]


# -- primitive equivalence ---------------------------------------------------

def test_common_prefix_length_matches_naive_scan():
    rng = random.Random(7)
    for _ in range(300):
        n = rng.randrange(2, 600)
        # Skewed alphabet so long shared prefixes actually occur.
        data = bytes(rng.choice(b"aab") for _ in range(n))
        a = rng.randrange(n - 1)
        b = rng.randrange(n - 1)
        limit = rng.randrange(0, n - max(a, b))
        expected = 0
        while (expected < limit
               and data[a + expected] == data[b + expected]):
            expected += 1
        assert common_prefix_length(data, a, b, limit) == expected


def test_common_prefix_length_pair_matches_naive_scan():
    rng = random.Random(17)
    for _ in range(300):
        abuf = bytes(rng.choice(b"aab")
                     for _ in range(rng.randrange(1, 400)))
        bbuf = bytes(rng.choice(b"aab")
                     for _ in range(rng.randrange(1, 400)))
        a = rng.randrange(len(abuf))
        b = rng.randrange(len(bbuf))
        limit = rng.randrange(
            0, min(len(abuf) - a, len(bbuf) - b) + 1)
        expected = 0
        while (expected < limit
               and abuf[a + expected] == bbuf[b + expected]):
            expected += 1
        assert common_prefix_length_pair(abuf, a, bbuf, b,
                                         limit) == expected


def test_copy_match_matches_per_byte_loop():
    rng = random.Random(11)
    for _ in range(200):
        seed = bytes(rng.randrange(256) for _ in range(rng.randrange(1, 40)))
        distance = rng.randrange(1, len(seed) + 1)
        length = rng.randrange(1, 400)
        fast = bytearray(seed)
        copy_match(fast, distance, length)
        slow = bytearray(seed)
        start = len(slow) - distance
        for i in range(length):
            slow.append(slow[start + i])
        assert fast == slow


# -- QuickLZ ----------------------------------------------------------------

@pytest.mark.parametrize("payload", PAYLOADS, ids=IDS)
def test_quicklz_streams_byte_identical(payload):
    production = QuickLzCodec()
    reference = ReferenceQuickLzCodec()
    blob = production.encode(payload)
    assert blob == reference.encode(payload)
    # Round-trip through both decoder generations.
    assert production.decode(blob) == payload
    assert reference.decode(blob) == payload


# -- LZSS -------------------------------------------------------------------

@pytest.mark.parametrize("lazy", (False, True), ids=("greedy", "lazy"))
@pytest.mark.parametrize("payload", PAYLOADS, ids=IDS)
def test_lzss_streams_byte_identical(payload, lazy):
    production = LzssCodec(lazy=lazy)
    reference = ReferenceLzssCodec(lazy=lazy)
    blob = production.encode(payload)
    assert blob == reference.encode(payload)
    assert production.decode(blob) == payload


@pytest.mark.parametrize("payload", PAYLOADS, ids=IDS)
def test_indexed_finder_reproduces_chain_finder(payload):
    """Under the greedy insert discipline the occurrence index must
    reproduce the incremental chain finder's answer at every parse
    position — including the bounded-chain eviction behaviour."""
    incremental = MatchFinder(payload)
    reference = ReferenceMatchFinder(payload)
    indexed = IndexedMatchFinder(payload)
    pos = 0
    n = len(payload)
    while pos < n:
        expected = reference.longest_match(pos)
        assert incremental.longest_match(pos) == expected
        assert indexed.longest_match(pos) == expected
        step = expected.length if expected is not None else 1
        for offset in range(step):
            incremental.insert(pos + offset)
            reference.insert(pos + offset)
        pos += step


def test_decode_tokens_matches_reference_expander():
    rng = random.Random(13)
    for _ in range(100):
        tokens = [Literal(rng.randrange(256))
                  for _ in range(rng.randrange(1, 6))]
        for _ in range(rng.randrange(0, 30)):
            produced = sum(
                t.length if isinstance(t, Match) else 1 for t in tokens)
            if rng.random() < 0.6:
                tokens.append(Match(
                    distance=rng.randrange(1, produced + 1),
                    length=rng.randrange(3, 19)))
            else:
                tokens.append(Literal(rng.randrange(256)))
        assert decode_tokens(tokens) == reference_decode_tokens(tokens)


# -- GPU segment search ------------------------------------------------------

@pytest.mark.parametrize("segments", (2, 3, 8))
@pytest.mark.parametrize(
    "name", ("seam512", "period3", "window_past", "soup"))
def test_gpu_segment_tokens_match_reference(name, segments):
    payload = dict(CORPUS)[name]
    kernel = SegmentLzKernel([payload], segments_per_chunk=segments)
    (outputs,) = kernel.execute()
    assert outputs, "kernel produced no segments"
    for output in outputs:
        expected = reference_segment_tokens(
            payload, output.start, output.end, DEFAULT_PARAMS)
        assert output.tokens == expected, (
            f"segment [{output.start}, {output.end}) diverged")
