"""Tests for the log-bucketed latency histogram."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.sim.histogram import LatencyHistogram


class TestLatencyHistogram:
    def test_empty(self):
        hist = LatencyHistogram()
        assert hist.mean == 0.0
        assert hist.percentile(0.99) == 0.0
        assert hist.count == 0

    def test_mean_is_exact(self):
        hist = LatencyHistogram()
        hist.record_many([1.0, 2.0, 3.0])
        assert hist.mean == pytest.approx(2.0)
        assert hist.peak == 3.0

    def test_percentiles_ordered(self):
        hist = LatencyHistogram()
        rng = random.Random(1)
        hist.record_many(rng.expovariate(100.0) for _ in range(5000))
        p50 = hist.percentile(0.50)
        p99 = hist.percentile(0.99)
        p999 = hist.percentile(0.999)
        assert p50 <= p99 <= p999 <= hist.peak

    def test_percentile_accuracy_within_bucket_resolution(self):
        hist = LatencyHistogram()
        values = [i / 1000.0 for i in range(1, 1001)]  # 1ms..1s uniform
        hist.record_many(values)
        # P50 should land near 0.5 s within the ~4.7% bucket width.
        assert hist.percentile(0.50) == pytest.approx(0.5, rel=0.08)
        assert hist.percentile(0.99) == pytest.approx(0.99, rel=0.08)

    def test_subfloor_samples_land_in_first_bucket(self):
        hist = LatencyHistogram(floor=1e-6)
        hist.record(1e-9)
        assert hist.percentile(1.0) <= 1e-6

    def test_negative_sample_rejected(self):
        with pytest.raises(ConfigError):
            LatencyHistogram().record(-1.0)

    def test_invalid_percentile_rejected(self):
        with pytest.raises(ConfigError):
            LatencyHistogram().percentile(1.5)

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ConfigError):
            LatencyHistogram(floor=0.0)
        with pytest.raises(ConfigError):
            LatencyHistogram(base=1.0)

    def test_summary_keys(self):
        hist = LatencyHistogram()
        hist.record(0.01)
        summary = hist.summary()
        assert set(summary) == {"mean", "p50", "p99", "p999", "max",
                                "overflow"}

    def test_huge_samples_clamp_to_last_bucket(self):
        hist = LatencyHistogram(n_buckets=16)
        hist.record(1e9)
        assert hist.percentile(1.0) == 1e9  # clamped to observed peak

    def test_overflow_counted_and_surfaced(self):
        hist = LatencyHistogram(n_buckets=16)
        hist.record(1e-6)   # in range
        hist.record(1e9)    # far past the 16-bucket range
        hist.record(2e9)
        assert hist.overflow == 2
        assert hist.summary()["overflow"] == 2.0
        # In-range histograms report zero, so goldens stay clean.
        ok = LatencyHistogram()
        ok.record(0.01)
        assert ok.summary()["overflow"] == 0.0

    def test_zero_samples_summary(self):
        summary = LatencyHistogram().summary()
        assert summary == {"mean": 0.0, "p50": 0.0, "p99": 0.0,
                           "p999": 0.0, "max": 0.0, "overflow": 0.0}

    def test_single_sample_percentiles(self):
        hist = LatencyHistogram()
        hist.record(0.5)
        # Every non-degenerate percentile of a one-sample histogram is
        # that sample (p0 targets zero mass and reports the floor).
        for q in (0.01, 0.5, 0.99, 1.0):
            assert hist.percentile(q) == pytest.approx(0.5, rel=0.05)

    def test_percentile_interpolation_at_bucket_boundary(self):
        hist = LatencyHistogram(floor=1e-6, base=2.0, n_buckets=32)
        # Two samples in distinct buckets: the p50 cut lands exactly on
        # the first sample's bucket; its reported value must not exceed
        # the bucket's upper edge clamped to the observed peak.
        hist.record(3e-6)   # bucket (2e-6, 4e-6]
        hist.record(100e-6)
        p50 = hist.percentile(0.50)
        assert p50 <= 4e-6
        assert hist.percentile(1.0) == pytest.approx(100e-6)

    @given(st.lists(st.floats(min_value=1e-9, max_value=1e3,
                              allow_nan=False), min_size=1, max_size=500))
    @settings(max_examples=40, deadline=None)
    def test_percentile_bounds_property(self, samples):
        hist = LatencyHistogram()
        hist.record_many(samples)
        assert hist.percentile(0.0) <= hist.percentile(1.0)
        assert hist.percentile(1.0) <= hist.peak * (1 + 1e-12)
        assert hist.count == len(samples)
