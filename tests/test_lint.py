"""The AST lint layer: fixtures, baseline machinery, CLI wiring.

Each ``tests/lint_fixtures/repNNN_*.py`` file seeds exactly the
violations its rule is for (plus negative examples on neighbouring
lines); the tests pin the (rule, line) pairs so a checker regression
shows up as a diff, not a shrug.  The repo-tree test is the same gate
CI runs: the source tree must lint clean modulo the committed
baseline, with no stale baseline entries.
"""

import json
from pathlib import Path

import pytest

from repro.analysis import (
    Baseline,
    BaselineEntry,
    Diagnostic,
    LintConfig,
    all_checkers,
    checker_by_rule,
    run_lint,
)
from repro.analysis.context import FileContext
from repro.cli import main
from repro.errors import LintError

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURES = REPO_ROOT / "tests" / "lint_fixtures"
BASELINE = REPO_ROOT / ".repro-lint-baseline.json"

#: fixture file -> expected (rule, line) findings, in line order.
EXPECTED = {
    "rep101_wallclock.py": [("REP101", 9), ("REP101", 13)],
    "rep102_unseeded.py": [("REP102", 8), ("REP102", 12)],
    "rep103_default_seed.py": [("REP103", 8)],
    "rep104_unordered.py": [("REP104", 8), ("REP104", 10),
                            ("REP104", 12)],
    "rep201_yield_literal.py": [("REP201", 6), ("REP201", 7)],
    "rep202_unpaired_acquire.py": [("REP202", 10)],
    "rep203_private_api.py": [("REP203", 6), ("REP203", 10)],
    "rep301_missing_slots.py": [("REP301", 7)],
    "rep401_layering.py": [("REP401", 4)],
    "rep501_float_eq.py": [("REP501", 6), ("REP501", 8)],
    "rep502_byte_loop.py": [("REP502", 7), ("REP502", 14)],
    "rep503_fp_decompose.py": [("REP503", 8), ("REP503", 9),
                               ("REP503", 13)],
    "rep504_chunk_loop.py": [("REP504", 6), ("REP504", 11)],
    "rep601_now_arith.py": [("REP601", 6), ("REP601", 7)],
    "rep701_impure_memo.py": [("REP701", 25)],
    "rep702_shared_mutation.py": [("REP702", 20), ("REP702", 26)],
    "rep703_rng_flow.py": [("REP703", 9), ("REP703", 14),
                           ("REP703", 20), ("REP703", 24),
                           ("REP703", 28)],
    "rep704_module_state.py": [("REP704", 10), ("REP704", 11)],
    "rep801_cluster_access.py": [("REP801", 8), ("REP801", 9),
                                 ("REP801", 13)],
    "rep901_tenant_access.py": [("REP901", 8), ("REP901", 9),
                                ("REP901", 13), ("REP901", 17)],
}


def _lint(*paths: Path, baseline: Baseline | None = None):
    return run_lint(list(paths), LintConfig(root=REPO_ROOT),
                    baseline=baseline)


class TestFixtureFindings:
    @pytest.mark.parametrize("fixture", sorted(EXPECTED))
    def test_expected_diagnostics(self, fixture):
        report = _lint(FIXTURES / fixture)
        found = sorted((d.rule, d.line) for d in report.new)
        assert found == sorted(EXPECTED[fixture])
        assert not report.ok

    @pytest.mark.parametrize("fixture", sorted(EXPECTED))
    def test_cli_exits_nonzero(self, fixture):
        code = main(["lint", "--no-baseline", str(FIXTURES / fixture)])
        assert code == 1

    def test_clean_fixture(self):
        report = _lint(FIXTURES / "clean.py")
        assert report.ok
        assert report.suppressed == 0

    def test_inline_suppression(self):
        report = _lint(FIXTURES / "suppressed.py")
        assert report.ok
        assert report.suppressed == 1

    def test_every_rule_has_a_fixture(self):
        covered = {rule for pairs in EXPECTED.values()
                   for rule, _line in pairs}
        registered = {c.rule for c in all_checkers(LintConfig())}
        assert covered == registered


class TestRepoTree:
    """The gate CI enforces: clean modulo the committed baseline."""

    def test_repo_tree_clean_with_baseline(self):
        baseline = Baseline.load(BASELINE)
        report = _lint(REPO_ROOT / "src" / "repro", baseline=baseline)
        assert report.ok, "\n" + report.format_text()
        assert not report.stale_baseline, (
            "baseline entries no longer match any finding: "
            f"{report.stale_baseline}")
        # The grandfathered findings must still be *detected* (and
        # matched), or the baseline is dead weight.
        assert {d.rule for d in report.baselined} == {
            "REP103", "REP201", "REP203", "REP504", "REP601",
            "REP701"}

    def test_cli_repo_run(self, monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        assert main(["lint"]) == 0

    def test_rule_filter(self):
        config = LintConfig(root=REPO_ROOT, rules=("REP101",))
        report = run_lint([FIXTURES], config)
        assert report.rules_run == ["REP101"]
        assert {d.rule for d in report.new} == {"REP101"}

    def test_unknown_rule_rejected(self):
        with pytest.raises(LintError, match="REP999"):
            all_checkers(LintConfig(rules=("REP999",)))

    def test_checker_by_rule(self):
        checker = checker_by_rule("REP301", LintConfig())
        assert checker.rule == "REP301"


class TestBaseline:
    def test_roundtrip(self, tmp_path):
        report = _lint(FIXTURES / "rep101_wallclock.py")
        baseline = Baseline.from_diagnostics(report.new,
                                             reason="fixture test")
        path = tmp_path / "baseline.json"
        baseline.save(path)
        loaded = Baseline.load(path)
        again = _lint(FIXTURES / "rep101_wallclock.py",
                      baseline=loaded)
        assert again.ok
        assert len(again.baselined) == len(report.new)
        assert not again.stale_baseline

    def test_stale_entry_detected(self):
        baseline = Baseline(entries=[BaselineEntry(
            rule="REP101", path="tests/lint_fixtures/clean.py",
            key="gone:time.time", reason="never existed")])
        report = _lint(FIXTURES / "clean.py", baseline=baseline)
        assert report.ok
        assert len(report.stale_baseline) == 1

    def test_partial_run_skips_stale_detection(self):
        # A run over less than the full tree cannot prove any entry
        # stale — the CLI passes check_stale=False for explicit path
        # arguments, same as --changed does via restrict.
        baseline = Baseline.load(BASELINE)
        report = run_lint([FIXTURES / "clean.py"],
                          LintConfig(root=REPO_ROOT),
                          baseline=baseline, check_stale=False)
        assert report.ok
        assert not report.stale_baseline

    def test_matching_is_line_insensitive(self):
        # Baseline keys use (rule, path, key): a finding that moves to
        # another line stays matched.
        report = _lint(FIXTURES / "rep203_private_api.py")
        entries = [BaselineEntry(rule=d.rule, path=d.path, key=d.key,
                                 reason="pinned") for d in report.new]
        again = _lint(FIXTURES / "rep203_private_api.py",
                      baseline=Baseline(entries=entries))
        assert again.ok

    def test_bad_baseline_version(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 99, "entries": []}))
        with pytest.raises(LintError, match="version"):
            Baseline.load(path)

    def test_stale_entry_fails_cli(self, tmp_path, monkeypatch):
        # Stale detection only runs on default (full-tree) invocations;
        # build a one-file tree so the default paths cover everything.
        tree = tmp_path / "src" / "repro"
        tree.mkdir(parents=True)
        (tree / "clean.py").write_text((FIXTURES / "clean.py").read_text())
        path = tmp_path / "baseline.json"
        Baseline(entries=[BaselineEntry(
            rule="REP101", path="tests/lint_fixtures/clean.py",
            key="gone:time.time", reason="rotted")]).save(path)
        monkeypatch.chdir(tmp_path)
        assert main(["lint", "--baseline", str(path)]) == 1

    def test_explicit_path_skips_stale_cli(self, tmp_path):
        # The same rotten entry is *not* called stale when the run is
        # narrowed to explicit paths — it cannot see every finding.
        path = tmp_path / "baseline.json"
        Baseline(entries=[BaselineEntry(
            rule="REP101", path="tests/lint_fixtures/clean.py",
            key="gone:time.time", reason="rotted")]).save(path)
        assert main(["lint", "--baseline", str(path),
                     str(FIXTURES / "clean.py")]) == 0

    def test_cli_write_then_pass(self, tmp_path):
        path = tmp_path / "baseline.json"
        fixture = str(FIXTURES / "rep501_float_eq.py")
        assert main(["lint", "--write-baseline",
                     "--baseline", str(path), fixture]) == 0
        assert path.exists()
        assert main(["lint", "--baseline", str(path), fixture]) == 0
        assert main(["lint", "--no-baseline", fixture]) == 1


class TestCliSurface:
    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in ("REP101", "REP203", "REP301", "REP401", "REP501"):
            assert rule in out

    def test_json_format(self, capsys):
        code = main(["lint", "--no-baseline", "--format", "json",
                     str(FIXTURES / "rep401_layering.py")])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert payload["new"][0]["rule"] == "REP401"
        assert payload["new"][0]["line"] == 4

    def test_missing_path_errors(self, capsys):
        assert main(["lint", "--no-baseline",
                     "/nonexistent/nowhere.py"]) == 2

    def test_syntax_error_is_lint_error(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n")
        with pytest.raises(LintError, match="bad.py"):
            FileContext.from_path(bad, tmp_path)


class TestModuleResolution:
    def test_module_override_comment(self):
        ctx = FileContext.from_path(FIXTURES / "rep101_wallclock.py",
                                    REPO_ROOT)
        assert ctx.module == "repro.sim.fakeclock"

    def test_real_tree_module_names(self):
        ctx = FileContext.from_path(
            REPO_ROOT / "src" / "repro" / "sim" / "engine.py", REPO_ROOT)
        assert ctx.module == "repro.sim.engine"
