"""Unit tests for the GPU device model, memory, PCIe, and SIMT executor."""

import numpy as np
import pytest

from repro.errors import ConfigError, GpuMemoryError, KernelError
from repro.gpu import (
    DeviceMemory,
    GpuDevice,
    GpuSpec,
    Kernel,
    KernelCost,
    PcieLink,
    PcieSpec,
    RADEON_HD_7970,
    SimtGrid,
)
from repro.sim import Environment


class TestGpuSpec:
    def test_testbed_lane_count(self):
        assert RADEON_HD_7970.total_lanes == 2048

    def test_effective_lanes_respect_occupancy(self):
        assert RADEON_HD_7970.effective_lanes == pytest.approx(2048 * 0.25)

    def test_invalid_occupancy_rejected(self):
        with pytest.raises(ConfigError):
            GpuSpec(name="x", compute_units=1, lanes_per_cu=1, freq_hz=1e9,
                    mem_bandwidth_bps=1e9, mem_capacity_bytes=1024,
                    launch_overhead_s=0.0, sync_overhead_s=0.0,
                    occupancy=0.0)


class TestDeviceMemory:
    def test_alloc_and_free_track_usage(self):
        mem = DeviceMemory(1024)
        buf = mem.alloc(512, "a")
        assert mem.used_bytes == 512
        buf.free()
        assert mem.used_bytes == 0
        assert mem.peak_bytes == 512

    def test_oom_raises(self):
        mem = DeviceMemory(1024)
        mem.alloc(1000, "big")
        with pytest.raises(GpuMemoryError, match="out of device memory"):
            mem.alloc(100, "too much")

    def test_use_after_free_raises(self):
        mem = DeviceMemory(1024)
        buf = mem.alloc(100, "x")
        buf.free()
        with pytest.raises(GpuMemoryError, match="use after free"):
            buf.read()

    def test_double_free_raises(self):
        mem = DeviceMemory(1024)
        buf = mem.alloc(100, "x")
        mem._release(buf)
        with pytest.raises(GpuMemoryError, match="double free"):
            buf.free()

    def test_read_unwritten_buffer_raises(self):
        mem = DeviceMemory(1024)
        buf = mem.alloc(100, "x")
        with pytest.raises(GpuMemoryError, match="unwritten"):
            buf.read()

    def test_oversized_write_raises(self):
        mem = DeviceMemory(1024)
        buf = mem.alloc(8, "x")
        with pytest.raises(GpuMemoryError):
            buf.write(np.zeros(16, dtype=np.uint8))

    def test_write_read_roundtrip(self):
        mem = DeviceMemory(1024)
        buf = mem.alloc(16, "x")
        data = np.arange(16, dtype=np.uint8)
        buf.write(data)
        assert np.array_equal(buf.read(), data)


class TestPcie:
    def test_zero_bytes_is_free(self):
        link = PcieLink()
        assert link.transfer_time(0) == 0.0

    def test_small_transfer_latency_bound(self):
        link = PcieLink()
        tiny = link.transfer_time(64)
        assert tiny >= link.spec.setup_latency_s
        assert tiny < 2 * link.spec.setup_latency_s

    def test_large_transfer_bandwidth_bound(self):
        link = PcieLink()
        one_gig = link.transfer_time(int(link.spec.bandwidth_bps))
        assert one_gig == pytest.approx(1.0 + link.spec.setup_latency_s)

    def test_negative_size_rejected(self):
        link = PcieLink()
        with pytest.raises(ConfigError):
            link.transfer_time(-1)

    def test_traffic_accounting(self):
        link = PcieLink()
        link.record(100, to_device=True)
        link.record(40, to_device=False)
        assert link.bytes_to_device == 100
        assert link.bytes_from_device == 40
        assert link.transfer_count == 2


class TestSimtGrid:
    def test_every_thread_runs_with_correct_ids(self):
        seen = []

        def kernel(ctx):
            seen.append((ctx.global_id, ctx.local_id, ctx.group.group_id))

        SimtGrid(global_size=8, local_size=4).run(kernel)
        assert seen == [(i, i % 4, i // 4) for i in range(8)]

    def test_bad_geometry_rejected(self):
        with pytest.raises(KernelError):
            SimtGrid(global_size=10, local_size=4)

    def test_local_memory_shared_within_group_only(self):
        def kernel(ctx, sink):
            ctx.group.local_mem.setdefault("ids", []).append(ctx.global_id)
            if ctx.local_id == ctx.group.local_size - 1:
                sink.append(sorted(ctx.group.local_mem["ids"]))

        sink = []
        SimtGrid(global_size=8, local_size=4).run(kernel, sink)
        assert sink == [[0, 1, 2, 3], [4, 5, 6, 7]]

    def test_barrier_phases_synchronize(self):
        def kernel(ctx, log):
            ctx.group.local_mem.setdefault("phase1", set()).add(ctx.local_id)
            yield  # barrier
            log.append(len(ctx.group.local_mem["phase1"]))

        log = []
        SimtGrid(global_size=4, local_size=4).run(kernel, log)
        # After the barrier every thread must observe all 4 phase-1 writes.
        assert log == [4, 4, 4, 4]

    def test_barrier_divergence_detected(self):
        def kernel(ctx):
            if ctx.local_id == 0:
                yield  # only thread 0 hits the barrier

        with pytest.raises(KernelError, match="barrier divergence"):
            SimtGrid(global_size=4, local_size=4).run(kernel)

    def test_uniform_work_has_full_efficiency(self):
        def kernel(ctx):
            ctx.work(10)

        stats = SimtGrid(global_size=128, local_size=64).run(kernel)
        assert stats.wavefront_efficiency == pytest.approx(1.0)
        assert stats.work_units == 1280

    def test_divergent_work_lowers_efficiency(self):
        def kernel(ctx):
            ctx.work(100 if ctx.global_id == 0 else 1)

        stats = SimtGrid(global_size=64, local_size=64).run(kernel)
        assert stats.wavefront_efficiency < 0.05

    def test_barrier_count_reported(self):
        def kernel(ctx):
            yield
            yield

        stats = SimtGrid(global_size=8, local_size=4).run(kernel)
        assert stats.barriers == 4  # 2 barriers x 2 workgroups


class _NoopKernel(Kernel):
    name = "noop"

    def __init__(self, threads=64, lane_cycles=64e3, critical=1e3,
                 read=0.0, written=0.0, nbytes_in=0, nbytes_out=0):
        self._cost = KernelCost(
            name=self.name, threads=threads, lane_cycles_total=lane_cycles,
            critical_path_cycles=critical, bytes_read=read,
            bytes_written=written)
        self._in = nbytes_in
        self._out = nbytes_out

    def execute(self):
        return "ran"

    def cost(self):
        return self._cost

    def bytes_in(self):
        return self._in

    def bytes_out(self):
        return self._out


class TestGpuDevice:
    def _launch(self, device, kernel):
        env = device.env
        result = {}

        def proc():
            result["value"] = yield from device.launch(kernel)

        env.process(proc())
        env.run()
        return result["value"]

    def test_launch_returns_functional_result(self):
        env = Environment()
        gpu = GpuDevice(env)
        assert self._launch(gpu, _NoopKernel()) == "ran"
        assert gpu.kernels_launched == 1

    def test_launch_charges_at_least_fixed_overheads(self):
        env = Environment()
        gpu = GpuDevice(env)
        self._launch(gpu, _NoopKernel(lane_cycles=0.0, critical=0.0))
        floor = gpu.spec.launch_overhead_s + gpu.spec.sync_overhead_s
        assert env.now >= floor

    def test_compute_bound_kernel_time(self):
        env = Environment()
        gpu = GpuDevice(env)
        lanes = gpu.spec.effective_lanes
        cost = KernelCost(name="k", threads=10**6,
                          lane_cycles_total=lanes * gpu.spec.freq_hz,
                          critical_path_cycles=0.0,
                          bytes_read=0.0, bytes_written=0.0)
        assert gpu.kernel_time(cost) == pytest.approx(1.0)

    def test_memory_bound_kernel_time(self):
        env = Environment()
        gpu = GpuDevice(env)
        cost = KernelCost(name="k", threads=10**6,
                          lane_cycles_total=0.0, critical_path_cycles=0.0,
                          bytes_read=gpu.spec.mem_bandwidth_bps,
                          bytes_written=0.0)
        assert gpu.kernel_time(cost) == pytest.approx(1.0)

    def test_latency_floor_binds_small_launches(self):
        """A single-thread kernel cannot go faster than its serial chain."""
        env = Environment()
        gpu = GpuDevice(env)
        cost = KernelCost(name="k", threads=1,
                          lane_cycles_total=1e6, critical_path_cycles=1e6,
                          bytes_read=0.0, bytes_written=0.0)
        assert gpu.kernel_time(cost) == pytest.approx(1e6 / gpu.spec.freq_hz)

    def test_queue_serializes_launches(self):
        env = Environment()
        gpu = GpuDevice(env)
        kernel = _NoopKernel(lane_cycles=0.0, critical=gpu.spec.freq_hz)

        def proc():
            yield from gpu.launch(kernel)

        env.process(proc())
        env.process(proc())
        env.run()
        per_launch = gpu.launch_time(kernel)
        assert env.now == pytest.approx(2 * per_launch)
        assert gpu.launches[1].queue_wait == pytest.approx(per_launch)

    def test_pcie_costs_included_in_launch(self):
        env = Environment()
        gpu = GpuDevice(env)
        with_io = gpu.launch_time(_NoopKernel(nbytes_in=10**6,
                                              nbytes_out=10**6))
        without_io = gpu.launch_time(_NoopKernel())
        assert with_io > without_io

    def test_transfer_roundtrip(self):
        env = Environment()
        gpu = GpuDevice(env)
        buf = gpu.memory.alloc(64, "x")
        data = np.arange(64, dtype=np.uint8)
        out = {}

        def proc():
            yield from gpu.transfer_to_device(buf, data)
            out["data"] = yield from gpu.transfer_from_device(buf)

        env.process(proc())
        env.run()
        assert np.array_equal(out["data"], data)
        assert gpu.pcie.bytes_to_device == 64
        assert gpu.pcie.bytes_from_device == 64
        assert env.now == pytest.approx(2 * gpu.pcie.transfer_time(64))
