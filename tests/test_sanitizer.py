"""End-of-run sanitizer: ``Environment.finish_check``.

The sanitizer is the runtime twin of the static sim-protocol lint
rules: after a full drain it asserts that no process is still alive,
nothing is still scheduled, and no registered resource or store holds
leaked state (an anonymous ``try_acquire`` slot being the classic
leak REP202 exists to prevent).
"""

import pytest

from repro.core.config import PipelineConfig
from repro.core.modes import IntegrationMode
from repro.core.pipeline import ReductionPipeline
from repro.cpu.model import SimCpu
from repro.errors import SanitizerError
from repro.sim import Environment, Resource, Store
from repro.storage.ssd import SsdModel
from repro.workload.vdbench import VdbenchStream


class TestCleanRuns:
    def test_empty_environment_is_clean(self):
        Environment().finish_check()

    def test_completed_processes_are_clean(self):
        env = Environment()
        cpu = Resource(env, capacity=2, name="cpu")

        def worker():
            with cpu.request() as req:
                yield req
                yield env.timeout(1.0)

        for _ in range(4):
            env.process(worker())
        env.run()
        env.finish_check()

    def test_fast_path_acquire_release_is_clean(self):
        env = Environment()
        pool = Resource(env, capacity=1, name="pool")
        assert pool.try_acquire()
        pool.release_acquired()
        env.run()
        env.finish_check()

    def test_drained_store_is_clean(self):
        env = Environment()
        store = Store(env, name="stage")

        def producer():
            for i in range(3):
                yield store.put(i)

        def consumer():
            for _ in range(3):
                yield store.get()

        env.process(producer())
        env.process(consumer())
        env.run()
        env.finish_check()

    def test_buffered_items_are_not_a_leak(self):
        # A store is a buffer; leftover items are legitimate state.
        env = Environment()
        store = Store(env, name="stage")

        def producer():
            yield store.put("orphan")

        env.process(producer())
        env.run()
        env.finish_check()


class TestLeakDetection:
    def test_leaked_fast_path_slot(self):
        env = Environment()
        pool = Resource(env, capacity=1, name="pool")
        assert pool.try_acquire()
        env.run()
        with pytest.raises(SanitizerError, match="pool.*still held"):
            env.finish_check()

    def test_leaked_granted_request(self):
        env = Environment()
        pool = Resource(env, capacity=1, name="pool")

        def hog():
            yield pool.request()  # granted, never released

        env.process(hog())
        env.run()
        with pytest.raises(SanitizerError, match="still held"):
            env.finish_check()

    def test_starved_waiter_reported(self):
        env = Environment()
        pool = Resource(env, capacity=1, name="pool")
        assert pool.try_acquire()

        def waiter():
            yield pool.request()  # never granted: the slot leaked

        env.process(waiter())
        env.run()
        with pytest.raises(SanitizerError) as err:
            env.finish_check()
        message = str(err.value)
        assert "still held" in message
        assert "waiting" in message
        assert "process(es) still alive" in message

    def test_live_process_detected(self):
        env = Environment()

        def stuck():
            yield env.event()  # nobody ever triggers this

        env.process(stuck())
        env.run()
        with pytest.raises(SanitizerError, match="still alive"):
            env.finish_check()

    def test_pending_event_detected(self):
        env = Environment()
        env.timeout(5.0)
        # Horizon-limited run: the timeout is still on the calendar.
        env.run(until=1.0)
        with pytest.raises(SanitizerError, match="still scheduled"):
            env.finish_check()

    def test_parked_store_get_detected(self):
        env = Environment()
        store = Store(env, name="stage")

        def starving_consumer():
            yield store.get()

        env.process(starving_consumer())
        env.run()
        with pytest.raises(SanitizerError, match="never satisfied"):
            env.finish_check()

    def test_failed_process_still_counts_as_terminated(self):
        env = Environment()

        def crasher():
            yield env.timeout(1.0)
            raise RuntimeError("boom")

        env.process(crasher())
        with pytest.raises(RuntimeError):
            env.run()
        # The generator finished (by raising): not an alive-process leak,
        # and its failure event has already been dispatched.
        env.finish_check()


class TestPipelineIntegration:
    def test_pipeline_run_passes_finish_check(self):
        config = PipelineConfig().with_overrides(
            mode=IntegrationMode.CPU_ONLY, finish_check=True)
        env = Environment()
        pipeline = ReductionPipeline(env, config, cpu=SimCpu(env),
                                     ssd=SsdModel(env))
        stream = VdbenchStream(dedup_ratio=2.0, comp_ratio=2.0,
                               chunk_size=config.chunk_size, seed=3)
        report = pipeline.run(stream.chunks(64), total=64)
        assert report.chunks == 64

    def test_flag_defaults_off(self):
        assert PipelineConfig().finish_check is False


class TestChargeFastPath:
    def test_coalesced_charge_leaves_no_slots(self):
        # charge() claims threads via try_acquire and hands them back in
        # a callback — exactly what finish_check audits.
        env = Environment()
        cpu = SimCpu(env)

        def burn():
            for _ in range(10):
                yield cpu.charge(1000.0)

        for _ in range(12):  # oversubscribe: 12 processes, 8 threads
            env.process(burn())
        env.run()
        env.finish_check()
