"""The inter-procedural effect engine: verdicts, discovery, economy.

Three layers of evidence that the REP70x rules stand on solid ground:
unit verdicts on small synthetic modules (the purity lattice and the
fixpoint behave), whole-tree discovery (the engine *finds* every memo
family the fast paths ship, rather than checking a hand-kept list),
and a parse-economy property (one ``ast.parse`` per file per lint run,
shared by every rule and the call graph).  The hypothesis bridge test
ties the static verdict to a runtime oracle: any function the engine
calls pure must be observably effect-free when executed.
"""

import ast
from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import LintConfig, run_lint
from repro.analysis.context import FileContext
from repro.analysis.effects import EffectAnalysis
from repro.analysis.runner import build_project

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src" / "repro"


def _analysis(source: str,
              module: str = "repro.core.fake") -> EffectAnalysis:
    """Effect analysis over one synthetic module."""
    text = f"# repro-lint: module={module}\n" + source
    ctx = FileContext(Path(f"{module}.py"), f"{module}.py", text)
    return EffectAnalysis([ctx], LintConfig(root=REPO_ROOT))


def _fn(analysis: EffectAnalysis, qualname: str):
    fn = analysis.lookup_function(qualname)
    assert fn is not None, f"engine lost {qualname}"
    return fn


class TestVerdicts:
    def test_arithmetic_is_pure(self):
        analysis = _analysis("def f(x):\n    return x * 2 + 1\n")
        assert _fn(analysis, "repro.core.fake.f").is_pure

    def test_global_mutation_is_impure(self):
        analysis = _analysis(
            "LOG = []\n"
            "def f(x):\n"
            "    LOG.append(x)\n"
            "    return x\n")
        fn = _fn(analysis, "repro.core.fake.f")
        assert not fn.is_pure
        assert {e.kind for e in fn.effects} == {"mutates-global"}

    def test_param_mutation_is_an_effect(self):
        analysis = _analysis("def f(out):\n    out.append(1)\n")
        fn = _fn(analysis, "repro.core.fake.f")
        assert {e.kind for e in fn.effects} == {"mutates-param"}

    def test_fresh_mutation_is_absorbed(self):
        analysis = _analysis(
            "def f(n):\n"
            "    out = []\n"
            "    for i in range(n):\n"
            "        out.append(i)\n"
            "    return out\n")
        assert _fn(analysis, "repro.core.fake.f").is_pure

    def test_effects_propagate_through_calls(self):
        analysis = _analysis(
            "LOG = []\n"
            "def leaf(x):\n"
            "    LOG.append(x)\n"
            "def caller(x):\n"
            "    leaf(x)\n"
            "    return x\n")
        fn = _fn(analysis, "repro.core.fake.caller")
        assert {e.kind for e in fn.effects} == {"mutates-global"}

    def test_param_mutation_lifts_through_fresh_argument(self):
        # The callee mutates its parameter, but the caller binds it to
        # a fresh local — the mutation never escapes the caller.
        analysis = _analysis(
            "def fill(out, n):\n"
            "    out.append(n)\n"
            "def caller(n):\n"
            "    out = []\n"
            "    fill(out, n)\n"
            "    return out\n")
        assert not _fn(analysis, "repro.core.fake.fill").is_pure
        assert _fn(analysis, "repro.core.fake.caller").is_pure

    def test_mutual_recursion_reaches_fixpoint(self):
        analysis = _analysis(
            "def even(n):\n"
            "    return True if n == 0 else odd(n - 1)\n"
            "def odd(n):\n"
            "    return False if n == 0 else even(n - 1)\n")
        assert _fn(analysis, "repro.core.fake.even").is_pure
        assert _fn(analysis, "repro.core.fake.odd").is_pure

    def test_io_is_impure(self):
        analysis = _analysis("def f(x):\n    print(x)\n    return x\n")
        fn = _fn(analysis, "repro.core.fake.f")
        assert "io" in {e.kind for e in fn.effects}

    def test_unseeded_rng_is_impure(self):
        analysis = _analysis(
            "import random\n"
            "def f():\n"
            "    return random.Random().random()\n")
        fn = _fn(analysis, "repro.core.fake.f")
        assert "rng" in {e.kind for e in fn.effects}

    def test_seeded_rng_stays_pure(self):
        analysis = _analysis(
            "import random\n"
            "def f(seed):\n"
            "    return random.Random(seed).random()\n")
        assert _fn(analysis, "repro.core.fake.f").is_pure


class TestMemoDiscovery:
    """The rule verifies what the engine *finds*, not a hand-kept list."""

    def test_all_four_memo_families_discovered(self):
        project = build_project([SRC], LintConfig(root=REPO_ROOT))
        sites = {(fn.qualname, site.container)
                 for fn in project.effects.functions.values()
                 for site in fn.memo_sites}
        families = {
            # 1. codec memos (every codec front-end probes+installs)
            ("repro.compression.quicklz.QuickLzCodec.encode",
             "QuickLzCodec.memo"),
            ("repro.compression.lzss.LzssCodec.encode",
             "LzssCodec.memo"),
            ("repro.compression.huffman.HuffmanCodec.encode",
             "HuffmanCodec.memo"),
            ("repro.compression.huffman.LzssHuffmanCodec.encode",
             "LzssHuffmanCodec.memo"),
            ("repro.compression.gpu_lz.GpuCompressor._refine_memoized",
             "GpuCompressor.memo"),
            # 2. the payload-hash memo
            ("repro.dedup.hashing.PayloadHashMemo.digest",
             "PayloadHashMemo._entries"),
            # 3. the cross-window compression result memo
            ("repro.compression.parallel_cpu."
             "CpuCompressor.compress_window",
             "CpuCompressor._result_memo"),
            # 4. vdbench's regenerated-payload cache
            ("repro.workload.vdbench.VdbenchStream._payload_cached",
             "VdbenchStream._payload_cache"),
        }
        missing = families - sites
        assert not missing, f"memo families lost by discovery: {missing}"

    def test_audited_benign_globals_discovered_as_memos(self):
        project = build_project([SRC], LintConfig(root=REPO_ROOT))
        containers = {site.container
                      for fn in project.effects.functions.values()
                      for site in fn.memo_sites}
        for audited in LintConfig().effect_benign_globals:
            assert audited in containers, \
                f"audited cache {audited} has no discovered memo site"


class TestParseEconomy:
    def test_single_parse_per_file(self, monkeypatch):
        real_parse = ast.parse
        counts: dict[str, int] = {}

        def counting_parse(source, filename="<unknown>", *a, **kw):
            counts[str(filename)] = counts.get(str(filename), 0) + 1
            return real_parse(source, filename, *a, **kw)

        monkeypatch.setattr(ast, "parse", counting_parse)
        report = run_lint([SRC], LintConfig(root=REPO_ROOT))
        # String annotations are micro-parsed in eval mode under the
        # default "<unknown>" filename; only whole-file parses count.
        files = {f: n for f, n in counts.items() if f.endswith(".py")}
        assert report.files_scanned == len(files)
        multi = {f: n for f, n in files.items() if n != 1}
        assert not multi, f"files parsed more than once: {multi}"


_BRIDGE_SOURCE = '''\
STATE = []


def pure_slice(data):
    return bytes(data[:4])


def pure_sum(data):
    total = 0
    for b in data:
        total = total + b
    return total


def impure_log(data):
    STATE.append(len(data))
    return bytes(data[:4])


def impure_inplace(data):
    data[0] = data[0] ^ 255
    return bytes(data)
'''

_BRIDGE_FNS = ("pure_slice", "pure_sum", "impure_log", "impure_inplace")


class TestStaticRuntimeBridge:
    """A static pure verdict must agree with a runtime effect oracle."""

    @given(data=st.binary(min_size=2, max_size=64))
    @settings(max_examples=25, deadline=None)
    def test_pure_verdict_matches_runtime_oracle(self, data):
        analysis = _analysis(_BRIDGE_SOURCE,
                             module="repro.core.fakebridge")
        namespace: dict = {}
        exec(compile(_BRIDGE_SOURCE, "<bridge>", "exec"), namespace)
        for name in _BRIDGE_FNS:
            fn = _fn(analysis, f"repro.core.fakebridge.{name}")
            arg1, arg2 = bytearray(data), bytearray(data)
            state_before = list(namespace["STATE"])
            result1 = namespace[name](arg1)
            result2 = namespace[name](arg2)
            mutated = (list(namespace["STATE"]) != state_before
                       or bytes(arg1) != bytes(data))
            if fn.is_pure:
                assert not mutated, f"{name}: pure verdict, but the " \
                    f"runtime oracle observed a mutation"
                assert result1 == result2, f"{name}: pure verdict, " \
                    f"but two identical calls disagreed"
            else:
                # Soundness the other way: every impure function in
                # this catalog is *observably* impure, so a future
                # engine change that calls one pure fails here.
                assert mutated, f"{name}: impure verdict, but no " \
                    f"observable mutation (catalog drifted?)"
