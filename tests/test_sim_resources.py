"""Unit tests for simulated resources and stores."""

import pytest

from repro.errors import ResourceError
from repro.sim import Environment, Resource, Store
from repro.sim.resources import PriorityResource


def test_resource_capacity_validation():
    env = Environment()
    with pytest.raises(ResourceError):
        Resource(env, capacity=0)


def test_single_slot_serializes_users():
    env = Environment()
    res = Resource(env, capacity=1)
    log = []

    def user(name):
        with res.request() as req:
            yield req
            log.append((name, "start", env.now))
            yield env.timeout(2.0)
            log.append((name, "end", env.now))

    env.process(user("a"))
    env.process(user("b"))
    env.run()
    assert log == [
        ("a", "start", 0.0), ("a", "end", 2.0),
        ("b", "start", 2.0), ("b", "end", 4.0),
    ]


def test_multi_slot_runs_concurrently():
    env = Environment()
    res = Resource(env, capacity=3)
    ends = []

    def user():
        with res.request() as req:
            yield req
            yield env.timeout(5.0)
            ends.append(env.now)

    for _ in range(3):
        env.process(user())
    env.run()
    assert ends == [5.0, 5.0, 5.0]


def test_fifo_grant_order():
    env = Environment()
    res = Resource(env, capacity=1)
    order = []

    def user(name, arrive):
        yield env.timeout(arrive)
        with res.request() as req:
            yield req
            order.append(name)
            yield env.timeout(10.0)

    env.process(user("first", 1.0))
    env.process(user("second", 2.0))
    env.process(user("third", 3.0))
    env.run()
    assert order == ["first", "second", "third"]


def test_release_unowned_request_raises():
    env = Environment()
    res = Resource(env, capacity=1)

    def proc():
        req = res.request()
        yield req
        res.release(req)
        res.release(req)  # double release

    env.process(proc())
    with pytest.raises(ResourceError):
        env.run()


def test_count_reflects_grants():
    env = Environment()
    res = Resource(env, capacity=2)
    observed = []

    def user(arrive):
        yield env.timeout(arrive)
        with res.request() as req:
            yield req
            observed.append(res.count)
            yield env.timeout(1.0)

    env.process(user(0.0))
    env.process(user(0.5))
    env.run()
    assert observed == [1, 2]
    assert res.count == 0


def test_utilization_full_occupancy():
    env = Environment()
    res = Resource(env, capacity=1)

    def user():
        with res.request() as req:
            yield req
            yield env.timeout(10.0)

    env.process(user())
    env.run()
    assert res.monitor.utilization() == pytest.approx(1.0)


def test_utilization_half_occupancy():
    env = Environment()
    res = Resource(env, capacity=2)

    def user():
        with res.request() as req:
            yield req
            yield env.timeout(10.0)

    env.process(user())
    env.run()
    assert res.monitor.utilization() == pytest.approx(0.5)


def test_utilization_partial_time():
    env = Environment()
    res = Resource(env, capacity=1)

    def user():
        yield env.timeout(5.0)
        with res.request() as req:
            yield req
            yield env.timeout(5.0)

    def tail():
        yield env.timeout(20.0)

    env.process(user())
    env.process(tail())
    env.run()
    assert res.monitor.utilization() == pytest.approx(0.25)
    assert res.monitor.busy_time() == pytest.approx(5.0)


def test_monitor_peak():
    env = Environment()
    res = Resource(env, capacity=4)

    def user(arrive, hold):
        yield env.timeout(arrive)
        with res.request() as req:
            yield req
            yield env.timeout(hold)

    env.process(user(0.0, 3.0))
    env.process(user(1.0, 3.0))
    env.process(user(2.0, 0.5))
    env.run()
    assert res.monitor.peak == 3


def test_cancel_ungranted_request():
    env = Environment()
    res = Resource(env, capacity=1)
    granted = []

    def holder():
        with res.request() as req:
            yield req
            yield env.timeout(10.0)

    def impatient():
        yield env.timeout(1.0)
        req = res.request()
        yield env.timeout(1.0)  # still waiting — holder owns the slot
        req.cancel()

    def last():
        yield env.timeout(3.0)
        with res.request() as req:
            yield req
            granted.append(env.now)

    env.process(holder())
    env.process(impatient())
    env.process(last())
    env.run()
    # The cancelled request must not absorb the slot freed at t=10.
    assert granted == [10.0]


def test_store_put_get_fifo():
    env = Environment()
    store = Store(env)
    got = []

    def producer():
        for i in range(3):
            yield store.put(i)
            yield env.timeout(1.0)

    def consumer():
        for _ in range(3):
            item = yield store.get()
            got.append((env.now, item))

    env.process(producer())
    env.process(consumer())
    env.run()
    assert [item for _, item in got] == [0, 1, 2]


def test_store_get_blocks_until_put():
    env = Environment()
    store = Store(env)
    got = []

    def consumer():
        item = yield store.get()
        got.append((env.now, item))

    def producer():
        yield env.timeout(4.0)
        yield store.put("x")

    env.process(consumer())
    env.process(producer())
    env.run()
    assert got == [(4.0, "x")]


def test_store_capacity_blocks_put():
    env = Environment()
    store = Store(env, capacity=1)
    times = []

    def producer():
        yield store.put("a")
        times.append(("a", env.now))
        yield store.put("b")
        times.append(("b", env.now))

    def consumer():
        yield env.timeout(5.0)
        yield store.get()

    env.process(producer())
    env.process(consumer())
    env.run()
    assert times == [("a", 0.0), ("b", 5.0)]


def test_store_invalid_capacity():
    env = Environment()
    with pytest.raises(ResourceError):
        Store(env, capacity=0)


class TestPriorityResource:
    def test_high_priority_overtakes_waiting_low(self):
        env = Environment()
        res = PriorityResource(env, capacity=1)
        order = []

        def user(name, arrive, priority):
            yield env.timeout(arrive)
            with res.request(priority) as req:
                yield req
                order.append(name)
                yield env.timeout(10.0)

        env.process(user("holder", 0.0, 0))
        env.process(user("low", 1.0, 5))
        env.process(user("high", 2.0, 1))
        env.run()
        # Both waited behind the holder; high (smaller value) wins.
        assert order == ["holder", "high", "low"]

    def test_running_user_is_never_preempted(self):
        env = Environment()
        res = PriorityResource(env, capacity=1)
        events = []

        def holder():
            with res.request(9) as req:  # lowest priority
                yield req
                events.append(("holder-start", env.now))
                yield env.timeout(10.0)
                events.append(("holder-end", env.now))

        def urgent():
            yield env.timeout(1.0)
            with res.request(0) as req:
                yield req
                events.append(("urgent-start", env.now))

        env.process(holder())
        env.process(urgent())
        env.run()
        assert events == [("holder-start", 0.0), ("holder-end", 10.0),
                          ("urgent-start", 10.0)]

    def test_equal_priority_is_fifo(self):
        env = Environment()
        res = PriorityResource(env, capacity=1)
        order = []

        def user(name, arrive):
            yield env.timeout(arrive)
            with res.request(3) as req:
                yield req
                order.append(name)
                yield env.timeout(5.0)

        env.process(user("first", 0.5))
        env.process(user("second", 1.0))
        env.process(user("third", 1.5))
        env.run()
        assert order == ["first", "second", "third"]

    def test_cancel_removes_from_heap(self):
        env = Environment()
        res = PriorityResource(env, capacity=1)
        granted = []

        def holder():
            with res.request(0) as req:
                yield req
                yield env.timeout(10.0)

        def impatient():
            yield env.timeout(1.0)
            req = res.request(0)
            yield env.timeout(1.0)
            req.cancel()

        def last():
            yield env.timeout(3.0)
            with res.request(1) as req:
                yield req
                granted.append(env.now)

        env.process(holder())
        env.process(impatient())
        env.process(last())
        env.run()
        assert granted == [10.0]


def test_store_peak_items():
    env = Environment()
    store = Store(env)

    def producer():
        for i in range(5):
            yield store.put(i)

    env.process(producer())
    env.run()
    assert store.peak_items == 5
    assert store.level == 5
