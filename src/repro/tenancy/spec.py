"""Multi-tenant workload specification and interleaved emission.

A :class:`TenantSpec` dials one tenant's stream (its own vdbench seed,
dedup ratio, locality/working-set skew, client count, optional open-loop
arrival rate); a :class:`TenantMix` gathers tenants plus a mix-level
scheduling seed.  :class:`TenantMixStream` emits the interleaved chunk
stream through the existing :class:`~repro.workload.vdbench.VdbenchStream`
machinery, tagging every chunk with its tenant id.

RNG discipline (REP703): scheduling draws — which tenant's stream emits
next — come only from the mix-level parent ``random.Random(mix.seed)``;
each tenant's content draws stay inside its own seeded stream.  A
one-tenant mix takes a shortcut that consumes *no* parent draws, so its
chunk stream is the plain single-stream ``VdbenchStream`` output
(tenant tag aside) — the degenerate-identity argument the equivalence
suite pins byte-for-byte.

Closed-loop mixes pick the next tenant by effective weight
(``weight * clients`` — a tenant fronting a million simulated clients
is just a heavier draw, so "millions of clients" costs nothing);
open-loop mixes race per-tenant Poisson arrival clocks
(``expovariate(rate * clients)``) and emit whichever tenant is due
first.  Tenants write disjoint logical address ranges
(:data:`TENANT_ADDRESS_STRIDE` apart) so interleaved streams never
collide in the metadata store's logical map.
"""

from __future__ import annotations

import json
import random
from bisect import bisect_right
from dataclasses import asdict, dataclass, field
from typing import Iterator, Optional

from repro.errors import WorkloadError
from repro.types import Chunk, DEFAULT_CHUNK_SIZE
from repro.workload.vdbench import StreamStats, VdbenchStream

__all__ = ["TENANT_ADDRESS_STRIDE", "TenantMix", "TenantMixStream",
           "TenantSpec"]

#: Logical address stride between tenants (16 TiB apart): tenant ``i``
#: writes offsets ``[i * stride, ...)``.  Tenant 0 starts at offset 0,
#: so a one-tenant mix reproduces single-stream offsets exactly.
TENANT_ADDRESS_STRIDE = 1 << 44


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's workload dials (its stream seed is required)."""

    name: str
    seed: int
    weight: float = 1.0
    dedup_ratio: float = 2.0
    comp_ratio: float = 2.0
    locality: float = 0.5
    working_set: int = 128
    clients: int = 1
    arrival_rate_iops: Optional[float] = None
    comp_spread: float = 0.15

    def __post_init__(self) -> None:
        if not self.name:
            raise WorkloadError("tenant name must be non-empty")
        if self.weight <= 0:
            raise WorkloadError(
                f"tenant {self.name!r}: weight must be > 0, "
                f"got {self.weight}")
        if self.clients < 1:
            raise WorkloadError(
                f"tenant {self.name!r}: clients must be >= 1, "
                f"got {self.clients}")
        if self.arrival_rate_iops is not None \
                and self.arrival_rate_iops <= 0:
            raise WorkloadError(
                f"tenant {self.name!r}: arrival_rate_iops must be "
                f"> 0, got {self.arrival_rate_iops}")

    @property
    def effective_weight(self) -> float:
        """Closed-loop draw weight: per-client weight times clients."""
        return self.weight * self.clients

    @property
    def total_rate_iops(self) -> Optional[float]:
        """Open-loop aggregate arrival rate across this tenant's clients."""
        if self.arrival_rate_iops is None:
            return None
        return self.arrival_rate_iops * self.clients


@dataclass(frozen=True)
class TenantMix:
    """A set of tenants plus the mix-level scheduling seed."""

    tenants: tuple[TenantSpec, ...]
    seed: int
    open_loop: bool = False

    def __post_init__(self) -> None:
        if not self.tenants:
            raise WorkloadError("a tenant mix needs at least one tenant")
        names = [spec.name for spec in self.tenants]
        if len(set(names)) != len(names):
            raise WorkloadError(f"duplicate tenant names in {names}")
        seeds = [spec.seed for spec in self.tenants]
        if len(set(seeds)) != len(seeds):
            raise WorkloadError(
                "tenant stream seeds must be distinct (shared seeds "
                "would alias fingerprints across tenants)")
        if self.open_loop:
            for spec in self.tenants:
                if spec.arrival_rate_iops is None:
                    raise WorkloadError(
                        f"open-loop mix: tenant {spec.name!r} has no "
                        f"arrival_rate_iops")

    @property
    def total_rate_iops(self) -> Optional[float]:
        """Aggregate open-loop arrival rate, when every tenant has one."""
        total = 0.0
        for spec in self.tenants:
            rate = spec.total_rate_iops
            if rate is None:
                return None
            total += rate
        return total

    def to_dict(self) -> dict:
        """JSON-ready mapping (round-trips through :meth:`from_dict`)."""
        return {"seed": self.seed, "open_loop": self.open_loop,
                "tenants": [asdict(spec) for spec in self.tenants]}

    @classmethod
    def from_dict(cls, payload: dict) -> "TenantMix":
        """Build a mix from a ``to_dict``-shaped mapping."""
        try:
            tenants = tuple(TenantSpec(**entry)
                            for entry in payload["tenants"])
            return cls(tenants=tenants, seed=payload["seed"],
                       open_loop=bool(payload.get("open_loop", False)))
        except (KeyError, TypeError) as exc:
            raise WorkloadError(f"bad tenant-mix spec: {exc}") from exc

    @classmethod
    def from_json(cls, text: str) -> "TenantMix":
        """Parse a JSON tenant-mix spec (the ``--tenants`` file format)."""
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise WorkloadError(f"bad tenant-mix JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise WorkloadError("tenant-mix spec must be a JSON object")
        return cls.from_dict(payload)


@dataclass
class _OpenLoopClock:
    """One tenant's Poisson arrival clock (open-loop scheduling)."""

    rate: float
    next_due: float = field(default=0.0)


class TenantMixStream:
    """Interleaved multi-tenant chunk stream over per-tenant vdbench."""

    def __init__(self, mix: TenantMix,
                 chunk_size: int = DEFAULT_CHUNK_SIZE,
                 payload: bool = False):
        self.mix = mix
        self.chunk_size = chunk_size
        #: Scheduling-only parent RNG (REP703: never handed to tenants).
        self._sched_rng = random.Random(mix.seed)
        self.streams: list[VdbenchStream] = []
        for index, spec in enumerate(mix.tenants):
            self.streams.append(VdbenchStream(
                dedup_ratio=spec.dedup_ratio,
                comp_ratio=spec.comp_ratio,
                chunk_size=chunk_size,
                seed=spec.seed,
                payload=payload,
                comp_spread=spec.comp_spread,
                locality=spec.locality,
                working_set=spec.working_set,
                offset_base=index * TENANT_ADDRESS_STRIDE))
        #: Closed-loop cumulative effective weights for bisect picks.
        self._cumulative: list[float] = []
        total = 0.0
        for spec in mix.tenants:
            total += spec.effective_weight
            self._cumulative.append(total)
        self._total_weight = total
        self._clocks: list[_OpenLoopClock] = []
        if mix.open_loop:
            for spec in mix.tenants:
                rate = spec.total_rate_iops
                assert rate is not None  # validated by TenantMix
                self._clocks.append(_OpenLoopClock(rate=rate))

    # -- scheduling ---------------------------------------------------------

    def _pick_tenant(self) -> int:
        """Index of the tenant emitting the next chunk.

        The one-tenant shortcut consumes no parent draws: a degenerate
        mix's chunk sequence is the plain single-stream sequence.
        """
        if len(self.streams) == 1:
            return 0
        if self.mix.open_loop:
            clocks = self._clocks
            best = 0
            best_due = clocks[0].next_due
            for index in range(1, len(clocks)):
                due = clocks[index].next_due
                if due < best_due:
                    best = index
                    best_due = due
            clock = clocks[best]
            clock.next_due = best_due + \
                self._sched_rng.expovariate(clock.rate)
            return best
        point = self._sched_rng.random() * self._total_weight
        return bisect_right(self._cumulative, point,
                            hi=len(self._cumulative) - 1)

    # -- emission -----------------------------------------------------------

    def next_chunk(self) -> Chunk:
        """Emit the next interleaved chunk, tagged with its tenant id."""
        tenant = self._pick_tenant()
        chunk = self.streams[tenant].next_chunk()
        chunk.tenant = tenant
        return chunk

    def chunks(self, n: int) -> Iterator[Chunk]:
        """Emit ``n`` interleaved chunks."""
        for _ in range(n):
            yield self.next_chunk()

    def chunks_batched(self, n: int,
                       window: int = 64) -> Iterator[Chunk]:
        """Emit ``n`` chunks, windowed through per-tenant batches.

        Scheduling picks for a window are drawn first (same parent-RNG
        order as :meth:`chunks`); each tenant's picks then collapse
        into one ``next_batch`` call, so every tenant stream consumes
        its own RNG in exactly the per-chunk order and the interleaved
        sequence is element-wise equal to the per-chunk path.
        """
        if window < 1:
            raise WorkloadError(f"window must be >= 1, got {window}")
        remaining = n
        while remaining > 0:
            take = window if window < remaining else remaining
            picks = [self._pick_tenant() for _ in range(take)]
            per_tenant: dict[int, int] = {}
            for tenant in picks:
                per_tenant[tenant] = per_tenant.get(tenant, 0) + 1
            materialized: dict[int, Iterator[Chunk]] = {}
            for tenant, count in per_tenant.items():
                batch = self.streams[tenant].next_batch(count)
                materialized[tenant] = iter(batch.materialize())
            for tenant in picks:
                chunk = next(materialized[tenant])
                chunk.tenant = tenant
                yield chunk
            remaining -= take

    # -- ground truth -------------------------------------------------------

    def stats(self) -> list[StreamStats]:
        """Per-tenant ground-truth stream statistics."""
        return [stream.stats for stream in self.streams]

    def oracle_dedup_ratio(self) -> float:
        """Offline-oracle dedup ratio of the interleaved stream.

        Tenant seeds are distinct, so fingerprints never alias across
        tenants and the union's ratio is total chunks over total
        uniques.
        """
        chunks = 0
        uniques = 0
        for stream in self.streams:
            chunks += stream.stats.chunks
            uniques += stream.stats.uniques
        return chunks / uniques if uniques else 1.0
