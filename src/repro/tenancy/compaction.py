"""Out-of-line compaction of inline-skipped chunks.

Chunks the admission layer stored raw (inline-skip verdicts, and cache
misses whose duplicate was hidden by the bounded cache) land here as
:class:`CompactionEntry` records: the chunk's *real* fingerprint plus
the synthetic shadow fingerprint it was stored under.  Background
epochs re-fingerprint each deferred chunk (charged as SHA-1 plus an
index probe plus a metadata update through ``SimCpu``), remap its
logical offset to the canonical copy, and let the metadata store's
zombie sweep reclaim the shadow blob — Li et al.'s hybrid
inline/out-of-line design, which is what lets prioritized admission
skip cold streams inline without giving up their dedup ratio.

Identity argument: compaction only *remaps and sweeps*.  The logical
map covers the same offsets with the same sizes before and after an
epoch; only which physical record backs them changes, so
``MetadataStore.dedup_ratio()`` — logical bytes over live unique raw
bytes — monotonically recovers toward the oracle as epochs run, and
``verify_invariants()`` holds at every epoch boundary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from repro.errors import ConfigError
from repro.storage.metadata import MetadataStore

__all__ = ["CompactionEntry", "CompactionQueue"]


@dataclass(slots=True, frozen=True)
class CompactionEntry:
    """One deferred chunk awaiting out-of-line dedup."""

    seq: int
    tenant: int
    offset: int
    size: int
    #: Real content fingerprint (known to the workload/hashing stage).
    fingerprint: bytes
    #: Synthetic fingerprint the raw chunk was stored under.
    shadow_fp: bytes


class CompactionQueue:
    """Deferred-chunk queue plus the canonical-copy resolution state."""

    __slots__ = ("batch", "epochs", "recovered", "reclaimed_bytes",
                 "deferred", "_pending", "_canonical")

    def __init__(self, batch: int):
        if batch < 1:
            raise ConfigError(f"invalid compaction batch {batch}")
        self.batch = batch
        self.epochs = 0
        self.recovered = 0
        self.reclaimed_bytes = 0
        self.deferred = 0
        self._pending: list[CompactionEntry] = []
        #: fingerprint -> shadow fp promoted to canonical copy: the
        #: first deferred occurrence of a fingerprint with no stored
        #: canonical record keeps its blob; later copies remap to it.
        self._canonical: dict[bytes, bytes] = {}

    def __len__(self) -> int:
        return len(self._pending)

    def defer(self, entry: CompactionEntry) -> None:
        """Queue one raw-stored chunk for a future epoch."""
        self.deferred += 1
        self._pending.append(entry)

    def canonical_shadow(self, fingerprint: bytes) -> Optional[bytes]:
        """The shadow promoted to canonical for ``fingerprint``, if any."""
        return self._canonical.get(fingerprint)

    def take_batch(self) -> Optional[list[CompactionEntry]]:
        """A full epoch batch, or None while the queue is short."""
        if len(self._pending) < self.batch:
            return None
        batch = self._pending[:self.batch]
        del self._pending[:self.batch]
        return batch

    def drain(self) -> Iterator[list[CompactionEntry]]:
        """End-of-run epochs: every remaining entry, batch by batch."""
        while self._pending:
            batch = self._pending[:self.batch]
            del self._pending[:self.batch]
            yield batch

    def cycles_for(self, entries: list[CompactionEntry],
                   costs) -> float:
        """CPU cycles one epoch charges: re-hash + probe + remap each."""
        cycles = 0.0
        for entry in entries:
            cycles += costs.sha1_cycles(entry.size)
            cycles += costs.bin_buffer_probe
            cycles += costs.metadata_update
        return cycles

    def apply(self, entries: list[CompactionEntry],
              metadata: MetadataStore) -> list[int]:
        """Run one epoch's functional work; returns recovered tenants.

        Per entry: resolve the canonical copy of its real fingerprint
        (a stored unique from the admission path, or a previously
        promoted shadow), remap the logical offset onto it, and count
        the duplicate as recovered.  First occurrences promote their
        own shadow.  The end-of-epoch sweep reclaims every
        dereferenced shadow blob.
        """
        recovered_tenants: list[int] = []
        canonical = self._canonical
        for entry in entries:
            record = metadata.lookup(entry.fingerprint)
            if record is not None:
                target = entry.fingerprint
            else:
                promoted = canonical.get(entry.fingerprint)
                if promoted is None:
                    canonical[entry.fingerprint] = entry.shadow_fp
                    continue
                target = promoted
            metadata.map_logical(entry.offset, target, entry.size)
            self.recovered += 1
            recovered_tenants.append(entry.tenant)
        self.reclaimed_bytes += metadata.sweep_unreferenced()
        self.epochs += 1
        return recovered_tenants

    def counters(self) -> dict[str, int]:
        """Lifetime compaction counters (folded into the obs registry)."""
        return {
            "deferred": self.deferred,
            "recovered": self.recovered,
            "epochs": self.epochs,
            "reclaimed_bytes": self.reclaimed_bytes,
            "pending": len(self._pending),
        }
