"""End-to-end multi-tenant runs (the ``repro run --tenants`` path).

:func:`run_tenant_mix` mirrors :func:`repro.core.calibration.run_mode`'s
platform construction exactly — same environment, specs, costs and
tracer threading — but feeds the pipeline a
:class:`~repro.tenancy.spec.TenantMixStream` instead of a single
vdbench stream and folds the admission controller's per-tenant
accounting into a :class:`TenancyRunReport` next to the ordinary
:class:`~repro.core.stats.PipelineReport`.

This module lives outside the package root's import surface on
purpose: it drives :mod:`repro.core`, whose pipeline imports
``repro.tenancy`` — importing the runner from ``__init__`` would close
that cycle.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Optional

from repro.core.config import IntegrationMode, PipelineConfig
from repro.core.pipeline import ReductionPipeline
from repro.core.stats import PipelineReport
from repro.cpu.costs import CpuCosts, DEFAULT_COSTS
from repro.cpu.model import CpuSpec, I7_2600K, SimCpu
from repro.gpu.costs import DEFAULT_GPU_COSTS, GpuKernelCosts
from repro.gpu.device import GpuDevice, GpuSpec, RADEON_HD_7970
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.sim import Environment
from repro.storage.ssd import SAMSUNG_SSD_830, SsdModel, SsdSpec
from repro.tenancy.spec import TenantMix, TenantMixStream

__all__ = ["TenancyRunReport", "TenantReportEntry", "run_tenant_mix"]


@dataclass
class TenantReportEntry:
    """One tenant's slice of a multi-tenant run."""

    name: str
    tenant: int
    chunks: int
    inline_hits: int
    stored: int
    skips: int
    recovered: int
    inline_hit_rate: float
    #: Ground-truth stream stats (what the tenant actually emitted).
    emitted_chunks: int
    emitted_uniques: int
    #: SLO percentiles from the per-tenant latency histogram.
    latency: dict = field(default_factory=dict)


@dataclass
class TenancyRunReport:
    """A multi-tenant run: the pipeline report plus tenancy readouts."""

    pipeline: PipelineReport
    policy: str
    tenants: tuple[TenantReportEntry, ...]
    #: Inline cache hits over chunks, across all tenants.
    inline_hit_rate: float
    #: Chunks over inline-stored chunks (inline-only dedup ratio).
    inline_dedup_ratio: float
    #: ``pipeline.dedup_ratio`` after the compaction drain — inline
    #: plus out-of-line recovery.
    effective_dedup_ratio: float
    #: Offline-oracle ratio of the emitted stream (ground truth).
    oracle_dedup_ratio: float
    #: effective / oracle: the fraction of achievable dedup realized.
    recovery_fraction: float
    #: Lifetime compaction counters (epochs, recovered, reclaimed).
    compaction: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        """JSON-ready mapping (dataclasses all the way down)."""
        return asdict(self)


def run_tenant_mix(mix: TenantMix, mode: IntegrationMode, n_chunks: int,
                   base_config: Optional[PipelineConfig] = None,
                   cpu_spec: CpuSpec = I7_2600K,
                   gpu_spec: Optional[GpuSpec] = RADEON_HD_7970,
                   ssd_spec: SsdSpec = SAMSUNG_SSD_830,
                   cpu_costs: CpuCosts = DEFAULT_COSTS,
                   gpu_costs: GpuKernelCosts = DEFAULT_GPU_COSTS,
                   tracer: Optional[Tracer] = None,
                   payload: bool = False) -> TenancyRunReport:
    """Run a tenant mix through one integration mode; full report.

    The platform is constructed in exactly
    :func:`~repro.core.calibration.run_mode`'s order so a one-tenant
    mix under the default ``tenancy_policy="none"`` produces a
    byte-identical :class:`PipelineReport`.  An open-loop mix overrides
    ``arrival_rate_iops`` with the mix's aggregate rate so the feeder
    paces admissions at the tenants' combined Poisson rate.
    """
    config = (base_config or PipelineConfig()).with_overrides(mode=mode)
    if mix.open_loop:
        config = config.with_overrides(
            arrival_rate_iops=mix.total_rate_iops)
    if gpu_spec is None and (mode.gpu_for_dedup
                             or mode.gpu_for_compression):
        raise ValueError(f"mode {mode.value} needs a GPU spec")
    if tracer is None:
        tracer = NULL_TRACER
    env = Environment()
    tracer.bind(env)
    cpu = SimCpu(env, cpu_spec)
    gpu = (GpuDevice(env, gpu_spec, tracer=tracer)
           if gpu_spec is not None else None)
    ssd = SsdModel(env, ssd_spec, tracer=tracer)
    pipeline = ReductionPipeline(env, config, cpu=cpu, gpu=gpu, ssd=ssd,
                                 cpu_costs=cpu_costs,
                                 gpu_costs=gpu_costs, tracer=tracer)
    stream = TenantMixStream(mix, chunk_size=config.chunk_size,
                             payload=payload)
    source = (stream.chunks_batched(n_chunks, config.functional_batch)
              if config.batched_functional else stream.chunks(n_chunks))
    report = pipeline.run(source, total=n_chunks)
    return _fold_report(pipeline, report, mix, stream)


def _fold_report(pipeline: ReductionPipeline, report: PipelineReport,
                 mix: TenantMix,
                 stream: TenantMixStream) -> TenancyRunReport:
    """Join pipeline output with per-tenant accounting and ground truth."""
    oracle = stream.oracle_dedup_ratio()
    stats = stream.stats()
    controller = pipeline.tenancy
    entries = []
    for tenant, spec in enumerate(mix.tenants):
        emitted = stats[tenant]
        if controller is not None:
            counters = controller.accounting.counters(tenant)
            latency = controller.accounting.latency_summary(tenant)
            entries.append(TenantReportEntry(
                name=spec.name, tenant=tenant,
                chunks=counters.chunks,
                inline_hits=counters.inline_hits,
                stored=counters.stored,
                skips=counters.skips,
                recovered=counters.recovered,
                inline_hit_rate=counters.inline_hit_rate,
                emitted_chunks=emitted.chunks,
                emitted_uniques=emitted.uniques,
                latency=latency))
        else:
            entries.append(TenantReportEntry(
                name=spec.name, tenant=tenant,
                chunks=emitted.chunks, inline_hits=0, stored=0,
                skips=0, recovered=0, inline_hit_rate=0.0,
                emitted_chunks=emitted.chunks,
                emitted_uniques=emitted.uniques,
                latency={}))
    if controller is not None:
        policy = controller.policy
        hit_rate = controller.accounting.aggregate_hit_rate()
        inline_ratio = \
            controller.accounting.aggregate_inline_dedup_ratio()
        compaction = controller.compaction_counters()
    else:
        policy = "none"
        hit_rate = 0.0
        inline_ratio = report.dedup_ratio
        compaction = {}
    recovery = (report.dedup_ratio / oracle) if oracle > 0 else 1.0
    return TenancyRunReport(
        pipeline=report,
        policy=policy,
        tenants=tuple(entries),
        inline_hit_rate=hit_rate,
        inline_dedup_ratio=inline_ratio,
        effective_dedup_ratio=report.dedup_ratio,
        oracle_dedup_ratio=oracle,
        recovery_fraction=recovery,
        compaction=compaction,
    )
