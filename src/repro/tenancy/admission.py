"""Bounded inline fingerprint caches: shared LRU vs prioritized shares.

Under a tenancy policy the inline dedup verdict comes from a *bounded*
fingerprint cache instead of the unbounded index — the regime HPDedup
studies: at primary-storage scale only a sliver of the fingerprint
space fits in memory on the inline path, so *which* stream's entries
get residency decides the aggregate inline hit rate.

* :class:`SharedLruCache` — the conventional baseline: one LRU over
  all tenants.  A low-locality stream's useless inserts evict a
  high-locality stream's soon-to-hit entries.
* :class:`PrioritizedCache` — per-tenant partitions with residency
  quotas set from the locality estimates; an insert over budget evicts
  from the *most over-quota* partition, so cold streams cannot starve
  hot ones.

Both expose the same probe/insert/set_shares surface, so the admission
controller swaps them by config string.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.errors import ConfigError

__all__ = ["MIN_QUOTA", "PrioritizedCache", "SharedLruCache"]

#: Residency floor per tenant partition: even a zero-share tenant keeps
#: a few entries so its estimator can ever observe a comeback.
MIN_QUOTA = 4


class SharedLruCache:
    """One bounded LRU fingerprint cache shared by every tenant."""

    __slots__ = ("capacity", "_cache")

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ConfigError(f"invalid cache capacity {capacity}")
        self.capacity = capacity
        self._cache: OrderedDict[bytes, int] = OrderedDict()

    def __len__(self) -> int:
        return len(self._cache)

    def probe(self, tenant: int, fingerprint: bytes) -> bool:
        """True when ``fingerprint`` is resident (refreshes recency)."""
        cache = self._cache
        if fingerprint in cache:
            cache.move_to_end(fingerprint)
            return True
        return False

    def insert(self, tenant: int, fingerprint: bytes) -> None:
        """Install ``fingerprint``, evicting the LRU entry when full."""
        cache = self._cache
        if fingerprint in cache:
            cache.move_to_end(fingerprint)
            return
        if len(cache) >= self.capacity:
            cache.popitem(last=False)
        cache[fingerprint] = tenant

    def set_shares(self, shares: dict[int, float]) -> None:
        """Shared LRU ignores residency shares (baseline behaviour)."""


class PrioritizedCache:
    """Per-tenant LRU partitions under locality-driven quotas."""

    __slots__ = ("capacity", "_partitions", "_quotas")

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ConfigError(f"invalid cache capacity {capacity}")
        self.capacity = capacity
        self._partitions: dict[int, OrderedDict[bytes, None]] = {}
        self._quotas: dict[int, int] = {}

    def __len__(self) -> int:
        return sum(len(p) for p in self._partitions.values())

    def _partition(self, tenant: int) -> "OrderedDict[bytes, None]":
        partition = self._partitions.get(tenant)
        if partition is None:
            partition = OrderedDict()
            self._partitions[tenant] = partition
            self._quotas.setdefault(tenant, self._default_quota())
        return partition

    def _default_quota(self) -> int:
        n = max(1, len(self._partitions))
        return max(MIN_QUOTA, self.capacity // n)

    def probe(self, tenant: int, fingerprint: bytes) -> bool:
        """True when ``fingerprint`` is resident in any partition.

        Cross-tenant probes still hit (fingerprints are globally
        unique content addresses); only *residency pressure* is
        per-tenant.
        """
        own = self._partitions.get(tenant)
        if own is not None and fingerprint in own:
            own.move_to_end(fingerprint)
            return True
        for other, partition in self._partitions.items():
            if other != tenant and fingerprint in partition:
                partition.move_to_end(fingerprint)
                return True
        return False

    def insert(self, tenant: int, fingerprint: bytes) -> None:
        """Install into the tenant's partition; evict over-quota state."""
        partition = self._partition(tenant)
        if fingerprint in partition:
            partition.move_to_end(fingerprint)
            return
        partition[fingerprint] = None
        if len(self) > self.capacity:
            self._evict_one(inserting=tenant)

    def _evict_one(self, inserting: int) -> None:
        """Drop the LRU entry of the most over-quota partition.

        Overage compares strictly (``>``); ties resolve to the
        first-created partition, which keeps eviction deterministic
        (dict order is creation order).  When nobody is over quota —
        quotas can sum past capacity after a rebalance — the inserting
        tenant pays for its own insert.
        """
        victim = None
        worst = 0
        for tenant, partition in self._partitions.items():
            quota = self._quotas.get(tenant, MIN_QUOTA)
            overage = len(partition) - quota
            if overage > worst and partition:
                worst = overage
                victim = tenant
        if victim is None:
            victim = inserting
        partition = self._partitions[victim]
        if partition:
            partition.popitem(last=False)

    def set_shares(self, shares: dict[int, float]) -> None:
        """Re-derive quotas from normalized locality shares."""
        for tenant, share in shares.items():
            self._quotas[tenant] = max(
                MIN_QUOTA, int(self.capacity * share))

    def quota(self, tenant: int) -> int:
        """Current residency quota for ``tenant`` (entries)."""
        return self._quotas.get(tenant, MIN_QUOTA)

    def residency(self) -> dict[int, int]:
        """Resident entry count per tenant partition."""
        return {tenant: len(partition)
                for tenant, partition in self._partitions.items()}
