"""Per-stream duplicate-locality estimation (HPDedup-style).

A stream's *temporal duplicate locality* — how often the next chunk
repeats a fingerprint seen in the recent past — decides whether its
entries deserve inline fingerprint-cache residency.  HPDedup (Wu et
al., PAPERS.md) estimates it per stream over a sliding window and
prioritizes cache shares accordingly; streams whose estimate stays
near zero are better served by skipping inline dedup entirely and
letting out-of-line compaction recover the few duplicates later.

Two estimators live here with *identical* observable estimates:

* :class:`LocalityEstimator` — the production sketch: a fingerprint
  ring plus a membership count map makes each observation O(1).
* :class:`NaiveLocalityEstimator` — the retained reference: a linear
  scan of the last ``window`` fingerprints per observation, O(window).
  It anchors the equivalence suite and the ``repro bench tenancy``
  baseline (the >= 2x estimator hot-path gate measures the sketch
  against this scan).

Both fold hits into the same EWMA with the same float expressions in
the same order, so estimates are byte-equal, not just close.
"""

from __future__ import annotations

from repro.errors import ConfigError

__all__ = ["LocalityEstimator", "NaiveLocalityEstimator"]


class LocalityEstimator:
    """O(1) sliding-sketch locality estimate over a fingerprint window.

    ``observe(fp)`` reports whether ``fp`` occurred in the last
    ``window`` observations (window-inclusive: the oldest entry is
    still live when the test runs) and folds the hit into an EWMA whose
    half-life tracks the window size.
    """

    __slots__ = ("window", "observed", "hits", "_alpha", "_estimate",
                 "_ring", "_pos", "_counts")

    def __init__(self, window: int):
        if window < 1:
            raise ConfigError(f"invalid locality window {window}")
        self.window = window
        self.observed = 0
        self.hits = 0
        self._alpha = 2.0 / (window + 1.0)
        self._estimate = 0.0
        self._ring: list = [None] * window
        self._pos = 0
        self._counts: dict[bytes, int] = {}

    @property
    def estimate(self) -> float:
        """Current EWMA duplicate-locality estimate in [0, 1]."""
        return self._estimate

    def observe(self, fingerprint: bytes) -> bool:
        """Record one fingerprint; True when it hit the window."""
        counts = self._counts
        hit = fingerprint in counts
        ring = self._ring
        pos = self._pos
        old = ring[pos]
        if old is not None:
            remaining = counts[old] - 1
            if remaining:
                counts[old] = remaining
            else:
                del counts[old]
        ring[pos] = fingerprint
        counts[fingerprint] = counts.get(fingerprint, 0) + 1
        self._pos = pos + 1 if pos + 1 < self.window else 0
        self.observed += 1
        if hit:
            self.hits += 1
            self._estimate += self._alpha * (1.0 - self._estimate)
        else:
            self._estimate -= self._alpha * self._estimate
        return hit


class NaiveLocalityEstimator:
    """Reference estimator: linear scan of the last ``window`` entries.

    Observably identical to :class:`LocalityEstimator` (same hits, same
    EWMA arithmetic); per-observation cost is O(window), which is what
    the bench plane's pinned baseline measures.
    """

    __slots__ = ("window", "observed", "hits", "_alpha", "_estimate",
                 "_recent")

    def __init__(self, window: int):
        if window < 1:
            raise ConfigError(f"invalid locality window {window}")
        self.window = window
        self.observed = 0
        self.hits = 0
        self._alpha = 2.0 / (window + 1.0)
        self._estimate = 0.0
        self._recent: list[bytes] = []

    @property
    def estimate(self) -> float:
        """Current EWMA duplicate-locality estimate in [0, 1]."""
        return self._estimate

    def observe(self, fingerprint: bytes) -> bool:
        """Record one fingerprint; True when it hit the window."""
        recent = self._recent
        hit = False
        for entry in recent:
            if entry == fingerprint:
                hit = True
                break
        if len(recent) >= self.window:
            recent.pop(0)
        recent.append(fingerprint)
        self.observed += 1
        if hit:
            self.hits += 1
            self._estimate += self._alpha * (1.0 - self._estimate)
        else:
            self._estimate -= self._alpha * self._estimate
        return hit
