"""The admission controller the pipeline drives (one facade).

Everything the core pipeline needs from the tenancy subsystem goes
through :class:`TenancyController`: an inline verdict per chunk
(:data:`ADMIT_HIT` / :data:`ADMIT_MISS` / :data:`ADMIT_SKIP`), commit
notifications, compaction batch hand-off, and per-tenant accounting.
Estimator sketches, cache partitions and residency quotas stay private
to this package — REP901 patrols that boundary the same way REP801
guards shard state.

The verdict contract under a non-default policy:

* **hit** — the fingerprint was resident in the bounded inline cache;
  the chunk commits as a duplicate against the canonical record.
* **miss** — not resident; the chunk stores (canonically if its
  fingerprint is new, else as a shadow copy deferred to compaction).
* **skip** — the tenant's locality estimate is below threshold
  ("prioritized" only): the chunk bypasses inline dedup entirely,
  stores raw under a shadow fingerprint, and compaction recovers any
  duplicate later.
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.storage.metadata import MetadataStore
from repro.tenancy.accounting import TenantAccounting
from repro.tenancy.admission import PrioritizedCache, SharedLruCache
from repro.tenancy.compaction import CompactionEntry, CompactionQueue
from repro.tenancy.locality import LocalityEstimator

__all__ = ["ADMIT_HIT", "ADMIT_MISS", "ADMIT_SKIP",
           "TenancyController"]

#: Inline admission verdicts.
ADMIT_HIT = "hit"
ADMIT_MISS = "miss"
ADMIT_SKIP = "skip"


class TenancyController:
    """Locality-prioritized inline admission plus compaction hand-off."""

    __slots__ = ("policy", "window", "skip_threshold", "min_observe",
                 "rebalance_period", "accounting", "_cache",
                 "_estimators", "_compaction", "_admissions")

    def __init__(self, policy: str, cache_entries: int, window: int,
                 skip_threshold: float, min_observe: int,
                 rebalance_period: int, compaction_batch: int):
        if policy not in ("shared_lru", "prioritized"):
            raise ConfigError(f"unknown tenancy policy {policy!r}")
        self.policy = policy
        self.window = window
        self.skip_threshold = skip_threshold
        self.min_observe = min_observe
        self.rebalance_period = rebalance_period
        self.accounting = TenantAccounting()
        if policy == "prioritized":
            self._cache = PrioritizedCache(cache_entries)
        else:
            self._cache = SharedLruCache(cache_entries)
        self._estimators: dict[int, LocalityEstimator] = {}
        self._compaction = CompactionQueue(compaction_batch)
        self._admissions = 0

    # -- inline admission ----------------------------------------------------

    def _estimator(self, tenant: int) -> LocalityEstimator:
        estimator = self._estimators.get(tenant)
        if estimator is None:
            estimator = LocalityEstimator(self.window)
            self._estimators[tenant] = estimator
        return estimator

    def admit(self, tenant: int, fingerprint: bytes) -> str:
        """The inline verdict for one chunk of ``tenant``."""
        self.accounting.note_chunk(tenant)
        estimator = self._estimator(tenant)
        estimator.observe(fingerprint)
        prioritized = self.policy == "prioritized"
        if prioritized:
            self._admissions += 1
            if self._admissions % self.rebalance_period == 0:
                self._rebalance()
            if estimator.observed >= self.min_observe \
                    and estimator.estimate < self.skip_threshold:
                self.accounting.note_skip(tenant)
                return ADMIT_SKIP
        if self._cache.probe(tenant, fingerprint):
            self.accounting.note_hit(tenant)
            return ADMIT_HIT
        # Insert at admission, not at commit: the pipeline keeps a whole
        # window of chunks in flight, and a duplicate that arrives
        # within that window must still find its twin's fingerprint
        # resident.  The pipeline re-checks the metadata store before
        # committing a hit as an inline duplicate, so an entry whose
        # canonical record is still in flight (or is a
        # compaction-promoted shadow) downgrades to a shadow store
        # instead of a dangling dedup reference.
        self._cache.insert(tenant, fingerprint)
        return ADMIT_MISS

    def _rebalance(self) -> None:
        """Residency shares proportional to the locality estimates."""
        estimators = self._estimators
        total = 0.0
        for estimator in estimators.values():
            total += estimator.estimate
        if total <= 0.0:
            share = 1.0 / len(estimators)
            shares = {tenant: share for tenant in estimators}
        else:
            shares = {tenant: estimator.estimate / total
                      for tenant, estimator in estimators.items()}
        self._cache.set_shares(shares)

    # -- commit notifications ------------------------------------------------

    def store_as_unique(self, verdict: str, fingerprint: bytes,
                        metadata: MetadataStore) -> bool:
        """True when a missed chunk should store canonically.

        A miss stores under its real fingerprint only when no record
        (stored or compaction-promoted) already owns that fingerprint;
        otherwise it is a *hidden duplicate* — the bounded cache lost
        the entry — and must store as a deferred shadow copy instead.
        """
        return (verdict == ADMIT_MISS
                and metadata.lookup(fingerprint) is None
                and self._compaction.canonical_shadow(fingerprint)
                is None)

    def commit_stored(self, tenant: int) -> None:
        """A chunk of ``tenant`` stored canonically (cache already holds
        its fingerprint — :meth:`admit` inserts on miss)."""
        self.accounting.note_stored(tenant)

    def commit_shadow(self, tenant: int) -> None:
        """A chunk stored raw under a shadow fingerprint (skip path)."""
        self.accounting.note_stored(tenant)

    def record_latency(self, tenant: int, seconds: float) -> None:
        """Fold one chunk's inline latency into the tenant's histogram."""
        self.accounting.record_latency(tenant, seconds)

    # -- compaction hand-off -------------------------------------------------

    def defer(self, seq: int, tenant: int, offset: int, size: int,
              fingerprint: bytes, shadow_fp: bytes) -> None:
        """Queue a shadow-stored chunk for out-of-line dedup."""
        self._compaction.defer(CompactionEntry(
            seq=seq, tenant=tenant, offset=offset, size=size,
            fingerprint=fingerprint, shadow_fp=shadow_fp))

    def take_compaction_batch(self):
        """A full epoch batch when one is ready, else None."""
        return self._compaction.take_batch()

    def drain_compaction(self):
        """End-of-run epochs over every remaining deferred chunk."""
        return self._compaction.drain()

    def compaction_cycles(self, entries, costs) -> float:
        """CPU cycles one epoch charges through ``SimCpu``."""
        return self._compaction.cycles_for(entries, costs)

    def apply_compaction(self, entries,
                         metadata: MetadataStore) -> int:
        """Run one epoch; returns the duplicates recovered."""
        tenants = self._compaction.apply(entries, metadata)
        for tenant in tenants:
            self.accounting.note_recovered(tenant)
        return len(tenants)

    # -- readouts ------------------------------------------------------------

    def estimates(self) -> dict[int, float]:
        """Per-tenant locality estimates (first-seen order)."""
        return {tenant: estimator.estimate
                for tenant, estimator in self._estimators.items()}

    def compaction_counters(self) -> dict[str, int]:
        """Lifetime compaction counters."""
        return self._compaction.counters()

    def counters(self) -> dict[str, int]:
        """Aggregate integer counters for the obs metrics registry."""
        chunks = 0
        hits = 0
        stored = 0
        skips = 0
        recovered = 0
        for tenant in self.accounting.tenants():
            counters = self.accounting.counters(tenant)
            chunks += counters.chunks
            hits += counters.inline_hits
            stored += counters.stored
            skips += counters.skips
            recovered += counters.recovered
        out = {"chunks": chunks, "inline_hits": hits,
               "stored": stored, "skips": skips,
               "recovered": recovered}
        for key, value in self._compaction.counters().items():
            out[f"compaction_{key}"] = value
        return out
