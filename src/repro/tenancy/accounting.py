"""Per-tenant accounting: inline hit rates and SLO latency histograms.

The obs layer's critical-path machinery attributes *where* time went;
this module attributes *whose* chunks it was.  One slotted counter
block per tenant (chunks, inline hits, stored, inline skips, chunks
recovered by compaction) plus a per-tenant
:class:`~repro.sim.histogram.LatencyHistogram` for SLO percentiles —
the same log-bucketed histogram the pipeline's aggregate latency uses,
so per-tenant p99s are directly comparable to the report's.
"""

from __future__ import annotations

from repro.sim.histogram import LatencyHistogram

__all__ = ["TenantAccounting", "TenantCounters"]


class TenantCounters:
    """One tenant's admission counters."""

    __slots__ = ("chunks", "inline_hits", "stored", "skips", "recovered")

    def __init__(self):
        self.chunks = 0
        self.inline_hits = 0
        self.stored = 0
        self.skips = 0
        self.recovered = 0

    @property
    def inline_hit_rate(self) -> float:
        """Inline cache hits over chunks seen."""
        return self.inline_hits / self.chunks if self.chunks else 0.0

    def as_dict(self) -> dict[str, float]:
        return {
            "chunks": self.chunks,
            "inline_hits": self.inline_hits,
            "stored": self.stored,
            "skips": self.skips,
            "recovered": self.recovered,
            "inline_hit_rate": self.inline_hit_rate,
        }


class TenantAccounting:
    """Counters and latency histograms for every tenant seen."""

    __slots__ = ("_counters", "_latency")

    def __init__(self):
        self._counters: dict[int, TenantCounters] = {}
        self._latency: dict[int, LatencyHistogram] = {}

    def _tenant(self, tenant: int) -> TenantCounters:
        counters = self._counters.get(tenant)
        if counters is None:
            counters = TenantCounters()
            self._counters[tenant] = counters
        return counters

    # -- admission events ----------------------------------------------------

    def note_chunk(self, tenant: int) -> None:
        self._tenant(tenant).chunks += 1

    def note_hit(self, tenant: int) -> None:
        self._tenant(tenant).inline_hits += 1

    def note_stored(self, tenant: int) -> None:
        self._tenant(tenant).stored += 1

    def note_skip(self, tenant: int) -> None:
        self._tenant(tenant).skips += 1

    def note_recovered(self, tenant: int) -> None:
        self._tenant(tenant).recovered += 1

    def record_latency(self, tenant: int, seconds: float) -> None:
        histogram = self._latency.get(tenant)
        if histogram is None:
            histogram = LatencyHistogram()
            self._latency[tenant] = histogram
        histogram.record(seconds)

    # -- readouts ------------------------------------------------------------

    def tenants(self) -> list[int]:
        """Tenant ids in first-seen order."""
        return list(self._counters)

    def counters(self, tenant: int) -> TenantCounters:
        return self._tenant(tenant)

    def latency_summary(self, tenant: int) -> dict[str, float]:
        """SLO percentile summary (empty histogram reads all-zero)."""
        histogram = self._latency.get(tenant)
        if histogram is None:
            return {"mean": 0.0, "p50": 0.0, "p99": 0.0, "p999": 0.0,
                    "max": 0.0, "overflow": 0}
        return histogram.summary()

    def aggregate_hit_rate(self) -> float:
        """Inline cache hits over chunks, across all tenants."""
        chunks = 0
        hits = 0
        for counters in self._counters.values():
            chunks += counters.chunks
            hits += counters.inline_hits
        return hits / chunks if chunks else 0.0

    def aggregate_inline_dedup_ratio(self) -> float:
        """Chunks over stored chunks (every chunk either hit or stored)."""
        chunks = 0
        stored = 0
        for counters in self._counters.values():
            chunks += counters.chunks
            stored += counters.stored
        return chunks / stored if stored else 1.0

    def as_dict(self) -> dict[str, dict]:
        """Per-tenant counters plus SLO summaries, JSON-ready."""
        out: dict[str, dict] = {}
        for tenant in self._counters:
            entry = self._counters[tenant].as_dict()
            entry["latency"] = self.latency_summary(tenant)
            out[str(tenant)] = entry
        return out
