"""Multi-tenant traffic plane: workload mixes, prioritized admission,
out-of-line compaction (DESIGN.md §15).

The package has two import layers.  This root exports the pieces the
core pipeline and workload layers consume (specs, the admission
controller, the estimators) and deliberately does *not* import
:mod:`repro.tenancy.runner` — the runner drives ``repro.core`` and
importing it here would close a cycle through the pipeline's own
``repro.tenancy`` import.  Use ``from repro.tenancy.runner import
run_tenant_mix`` for end-to-end multi-tenant runs.
"""

from repro.tenancy.accounting import TenantAccounting, TenantCounters
from repro.tenancy.admission import (
    MIN_QUOTA,
    PrioritizedCache,
    SharedLruCache,
)
from repro.tenancy.compaction import CompactionEntry, CompactionQueue
from repro.tenancy.controller import (
    ADMIT_HIT,
    ADMIT_MISS,
    ADMIT_SKIP,
    TenancyController,
)
from repro.tenancy.locality import (
    LocalityEstimator,
    NaiveLocalityEstimator,
)
from repro.tenancy.spec import (
    TENANT_ADDRESS_STRIDE,
    TenantMix,
    TenantMixStream,
    TenantSpec,
)

__all__ = [
    "ADMIT_HIT",
    "ADMIT_MISS",
    "ADMIT_SKIP",
    "CompactionEntry",
    "CompactionQueue",
    "LocalityEstimator",
    "MIN_QUOTA",
    "NaiveLocalityEstimator",
    "PrioritizedCache",
    "SharedLruCache",
    "TENANT_ADDRESS_STRIDE",
    "TenancyController",
    "TenantAccounting",
    "TenantCounters",
    "TenantMix",
    "TenantMixStream",
    "TenantSpec",
]
