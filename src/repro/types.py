"""Shared data types that flow through the reduction pipeline.

:class:`Chunk` supports the library's two execution modes (DESIGN.md §2):

* **payload mode** — ``payload`` holds real bytes; fingerprints come from
  SHA-1 and compressed sizes from the real codecs.  Used by tests,
  examples, and small functional runs.
* **descriptor mode** — ``payload`` is ``None``; the workload generator
  supplies a synthetic ``fingerprint`` (duplicates share fingerprints, so
  deduplication logic still runs for real) and a per-chunk ``comp_ratio``
  from which compressed sizes follow.  Used by the large timed benchmark
  runs, where functionally compressing 2 GB in pure Python would be
  impossible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigError

#: The paper's chunk size for the evaluation workloads (4 KB I/Os).
DEFAULT_CHUNK_SIZE = 4096

#: SHA-1 fingerprint length in bytes.
FINGERPRINT_BYTES = 20


@dataclass(slots=True)
class Chunk:
    """One unit of deduplication/compression work.

    Slotted: millions of chunks flow through descriptor-mode benchmark
    runs, and the per-instance ``__dict__`` was measurable overhead.
    """

    #: Logical byte offset of the chunk in its stream.
    offset: int
    #: Chunk length in bytes.
    size: int
    #: Real chunk contents (payload mode) or None (descriptor mode).
    payload: Optional[bytes] = None
    #: 20-byte SHA-1 fingerprint; set by the hashing stage (payload mode)
    #: or by the workload generator (descriptor mode).
    fingerprint: Optional[bytes] = None
    #: Achieved/predicted compression ratio (original/compressed).
    comp_ratio: Optional[float] = None
    #: Set by the indexing stage: True once the chunk was found duplicate.
    is_duplicate: Optional[bool] = None
    #: Compressed size in bytes, set by the compression stage.
    compressed_size: Optional[int] = None
    #: Owning tenant id in multi-tenant runs (``repro.tenancy``);
    #: ``None`` for single-stream workloads.
    tenant: Optional[int] = None

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ConfigError(f"invalid chunk size {self.size}")
        if self.offset < 0:
            raise ConfigError(f"invalid chunk offset {self.offset}")
        if self.payload is not None and len(self.payload) != self.size:
            raise ConfigError(
                f"payload length {len(self.payload)} != size {self.size}")
        if self.fingerprint is not None \
                and len(self.fingerprint) != FINGERPRINT_BYTES:
            raise ConfigError(
                f"fingerprint must be {FINGERPRINT_BYTES} bytes")

    @property
    def has_payload(self) -> bool:
        """True in payload mode."""
        return self.payload is not None

    def require_fingerprint(self) -> bytes:
        """The fingerprint, raising if the hashing stage has not run."""
        if self.fingerprint is None:
            raise ConfigError(
                f"chunk at offset {self.offset} has no fingerprint yet")
        return self.fingerprint

    def effective_ratio(self) -> float:
        """Best known compression ratio for cost accounting."""
        if self.compressed_size:
            return self.size / self.compressed_size
        if self.comp_ratio is not None:
            return max(1.0, self.comp_ratio)
        return 1.0
