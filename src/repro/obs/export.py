"""Chrome ``trace_event`` export of recorded spans.

Produces the JSON-object flavour of the Trace Event Format (a
``traceEvents`` array of complete events, ``ph: "X"``), which Perfetto
and ``chrome://tracing`` both load.  Track layout:

* per-chunk spans (``chunk_id`` set) go on reusable ``cpu-worker-N``
  lanes — one lane holds one chunk's whole lifecycle (admission wait,
  the chunk envelope, and its nested stage spans), and is recycled for
  a later chunk once free, so a 100k-chunk trace uses window-many
  lanes, not 100k;
* resource spans (``chunk_id`` unset) get one lane group per resource:
  ``gpu-queue`` (kernel occupancy, serialized by the in-order queue),
  ``ssd-N`` (one lane per busy channel), ``destage-N``.

Timestamps are simulated seconds scaled to microseconds — the native
unit of the format — so a Perfetto timeline reads directly in sim time.

:func:`validate_chrome_trace` is the schema gate the tests and the CI
``trace-smoke`` job run: required keys on every event, no negative
durations, and proper nesting per lane (a slice must not half-overlap
another — that renders as garbage).
"""

from __future__ import annotations

import heapq
import json
from typing import Any, Iterable, Optional, Sequence

from repro.obs.tracer import Span

#: Simulated seconds -> trace microseconds.
_US = 1e6
#: Slack for float comparisons, in microseconds (1 ps of sim time).
_EPS_US = 1e-6

_PID = 1
_PROCESS_NAME = "repro-sim"


def _assign_lanes(extents: Sequence[tuple[float, float, Any]]
                  ) -> dict[Any, int]:
    """Greedy interval-coloring: reuse a lane once its interval ends.

    ``extents`` is ``(start, end, key)``; returns ``key -> lane``.
    """
    lanes: dict[Any, int] = {}
    free: list[tuple[float, int]] = []
    next_lane = 0
    for start, end, key in sorted(extents,
                                  key=lambda e: (e[0], e[1])):
        if free and free[0][0] <= start + 1e-12:
            _, lane = heapq.heappop(free)
        else:
            lane = next_lane
            next_lane += 1
        lanes[key] = lane
        heapq.heappush(free, (end, lane))
    return lanes


def _span_args(span: Span) -> dict[str, Any]:
    args: dict[str, Any] = {}
    if span.chunk_id is not None:
        args["chunk_id"] = span.chunk_id
    if span.queue_wait:
        args["queue_wait_us"] = span.queue_wait * _US
    if span.resource is not None:
        args["resource"] = span.resource
    if span.attrs:
        args.update(span.attrs)
    return args


def chrome_trace(spans: Iterable[Span]) -> dict[str, Any]:
    """Build the Chrome ``trace_event`` JSON object for ``spans``."""
    chunk_spans: dict[int, list[Span]] = {}
    resource_spans: dict[str, list[Span]] = {}
    for span in spans:
        if span.chunk_id is not None:
            chunk_spans.setdefault(span.chunk_id, []).append(span)
        else:
            resource_spans.setdefault(span.resource or "misc",
                                      []).append(span)

    # Per-chunk lanes: one extent per chunk covering everything it did.
    chunk_extents = [
        (min(s.start for s in group), max(s.end for s in group),
         chunk_id)
        for chunk_id, group in chunk_spans.items()]
    chunk_lane = _assign_lanes(chunk_extents)
    n_chunk_lanes = (max(chunk_lane.values()) + 1) if chunk_lane else 0

    events: list[dict[str, Any]] = [{
        "name": "process_name", "ph": "M", "pid": _PID, "tid": 0,
        "args": {"name": _PROCESS_NAME},
    }]
    thread_names: dict[int, str] = {}

    def emit(span: Span, tid: int) -> None:
        events.append({
            "name": span.stage,
            "cat": span.resource or "stage",
            "ph": "X",
            "ts": span.start * _US,
            "dur": span.duration * _US,
            "pid": _PID,
            "tid": tid,
            "args": _span_args(span),
        })

    for chunk_id in sorted(chunk_spans):
        tid = 1 + chunk_lane[chunk_id]
        thread_names.setdefault(tid, f"cpu-worker-{tid - 1}")
        for span in chunk_spans[chunk_id]:
            emit(span, tid)

    tid_base = 1 + n_chunk_lanes
    for resource in sorted(resource_spans):
        group = resource_spans[resource]
        lane_of = _assign_lanes([(s.start, s.end, i)
                                 for i, s in enumerate(group)])
        n_lanes = max(lane_of.values()) + 1
        for index, span in enumerate(group):
            lane = lane_of[index]
            tid = tid_base + lane
            if n_lanes == 1:
                thread_names.setdefault(tid, resource)
            else:
                thread_names.setdefault(tid, f"{resource}-{lane}")
            emit(span, tid)
        tid_base += n_lanes

    for tid in sorted(thread_names):
        events.append({
            "name": "thread_name", "ph": "M", "pid": _PID, "tid": tid,
            "args": {"name": thread_names[tid]},
        })
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"clock": "simulated", "time_unit": "us"},
    }


def write_chrome_trace(path: str, spans: Iterable[Span]) -> dict:
    """Serialize :func:`chrome_trace` to ``path``; returns the payload."""
    payload = chrome_trace(spans)
    with open(path, "w") as handle:
        json.dump(payload, handle)
    return payload


# -- validation --------------------------------------------------------------

_REQUIRED_X_KEYS = ("name", "ph", "ts", "dur", "pid", "tid")


def validate_chrome_trace(payload: Any,
                          max_problems: int = 20) -> list[str]:
    """Schema-check a trace payload; returns problems (empty = valid).

    Enforced rules (the CI ``trace-smoke`` gate):

    * top level is an object with a ``traceEvents`` list;
    * every complete event carries ``name/ph/ts/dur/pid/tid``;
    * no negative timestamp or duration;
    * per lane, slices nest properly: a slice starting inside another
      must end inside it too (half-overlap renders as garbage).
    """
    problems: list[str] = []

    def note(message: str) -> bool:
        problems.append(message)
        return len(problems) >= max_problems

    if not isinstance(payload, dict) or \
            not isinstance(payload.get("traceEvents"), list):
        return ["top level must be an object with a 'traceEvents' "
                "list"]
    lanes: dict[tuple[Any, Any], list[tuple[float, float, str]]] = {}
    for index, event in enumerate(payload["traceEvents"]):
        if not isinstance(event, dict):
            if note(f"event #{index}: not an object"):
                return problems
            continue
        phase = event.get("ph")
        if phase == "M":
            if "name" not in event or "args" not in event:
                if note(f"event #{index}: metadata event missing "
                        "name/args"):
                    return problems
            continue
        if phase != "X":
            if note(f"event #{index}: unsupported phase {phase!r}"):
                return problems
            continue
        missing = [k for k in _REQUIRED_X_KEYS if k not in event]
        if missing:
            if note(f"event #{index}: missing {missing}"):
                return problems
            continue
        ts, dur = event["ts"], event["dur"]
        if not isinstance(ts, (int, float)) or \
                not isinstance(dur, (int, float)):
            if note(f"event #{index}: non-numeric ts/dur"):
                return problems
            continue
        if ts < 0 or dur < 0:
            if note(f"event #{index} ({event['name']!r}): negative "
                    f"ts/dur ({ts}, {dur})"):
                return problems
            continue
        lanes.setdefault((event["pid"], event["tid"]), []).append(
            (ts, ts + dur, event["name"]))

    for (pid, tid), slices in sorted(lanes.items()):
        # Longest-first at equal start => parents precede children.
        slices.sort(key=lambda s: (s[0], -(s[1] - s[0])))
        stack: list[tuple[float, float, str]] = []
        for start, end, name in slices:
            while stack and stack[-1][1] <= start + _EPS_US:
                stack.pop()
            if stack and end > stack[-1][1] + _EPS_US:
                if note(f"lane pid={pid} tid={tid}: slice "
                        f"{name!r} [{start}, {end}] half-overlaps "
                        f"{stack[-1][2]!r} ending at "
                        f"{stack[-1][1]}"):
                    return problems
                continue
            stack.append((start, end, name))
    return problems
