"""Critical-path attribution: where does a chunk's latency go?

Consumes the span stream of a traced run and answers the question the
paper's offload policy turns on: of the mean admission-to-completion
latency, how much is chunking, fingerprinting, the (CPU or GPU) bin
probe, compression, postprocess, commit — and within each stage, how
much is *queue wait* versus *service*?

Per-chunk stage spans tile the ``[admitted, completed]`` interval (the
pipeline records them back to back), so the per-stage mean attributions
must sum to ~100% of the mean chunk latency; the acceptance gate
requires ``coverage >= 0.95``.  Admission wait (before a window slot is
granted) and resource-track spans (destage, SSD channels, raw kernel
occupancy) are reported separately and excluded from coverage — they
are not part of the inline latency the histogram measures.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.obs.stages import (
    INLINE_STAGES,
    STAGE_ADMISSION,
    STAGE_CHUNK,
)
from repro.obs.tracer import Span
from repro.sim.histogram import LatencyHistogram


@dataclass
class StageBreakdown:
    """Aggregate statistics for one stage across all chunks."""

    stage: str
    spans: int = 0
    total_s: float = 0.0
    queue_wait_s: float = 0.0
    service_s: float = 0.0
    #: Mean duration of this stage *per chunk that ran it*.
    mean_s: float = 0.0
    p50_s: float = 0.0
    p99_s: float = 0.0
    #: Mean attribution per admitted chunk (total / n_chunks) — the
    #: number that sums to the mean chunk latency across stages.
    mean_per_chunk_s: float = 0.0
    #: ``mean_per_chunk_s / mean_chunk_latency``.
    share_of_latency: float = 0.0

    def row(self) -> str:
        qw_pct = (100.0 * self.queue_wait_s / self.total_s
                  if self.total_s > 0 else 0.0)
        n = self.spans or 1
        return (f"{self.stage:<13} {self.spans:>7} "
                f"{self.mean_per_chunk_s * 1e6:>10.2f} "
                f"{100.0 * self.share_of_latency:>6.1f}% "
                f"{self.mean_s * 1e6:>10.2f} "
                f"{self.p50_s * 1e6:>10.2f} "
                f"{self.p99_s * 1e6:>10.2f} "
                f"{self.queue_wait_s / n * 1e6:>12.2f} "
                f"{self.service_s / n * 1e6:>12.2f} "
                f"{qw_pct:>5.1f}%")


def _aggregate(stage: str, group: list[Span], n_chunks: int,
               mean_latency: float) -> StageBreakdown:
    hist = LatencyHistogram()
    total = queue_wait = 0.0
    for span in group:
        total += span.duration
        queue_wait += span.queue_wait
        hist.record(span.duration)
    summary = hist.summary()
    per_chunk = total / n_chunks if n_chunks else 0.0
    return StageBreakdown(
        stage=stage,
        spans=len(group),
        total_s=total,
        queue_wait_s=queue_wait,
        service_s=total - queue_wait,
        mean_s=total / len(group) if group else 0.0,
        p50_s=summary["p50"],
        p99_s=summary["p99"],
        mean_per_chunk_s=per_chunk,
        share_of_latency=(per_chunk / mean_latency
                          if mean_latency > 0 else 0.0),
    )


@dataclass
class BatcherFill:
    """Launch fill statistics for one GPU batcher, from its item spans.

    Every item span carries its launch's ``batch`` size and completion
    time, so distinct launches are recovered as distinct ``(resource,
    end)`` pairs — the device queue is in-order, two launches of the
    same batcher never complete at the same instant.
    """

    name: str
    launches: int = 0
    mean_fill: float = 0.0
    p50_fill: float = 0.0

    def row(self) -> str:
        return (f"{self.name:<13} {self.launches:>7} "
                f"{self.mean_fill:>10.1f} {self.p50_fill:>10.1f}")


def _batcher_fills(spans: list[Span]) -> list[BatcherFill]:
    launches: dict[str, dict[float, int]] = {}
    for span in spans:
        attrs = span.attrs
        if not attrs or "batch" not in attrs or span.resource is None:
            continue
        launches.setdefault(span.resource, {})[span.end] = attrs["batch"]
    fills = []
    for name in sorted(launches):
        sizes = sorted(launches[name].values())
        n = len(sizes)
        fills.append(BatcherFill(
            name=name, launches=n,
            mean_fill=sum(sizes) / n,
            p50_fill=float(sizes[(n - 1) // 2])))
    return fills


@dataclass
class TenantSlo:
    """One tenant's inline latency SLO readout (from chunk envelopes)."""

    tenant: int
    chunks: int
    mean_s: float
    p50_s: float
    p99_s: float
    p999_s: float
    max_s: float

    def row(self) -> str:
        return (f"tenant {self.tenant:<6} {self.chunks:>7} "
                f"{self.mean_s * 1e6:>10.2f} "
                f"{self.p50_s * 1e6:>10.2f} "
                f"{self.p99_s * 1e6:>10.2f} "
                f"{self.p999_s * 1e6:>10.2f} "
                f"{self.max_s * 1e6:>10.2f}")


def _tenant_slos(chunk_envelopes: list[Span]) -> list["TenantSlo"]:
    """Per-tenant latency percentiles from tagged chunk envelopes.

    Multi-tenant runs tag every envelope with its tenant id; untagged
    (single-stream) runs yield an empty list.
    """
    groups: dict[int, LatencyHistogram] = {}
    counts: dict[int, int] = {}
    totals: dict[int, float] = {}
    for span in chunk_envelopes:
        tenant = span.attrs.get("tenant") if span.attrs else None
        if tenant is None:
            continue
        hist = groups.get(tenant)
        if hist is None:
            hist = LatencyHistogram()
            groups[tenant] = hist
            counts[tenant] = 0
            totals[tenant] = 0.0
        hist.record(span.duration)
        counts[tenant] += 1
        totals[tenant] += span.duration
    slos = []
    for tenant in sorted(groups):
        summary = groups[tenant].summary()
        slos.append(TenantSlo(
            tenant=tenant,
            chunks=counts[tenant],
            mean_s=totals[tenant] / counts[tenant],
            p50_s=summary["p50"],
            p99_s=summary["p99"],
            p999_s=summary["p999"],
            max_s=summary["max"]))
    return slos


@dataclass
class CriticalPathReport:
    """Stage-by-stage attribution of the mean inline chunk latency."""

    n_chunks: int = 0
    mean_latency_s: float = 0.0
    p50_latency_s: float = 0.0
    p99_latency_s: float = 0.0
    #: Sum of per-stage mean attributions / mean latency (target ~1.0).
    coverage: float = 0.0
    #: Workflow-ordered inline stages, then any unknown stages by name.
    stages: list[StageBreakdown] = field(default_factory=list)
    #: Admission wait (pre-latency) — reported, not counted in coverage.
    admission: Optional[StageBreakdown] = None
    #: Resource-track activity (destage, SSD, kernels) by stage name.
    background: list[StageBreakdown] = field(default_factory=list)
    #: Per-batcher launch fill (mean/P50 items per launch).
    batcher_fills: list[BatcherFill] = field(default_factory=list)
    #: Per-tenant SLO percentiles (multi-tenant runs only).
    tenants: list[TenantSlo] = field(default_factory=list)

    @classmethod
    def from_spans(cls, spans: Iterable[Span]) -> "CriticalPathReport":
        chunk_envelopes: list[Span] = []
        admission: list[Span] = []
        inline: dict[str, list[Span]] = {}
        background: dict[str, list[Span]] = {}
        batched: list[Span] = []
        for span in spans:
            if span.attrs and "batch" in span.attrs:
                batched.append(span)
            if span.chunk_id is None:
                background.setdefault(span.stage, []).append(span)
            elif span.stage == STAGE_CHUNK:
                chunk_envelopes.append(span)
            elif span.stage == STAGE_ADMISSION:
                admission.append(span)
            else:
                inline.setdefault(span.stage, []).append(span)

        n_chunks = len(chunk_envelopes)
        latency_hist = LatencyHistogram()
        latency_total = 0.0
        for span in chunk_envelopes:
            latency_hist.record(span.duration)
            latency_total += span.duration
        mean_latency = latency_total / n_chunks if n_chunks else 0.0
        latency_summary = latency_hist.summary()

        ordered = [stage for stage in INLINE_STAGES if stage in inline]
        ordered += sorted(set(inline) - set(INLINE_STAGES))
        stages = [_aggregate(stage, inline[stage], n_chunks,
                             mean_latency) for stage in ordered]
        report = cls(
            n_chunks=n_chunks,
            mean_latency_s=mean_latency,
            p50_latency_s=latency_summary["p50"],
            p99_latency_s=latency_summary["p99"],
            coverage=sum(b.share_of_latency for b in stages),
            stages=stages,
            admission=(_aggregate(STAGE_ADMISSION, admission, n_chunks,
                                  mean_latency) if admission else None),
            background=[_aggregate(stage, background[stage], n_chunks,
                                   mean_latency)
                        for stage in sorted(background)],
            batcher_fills=_batcher_fills(batched),
            tenants=_tenant_slos(chunk_envelopes),
        )
        return report

    def render(self) -> str:
        """Fixed-width text table (microsecond units)."""
        header = (f"{'stage':<13} {'spans':>7} {'us/chunk':>10} "
                  f"{'share':>7} {'mean us':>10} {'p50 us':>10} "
                  f"{'p99 us':>10} {'mean qw us':>12} {'mean svc us':>12} "
                  f"{'qw':>6}")
        lines = [
            f"critical path over {self.n_chunks} chunks: mean latency "
            f"{self.mean_latency_s * 1e6:.2f} us "
            f"(p50 {self.p50_latency_s * 1e6:.2f}, "
            f"p99 {self.p99_latency_s * 1e6:.2f}); "
            f"stage coverage {100.0 * self.coverage:.1f}%",
            header,
            "-" * len(header),
        ]
        lines += [b.row() for b in self.stages]
        if self.admission is not None:
            lines.append("-" * len(header))
            lines.append(self.admission.row())
        if self.background:
            lines.append("-" * len(header))
            lines.append("background (not on the inline path):")
            lines += [b.row() for b in self.background]
        if self.batcher_fills:
            lines.append("-" * len(header))
            lines.append(f"{'batcher fill':<13} {'launches':>7} "
                         f"{'mean':>10} {'p50':>10}")
            lines += [f.row() for f in self.batcher_fills]
        if self.tenants:
            lines.append("-" * len(header))
            lines.append(f"{'tenant SLO':<13} {'chunks':>7} "
                         f"{'mean us':>10} {'p50 us':>10} "
                         f"{'p99 us':>10} {'p999 us':>10} {'max us':>10}")
            lines += [t.row() for t in self.tenants]
        return "\n".join(lines)

    def to_json(self) -> str:
        def breakdown(b: StageBreakdown) -> dict:
            return {
                "stage": b.stage, "spans": b.spans,
                "total_s": b.total_s,
                "queue_wait_s": b.queue_wait_s,
                "service_s": b.service_s, "mean_s": b.mean_s,
                "p50_s": b.p50_s, "p99_s": b.p99_s,
                "mean_per_chunk_s": b.mean_per_chunk_s,
                "share_of_latency": b.share_of_latency,
            }

        return json.dumps({
            "n_chunks": self.n_chunks,
            "mean_latency_s": self.mean_latency_s,
            "p50_latency_s": self.p50_latency_s,
            "p99_latency_s": self.p99_latency_s,
            "coverage": self.coverage,
            "stages": [breakdown(b) for b in self.stages],
            "admission": (breakdown(self.admission)
                          if self.admission else None),
            "background": [breakdown(b) for b in self.background],
            "batcher_fills": [{
                "name": f.name, "launches": f.launches,
                "mean_fill": f.mean_fill, "p50_fill": f.p50_fill,
            } for f in self.batcher_fills],
            "tenants": [{
                "tenant": t.tenant, "chunks": t.chunks,
                "mean_s": t.mean_s, "p50_s": t.p50_s,
                "p99_s": t.p99_s, "p999_s": t.p999_s,
                "max_s": t.max_s,
            } for t in self.tenants],
        }, indent=2)
