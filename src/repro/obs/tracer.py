"""Sim-time span tracer with a zero-cost disabled default.

A :class:`Span` is one interval of **simulated** time (``env.now``
seconds, never wall-clock): a pipeline stage for one chunk, a kernel's
occupancy of the GPU queue, an SSD request on a channel.  Spans carry a
``queue_wait`` component so every stage splits into *waiting for a
resource* vs. *being served* — the split the paper's offload decisions
live or die on.

Two tracers share the interface:

* :class:`NullTracer` — the default everywhere.  ``enabled`` is False
  and every method is a no-op; instrumented code guards its timing
  arithmetic behind ``tracer.enabled`` so untraced runs execute the
  exact event sequence they executed before tracing existed
  (byte-identical reports, enforced by tests).
* :class:`SimTracer` — appends :class:`Span` records.  All *derived*
  timing math (durations, queue-wait from an expected service time,
  proportional splits of a coalesced charge) lives here, which is what
  lets lint rule REP601 ban ad-hoc ``env.now`` arithmetic in the
  instrumented subsystems.

Timing invariant: recording must never *change* timing.  Tracer methods
only read ``env.now``; they never yield, charge, or touch the calendar.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

from repro.errors import TraceError


class Span:
    """One recorded interval of simulated time."""

    __slots__ = ("stage", "chunk_id", "start", "end", "queue_wait",
                 "resource", "attrs")

    def __init__(self, stage: str, chunk_id: Optional[int], start: float,
                 end: float, queue_wait: float = 0.0,
                 resource: Optional[str] = None,
                 attrs: Optional[dict[str, Any]] = None):
        self.stage = stage
        self.chunk_id = chunk_id
        self.start = start
        self.end = end
        self.queue_wait = queue_wait
        self.resource = resource
        self.attrs = attrs

    @property
    def duration(self) -> float:
        """Total span length (queue wait + service)."""
        return self.end - self.start

    @property
    def service(self) -> float:
        """Time actually being served (duration minus queue wait)."""
        return self.duration - self.queue_wait

    def __repr__(self) -> str:
        who = f"#{self.chunk_id}" if self.chunk_id is not None else \
            (self.resource or "-")
        return (f"<Span {self.stage} {who} "
                f"[{self.start:.6f}..{self.end:.6f}] "
                f"qw={self.queue_wait:.6f}>")


class _NullSpanHandle:
    """Shared no-op context manager returned by ``NullTracer.span``."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpanHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        return None


_NULL_SPAN = _NullSpanHandle()


class Tracer:
    """Interface shared by :class:`NullTracer` and :class:`SimTracer`."""

    enabled: bool = False

    def bind(self, env) -> None:
        raise NotImplementedError

    def record(self, stage, chunk_id=None, *, start, end=None,
               queue_wait=0.0, resource=None, attrs=None):
        raise NotImplementedError

    def record_since(self, stage, chunk_id, start, *,
                     expected_service_s=0.0, resource=None, attrs=None):
        raise NotImplementedError

    def record_split(self, stages, chunk_id, start, *, weights,
                     expected_service_s, resource=None):
        raise NotImplementedError

    def span(self, stage, chunk_id=None, resource=None, **attrs):
        raise NotImplementedError


class NullTracer(Tracer):
    """Tracing disabled: every method is a no-op.

    The single module-level :data:`NULL_TRACER` instance is the default
    tracer everywhere; hot paths check ``tracer.enabled`` once and skip
    all timing arithmetic when it is False.
    """

    enabled = False

    def bind(self, env) -> None:
        return None

    def record(self, stage, chunk_id=None, *, start, end=None,
               queue_wait=0.0, resource=None, attrs=None) -> None:
        return None

    def record_since(self, stage, chunk_id, start, *,
                     expected_service_s=0.0, resource=None,
                     attrs=None) -> None:
        return None

    def record_split(self, stages, chunk_id, start, *, weights,
                     expected_service_s, resource=None) -> None:
        return None

    def span(self, stage, chunk_id=None, resource=None,
             **attrs) -> _NullSpanHandle:
        return _NULL_SPAN


#: The shared do-nothing tracer (the default for every subsystem).
NULL_TRACER = NullTracer()


class _SpanHandle:
    """Context manager that records one span on exit."""

    __slots__ = ("_tracer", "stage", "chunk_id", "resource", "attrs",
                 "queue_wait", "_start")

    def __init__(self, tracer: "SimTracer", stage: str,
                 chunk_id: Optional[int], resource: Optional[str],
                 attrs: Optional[dict[str, Any]]):
        self._tracer = tracer
        self.stage = stage
        self.chunk_id = chunk_id
        self.resource = resource
        self.attrs = attrs
        #: Callers may set this inside the ``with`` block.
        self.queue_wait = 0.0
        self._start = 0.0

    def __enter__(self) -> "_SpanHandle":
        self._start = self._tracer.now()
        return self

    def __exit__(self, *exc_info) -> None:
        self._tracer.record(self.stage, self.chunk_id, start=self._start,
                            queue_wait=self.queue_wait,
                            resource=self.resource, attrs=self.attrs)
        return None


class SimTracer(Tracer):
    """Collects :class:`Span` records against one environment's clock."""

    enabled = True

    def __init__(self, env=None):
        self.env = env
        self.spans: list[Span] = []

    def bind(self, env) -> None:
        """Attach the tracer to the environment whose clock it reads.

        Harnesses construct the tracer before the environment exists
        (``run_mode`` builds its own); the run binds it on entry.
        Rebinding to a different environment is an error — spans from
        two clocks cannot share a timeline.
        """
        if self.env is not None and self.env is not env:
            raise TraceError("tracer is already bound to another "
                             "environment")
        self.env = env

    def now(self) -> float:
        """Current simulated time (requires :meth:`bind`)."""
        if self.env is None:
            raise TraceError("tracer is not bound to an environment")
        return self.env.now

    # -- recording ----------------------------------------------------------

    def record(self, stage: str, chunk_id: Optional[int] = None, *,
               start: float, end: Optional[float] = None,
               queue_wait: float = 0.0, resource: Optional[str] = None,
               attrs: Optional[dict[str, Any]] = None) -> Span:
        """Append one span; ``end`` defaults to the current sim time."""
        if end is None:
            end = self.now()
        if end < start:
            raise TraceError(
                f"span {stage!r} ends before it starts "
                f"({end} < {start})")
        duration = end - start
        if queue_wait < 0.0 or queue_wait > duration:
            # Clamp float-epsilon overshoot; reject real violations.
            if -1e-12 <= queue_wait < 0.0:
                queue_wait = 0.0
            elif duration < queue_wait <= duration + 1e-12:
                queue_wait = duration
            else:
                raise TraceError(
                    f"span {stage!r} queue_wait {queue_wait} outside "
                    f"[0, {duration}]")
        span = Span(stage, chunk_id, start, end, queue_wait, resource,
                    attrs)
        self.spans.append(span)
        return span

    def record_since(self, stage: str, chunk_id: Optional[int],
                     start: float, *, expected_service_s: float = 0.0,
                     resource: Optional[str] = None,
                     attrs: Optional[dict[str, Any]] = None) -> Span:
        """Record ``[start, now]``, deriving queue wait from the known
        service time.

        The instrumented stages know exactly how long their service
        *should* take (``cpu.seconds(cycles)``); anything beyond that is
        time spent waiting for a hardware thread (or a lock).  A stage
        with no service component (``expected_service_s=0``) is pure
        queueing.
        """
        end = self.now()
        duration = end - start
        queue_wait = duration - expected_service_s
        if queue_wait < 0.0:
            # The expected service estimate can exceed the measured
            # interval only by float rounding; treat as all-service.
            queue_wait = 0.0
        return self.record(stage, chunk_id, start=start, end=end,
                           queue_wait=queue_wait, resource=resource,
                           attrs=attrs)

    def record_split(self, stages: Sequence[str],
                     chunk_id: Optional[int], start: float, *,
                     weights: Sequence[float],
                     expected_service_s: float,
                     resource: Optional[str] = None) -> list[Span]:
        """Split one measured interval into consecutive stage spans.

        The pipeline coalesces adjacent charges (e.g. chunking + SHA-1 +
        handoff) into one CPU round trip for speed; attribution still
        wants them separate.  The measured ``[start, now]`` interval is
        split: contention wait (measured minus expected service) is
        attributed to the *first* stage — that is where the thread
        acquisition happened — and the service portion is divided in
        ``weights`` proportion.
        """
        if len(stages) != len(weights) or not stages:
            raise TraceError("stages and weights must align and be "
                             "non-empty")
        end = self.now()
        duration = end - start
        queue_wait = max(0.0, duration - expected_service_s)
        service = duration - queue_wait
        total_weight = sum(weights)
        if total_weight <= 0:
            raise TraceError(f"non-positive split weights {weights!r}")
        spans = []
        edge = start
        for index, (stage, weight) in enumerate(zip(stages, weights)):
            share = service * (weight / total_weight)
            span_end = edge + queue_wait + share if index == 0 \
                else edge + share
            if index == len(stages) - 1:
                span_end = end  # absorb float residue exactly
            spans.append(self.record(
                stage, chunk_id, start=edge, end=min(span_end, end),
                queue_wait=queue_wait if index == 0 else 0.0,
                resource=resource))
            edge = spans[-1].end
        return spans

    def span(self, stage: str, chunk_id: Optional[int] = None,
             resource: Optional[str] = None, **attrs) -> _SpanHandle:
        """Context manager recording ``[enter, exit]`` as one span."""
        return _SpanHandle(self, stage, chunk_id, resource,
                           attrs or None)
