"""Observability layer: sim-time tracing, metrics, critical-path reports.

The paper's argument is about *where time goes* on the inline write
path; this package makes that measurable instead of guessed.  Three
pieces (DESIGN.md §10):

* :mod:`repro.obs.tracer` — per-stage spans in **simulated** time, with
  a zero-cost :class:`NullTracer` default so untraced runs stay
  byte-identical;
* :mod:`repro.obs.metrics` — one namespaced registry absorbing the
  scattered ad-hoc statistics (dedup counters, scheduler decisions,
  GPU/SSD device stats);
* :mod:`repro.obs.export` / :mod:`repro.obs.critical_path` — Chrome
  ``trace_event`` JSON (Perfetto-loadable) and per-stage latency
  attribution with a queue-wait vs. service-time split.

Layering: this package may import only :mod:`repro.errors` and
:mod:`repro.sim` (enforced by lint rule REP401) — the instrumented
subsystems import *it*, never the other way around.
"""

from repro.obs.critical_path import CriticalPathReport, StageBreakdown
from repro.obs.export import (
    chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.tracer import NULL_TRACER, NullTracer, SimTracer, Span, Tracer

__all__ = [
    "Counter",
    "CriticalPathReport",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "SimTracer",
    "Span",
    "StageBreakdown",
    "Tracer",
    "chrome_trace",
    "validate_chrome_trace",
    "write_chrome_trace",
]
