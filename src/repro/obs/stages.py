"""Canonical stage and counter names for the reduction pipeline.

Tracer span stages, critical-path report rows and the report counters
all read from this module, so the names cannot drift apart: a stage the
tracer records is a stage the critical-path report knows how to order,
and a counter the dedup engine bumps is a counter the report carries.

Stage names follow the paper's Fig. 1 workflow order; the
``INLINE_STAGES`` tuple is the admission-to-completion subset whose
per-chunk durations must account for (>= 95% of) the mean inline
latency — the tentpole's attribution invariant.
"""

from __future__ import annotations

# -- per-chunk lifecycle spans (chunk_id set) -------------------------------

#: Whole-chunk envelope span: admission to completion (= the latency
#: histogram's sample for that chunk).
STAGE_CHUNK = "chunk"
#: Wait for a window slot, *before* admission (not part of inline latency).
STAGE_ADMISSION = "admission_wait"

#: Content-defined/fixed chunking share of the ingest charge.
STAGE_CHUNKING = "chunking"
#: SHA-1 fingerprinting share of the ingest charge (plus stage handoff).
STAGE_FINGERPRINT = "fingerprint"
#: Batched GPU bin lookup: submit to fan-out (queueing included).
STAGE_GPU_INDEX = "gpu_index"
#: CPU bin-buffer/bin-tree probe.
STAGE_CPU_INDEX = "cpu_index"
#: Wait on an in-flight twin's commit (pure queueing).
STAGE_PENDING_WAIT = "pending_wait"
#: Compression: CPU chunk-per-thread codec, or GPU batch submit-to-fan-out.
STAGE_COMPRESS = "compress"
#: CPU refinement of raw GPU compression output.
STAGE_POSTPROCESS = "postprocess"
#: Metadata insert + bin-buffer staging (duplicate map or unique store).
STAGE_COMMIT = "commit"

#: Workflow-ordered stages that make up the inline (admission-to-
#: completion) path; their per-chunk attributions must sum to the mean
#: chunk latency.
INLINE_STAGES = (
    STAGE_CHUNKING,
    STAGE_FINGERPRINT,
    STAGE_GPU_INDEX,
    STAGE_CPU_INDEX,
    STAGE_PENDING_WAIT,
    STAGE_COMPRESS,
    STAGE_POSTPROCESS,
    STAGE_COMMIT,
)

# -- resource-track spans (chunk_id unset) ----------------------------------

#: Asynchronous bin destage to the SSD (off the inline path).
STAGE_DESTAGE = "destage"
#: SSD channel occupancy per request kind.
STAGE_SSD_WRITE = "ssd_write"
STAGE_SSD_READ = "ssd_read"
STAGE_SSD_TRIM = "ssd_trim"

#: Cluster interconnect transfers (modeled NetLink occupancy; the
#: repro.cluster plane charges cross-node traffic under these names).
STAGE_NET_DISPATCH = "net_dispatch"
STAGE_NET_FLUSH = "net_flush"
STAGE_NET_REBALANCE = "net_rebalance"

#: Out-of-line compaction epoch: re-fingerprinting inline-skipped
#: chunks in sim-time background batches (repro.tenancy).
STAGE_COMPACTION = "compaction"

#: Resource/track names used by the Chrome exporter.
TRACK_WINDOW = "window"
TRACK_GPU_QUEUE = "gpu-queue"
TRACK_SSD = "ssd"
TRACK_DESTAGE = "destage"
TRACK_NET = "netlink"
TRACK_COMPACTION = "compaction"

# -- report counter keys (DedupEngine.counters / PipelineReport.counters) ----

CTR_GPU_HITS = "gpu_hits"
CTR_BUFFER_HITS = "buffer_hits"
CTR_TREE_HITS = "tree_hits"
CTR_UNIQUES = "uniques"
CTR_RACE_DUPLICATES = "race_duplicates"
CTR_FLUSHES = "flushes"
CTR_PENDING_HITS = "pending_hits"
CTR_RESTARTS = "restarts"

#: Full key set every dedup report carries (a counter that never fired
#: reads 0, not KeyError/absent).
DEDUP_COUNTER_KEYS = (
    CTR_GPU_HITS,
    CTR_BUFFER_HITS,
    CTR_TREE_HITS,
    CTR_UNIQUES,
    CTR_RACE_DUPLICATES,
    CTR_FLUSHES,
    CTR_PENDING_HITS,
    CTR_RESTARTS,
)
