"""Namespaced metrics registry: counters, gauges, histograms.

Before this module every subsystem grew its own ad-hoc statistics —
``DedupEngine.counters`` (a dict), ``SchedulerStats`` (a dataclass),
bare attributes on the GPU/SSD/compressor objects.  The registry gives
them one API and one dotted namespace (``dedup.gpu_hits``,
``scheduler.offloaded``, ``ssd.nand_bytes_written``) so exporters and
tests read a single snapshot instead of spelunking objects.

Three metric kinds, deliberately minimal:

* :class:`Counter` — monotonically increasing int (events, bytes);
* :class:`Gauge` — last-write-wins float (a ratio, a utilization);
* :class:`Histogram` — distribution, backed by the same log-bucketed
  :class:`~repro.sim.histogram.LatencyHistogram` the pipeline's latency
  reporting uses.

Snapshots iterate in sorted-name order, so rendering and JSON export
are deterministic regardless of registration order (REP104 hygiene).
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional, Union

from repro.errors import TraceError
from repro.sim.histogram import LatencyHistogram


class Counter:
    """Monotonically increasing event/byte count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise TraceError(
                f"counter {self.name!r} cannot decrease (by {amount})")
        self.value += amount


class Gauge:
    """Last-write-wins scalar."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Distribution metric over a log-bucketed histogram."""

    __slots__ = ("name", "hist")

    def __init__(self, name: str,
                 hist: Optional[LatencyHistogram] = None):
        self.name = name
        self.hist = hist if hist is not None else LatencyHistogram()

    def observe(self, value: float) -> None:
        self.hist.record(value)

    def summary(self) -> dict[str, float]:
        return self.hist.summary()


Metric = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Get-or-create store of named metrics."""

    __slots__ = ("_metrics",)

    def __init__(self) -> None:
        self._metrics: dict[str, Metric] = {}

    def _get_or_create(self, name: str, kind: type) -> Metric:
        metric = self._metrics.get(name)
        if metric is None:
            metric = kind(name)
            self._metrics[name] = metric
        elif type(metric) is not kind:
            raise TraceError(
                f"metric {name!r} is a {type(metric).__name__}, "
                f"not a {kind.__name__}")
        return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get_or_create(name, Histogram)

    def attach_histogram(self, name: str,
                         hist: LatencyHistogram) -> Histogram:
        """Expose an existing histogram (e.g. the pipeline's latency
        histogram) under the registry namespace without copying it."""
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, Histogram):
                raise TraceError(
                    f"metric {name!r} is a "
                    f"{type(existing).__name__}, not a Histogram")
            if existing.hist is not hist:
                raise TraceError(
                    f"metric {name!r} is already backed by a "
                    "different histogram")
            return existing
        metric = Histogram(name, hist)
        self._metrics[name] = metric
        return metric

    def absorb_counters(self, namespace: str,
                        counters: Mapping[str, int]) -> None:
        """Import a legacy counter dict as ``namespace.key`` counters."""
        for key in sorted(counters):
            metric = self.counter(f"{namespace}.{key}")
            value = counters[key]
            if value > metric.value:
                metric.inc(value - metric.value)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    def value(self, name: str):
        """Scalar value (counter/gauge) or summary dict (histogram)."""
        metric = self._metrics.get(name)
        if metric is None:
            raise TraceError(f"unknown metric {name!r}")
        if isinstance(metric, Histogram):
            return metric.summary()
        return metric.value

    def snapshot(self) -> dict[str, object]:
        """Deterministic name -> value/summary mapping."""
        return {name: self.value(name) for name in self.names()}

    def render(self, prefixes: Optional[Iterable[str]] = None) -> str:
        """Human-readable dump, optionally filtered by name prefix."""
        wanted = tuple(prefixes) if prefixes is not None else None
        lines = []
        for name in self.names():
            if wanted is not None and not any(
                    name == p or name.startswith(p + ".")
                    for p in wanted):
                continue
            value = self.value(name)
            if isinstance(value, dict):
                body = ", ".join(f"{k}={v:.3e}"
                                 for k, v in value.items())
                lines.append(f"{name:<40} {{{body}}}")
            elif isinstance(value, float):
                lines.append(f"{name:<40} {value:.6g}")
            else:
                lines.append(f"{name:<40} {value}")
        return "\n".join(lines)
