"""Lint driver: collect files, run checkers, apply baseline, report.

The runner is the only piece that touches the filesystem.  It walks
the requested paths, builds one :class:`FileContext` per source file,
fans each through every applicable checker, filters inline
suppressions, and splits the surviving findings into *new* (fail the
run) versus *baselined* (grandfathered with a reason).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Optional, Sequence

from repro.analysis.baseline import Baseline, BaselineEntry
from repro.analysis.config import LintConfig
from repro.analysis.context import FileContext
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.project import ProjectContext
from repro.analysis.rules import all_checkers
from repro.analysis.visitors import Checker
from repro.errors import LintError

#: Directories never descended into.
_SKIP_DIRS = {"__pycache__", ".git", ".venv", "node_modules",
              "build", "dist"}


@dataclass
class LintReport:
    """Outcome of one lint run."""

    #: Findings not covered by the baseline — these fail the run.
    new: list[Diagnostic] = field(default_factory=list)
    #: Findings matched (and silenced) by a baseline entry.
    baselined: list[Diagnostic] = field(default_factory=list)
    #: Count of findings silenced by inline ``# repro-lint: disable``.
    suppressed: int = 0
    #: Baseline entries that matched nothing (rot detector).
    stale_baseline: list[BaselineEntry] = field(default_factory=list)
    files_scanned: int = 0
    rules_run: list[str] = field(default_factory=list)
    #: True when the run was restricted to a changed-file subset;
    #: stale-baseline detection is skipped (the run cannot see every
    #: finding, so absence proves nothing).
    restricted: bool = False

    @property
    def ok(self) -> bool:
        """True when the tree is clean modulo the baseline."""
        return not self.new

    def all_findings(self) -> list[Diagnostic]:
        return sorted(self.new + self.baselined,
                      key=Diagnostic.sort_key)

    def format_text(self) -> str:
        lines = []
        for diag in sorted(self.new, key=Diagnostic.sort_key):
            lines.append(diag.format_text())
        if self.baselined:
            lines.append(f"({len(self.baselined)} baselined finding(s) "
                         f"suppressed; see the baseline file)")
        for entry in self.stale_baseline:
            lines.append(f"stale baseline entry: {entry.rule} "
                         f"{entry.path} [{entry.key}] — no longer "
                         f"occurs, remove it")
        lines.append(
            f"{len(self.new)} problem(s) in {self.files_scanned} "
            f"file(s) ({len(self.baselined)} baselined, "
            f"{self.suppressed} inline-suppressed)")
        return "\n".join(lines)

    def format_github(self) -> str:
        """GitHub workflow-command annotations (inline PR diagnostics)."""
        lines = []
        for diag in sorted(self.new, key=Diagnostic.sort_key):
            message = diag.message
            if diag.hint:
                message += f" — {diag.hint}"
            # Workflow commands terminate at a newline; %0A escapes.
            message = message.replace("%", "%25").replace("\n", "%0A")
            lines.append(
                f"::error file={diag.path},line={diag.line},"
                f"col={diag.col + 1},title={diag.rule}::{message}")
        for entry in self.stale_baseline:
            lines.append(
                f"::warning file={entry.path},title=stale-baseline::"
                f"baseline entry {entry.rule} [{entry.key}] no longer "
                f"occurs, remove it")
        lines.append(
            f"{len(self.new)} problem(s) in {self.files_scanned} "
            f"file(s) ({len(self.baselined)} baselined, "
            f"{self.suppressed} inline-suppressed)")
        return "\n".join(lines)

    def format_json(self) -> str:
        return json.dumps({
            "ok": self.ok,
            "files_scanned": self.files_scanned,
            "rules_run": self.rules_run,
            "new": [d.to_json()
                    for d in sorted(self.new, key=Diagnostic.sort_key)],
            "baselined": [d.to_json() for d in sorted(
                self.baselined, key=Diagnostic.sort_key)],
            "suppressed": self.suppressed,
            "stale_baseline": [
                {"rule": e.rule, "path": e.path, "key": e.key,
                 "reason": e.reason} for e in self.stale_baseline],
        }, indent=2)


def iter_source_files(paths: Iterable[Path]) -> Iterable[Path]:
    """Yield every ``.py`` file under ``paths`` in sorted order."""
    for path in paths:
        if path.is_file():
            if path.suffix == ".py":
                yield path
            continue
        if not path.exists():
            raise LintError(f"no such path: {path}")
        for sub in sorted(path.rglob("*.py")):
            if not any(part in _SKIP_DIRS for part in sub.parts):
                yield sub


def lint_file(ctx: FileContext, checkers: Sequence[Checker]
              ) -> tuple[list[Diagnostic], int]:
    """All non-suppressed findings for one file, plus suppressed count."""
    findings: list[Diagnostic] = []
    suppressed = 0
    for checker in checkers:
        if not checker.applies_to(ctx):
            continue
        for diag in checker.check(ctx):
            if ctx.suppressed(diag.rule, diag.line):
                suppressed += 1
            else:
                findings.append(diag)
    return findings, suppressed


def build_project(paths: Sequence[Path],
                  config: LintConfig) -> ProjectContext:
    """Parse every source file under ``paths`` exactly once."""
    contexts = [FileContext.from_path(path, config.root)
                for path in iter_source_files(paths)]
    return ProjectContext(contexts, config)


def run_lint(paths: Sequence[Path], config: Optional[LintConfig] = None,
             baseline: Optional[Baseline] = None,
             restrict: Optional[set[str]] = None,
             check_stale: bool = True) -> LintReport:
    """Lint ``paths`` and return a :class:`LintReport`.

    ``restrict`` limits *checking and reporting* to the given
    ``rel_path`` set (the ``--changed`` workflow) while the whole tree
    is still parsed — project-scoped rules need the full call graph
    either way.  A restricted run skips stale-baseline detection: it
    cannot see every finding, so an unmatched entry proves nothing.
    ``check_stale=False`` skips it for the same reason on runs whose
    *paths* cover less than the full tree (explicit file arguments).
    """
    config = config if config is not None else LintConfig()
    checkers = all_checkers(config)
    baseline = baseline if baseline is not None else Baseline()
    report = LintReport(rules_run=[c.rule for c in checkers],
                        restricted=restrict is not None)
    project = build_project(paths, config)
    for checker in checkers:
        checker.bind_project(project)
    all_diags: list[Diagnostic] = []
    for ctx in project.contexts:
        if restrict is not None and ctx.rel_path not in restrict:
            continue
        report.files_scanned += 1
        findings, suppressed = lint_file(ctx, checkers)
        report.suppressed += suppressed
        all_diags.extend(findings)
    for diag in all_diags:
        if baseline.contains(diag):
            report.baselined.append(diag)
        else:
            report.new.append(diag)
    if restrict is None and check_stale:
        report.stale_baseline = baseline.stale_entries(all_diags)
    return report
