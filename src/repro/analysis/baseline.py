"""Baseline file support: grandfathered findings with recorded reasons.

The baseline is a committed JSON file listing findings that are known,
justified, and deliberately kept.  Each entry carries a ``reason`` —
the review-time justification — and matches findings by the stable
``(rule, path, key)`` identity, *not* by line number, so unrelated
edits do not un-grandfather an entry.

``repro lint`` exits non-zero only for findings absent from the
baseline; stale entries (baselined findings that no longer occur) are
reported so the file cannot silently rot.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.analysis.diagnostics import Diagnostic
from repro.errors import LintError

_VERSION = 1


@dataclass(frozen=True, slots=True)
class BaselineEntry:
    """One grandfathered finding."""

    rule: str
    path: str
    key: str
    reason: str = ""

    def matches(self, diag: Diagnostic) -> bool:
        return (self.rule, self.path, self.key) == diag.baseline_key()


class Baseline:
    """A set of grandfathered findings loaded from (or saved to) JSON."""

    def __init__(self, entries: tuple[BaselineEntry, ...] = ()):
        self.entries = entries
        self._index = {(e.rule, e.path, e.key) for e in entries}

    def __len__(self) -> int:
        return len(self.entries)

    def contains(self, diag: Diagnostic) -> bool:
        return diag.baseline_key() in self._index

    def stale_entries(self, diags: list[Diagnostic]) -> list[BaselineEntry]:
        """Entries that matched none of the current findings."""
        seen = {d.baseline_key() for d in diags}
        return [e for e in self.entries
                if (e.rule, e.path, e.key) not in seen]

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        try:
            raw = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise LintError(f"baseline {path}: invalid JSON: {exc}") from exc
        if not isinstance(raw, dict) or raw.get("version") != _VERSION:
            raise LintError(f"baseline {path}: unsupported format")
        entries = []
        for item in raw.get("entries", []):
            try:
                entries.append(BaselineEntry(
                    rule=item["rule"], path=item["path"],
                    key=item["key"], reason=item.get("reason", "")))
            except (KeyError, TypeError) as exc:
                raise LintError(
                    f"baseline {path}: malformed entry {item!r}") from exc
        return cls(tuple(entries))

    @classmethod
    def from_diagnostics(cls, diags: list[Diagnostic],
                         reason: str = "grandfathered by --write-baseline"
                         ) -> "Baseline":
        entries = tuple(sorted(
            {BaselineEntry(rule=d.rule, path=d.path, key=d.key,
                           reason=reason) for d in diags},
            key=lambda e: (e.path, e.rule, e.key)))
        return cls(entries)

    def save(self, path: Path) -> None:
        payload = {
            "version": _VERSION,
            "entries": [
                {"rule": e.rule, "path": e.path, "key": e.key,
                 "reason": e.reason}
                for e in self.entries
            ],
        }
        path.write_text(json.dumps(payload, indent=2) + "\n")
