"""Project-wide lint context: every file's AST, parsed exactly once.

The runner builds one :class:`ProjectContext` per lint run and hands it
to every checker through :meth:`Checker.bind_project`.  Per-file rules
keep reading their single :class:`FileContext`; project-scoped rules
(the REP7xx effect family) reach the shared context list and the
lazily-built :class:`~repro.analysis.effects.EffectAnalysis` — which
consumes the *same* parsed trees, preserving the one-parse-per-file
property the single-parse test pins.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.config import LintConfig
from repro.analysis.context import FileContext


class ProjectContext:
    """All file contexts of one lint run plus the lazy effect engine."""

    def __init__(self, contexts: list[FileContext], config: LintConfig):
        self.contexts = contexts
        self.config = config
        self._effects = None
        self._by_path = {ctx.rel_path: ctx for ctx in contexts}

    def context_for(self, rel_path: str) -> Optional[FileContext]:
        return self._by_path.get(rel_path)

    @property
    def effects(self):
        """The effect analysis, built on first use from the shared ASTs."""
        if self._effects is None:
            from repro.analysis.effects import EffectAnalysis
            self._effects = EffectAnalysis(self.contexts, self.config)
        return self._effects
