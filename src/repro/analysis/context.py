"""Per-file analysis context: source, AST, imports, suppressions.

The context is built once per file and shared by every checker.  It
owns the three pieces of file-level knowledge the rules keep needing:

* the *module name* the file implements (derived from its path under a
  ``src/`` or package root, overridable for fixtures with a magic
  ``# repro-lint: module=...`` comment);
* the *import map* from local alias to the dotted name it binds, so a
  checker can resolve ``t.monotonic()`` back to ``time.monotonic`` no
  matter how the module was imported;
* the *suppression table* parsed from ``# repro-lint: disable=...``
  comments (line-scoped) and ``# repro-lint: disable-file=...`` ones
  (file-scoped).
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Optional

from repro.errors import LintError

#: ``# repro-lint: disable=REP101,REP102`` — suppress on this line.
_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,\s]+)")
#: ``# repro-lint: disable-file=REP101`` — suppress in the whole file.
_SUPPRESS_FILE_RE = re.compile(
    r"#\s*repro-lint:\s*disable-file=([A-Za-z0-9_,\s]+)")
#: ``# repro-lint: module=repro.sim.engine`` — fixture module override.
_MODULE_RE = re.compile(r"#\s*repro-lint:\s*module=([\w.]+)")


def module_name_for(path: Path) -> Optional[str]:
    """Dotted module name for ``path``, or None outside a package tree.

    Looks for the last path component named ``repro`` and joins from
    there, which covers both ``src/repro/...`` layouts and installed
    trees.
    """
    parts = list(path.parts)
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "repro":
            dotted = parts[i:]
            if dotted[-1] == "__init__":
                dotted = dotted[:-1]
            return ".".join(dotted)
    return None


def _parse_rule_list(raw: str) -> frozenset[str]:
    return frozenset(token.strip().upper()
                     for token in raw.split(",") if token.strip())


class FileContext:
    """Everything the checkers need to know about one source file."""

    def __init__(self, path: Path, rel_path: str, source: str):
        self.path = path
        #: Path string reported in diagnostics (relative, POSIX slashes).
        self.rel_path = rel_path
        self.source = source
        self.lines = source.splitlines()
        try:
            self.tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            raise LintError(
                f"{rel_path}: cannot parse: {exc}") from exc
        self.module = self._resolve_module()
        self._line_suppress: dict[int, frozenset[str]] = {}
        self._file_suppress: frozenset[str] = frozenset()
        self._parse_suppressions()
        self.imports = self._collect_imports()

    @classmethod
    def from_path(cls, path: Path, root: Path) -> "FileContext":
        try:
            rel = path.resolve().relative_to(root.resolve())
            rel_path = rel.as_posix()
        except ValueError:
            rel_path = path.as_posix()
        return cls(path, rel_path, path.read_text())

    # -- module identity ----------------------------------------------------

    def _resolve_module(self) -> Optional[str]:
        match = _MODULE_RE.search(self.source)
        if match:
            return match.group(1)
        return module_name_for(self.path)

    # -- suppressions -------------------------------------------------------

    def _parse_suppressions(self) -> None:
        file_rules: set[str] = set()
        for lineno, line in enumerate(self.lines, start=1):
            match = _SUPPRESS_FILE_RE.search(line)
            if match:
                file_rules |= _parse_rule_list(match.group(1))
                continue
            match = _SUPPRESS_RE.search(line)
            if match:
                self._line_suppress[lineno] = _parse_rule_list(
                    match.group(1))
        self._file_suppress = frozenset(file_rules)

    def suppressed(self, rule: str, line: int) -> bool:
        """True when ``rule`` is suppressed at ``line`` (or file-wide)."""
        rule = rule.upper()
        if rule in self._file_suppress or "ALL" in self._file_suppress:
            return True
        at_line = self._line_suppress.get(line, frozenset())
        return rule in at_line or "ALL" in at_line

    # -- imports ------------------------------------------------------------

    def _collect_imports(self) -> dict[str, str]:
        """Map every imported alias to the dotted name it binds."""
        imports: dict[str, str] = {}
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    # ``import a.b`` binds ``a``; ``import a.b as c``
                    # binds ``c`` to ``a.b``.
                    target = alias.name if alias.asname else \
                        alias.name.split(".")[0]
                    imports[local] = target
            elif isinstance(node, ast.ImportFrom):
                base = self._resolve_from(node)
                if base is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    imports[local] = f"{base}.{alias.name}"
        return imports

    def _resolve_from(self, node: ast.ImportFrom) -> Optional[str]:
        if node.level == 0:
            return node.module
        if self.module is None:
            return None
        # Relative import: climb ``level`` packages from this module.
        parts = self.module.split(".")
        # A module's own name does not count as a package level unless
        # this file is a package __init__ (already stripped).
        if len(parts) < node.level:
            return None
        base_parts = parts[:-node.level] if node.level <= len(parts) else []
        if node.module:
            base_parts = base_parts + node.module.split(".")
        return ".".join(base_parts) if base_parts else None

    # -- expression helpers -------------------------------------------------

    def dotted_name(self, node: ast.AST) -> Optional[str]:
        """Syntactic dotted form of a Name/Attribute chain, else None."""
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if isinstance(node, ast.Name):
            parts.append(node.id)
            return ".".join(reversed(parts))
        return None

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Fully-qualified dotted name of an expression, import-aware.

        ``t.monotonic`` with ``import time as t`` resolves to
        ``time.monotonic``; chains rooted in unimported names (locals,
        ``self``) resolve to None so callers cannot confuse an instance
        RNG with the module-level one.
        """
        dotted = self.dotted_name(node)
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        target = self.imports.get(head)
        if target is None:
            return None
        return f"{target}.{rest}" if rest else target
