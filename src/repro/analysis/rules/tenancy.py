"""Tenant-isolation rule (REP901).

The tenancy plane's fairness story rests on a mediation discipline
mirroring the cluster's (REP801): a tenant's private admission state —
estimator sketches, cache partitions, residency quotas, the mix-level
scheduling RNG — belongs to :mod:`repro.tenancy`, and everything the
pipeline or an experiment needs comes through the controller's public
surface (``admit``/``commit_*``/``counters``) or the accounting
readouts.  Code outside the package that pokes a tenant's partition or
estimator directly can skew residency shares without the accounting
noticing, which silently invalidates both the hit-rate comparison and
the per-tenant SLO attribution (DESIGN.md §15).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.context import FileContext
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.visitors import Checker, ScopeTracker


class TenantIsolationChecker(Checker):
    """REP901: no tenant-private state access outside ``repro.tenancy``.

    Flags, in modules that import from ``repro.tenancy`` but live
    outside it, attribute reads of the tenant-private names the config
    lists (estimator tables, sketch rings, cache partitions, quotas,
    the scheduling RNG).  The public surface — ``TenancyController``,
    ``TenantMix``/``TenantMixStream``, the accounting readouts — is
    untouched; so is everything in files that never import the
    tenancy package (the attribute names alone are too generic to
    patrol globally).
    """

    rule = "REP901"
    name = "tenant-isolation"
    description = ("direct access to tenant-private admission state "
                   "outside repro.tenancy (the controller's verdicts "
                   "and accounting readouts must mediate)")

    def applies_to(self, ctx: FileContext) -> bool:
        if ctx.module is None:
            return False
        return not self.config.in_scope(
            ctx.module, self.config.tenancy_private_scope)

    def _imports_tenancy(self, ctx: FileContext) -> bool:
        scope = self.config.tenancy_private_scope
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and node.module \
                    and self.config.in_scope(node.module, scope):
                return True
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if self.config.in_scope(alias.name, scope):
                        return True
        return False

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        if not self._imports_tenancy(ctx):
            return
        findings: list[Diagnostic] = []
        checker = self
        private_attrs = frozenset(self.config.tenancy_private_attrs)

        class Visitor(ScopeTracker):
            def visit_Attribute(self, node: ast.Attribute) -> None:
                if node.attr in private_attrs:
                    findings.append(checker.diag(
                        ctx, node,
                        f"`.{node.attr}` is tenant-private admission "
                        f"state — outside repro.tenancy every verdict "
                        f"and residency decision goes through the "
                        f"controller",
                        hint="use TenancyController.admit()/"
                             "counters()/estimates() or the "
                             "accounting readouts",
                        key=f"{self.qualname}:{node.attr}"))
                self.generic_visit(node)

        Visitor().visit(ctx.tree)
        yield from findings
