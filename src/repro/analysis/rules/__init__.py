"""Checker registry: one entry per enforced invariant (DESIGN.md §8)."""

from __future__ import annotations

from repro.analysis.config import LintConfig
from repro.analysis.rules.aliasing import SharedViewMutationChecker
from repro.analysis.rules.batchplane import ChunkLoopChecker
from repro.analysis.rules.cluster import ClusterIsolationChecker
from repro.analysis.rules.effects_memo import MemoPurityChecker
from repro.analysis.rules.dataplane import (
    ByteLoopMatchExtensionChecker,
    FingerprintDecomposeChecker,
)
from repro.analysis.rules.determinism import (
    DefaultSeedChecker,
    UnorderedIterationChecker,
    UnseededRngChecker,
    WallClockChecker,
)
from repro.analysis.rules.floattime import FloatTimeEqualityChecker
from repro.analysis.rules.layering import LayeringChecker
from repro.analysis.rules.obs import NowArithmeticChecker
from repro.analysis.rules.rngflow import RngFlowChecker
from repro.analysis.rules.sharedstate import ModuleStateChecker
from repro.analysis.rules.simproto import (
    AcquirePairingChecker,
    PrivateEngineApiChecker,
    YieldNonEventChecker,
)
from repro.analysis.rules.slots import SlotsCoverageChecker
from repro.analysis.rules.tenancy import TenantIsolationChecker
from repro.analysis.visitors import Checker
from repro.errors import LintError

#: Every registered checker class, in rule-id order.
CHECKERS: tuple[type[Checker], ...] = (
    WallClockChecker,          # REP101
    UnseededRngChecker,        # REP102
    DefaultSeedChecker,        # REP103
    UnorderedIterationChecker,  # REP104
    YieldNonEventChecker,      # REP201
    AcquirePairingChecker,     # REP202
    PrivateEngineApiChecker,   # REP203
    SlotsCoverageChecker,      # REP301
    LayeringChecker,           # REP401
    FloatTimeEqualityChecker,  # REP501
    ByteLoopMatchExtensionChecker,  # REP502
    FingerprintDecomposeChecker,   # REP503
    ChunkLoopChecker,          # REP504
    NowArithmeticChecker,      # REP601
    MemoPurityChecker,         # REP701
    SharedViewMutationChecker,  # REP702
    RngFlowChecker,            # REP703
    ModuleStateChecker,        # REP704
    ClusterIsolationChecker,   # REP801
    TenantIsolationChecker,    # REP901
)


def all_checkers(config: LintConfig) -> list[Checker]:
    """Instantiate the checkers selected by ``config.rules``."""
    selected = None
    if config.rules is not None:
        selected = {r.upper() for r in config.rules}
        known = {cls.rule for cls in CHECKERS} \
            | {cls.name for cls in CHECKERS}
        unknown = selected - {k.upper() for k in known}
        if unknown:
            raise LintError(
                f"unknown rule(s): {', '.join(sorted(unknown))} "
                f"(known: {', '.join(sorted(cls.rule for cls in CHECKERS))})")
    out = []
    for cls in CHECKERS:
        if selected is None or cls.rule in selected \
                or cls.name.upper() in selected:
            out.append(cls(config))
    return out


def checker_by_rule(rule: str, config: LintConfig) -> Checker:
    """Instantiate the single checker with the given rule id or name."""
    for cls in CHECKERS:
        if cls.rule == rule.upper() or cls.name == rule:
            return cls(config)
    raise LintError(f"unknown rule {rule!r}")
