"""Float-time hygiene rule (REP501).

Simulated time is an accumulated float (``now + delay`` chains), so
two "simultaneous" timestamps computed along different arithmetic
paths need not compare equal.  Scheduling logic must order by ``<=`` /
``>=`` (plus the explicit (priority, eid) tie-breaker), never gate on
exact equality.  The engine's run-queue pre-emption check is the one
audited exception: its heap timestamps are compared against the very
``now`` they were computed from, and it carries an inline suppression.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.context import FileContext
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.visitors import Checker, ScopeTracker


class FloatTimeEqualityChecker(Checker):
    """REP501: no ``==``/``!=`` on simulated-time expressions."""

    rule = "REP501"
    name = "float-time-equality"
    description = ("==/!= comparison on a simulated-time expression "
                   "in scheduler/pipeline code")

    def applies_to(self, ctx: FileContext) -> bool:
        return self.config.in_scope(ctx.module,
                                    self.config.float_time_scope)

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        findings: list[Diagnostic] = []
        checker = self
        time_names = set(self.config.time_names)

        def is_time_expr(node: ast.AST) -> bool:
            if isinstance(node, ast.Attribute):
                return node.attr in time_names
            if isinstance(node, ast.Name):
                return node.id in time_names
            if isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Attribute) \
                    and node.func.attr == "peek":
                return True
            if isinstance(node, ast.BinOp):
                return is_time_expr(node.left) or is_time_expr(node.right)
            return False

        class Visitor(ScopeTracker):
            def visit_Compare(self, node: ast.Compare) -> None:
                sides = [node.left] + list(node.comparators)
                for op, (left, right) in zip(node.ops,
                                             zip(sides, sides[1:])):
                    if not isinstance(op, (ast.Eq, ast.NotEq)):
                        continue
                    timeish = next((s for s in (left, right)
                                    if is_time_expr(s)), None)
                    if timeish is None:
                        continue
                    what = ctx.dotted_name(timeish) or \
                        type(timeish).__name__
                    findings.append(checker.diag(
                        ctx, node,
                        f"exact equality on simulated time "
                        f"(`{ast.unparse(node)}`) — accumulated float "
                        f"timestamps need not compare equal",
                        hint="order with <=/>= and break ties on "
                             "(priority, eid); suppress inline only "
                             "for audited same-origin comparisons",
                        key=f"{self.qualname}:{what}"))
                self.generic_visit(node)

        Visitor().visit(ctx.tree)
        yield from findings
