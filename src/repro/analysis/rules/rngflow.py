"""RNG provenance rule (REP703).

Run-to-run identity — the property every pinned baseline and
byte-identical report gate stands on — requires that all randomness is
(a) constructed from explicit seed material and (b) consumed where it
was constructed, or handed off *visibly*.  The coming per-shard
multiprocessing executor raises the stakes: an RNG that silently
crosses a module boundary today becomes an RNG forked into N workers
tomorrow, with each worker re-drawing from an object whose state the
parent no longer controls.

Three findings, from the effect engine's RNG records:

* **tainted seed** — a ``random.Random``/numpy generator constructed
  from wall-clock, ambient-RNG, or entropy-source material (and
  ``SystemRandom`` categorically); explicit constants and seed
  parameters are fine, and *unseeded* construction stays REP102's.
* **untracked cross-module flow** — an RNG value passed to another
  module's function through a parameter whose name does not mark it as
  an RNG hand-off (``rng_param_names``), or into a call the engine
  cannot resolve.
* **escaping storage** — an RNG stored into anything other than an
  attribute of ``self`` (a module-level dict, another object), or
  returned from a public function: ownership becomes untrackable.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.context import FileContext
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.visitors import Checker


class RngFlowChecker(Checker):
    """REP703: explicit seeds, visible RNG hand-offs, owned storage."""

    rule = "REP703"
    name = "rng-provenance"
    description = ("RNG constructed from tainted seed material, or "
                   "flowing across module boundaries untracked")

    def applies_to(self, ctx: FileContext) -> bool:
        return self.config.in_scope(ctx.module,
                                    self.config.rng_flow_scope)

    def _analysis(self, ctx: FileContext):
        if self.project is None:
            from repro.analysis.project import ProjectContext
            self.project = ProjectContext([ctx], self.config)
        return self.project.effects

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        analysis = self._analysis(ctx)
        tracked = tuple(f.lower() for f in self.config.rng_param_names)
        for fn in analysis.functions.values():
            if fn.rel_path != ctx.rel_path:
                continue
            for ctor in fn.rng_ctors:
                if ctor.ctor == "random.SystemRandom":
                    yield self.diag(
                        ctx, ctor.node,
                        f"`{fn.short()}` constructs SystemRandom: "
                        "entropy-seeded, never reproducible",
                        hint="use random.Random with an explicit seed",
                        key=f"{fn.short()}:systemrandom")
                elif ctor.taints:
                    yield self.diag(
                        ctx, ctor.node,
                        f"`{fn.short()}` seeds {ctor.ctor} from "
                        f"nondeterministic material "
                        f"({', '.join(sorted(set(ctor.taints)))})",
                        hint="derive the seed from an explicit seed "
                             "parameter or constant",
                        key=f"{fn.short()}:tainted-seed")
            for flow in fn.rng_flows:
                if flow.callee is None:
                    yield self.diag(
                        ctx, flow.node,
                        f"`{fn.short()}` passes an RNG into "
                        f"unresolvable call `{flow.target_desc}`",
                        hint="call the consumer directly so the flow "
                             "is trackable, or audit in the baseline",
                        key=f"{fn.short()}:rng-escape:"
                            f"{flow.target_desc}")
                elif not flow.same_module:
                    pname = (flow.param_name or "").lower()
                    if not any(frag in pname for frag in tracked):
                        yield self.diag(
                            ctx, flow.node,
                            f"`{fn.short()}` passes an RNG across a "
                            f"module boundary into "
                            f"`{flow.callee.short()}` parameter "
                            f"{flow.param_name!r}",
                            hint="name the parameter *rng* (or pass "
                                 "seed material instead) so the "
                                 "hand-off is tracked",
                            key=f"{fn.short()}:rng-flow:"
                                f"{flow.callee.short()}")
            for node, desc in fn.rng_stores:
                yield self.diag(
                    ctx, node,
                    f"`{fn.short()}` stores an RNG into `{desc}`: "
                    "ownership leaves the constructing object",
                    hint="keep RNGs on self, or store seed material",
                    key=f"{fn.short()}:rng-store:{desc}")
            if not fn.name.startswith("_"):
                for node in fn.rng_returns:
                    yield self.diag(
                        ctx, node,
                        f"public `{fn.short()}` returns an RNG: "
                        "downstream draws become untrackable",
                        hint="return drawn values or seed material, "
                             "or make the factory private",
                        key=f"{fn.short()}:rng-return")
