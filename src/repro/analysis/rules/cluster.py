"""Cluster shard-isolation rule (REP801).

The cluster's correctness story rests on one discipline: a shard's
reduction state (its DedupEngine, compressor, worker pool, pipes) is
private to :mod:`repro.cluster`, and every cross-shard interaction is
mediated by the router and charged through the NetLink (DESIGN.md
§14).  Code outside the package that reaches a shard's internals —
``executor._workers[i]._engine`` and friends — bypasses both the
byte-accounting and the partition-invariance argument: it can observe
(or worse, mutate) per-shard index state that the merged report
assumes only routed windows ever touched.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.context import FileContext
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.visitors import Checker, ScopeTracker


class ClusterIsolationChecker(Checker):
    """REP801: no direct shard-internal access outside ``repro.cluster``.

    Flags, in modules that import from ``repro.cluster`` but live
    outside it, (a) attribute reads of the shard-private names the
    config lists (worker engines, executor pools, pipe tables) and
    (b) calls to the child-process entrypoint.  The public surface —
    ``ClusterEngine``, the router, the NetLink, merged reports — is
    untouched; so is everything in files that never touch the cluster
    package (the attribute names alone are too generic to patrol
    globally).
    """

    rule = "REP801"
    name = "cluster-shard-isolation"
    description = ("direct access to shard-private cluster state "
                   "outside repro.cluster (router/NetLink must "
                   "mediate cross-shard traffic)")

    def applies_to(self, ctx: FileContext) -> bool:
        if ctx.module is None:
            return False
        return not self.config.in_scope(
            ctx.module, self.config.cluster_private_scope)

    def _imports_cluster(self, ctx: FileContext) -> bool:
        scope = self.config.cluster_private_scope
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and node.module \
                    and self.config.in_scope(node.module, scope):
                return True
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if self.config.in_scope(alias.name, scope):
                        return True
        return False

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        if not self._imports_cluster(ctx):
            return
        findings: list[Diagnostic] = []
        checker = self
        private_attrs = frozenset(self.config.cluster_private_attrs)

        class Visitor(ScopeTracker):
            def visit_Attribute(self, node: ast.Attribute) -> None:
                if node.attr in private_attrs:
                    findings.append(checker.diag(
                        ctx, node,
                        f"`.{node.attr}` is shard-private cluster "
                        f"state — outside repro.cluster all "
                        f"cross-shard traffic goes through the "
                        f"router and the NetLink",
                        hint="drive the cluster through "
                             "ClusterEngine.run()/plan_rebalance() "
                             "and read the merged report",
                        key=f"{self.qualname}:{node.attr}"))
                self.generic_visit(node)

            def visit_Call(self, node: ast.Call) -> None:
                name = None
                if isinstance(node.func, ast.Name):
                    name = node.func.id
                elif isinstance(node.func, ast.Attribute):
                    name = node.func.attr
                if name == "_shard_worker_main":
                    findings.append(checker.diag(
                        ctx, node,
                        "`_shard_worker_main` is the mp child "
                        "entrypoint — spawning shard workers outside "
                        "the executor skips report collection and "
                        "NetLink accounting",
                        hint="use make_executor()/ClusterEngine "
                             "instead of raw shard processes",
                        key=f"{self.qualname}:_shard_worker_main"))
                self.generic_visit(node)

        Visitor().visit(ctx.tree)
        yield from findings
