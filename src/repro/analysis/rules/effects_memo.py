"""Memo purity rule (REP701).

Every memo shipped since PR 3 — the codec memo, the payload-hash memo,
``compress_window``'s cross-window result memo, vdbench's payload cache
— replays a cached value instead of recomputing.  That is only sound if
the computation being skipped is a pure function of the memo key.  This
rule derives that mechanically: the effect engine discovers memo sites
(a ``.get``/``in`` probe plus a ``[k] = v`` / ``.put(...)`` install on
one container, in one function), traces the installed value back
through local assignment chains to its *producer* calls, and requires
every producer to infer transitively pure.

Genuinely impure producers that the replay path deliberately
compensates for (``CpuCompressor.compress`` reproduces its chunk and
counter mutations on replay) are audited in the committed baseline with
reasons — the rule keeps watching them so a new effect shows up as a
new finding, not silence.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.context import FileContext
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.visitors import Checker


class MemoPurityChecker(Checker):
    """REP701: memoized producers must infer transitively pure."""

    rule = "REP701"
    name = "memo-producer-purity"
    description = ("a callable whose result is installed in a memo "
                   "must be transitively pure (effect inference)")

    def _analysis(self, ctx: FileContext):
        if self.project is None:
            from repro.analysis.project import ProjectContext
            self.project = ProjectContext([ctx], self.config)
        return self.project.effects

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        analysis = self._analysis(ctx)
        seen: set[str] = set()
        for fn in analysis.functions.values():
            if fn.rel_path != ctx.rel_path:
                continue
            for site in fn.memo_sites:
                for node, producers in site.installs:
                    for info in producers:
                        diag = self._producer_diag(
                            ctx, fn, site, node, info)
                        if diag is not None and diag.key not in seen:
                            seen.add(diag.key)
                            yield diag

    def _producer_diag(self, ctx, fn, site, node, info):
        kind = info[0]
        if kind in ("pure", "benign"):
            return None
        if kind in ("project", "project-ctor"):
            analysis = self.project.effects
            callee = info[1]
            cs = info[2] if len(info) > 2 else None
            effects = set(callee.effects)
            if cs is not None:
                # Lift parameter mutations through the actual call
                # site: a fresh argument absorbs the mutation, an
                # aliased one names what really changes.
                pmap = analysis._param_map(cs)
                lifted = set()
                for eff in effects:
                    if eff.kind != "mutates-param":
                        lifted.add(eff)
                        continue
                    head, _, tail = eff.detail.partition(".")
                    root = pmap.get(head)
                    if root is None:
                        continue
                    mapped = analysis._mutation_effect(
                        root, tail, eff.origin, None, None)
                    if mapped is not None:
                        lifted.add(mapped)
                effects = lifted
            elif kind == "project-ctor" and callee.params:
                # A constructor's mutations of its own fresh instance
                # are invisible to the caller.
                self_name = callee.params[0]
                effects = {e for e in effects
                           if not (e.kind == "mutates-param"
                                   and e.detail.split(".")[0]
                                   == self_name)}
            if not effects:
                return None
            effects = sorted(e.render() for e in effects)
            shown = "; ".join(effects[:3])
            if len(effects) > 3:
                shown += f"; +{len(effects) - 3} more"
            return self.diag(
                ctx, node,
                f"memo {site.container} installs the result of "
                f"`{callee.short()}`, which infers impure: {shown}",
                hint="make the producer pure, or audit the site in the "
                     "baseline with the compensating-replay reason",
                key=f"{fn.short()}:{site.container}:{callee.short()}")
        if kind == "impure":
            return self.diag(
                ctx, node,
                f"memo {site.container} installs a value produced by "
                f"effectful call `{info[2]}` ({info[1]})",
                hint="memoized values must come from pure computation",
                key=f"{fn.short()}:{site.container}:{info[2]}")
        # kind == "unknown"
        return self.diag(
            ctx, node,
            f"memo {site.container} installs a value whose producer "
            f"`{info[1]}` cannot be resolved for effect inference",
            hint="resolve the call statically (direct call, typed "
                 "receiver) or audit it in the baseline",
            key=f"{fn.short()}:{site.container}:{info[1]}")
