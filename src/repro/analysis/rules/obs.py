"""Observability hygiene rule (REP601).

With the ``repro.obs`` span tracer in place, *derived* timing math —
durations, queue waits, service splits — belongs inside the tracer
(``record_since`` / ``record_split``), where it is validated (no
negative spans, queue wait bounded by duration) and lands in one
exportable stream.  Ad-hoc ``env.now - t0`` arithmetic scattered through
the subsystems recreates exactly the shadow statistics the metrics
registry absorbed.

The rule flags subtraction expressions where one operand reads a
``now``/``_now`` attribute, inside the instrumented packages.  The
simulation engine and ``repro.obs`` itself own the clock and are out of
scope by omission; the handful of intentional sites (the latency
histogram sample, admission pacing) are baselined with reasons.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.context import FileContext
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.visitors import Checker, ScopeTracker

_NOW_NAMES = ("now", "_now")


class NowArithmeticChecker(Checker):
    """REP601: no direct ``env.now`` latency arithmetic outside sim/obs."""

    rule = "REP601"
    name = "env-now-latency-arithmetic"
    description = ("direct env.now subtraction outside the simulation "
                   "engine and the tracer")

    def applies_to(self, ctx: FileContext) -> bool:
        return self.config.in_scope(ctx.module,
                                    self.config.now_arithmetic_scope)

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        findings: list[Diagnostic] = []
        checker = self

        def now_read(node: ast.AST) -> bool:
            return (isinstance(node, ast.Attribute)
                    and node.attr in _NOW_NAMES)

        class Visitor(ScopeTracker):
            def visit_BinOp(self, node: ast.BinOp) -> None:
                if isinstance(node.op, ast.Sub) and \
                        (now_read(node.left) or now_read(node.right)):
                    other = (node.right if now_read(node.left)
                             else node.left)
                    what = ctx.dotted_name(other) or \
                        type(other).__name__
                    findings.append(checker.diag(
                        ctx, node,
                        f"derived timing arithmetic on env.now "
                        f"(`{ast.unparse(node)}`) outside the tracer",
                        hint="record the interval with "
                             "tracer.record_since()/record_split(), or "
                             "baseline an audited intentional site",
                        key=f"{self.qualname}:{what}"))
                self.generic_visit(node)

        Visitor().visit(ctx.tree)
        yield from findings
