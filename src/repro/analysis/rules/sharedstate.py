"""Module-level shared-state rule (REP704).

A module-level mutable object is process-global state: every pipeline
instance in the process shares it, and the planned per-shard
``multiprocessing`` executor will copy-on-fork it into workers whose
mutations silently diverge from the parent.  Inside the hot-path
packages the only acceptable module-level mutables are the audited
memo singletons (bounded, content-keyed, value-frozen caches listed in
``shared_state_audited`` and documented in DESIGN.md §13) — everything
else must live on an instance whose ownership is explicit.

The rule is syntactic on purpose: module-level ``x = {}`` / ``x = []``
/ ``x = OrderedDict()`` bindings (and comprehension results) in scope,
minus dunder names and the audited list.  Reachability from the
pipeline is approximated by package scope, which DESIGN.md §13 spells
out.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.context import FileContext
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.visitors import Checker

#: Constructors whose call produces a mutable container.
_MUTABLE_CTORS = {
    "dict", "list", "set", "bytearray", "collections.OrderedDict",
    "collections.defaultdict", "collections.deque",
    "collections.Counter", "OrderedDict", "defaultdict", "deque",
    "Counter",
}

_MUTABLE_LITERALS = (ast.Dict, ast.List, ast.Set, ast.ListComp,
                     ast.DictComp, ast.SetComp)


class ModuleStateChecker(Checker):
    """REP704: no unaudited module-level mutable state in hot paths."""

    rule = "REP704"
    name = "module-mutable-state"
    description = ("module-level mutable container in a pipeline "
                   "hot-path package (unaudited shared state)")

    def applies_to(self, ctx: FileContext) -> bool:
        return self.config.in_scope(ctx.module,
                                    self.config.shared_state_scope)

    def _is_mutable(self, ctx: FileContext, value: ast.AST) -> bool:
        if isinstance(value, _MUTABLE_LITERALS):
            return True
        if isinstance(value, ast.Call):
            dotted = ctx.resolve(value.func) or \
                ctx.dotted_name(value.func)
            return dotted in _MUTABLE_CTORS
        return False

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        audited = set(self.config.shared_state_audited)
        for stmt in ctx.tree.body:
            if isinstance(stmt, ast.Assign):
                targets = [t for t in stmt.targets
                           if isinstance(t, ast.Name)]
                value = stmt.value
            elif isinstance(stmt, ast.AnnAssign) and \
                    isinstance(stmt.target, ast.Name) and stmt.value:
                targets = [stmt.target]
                value = stmt.value
            else:
                continue
            if not self._is_mutable(ctx, value):
                continue
            for target in targets:
                name = target.id
                if name.startswith("__") and name.endswith("__"):
                    continue
                if f"{ctx.module}.{name}" in audited:
                    continue
                yield self.diag(
                    ctx, stmt,
                    f"module-level mutable `{name}` is process-global "
                    "shared state in a pipeline hot-path package",
                    hint="move it onto an owning instance, or audit "
                         "it as a bounded content-keyed cache in "
                         "shared_state_audited + DESIGN.md §13",
                    key=name)
