"""Slots-coverage rule (REP301).

The hot-path modules allocate events, requests and chunks by the
million per timed run; PR 1 slotted them and the perf gate
(``benchmarks/test_p1_engine_hotpath.py``) assumes they stay slotted.
A new class added to one of these modules without ``__slots__``
silently reintroduces a per-instance ``__dict__`` — correct, slower,
and invisible in review.  This rule makes it visible.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.context import FileContext
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.visitors import Checker, decorator_names

#: Base-class names that exempt a class (exceptions carry ``__dict__``
#: anyway; Protocol/ABC machinery does not allocate on the hot path).
_EXEMPT_BASE_SUFFIXES = ("Error", "Exception", "Warning", "Interrupt")
_EXEMPT_BASES = frozenset({"Protocol", "Enum", "IntEnum", "NamedTuple",
                           "TypedDict"})


def _declares_slots(node: ast.ClassDef) -> bool:
    for item in node.body:
        if isinstance(item, ast.Assign):
            targets = [t.id for t in item.targets
                       if isinstance(t, ast.Name)]
            if "__slots__" in targets:
                return True
        elif isinstance(item, ast.AnnAssign) \
                and isinstance(item.target, ast.Name) \
                and item.target.id == "__slots__":
            return True
    return False


def _dataclass_slots(ctx: FileContext, node: ast.ClassDef) -> bool:
    """True when a ``@dataclass(slots=True)`` decorator is present."""
    for dotted, call in decorator_names(ctx, node):
        if dotted.split(".")[-1] != "dataclass":
            continue
        if call is None:
            return False
        for kw in call.keywords:
            if kw.arg == "slots" and isinstance(kw.value, ast.Constant):
                return bool(kw.value.value)
        return False
    return False


def _is_exempt(ctx: FileContext, node: ast.ClassDef) -> bool:
    for base in node.bases:
        dotted = ctx.dotted_name(base) or ""
        name = dotted.split(".")[-1]
        if name in _EXEMPT_BASES or name.endswith(_EXEMPT_BASE_SUFFIXES):
            return True
    return False


class SlotsCoverageChecker(Checker):
    """REP301: hot-path classes must declare ``__slots__``."""

    rule = "REP301"
    name = "slots-coverage"
    description = ("class in a hot-path module lacks __slots__ "
                   "(per-instance __dict__ on the allocation path)")

    def applies_to(self, ctx: FileContext) -> bool:
        return self.config.in_scope(ctx.module, self.config.slots_modules)

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if _declares_slots(node) or _dataclass_slots(ctx, node):
                continue
            if _is_exempt(ctx, node):
                continue
            yield self.diag(
                ctx, node,
                f"class `{node.name}` in a hot-path module has no "
                f"__slots__ declaration",
                hint="declare __slots__ (or @dataclass(slots=True)); "
                     "every subclass must declare its own additions",
                key=node.name)
