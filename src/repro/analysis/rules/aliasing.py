"""Escape-then-mutate aliasing rule (REP702).

The fast paths share buffers by *reference*: ``lz_common.key3_array``
hands the same cached key array to every codec instance,
``occurrence_index`` shares frozen occurrence lists, ``ChunkBatch``
exposes its offset/size numpy columns as views that the batched plane
slices without copying, and the memo classes return the exact cached
object on a hit.  One in-place write through any of those aliases
corrupts every other consumer retroactively — the classic
escaped-buffer bug the byte-identical-report contract cannot survive.

The effect engine marks values that arrive through a configured shared
provider, a memo-class hit, a cache subscript, or a shared attribute
(``shared_view_attrs``) with a ``shared`` root.  This rule reports
every write through such a root: direct writes in the function body,
and *lifted* writes where a callee mutates a parameter the caller bound
to a shared value (the inter-procedural case a per-file rule cannot
see).
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.context import FileContext
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.visitors import Checker


class SharedViewMutationChecker(Checker):
    """REP702: no mutation of escaped cache values or shared views."""

    rule = "REP702"
    name = "shared-view-mutation"
    description = ("in-place write through a cached value or shared "
                   "view (escape-then-mutate aliasing)")

    def _analysis(self, ctx: FileContext):
        if self.project is None:
            from repro.analysis.project import ProjectContext
            self.project = ProjectContext([ctx], self.config)
        return self.project.effects

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        analysis = self._analysis(ctx)
        seen: set[str] = set()
        for fn in analysis.functions.values():
            if fn.rel_path != ctx.rel_path:
                continue
            for node, desc in fn.shared_writes:
                key = f"{fn.short()}:{desc}"
                if key in seen:
                    continue
                seen.add(key)
                yield self.diag(
                    ctx, node,
                    f"in-place write through shared value "
                    f"`{desc}` in `{fn.short()}`",
                    hint="copy before mutating (bytes(...) / "
                         ".copy()), or stop sharing the buffer",
                    key=key)
        for fn, node, desc, origin in analysis.shared_lifts:
            if fn.rel_path != ctx.rel_path:
                continue
            key = f"{fn.short()}:{desc}:{origin}"
            if key in seen:
                continue
            seen.add(key)
            yield self.diag(
                ctx, node,
                f"`{fn.short()}` passes shared value `{desc}` into a "
                f"callee that mutates it ({origin})",
                hint="pass a copy, or make the callee non-mutating",
                key=key)
