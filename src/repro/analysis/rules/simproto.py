"""Simulation-protocol rules (REP201–REP203).

The engine's contract with its processes is narrow: yield Events only,
pair every ``try_acquire`` with a ``release_acquired``, and never reach
past the run-queue API into the private calendar.  Each fast path from
DESIGN.md §7 turns a violation of that contract from "slow" into
"silently wrong", so the contract is linted.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.context import FileContext
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.visitors import (
    Checker,
    ScopeTracker,
    is_generator,
    own_statements,
)

#: Private Environment/Event scheduling API (run-queue bypass).
_PRIVATE_ENGINE_CALLS = frozenset({"_schedule", "_trigger_now"})


def _is_literal(node: ast.AST) -> bool:
    """True for expressions that are certainly not Event instances."""
    if isinstance(node, (ast.Constant, ast.JoinedStr, ast.Tuple,
                         ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.SetComp, ast.DictComp, ast.GeneratorExp,
                         ast.Lambda)):
        return True
    if isinstance(node, ast.BinOp):
        return _is_literal(node.left) and _is_literal(node.right)
    if isinstance(node, (ast.Compare, ast.BoolOp)):
        return True
    return False


class YieldNonEventChecker(Checker):
    """REP201: process generators must only yield Event subclasses.

    In process-scoped modules a generator is (with overwhelming odds) a
    simulation process; yielding a literal, a comparison, or nothing at
    all hands the engine a non-event and fails at dispatch time with a
    context-free error.  Data generators (workload streams, chunkers)
    live outside the scope.
    """

    rule = "REP201"
    name = "simproto-yield-non-event"
    description = ("simulation process yields a value that cannot be "
                   "an Event (literal, comparison, bare yield)")

    def applies_to(self, ctx: FileContext) -> bool:
        return self.config.in_scope(ctx.module, self.config.process_scope)

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        findings: list[Diagnostic] = []
        checker = self

        class Visitor(ScopeTracker):
            def handle_function(self, node) -> None:
                if not is_generator(node):
                    return
                for sub in own_statements(node):
                    if not isinstance(sub, ast.Yield):
                        continue
                    if sub.value is None:
                        findings.append(checker.diag(
                            ctx, sub,
                            "bare `yield` in a simulation process "
                            "hands the engine None, not an Event",
                            hint="yield an Event/Timeout, or move "
                                 "pure-data generators out of the "
                                 "process scope",
                            key=f"{self.qualname}:bare-yield"))
                    elif _is_literal(sub.value):
                        findings.append(checker.diag(
                            ctx, sub,
                            "simulation process yields a literal — "
                            "processes may only yield Event subclasses",
                            hint="wrap work in env.timeout()/"
                                 "env.event()/resource requests",
                            key=f"{self.qualname}:literal-yield"))

        Visitor().visit(ctx.tree)
        yield from findings


class AcquirePairingChecker(Checker):
    """REP202: ``try_acquire`` must be paired with ``release_acquired``.

    The uncontended fast path claims an *anonymous* slot: nothing but
    the matching ``release_acquired`` call ever returns it, and a
    missing release deadlocks the pool only under load — far from the
    bug.  The pairing is checked per enclosing class (the release
    legitimately lives in a different method, e.g. a completion
    callback), falling back to the whole module for free functions.
    """

    rule = "REP202"
    name = "simproto-acquire-pairing"
    description = ("try_acquire() without a release_acquired() in the "
                   "same class (or module, for free functions)")

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        # scope -> (first try_acquire node, release seen?)
        scopes: dict[str, dict] = {}

        class Visitor(ScopeTracker):
            def visit_Call(self, node: ast.Call) -> None:
                if isinstance(node.func, ast.Attribute):
                    attr = node.func.attr
                    if attr in ("try_acquire", "release_acquired"):
                        scope = (self.class_stack[-1].name
                                 if self.class_stack else "<module>")
                        entry = scopes.setdefault(
                            scope, {"acquire": None, "release": False})
                        if attr == "try_acquire" \
                                and entry["acquire"] is None:
                            entry["acquire"] = node
                        elif attr == "release_acquired":
                            entry["release"] = True
                self.generic_visit(node)

        Visitor().visit(ctx.tree)
        for scope, entry in scopes.items():
            node = entry["acquire"]
            if node is not None and not entry["release"]:
                where = ("module scope" if scope == "<module>"
                         else f"class `{scope}`")
                yield self.diag(
                    ctx, node,
                    f"try_acquire() in {where} has no matching "
                    f"release_acquired() — the anonymous slot leaks",
                    hint="release on every path (success, error, "
                         "completion callback), or use request()/"
                         "release() with a context manager",
                    key=f"{scope}:try_acquire")


class PrivateEngineApiChecker(Checker):
    """REP203: no calls into the engine's private calendar API.

    ``Environment._schedule`` and ``Event._trigger_now`` bypass the
    public run-queue discipline; outside ``repro.sim`` their use must
    be an explicit, baselined decision (the coalesced CPU charge is the
    one grandfathered case — DESIGN.md §7).
    """

    rule = "REP203"
    name = "simproto-private-engine-api"
    description = ("call into the private scheduling API (_schedule / "
                   "_trigger_now) outside repro.sim")

    def applies_to(self, ctx: FileContext) -> bool:
        if ctx.module is None:
            return False
        return not self.config.in_scope(
            ctx.module, self.config.engine_private_scope)

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        findings: list[Diagnostic] = []
        checker = self

        class Visitor(ScopeTracker):
            def visit_Call(self, node: ast.Call) -> None:
                if isinstance(node.func, ast.Attribute) \
                        and node.func.attr in _PRIVATE_ENGINE_CALLS:
                    findings.append(checker.diag(
                        ctx, node,
                        f"`{node.func.attr}()` is private engine API — "
                        f"it bypasses the run-queue scheduling "
                        f"discipline",
                        hint="use succeed()/fail()/timeout(); if the "
                             "fast path is deliberate, record it in "
                             "the baseline with a reason",
                        key=f"{self.qualname}:{node.func.attr}"))
                self.generic_visit(node)

        Visitor().visit(ctx.tree)
        yield from findings
