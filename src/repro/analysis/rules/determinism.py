"""Determinism rules (REP101–REP104).

The whole reproduction rests on one promise: given a seed, two runs
produce byte-identical reports and trace-identical schedules
(``tests/test_engine_determinism.py``).  Anything that injects
ambient entropy — wall-clock reads, unseeded RNGs, hash-order
iteration — breaks that promise in ways golden-field tests only catch
after the fact.  These rules catch the *source* at review time.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.context import FileContext
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.visitors import Checker, ScopeTracker

#: Wall-clock reads: values differ between runs by construction.
_WALL_CLOCK = frozenset({
    "time.time", "time.time_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.process_time", "time.process_time_ns",
    "datetime.datetime.now", "datetime.datetime.today",
    "datetime.datetime.utcnow", "datetime.date.today",
})

#: Module-level ``random`` functions drawing from the shared, ambient
#: (possibly OS-seeded) generator.
_MODULE_RNG_PREFIXES = ("random.", "numpy.random.", "secrets.")
#: Module-level names that are fine: constructors and non-drawing API.
_MODULE_RNG_EXEMPT = frozenset({
    "random.Random", "random.SystemRandom", "numpy.random.Generator",
    "numpy.random.default_rng", "numpy.random.RandomState",
    "numpy.random.SeedSequence",
})
#: RNG constructors that must receive an explicit seed argument.
_RNG_CONSTRUCTORS = frozenset({
    "random.Random", "numpy.random.default_rng",
    "numpy.random.RandomState",
})

#: Call wrappers that realize iteration order (``sorted`` is exempt:
#: it imposes a total order of its own).
_ORDER_REALIZING_CALLS = frozenset({"list", "tuple", "min", "max"})

#: Parameter names recognized as the seed of an RNG-owning class.
_SEED_PARAM_NAMES = frozenset({"seed", "rng_seed"})


class WallClockChecker(Checker):
    """REP101: no wall-clock reads inside the simulation-scoped packages.

    Simulated components must take time from ``env.now`` only; a
    wall-clock read feeding any decision makes the schedule depend on
    host load.  Measurement harnesses (``bench``, ``cli``) are outside
    the scope on purpose.
    """

    rule = "REP101"
    name = "determinism-wallclock"
    description = ("wall-clock read (time.time / datetime.now / "
                   "perf_counter) in simulation-scoped code")

    def applies_to(self, ctx: FileContext) -> bool:
        return self.config.in_scope(ctx.module,
                                    self.config.determinism_scope)

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        findings: list[Diagnostic] = []
        checker = self

        class Visitor(ScopeTracker):
            def visit_Call(self, node: ast.Call) -> None:
                resolved = ctx.resolve(node.func)
                if resolved in _WALL_CLOCK:
                    findings.append(checker.diag(
                        ctx, node,
                        f"wall-clock read `{resolved}()` in simulated "
                        f"code — schedules must depend only on env.now",
                        hint="take time from the Environment (env.now) "
                             "or move the measurement into bench/",
                        key=f"{self.qualname}:{resolved}"))
                self.generic_visit(node)

        Visitor().visit(ctx.tree)
        yield from findings


class UnseededRngChecker(Checker):
    """REP102: no ambient/unseeded randomness in simulation-scoped code.

    Module-level ``random.*`` draws share one OS-seeded generator, and
    ``random.Random()`` without arguments seeds from the OS — both make
    two identically-seeded runs diverge.
    """

    rule = "REP102"
    name = "determinism-unseeded-rng"
    description = ("module-level random.* call or unseeded RNG "
                   "constructor in simulation-scoped code")

    def applies_to(self, ctx: FileContext) -> bool:
        return self.config.in_scope(ctx.module,
                                    self.config.determinism_scope)

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        findings: list[Diagnostic] = []
        checker = self

        class Visitor(ScopeTracker):
            def visit_Call(self, node: ast.Call) -> None:
                resolved = ctx.resolve(node.func)
                if resolved is not None:
                    if resolved in _RNG_CONSTRUCTORS and not node.args \
                            and not node.keywords:
                        findings.append(checker.diag(
                            ctx, node,
                            f"`{resolved}()` without a seed draws its "
                            f"state from the OS",
                            hint="pass an explicit seed derived from "
                                 "the run's --seed",
                            key=f"{self.qualname}:{resolved}"))
                    elif resolved not in _MODULE_RNG_EXEMPT and any(
                            resolved.startswith(p)
                            for p in _MODULE_RNG_PREFIXES):
                        findings.append(checker.diag(
                            ctx, node,
                            f"module-level RNG call `{resolved}()` uses "
                            f"the shared ambient generator",
                            hint="draw from a random.Random(seed) "
                                 "instance owned by the component",
                            key=f"{self.qualname}:{resolved}"))
                self.generic_visit(node)

        Visitor().visit(ctx.tree)
        yield from findings


class DefaultSeedChecker(Checker):
    """REP103: RNG-owning classes must require their seed explicitly.

    A class that constructs a ``random.Random`` in ``__init__`` but
    defaults its ``seed`` parameter invites call sites that silently
    pin entropy to a constant instead of flowing it from the run's
    ``--seed`` — exactly how the workload/replacement seeds went stale.
    """

    rule = "REP103"
    name = "determinism-default-seed"
    description = ("RNG-owning class defaults its seed parameter "
                   "instead of requiring it from the caller")

    def applies_to(self, ctx: FileContext) -> bool:
        return self.config.in_scope(ctx.module,
                                    self.config.determinism_scope)

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not self._owns_rng(ctx, node):
                continue
            init = self._find_init(node)
            if init is None:
                continue
            param = self._defaulted_seed_param(init)
            if param is not None:
                yield self.diag(
                    ctx, init,
                    f"class `{node.name}` owns an RNG but defaults its "
                    f"`{param}` parameter",
                    hint="make the seed required (keyword-only) so "
                         "every call site flows it from the run seed",
                    key=f"{node.name}.__init__:{param}")

    @staticmethod
    def _find_init(node: ast.ClassDef) -> Optional[ast.FunctionDef]:
        for item in node.body:
            if isinstance(item, ast.FunctionDef) \
                    and item.name == "__init__":
                return item
        return None

    @staticmethod
    def _owns_rng(ctx: FileContext, node: ast.ClassDef) -> bool:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call) \
                    and ctx.resolve(sub.func) in _RNG_CONSTRUCTORS:
                return True
        return False

    @staticmethod
    def _defaulted_seed_param(init: ast.FunctionDef) -> Optional[str]:
        args = init.args
        # Positional-or-keyword defaults align with the tail of args.
        positional = args.posonlyargs + args.args
        for arg, default in zip(positional[len(positional)
                                           - len(args.defaults):],
                                args.defaults):
            if arg.arg in _SEED_PARAM_NAMES and default is not None:
                return arg.arg
        for arg, default in zip(args.kwonlyargs, args.kw_defaults):
            if arg.arg in _SEED_PARAM_NAMES and default is not None:
                return arg.arg
        return None


class UnorderedIterationChecker(Checker):
    """REP104: no hash-order iteration feeding deterministic logic.

    Set iteration order follows the hash seed (randomized for str and
    bytes), so a set-driven loop can reorder work between runs.  In
    schedule-critical modules even dict-view loops are flagged: view
    order is insertion order, which refactors silently change, and the
    calendar must never inherit it.
    """

    rule = "REP104"
    name = "determinism-unordered-iter"
    description = ("iteration over a set (or, in schedule-critical "
                   "modules, a dict view) feeding ordering decisions")

    def applies_to(self, ctx: FileContext) -> bool:
        return self.config.in_scope(ctx.module,
                                    self.config.determinism_scope)

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        findings: list[Diagnostic] = []
        checker = self
        critical = self.config.in_scope(ctx.module,
                                        self.config.schedule_critical)
        set_names = self._set_typed_names(ctx)

        def is_set_expr(node: ast.AST) -> bool:
            if isinstance(node, ast.Set):
                return True
            if isinstance(node, ast.SetComp):
                return True
            if isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Name) \
                    and node.func.id in ("set", "frozenset") \
                    and node.func.id not in ctx.imports:
                return True
            if isinstance(node, ast.Name) and node.id in set_names:
                return True
            return False

        def is_dict_view(node: ast.AST) -> bool:
            return (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in ("values", "keys", "items")
                    and not node.args and not node.keywords)

        def flag(node: ast.AST, what: str, qualname: str) -> None:
            findings.append(checker.diag(
                ctx, node,
                f"iteration over {what} has no deterministic order",
                hint="iterate a list/deque, or wrap in sorted() with "
                     "an explicit key",
                key=f"{qualname}:{what}"))

        class Visitor(ScopeTracker):
            def _check_iter(self, iter_node: ast.AST) -> None:
                if is_set_expr(iter_node):
                    flag(iter_node, "a set", self.qualname)
                elif critical and is_dict_view(iter_node):
                    flag(iter_node,
                         f"a dict .{iter_node.func.attr}() view",
                         self.qualname)

            def visit_For(self, node: ast.For) -> None:
                self._check_iter(node.iter)
                self.generic_visit(node)

            def _check_comp(self, node) -> None:
                for gen in node.generators:
                    self._check_iter(gen.iter)
                self.generic_visit(node)

            visit_ListComp = _check_comp
            visit_SetComp = _check_comp
            visit_DictComp = _check_comp
            visit_GeneratorExp = _check_comp

            def visit_Call(self, node: ast.Call) -> None:
                if isinstance(node.func, ast.Name) \
                        and node.func.id in _ORDER_REALIZING_CALLS \
                        and len(node.args) == 1 \
                        and not any(kw.arg == "key"
                                    for kw in node.keywords) \
                        and is_set_expr(node.args[0]):
                    flag(node, f"a set (via {node.func.id}())",
                         self.qualname)
                self.generic_visit(node)

        Visitor().visit(ctx.tree)
        yield from findings

    @staticmethod
    def _set_typed_names(ctx: FileContext) -> set[str]:
        """Names assigned a set literal/comprehension/constructor or
        annotated as a set, anywhere in the file (syntactic, not
        flow-sensitive — good enough for lint)."""
        names: set[str] = set()
        for node in ast.walk(ctx.tree):
            value = None
            target = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            elif isinstance(node, ast.AnnAssign):
                target = node.target
                ann = ast.unparse(node.annotation).lower()
                if ann.startswith(("set", "frozenset", "typing.set",
                                   "typing.frozenset")):
                    if isinstance(target, ast.Name):
                        names.add(target.id)
                    continue
                value = node.value
            if value is None or not isinstance(target, ast.Name):
                continue
            if isinstance(value, (ast.Set, ast.SetComp)) or (
                    isinstance(value, ast.Call)
                    and isinstance(value.func, ast.Name)
                    and value.func.id in ("set", "frozenset")):
                names.add(target.id)
        return names
