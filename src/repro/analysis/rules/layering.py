"""Import-layering rule (REP401).

The dependency contract that keeps the substrate reusable and the
tests honest:

* ``repro.sim`` is the foundation — it imports nothing from the
  domain packages (dedup/compression/storage/core/...), only
  ``repro.errors`` and itself;
* ``repro.cpu`` and ``repro.gpu`` are sibling substrates — neither
  imports the other (the scheduler composes them; a direct dependency
  would hard-wire an offload policy into a device model);
* ``repro.bench`` and ``repro.analysis`` are leaves — only the CLI may
  import them, so no library path can accidentally depend on the
  measurement/lint harness.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.context import FileContext
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.visitors import Checker


class LayeringChecker(Checker):
    """REP401: the import graph must respect the layering contract."""

    rule = "REP401"
    name = "layering"
    description = "import crosses a layering boundary"

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.module is not None \
            and ctx.module.startswith("repro")

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        module = ctx.module
        assert module is not None
        for node, imported in self._imports(ctx):
            if not imported.startswith("repro."):
                continue
            finding = self._violation(module, imported)
            if finding is not None:
                yield self.diag(
                    ctx, node,
                    f"`{module}` imports `{imported}`: {finding}",
                    hint="invert the dependency (move shared types "
                         "down, or compose at the core/cli layer)",
                    key=f"import:{imported}")

    def _violation(self, module: str, imported: str) -> Optional[str]:
        config = self.config
        for package, allowed in config.import_allowlist.items():
            if self._inside(module, package) \
                    and not any(self._inside(imported, a)
                                for a in allowed):
                return (f"{package} may only import from "
                        f"{', '.join(allowed)}")
        for package, forbidden in config.import_denylist:
            if self._inside(module, package) \
                    and self._inside(imported, forbidden):
                return f"{package} must not depend on {forbidden}"
        for leaf, importers in config.leaf_packages.items():
            if self._inside(imported, leaf) \
                    and not self._inside(module, leaf) \
                    and module not in importers:
                return (f"{leaf} is a leaf package (importable only "
                        f"from {', '.join(importers)})")
        return None

    @staticmethod
    def _inside(module: str, package: str) -> bool:
        return module == package or module.startswith(package + ".")

    @staticmethod
    def _imports(ctx: FileContext) -> Iterator[tuple[ast.AST, str]]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    yield node, alias.name
            elif isinstance(node, ast.ImportFrom):
                base = ctx._resolve_from(node)
                if base is None:
                    continue
                yield node, base
