"""Batched functional-plane hygiene rule (REP504).

The batched-pipeline PR moved the functional plane onto chunk *windows*:
materialization, fingerprinting, codec dispatch and destage accounting
each take a whole window and amortize their per-call overhead across it
(DESIGN.md §12).  A fresh Python ``for`` loop (or comprehension) over a
chunk sequence inside those modules is almost always a regression to
the per-chunk idiom the batching retired — per-chunk attribute lookups
and dispatch re-entering through the narrow end of the funnel.

The audited exceptions — the window implementations themselves (one
loop per window *is* the batch), the retained per-chunk reference path
the equivalence suite diffs against, and the admission loop whose
per-chunk event pacing is the timed contract — are baselined with
reasons, exactly like REP502/REP503's audited sites.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.context import FileContext
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.visitors import Checker, ScopeTracker


class ChunkLoopChecker(Checker):
    """REP504: no per-chunk loops over chunk sequences in batched modules."""

    rule = "REP504"
    name = "chunk-seq-loop"
    description = ("per-chunk Python loop over a chunk sequence inside "
                   "a batched functional-plane module (use the window "
                   "helpers)")

    def applies_to(self, ctx: FileContext) -> bool:
        return self.config.in_scope(ctx.module,
                                    self.config.batched_plane_scope)

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        findings: list[Diagnostic] = []
        checker = self
        seq_names = self.config.chunkseq_names

        def chunk_sequence(node: ast.AST) -> str | None:
            """The iterated name when it is a bare chunk-sequence name."""
            if isinstance(node, ast.Name) and node.id in seq_names:
                return node.id
            return None

        def flag(node: ast.AST, name: str, qualname: str,
                 kind: str) -> None:
            findings.append(checker.diag(
                ctx, node,
                f"per-chunk {kind} over `{name}` in a batched "
                f"functional-plane module — the window helpers "
                f"(fingerprint_window, compress_window, write_run, "
                f"ChunkBatch) already amortize this traversal",
                hint="push the per-chunk work into the module's "
                     "window/batch helper, or baseline the site with "
                     "a reason if the per-chunk traversal is the "
                     "audited implementation itself",
                key=f"{qualname}:{kind}-{name}"))

        class Visitor(ScopeTracker):
            def visit_For(self, node: ast.For) -> None:
                name = chunk_sequence(node.iter)
                if name is not None:
                    flag(node, name, self.qualname, "for-loop")
                self.generic_visit(node)

            def _visit_comprehension(self, node) -> None:
                for gen in node.generators:
                    name = chunk_sequence(gen.iter)
                    if name is not None:
                        flag(node, name, self.qualname, "comprehension")
                self.generic_visit(node)

            visit_ListComp = _visit_comprehension
            visit_SetComp = _visit_comprehension
            visit_DictComp = _visit_comprehension
            visit_GeneratorExp = _visit_comprehension

        Visitor().visit(ctx.tree)
        yield from findings
