"""Data-plane hot-loop hygiene rules (REP502, REP503).

The fast-path PR replaced every per-byte match-extension loop —
``while ... data[a + i] == data[b + i]`` — with
:func:`repro.compression.lz_common.common_prefix_length`, which runs the
same comparison as C-level slice probes.  A new per-byte loop in the
compression or GPU-kernel packages is almost always a regression to the
slow idiom (or a divergence from the single audited implementation), so
it is flagged.  The one audited exception is the bounded 8-byte head
scan *inside* ``common_prefix_length`` itself — short matches are the
common case and the inline scan beats slice setup there — and it
carries an inline suppression.

REP503 is the same discipline for fingerprints: every derived slice of
a fingerprint (bin prefix, truncated suffix, GPU u64 lanes) comes from
:func:`repro.dedup.index_base.decompose`, which validates and caches
the result once per fingerprint.  A fresh ``int.from_bytes`` call or
``fingerprint[...]`` slice elsewhere in ``repro.dedup`` re-derives what
the shared view already holds — at best a redundant decode on the hot
path, at worst a drift from the audited decomposition.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.context import FileContext
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.visitors import Checker, ScopeTracker


class ByteLoopMatchExtensionChecker(Checker):
    """REP502: no per-byte ``data[a+i] == data[b+i]`` while-loops."""

    rule = "REP502"
    name = "byte-loop-match-extension"
    description = ("per-byte while-loop match extension in data-plane "
                   "hot code (use common_prefix_length)")

    def applies_to(self, ctx: FileContext) -> bool:
        return self.config.in_scope(ctx.module,
                                    self.config.dataplane_scope)

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        findings: list[Diagnostic] = []
        checker = self

        def subscript_equality(test: ast.AST) -> ast.Compare | None:
            """The first ``sub == sub`` comparison inside ``test``.

            Both operands must be subscripts: an index compared against
            a scalar (``bin_ids[order[end]] == bid``) is a scan for a
            value, not a match extension, and stays legal.
            """
            for node in ast.walk(test):
                if not isinstance(node, ast.Compare):
                    continue
                sides = [node.left] + list(node.comparators)
                for op, (left, right) in zip(node.ops,
                                             zip(sides, sides[1:])):
                    if isinstance(op, ast.Eq) \
                            and isinstance(left, ast.Subscript) \
                            and isinstance(right, ast.Subscript):
                        return node
            return None

        class Visitor(ScopeTracker):
            def visit_While(self, node: ast.While) -> None:
                compare = subscript_equality(node.test)
                if compare is not None:
                    findings.append(checker.diag(
                        ctx, node,
                        f"per-byte match-extension loop "
                        f"(`while {ast.unparse(node.test)}`) — this is "
                        f"the slow idiom the data-plane fast path "
                        f"retired",
                        hint="call lz_common.common_prefix_length (the "
                             "one audited per-byte head scan lives "
                             "inside it and is inline-suppressed)",
                        key=f"{self.qualname}:"
                            f"{ast.unparse(compare)}"))
                self.generic_visit(node)

        Visitor().visit(ctx.tree)
        yield from findings


class FingerprintDecomposeChecker(Checker):
    """REP503: fingerprint decomposition outside the audited helper."""

    rule = "REP503"
    name = "fp-decompose"
    description = ("per-fingerprint int.from_bytes / slicing outside "
                   "index_base.decompose (use FingerprintView)")

    def applies_to(self, ctx: FileContext) -> bool:
        cfg = self.config
        return (cfg.in_scope(ctx.module, cfg.fp_decompose_scope)
                and not cfg.in_scope(ctx.module, cfg.fp_decompose_exempt))

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        findings: list[Diagnostic] = []
        checker = self
        fp_names = self.config.fingerprint_names

        def names_fingerprint(node: ast.AST) -> bool:
            return isinstance(node, ast.Name) \
                and (node.id in fp_names or "fingerprint" in node.id)

        class Visitor(ScopeTracker):
            def visit_Call(self, node: ast.Call) -> None:
                func = node.func
                if isinstance(func, ast.Attribute) \
                        and func.attr == "from_bytes" \
                        and isinstance(func.value, ast.Name) \
                        and func.value.id == "int":
                    findings.append(checker.diag(
                        ctx, node,
                        f"fingerprint bytes decoded in place "
                        f"(`{ast.unparse(node)}`) — decomposition "
                        f"belongs to index_base.decompose",
                        hint="read bin_id/lo/hi off the shared "
                             "FingerprintView instead of re-decoding",
                        key=f"{self.qualname}:{ast.unparse(node)}"))
                self.generic_visit(node)

            def visit_Subscript(self, node: ast.Subscript) -> None:
                if isinstance(node.slice, ast.Slice) \
                        and names_fingerprint(node.value):
                    findings.append(checker.diag(
                        ctx, node,
                        f"fingerprint sliced in place "
                        f"(`{ast.unparse(node)}`) — decomposition "
                        f"belongs to index_base.decompose",
                        hint="read the suffix off the shared "
                             "FingerprintView instead of re-slicing",
                        key=f"{self.qualname}:{ast.unparse(node)}"))
                self.generic_visit(node)

        Visitor().visit(ctx.tree)
        yield from findings
