"""Data-plane hot-loop hygiene rule (REP502).

The fast-path PR replaced every per-byte match-extension loop —
``while ... data[a + i] == data[b + i]`` — with
:func:`repro.compression.lz_common.common_prefix_length`, which runs the
same comparison as C-level slice probes.  A new per-byte loop in the
compression or GPU-kernel packages is almost always a regression to the
slow idiom (or a divergence from the single audited implementation), so
it is flagged.  The one audited exception is the bounded 8-byte head
scan *inside* ``common_prefix_length`` itself — short matches are the
common case and the inline scan beats slice setup there — and it
carries an inline suppression.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.context import FileContext
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.visitors import Checker, ScopeTracker


class ByteLoopMatchExtensionChecker(Checker):
    """REP502: no per-byte ``data[a+i] == data[b+i]`` while-loops."""

    rule = "REP502"
    name = "byte-loop-match-extension"
    description = ("per-byte while-loop match extension in data-plane "
                   "hot code (use common_prefix_length)")

    def applies_to(self, ctx: FileContext) -> bool:
        return self.config.in_scope(ctx.module,
                                    self.config.dataplane_scope)

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        findings: list[Diagnostic] = []
        checker = self

        def subscript_equality(test: ast.AST) -> ast.Compare | None:
            """The first ``sub == sub`` comparison inside ``test``.

            Both operands must be subscripts: an index compared against
            a scalar (``bin_ids[order[end]] == bid``) is a scan for a
            value, not a match extension, and stays legal.
            """
            for node in ast.walk(test):
                if not isinstance(node, ast.Compare):
                    continue
                sides = [node.left] + list(node.comparators)
                for op, (left, right) in zip(node.ops,
                                             zip(sides, sides[1:])):
                    if isinstance(op, ast.Eq) \
                            and isinstance(left, ast.Subscript) \
                            and isinstance(right, ast.Subscript):
                        return node
            return None

        class Visitor(ScopeTracker):
            def visit_While(self, node: ast.While) -> None:
                compare = subscript_equality(node.test)
                if compare is not None:
                    findings.append(checker.diag(
                        ctx, node,
                        f"per-byte match-extension loop "
                        f"(`while {ast.unparse(node.test)}`) — this is "
                        f"the slow idiom the data-plane fast path "
                        f"retired",
                        hint="call lz_common.common_prefix_length (the "
                             "one audited per-byte head scan lives "
                             "inside it and is inline-suppressed)",
                        key=f"{self.qualname}:"
                            f"{ast.unparse(compare)}"))
                self.generic_visit(node)

        Visitor().visit(ctx.tree)
        yield from findings
