"""Checker base class and shared AST-walking helpers."""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.config import LintConfig
from repro.analysis.context import FileContext
from repro.analysis.diagnostics import Diagnostic


class Checker:
    """One lint rule: a scope predicate plus an AST walk.

    Subclasses set ``rule``, ``name`` and ``description``, decide
    applicability in :meth:`applies_to`, and yield raw findings from
    :meth:`check`.  Suppression comments and the baseline are handled
    by the runner, not here.
    """

    rule: str = "REP000"
    name: str = "abstract"
    description: str = ""

    def __init__(self, config: LintConfig):
        self.config = config
        #: Set by the runner before checking; project-scoped rules
        #: (the REP7xx effect family) read shared state from it.
        self.project = None

    def bind_project(self, project) -> None:
        """Receive the run-wide :class:`ProjectContext`."""
        self.project = project

    def applies_to(self, ctx: FileContext) -> bool:
        return True

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        raise NotImplementedError

    # -- helpers ------------------------------------------------------------

    def diag(self, ctx: FileContext, node: ast.AST, message: str,
             hint: str = "", key: str = "") -> Diagnostic:
        return Diagnostic(
            rule=self.rule, path=ctx.rel_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message, hint=hint, key=key)


class ScopeTracker(ast.NodeVisitor):
    """NodeVisitor that maintains the enclosing qualified name.

    ``self.qualname`` is ``Class.method`` style (no module prefix) and
    ``self.class_stack`` holds the enclosing ClassDef chain — enough for
    stable baseline keys and class-scoped pairing rules.
    """

    def __init__(self) -> None:
        self._names: list[str] = []
        self.class_stack: list[ast.ClassDef] = []

    @property
    def qualname(self) -> str:
        return ".".join(self._names) if self._names else "<module>"

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._names.append(node.name)
        self.class_stack.append(node)
        self.handle_class(node)
        self.generic_visit(node)
        self.class_stack.pop()
        self._names.pop()

    def _visit_function(self, node) -> None:
        self._names.append(node.name)
        self.handle_function(node)
        self.generic_visit(node)
        self._names.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    # Subclass hooks (called before descending).
    def handle_class(self, node: ast.ClassDef) -> None:
        pass

    def handle_function(self, node) -> None:
        pass


def is_generator(node: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    """True when the function's own body contains a yield."""
    return any(isinstance(child, (ast.Yield, ast.YieldFrom))
               for child in own_statements(node))


def own_statements(func) -> Iterator[ast.AST]:
    """The function's body, excluding nested function/class bodies."""
    stack = list(func.body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def decorator_names(ctx: FileContext,
                    node: ast.ClassDef) -> list[tuple[str, Optional[ast.Call]]]:
    """(dotted name, call node or None) for each class decorator."""
    out = []
    for deco in node.decorator_list:
        call = deco if isinstance(deco, ast.Call) else None
        target = deco.func if call is not None else deco
        dotted = ctx.dotted_name(target)
        if dotted is not None:
            out.append((dotted, call))
    return out
