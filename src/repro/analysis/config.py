"""Rule scoping and configuration for ``repro lint``.

One :class:`LintConfig` instance gathers everything rule-specific that
is *project policy* rather than checker mechanics: which packages the
determinism rules patrol, which modules are schedule-critical, which
classes must be slotted, and the import layering contract.  Checkers
read their scope from here so a test (or a future PR) can re-scope a
rule without touching its implementation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path


def _module_matches(module: str, prefixes: tuple[str, ...]) -> bool:
    """True when ``module`` is one of ``prefixes`` or inside one of them."""
    return any(module == p or module.startswith(p + ".") for p in prefixes)


@dataclass
class LintConfig:
    """Project policy knobs consumed by the checkers."""

    #: Root against which diagnostic paths are reported (the repo root).
    root: Path = field(default_factory=Path.cwd)

    #: Rule ids to run; ``None`` means every registered rule.
    rules: tuple[str, ...] | None = None

    # -- determinism (REP101/REP102/REP103/REP104) -------------------------
    #: Packages whose behaviour feeds simulated schedules and reports:
    #: wall-clock reads and unseeded RNGs here break run-to-run identity.
    determinism_scope: tuple[str, ...] = (
        "repro.sim", "repro.core", "repro.dedup", "repro.compression",
        "repro.cpu", "repro.gpu", "repro.storage", "repro.workload",
        "repro.obs", "repro.cluster", "repro.tenancy",
    )
    #: Modules whose iteration order decides *dispatch* order.  Here even
    #: dict-view iteration is flagged, because feeding a view into a
    #: schedule-ordering decision couples the calendar to insertion
    #: history that refactors silently reorder.
    schedule_critical: tuple[str, ...] = (
        "repro.sim.engine", "repro.sim.resources",
        "repro.core.scheduler", "repro.core.batcher",
    )

    # -- sim protocol (REP201/REP202/REP203) -------------------------------
    #: Packages whose generator functions are simulation processes; a
    #: literal yield there is a protocol violation, not a data stream.
    process_scope: tuple[str, ...] = (
        "repro.sim", "repro.core", "repro.cpu", "repro.gpu",
        "repro.storage",
    )
    #: The only package allowed to touch the engine's private scheduling
    #: API (``_schedule`` / ``_trigger_now``).
    engine_private_scope: tuple[str, ...] = ("repro.sim",)

    # -- slots coverage (REP301) -------------------------------------------
    #: Hot-path modules whose classes are allocated by the million; every
    #: class here must declare ``__slots__`` (DESIGN.md §7).
    slots_modules: tuple[str, ...] = (
        "repro.sim.engine", "repro.sim.resources",
        "repro.types", "repro.cpu.model",
        # Dedup index plane: one instance per staged/stored fingerprint.
        "repro.dedup.engine", "repro.dedup.bins",
        "repro.dedup.bin_buffer", "repro.dedup.btree",
        "repro.dedup.gpu_index", "repro.dedup.index_base",
        "repro.dedup.replacement", "repro.dedup.chunking",
        "repro.dedup.fingerprint", "repro.storage.metadata",
        "repro.gpu.kernel", "repro.gpu.kernels.indexing",
        "repro.gpu.kernels.indexing_tiled",
    )

    # -- layering (REP401) --------------------------------------------------
    #: package -> the only ``repro.*`` prefixes it may import from.
    import_allowlist: dict[str, tuple[str, ...]] = field(
        default_factory=lambda: {
            "repro.sim": ("repro.errors", "repro.sim"),
            "repro.analysis": ("repro.errors", "repro.analysis"),
            # The tracer/metrics layer sits just above the engine:
            # instrumented subsystems import repro.obs, never the
            # reverse (it may only reach down to sim primitives).
            "repro.obs": ("repro.errors", "repro.sim", "repro.obs"),
        })
    #: (package, forbidden package) pairs.
    import_denylist: tuple[tuple[str, str], ...] = (
        ("repro.cpu", "repro.gpu"),
        ("repro.gpu", "repro.cpu"),
    )
    #: Leaf packages: package -> who may import it (besides itself).
    leaf_packages: dict[str, tuple[str, ...]] = field(
        default_factory=lambda: {
            "repro.bench": ("repro.cli", "repro.__main__"),
            "repro.analysis": ("repro.cli", "repro.__main__"),
        })

    # -- float-time hygiene (REP501) ---------------------------------------
    #: Scheduler/pipeline modules where ``==``/``!=`` on simulated-time
    #: expressions is flagged (accumulated float time is not exact).
    float_time_scope: tuple[str, ...] = (
        "repro.sim", "repro.core.pipeline", "repro.core.scheduler",
        "repro.core.batcher",
    )
    #: Attribute/variable names treated as simulated-time expressions.
    time_names: tuple[str, ...] = (
        "now", "_now", "deadline", "_deadline", "next_admission",
    )

    # -- observability hygiene (REP601) ------------------------------------
    #: Packages where ad-hoc ``env.now`` subtraction is flagged: derived
    #: timing belongs in the tracer (record_since/record_split).  The
    #: engine (repro.sim) and the tracer (repro.obs) own the clock and
    #: are out of scope by omission.
    now_arithmetic_scope: tuple[str, ...] = (
        "repro.core", "repro.cpu", "repro.gpu", "repro.storage",
        "repro.dedup", "repro.compression", "repro.workload",
        "repro.bench", "repro.cluster", "repro.tenancy",
    )

    # -- data-plane hot loops (REP502) -------------------------------------
    #: Packages whose inner loops touch payload bytes; a per-byte
    #: ``data[a+i] == data[b+i]`` match-extension loop there regresses
    #: the fast path (DESIGN.md §9).
    dataplane_scope: tuple[str, ...] = (
        "repro.compression", "repro.gpu.kernels",
    )

    # -- batched functional plane (REP504) ---------------------------------
    #: Modules whose functional work is window-batched; a per-chunk
    #: Python loop over a chunk sequence there regresses the batched
    #: plane (DESIGN.md §12).  Audited per-chunk sites (the window
    #: implementations themselves, the retained reference path, the
    #: timed admission loop) live in the baseline.
    batched_plane_scope: tuple[str, ...] = (
        "repro.core.pipeline", "repro.chunkbatch",
        "repro.dedup.hashing", "repro.compression.parallel_cpu",
        "repro.workload.vdbench", "repro.cluster.router",
    )
    #: Bare names treated as chunk sequences when iterated.
    chunkseq_names: tuple[str, ...] = (
        "chunks", "window", "batch", "chunk_window",
    )

    # -- fingerprint decomposition (REP503) --------------------------------
    #: Packages where per-fingerprint ``int.from_bytes`` / slicing is
    #: flagged: derived fingerprint fields come from the shared
    #: :func:`repro.dedup.index_base.decompose` view.
    fp_decompose_scope: tuple[str, ...] = ("repro.dedup",)
    #: The one audited decomposition site, exempt by construction.
    fp_decompose_exempt: tuple[str, ...] = ("repro.dedup.index_base",)
    #: Variable names treated as raw fingerprint bytes (any name
    #: containing "fingerprint" matches too).
    fingerprint_names: tuple[str, ...] = ("fp", "fps")

    # -- effect inference (REP701/REP702/REP703/REP704) --------------------
    #: Module-level caches whose mutation is *audited memoization*: the
    #: effect engine classifies writes to them as benign, so functions
    #: that only memoize through them still infer pure.  Each is a
    #: bounded, content-keyed cache whose values are never handed out
    #: for mutation (the REP702 side of the contract).
    effect_benign_globals: tuple[str, ...] = (
        "repro.compression.lz_common._KEY3_CACHE",
        "repro.compression.quicklz._HASH_CACHE",
        "repro.compression.lzss._OCC_CACHE",
        "repro.dedup.index_base._CACHES",
    )
    #: Classes whose *self*-mutations are memo bookkeeping (hit/miss
    #: counters, LRU reordering): methods of these classes stay pure
    #: despite mutating their own instance.
    effect_memo_classes: tuple[str, ...] = (
        "repro.compression.memo.CodecMemo",
        "repro.dedup.hashing.PayloadHashMemo",
    )
    #: Functions whose return value is a shared view or cached buffer:
    #: callers receive a ``shared`` root, and any mutation through it
    #: is REP702.
    shared_view_providers: tuple[str, ...] = (
        "repro.compression.lz_common.key3_array",
        "repro.compression.lz_common.cached_key3_array",
        "repro.compression.lzss.occurrence_index",
    )
    #: Functions whose return value is a *cache container* owned by an
    #: audited benign global: installs into the returned dict are the
    #: memoization itself, not a shared-view mutation.  Maps provider
    #: function -> the benign global it exposes.
    effect_cache_providers: dict[str, str] = field(
        default_factory=lambda: {
            "repro.dedup.index_base.decomposition_cache":
                "repro.dedup.index_base._CACHES",
        })
    #: class -> attributes that expose shared numpy views (mutating an
    #: element through them corrupts every aliasing consumer).
    shared_view_attrs: dict[str, tuple[str, ...]] = field(
        default_factory=lambda: {
            "repro.chunkbatch.ChunkBatch": (
                "offsets", "sizes", "payloads", "fingerprints",
                "comp_ratios"),
        })
    #: Packages under the REP703 RNG-provenance contract (the same
    #: determinism surface the seeded-RNG rules patrol).
    rng_flow_scope: tuple[str, ...] = (
        "repro.sim", "repro.core", "repro.dedup", "repro.compression",
        "repro.cpu", "repro.gpu", "repro.storage", "repro.workload",
        "repro.tenancy",
    )
    #: Parameter-name fragments that mark a *tracked* RNG hand-off;
    #: passing an RNG across modules into any other parameter is an
    #: untracked flow.
    rng_param_names: tuple[str, ...] = ("rng", "random")
    #: Packages whose module-level mutable bindings are REP704 hazards
    #: (state a future multiprocessing executor would silently fork).
    shared_state_scope: tuple[str, ...] = (
        "repro.core", "repro.compression", "repro.dedup",
        "repro.workload", "repro.sim", "repro.cpu", "repro.gpu",
        "repro.storage", "repro.chunkbatch", "repro.types",
        "repro.cluster", "repro.tenancy",
    )
    #: The audited module-level singletons (dotted names), each a
    #: bounded content-keyed cache documented in DESIGN.md §13.
    shared_state_audited: tuple[str, ...] = (
        "repro.compression.lz_common._KEY3_CACHE",
        "repro.compression.quicklz._HASH_CACHE",
        "repro.compression.lzss._OCC_CACHE",
        "repro.dedup.index_base._CACHES",
    )

    # -- cluster shard isolation (REP801) ----------------------------------
    #: The one package allowed to touch shard-private state directly;
    #: everywhere else the router and the NetLink mediate (DESIGN.md
    #: §14).
    cluster_private_scope: tuple[str, ...] = ("repro.cluster",)
    #: Attribute names that constitute shard-private state: per-shard
    #: reduction batteries and the executor's worker/pipe tables.
    cluster_private_attrs: tuple[str, ...] = (
        "_workers", "_connections", "_processes", "_engine",
        "_compressor",
    )

    # -- tenant isolation (REP901) -----------------------------------------
    #: The package whose tenant-private admission state is off limits
    #: elsewhere.
    tenancy_private_scope: tuple[str, ...] = ("repro.tenancy",)
    #: Attribute names that constitute tenant-private state: estimator
    #: tables and sketch internals, cache partitions and quotas, the
    #: compaction canonical map, and the mix-level scheduling RNG.
    tenancy_private_attrs: tuple[str, ...] = (
        "_estimators", "_admissions", "_sched_rng", "_partitions",
        "_quotas", "_ring", "_counts", "_recent", "_canonical",
    )

    def in_scope(self, module: str | None, prefixes: tuple[str, ...]) -> bool:
        """True when ``module`` falls under one of the scope prefixes."""
        if module is None:
            return False
        return _module_matches(module, prefixes)
