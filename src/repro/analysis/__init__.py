"""Project-specific static analysis (``repro lint``).

The fast-path engine work (DESIGN.md §7) leans on invariants that
nothing used to enforce at review time: deterministic schedules,
hand-paired resource fast paths, slotted hot classes, a layered import
graph.  This package is the mechanical reviewer: an AST-walking lint
framework plus one checker per enforced invariant (DESIGN.md §8 maps
each rule to the invariant it guards).

Layering: this package deliberately imports nothing from the rest of
the library except :mod:`repro.errors` — the linter must be able to
analyse a broken tree without importing it.

Public surface::

    from repro.analysis import run_lint, LintConfig, all_checkers

    report = run_lint([Path("src/repro")], LintConfig(root=repo_root))
    for diag in report.new:
        print(diag.format_text())
"""

from repro.analysis.baseline import Baseline, BaselineEntry
from repro.analysis.config import LintConfig
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.effects import EffectAnalysis
from repro.analysis.project import ProjectContext
from repro.analysis.runner import LintReport, run_lint
from repro.analysis.rules import all_checkers, checker_by_rule

__all__ = [
    "Baseline",
    "BaselineEntry",
    "Diagnostic",
    "EffectAnalysis",
    "LintConfig",
    "LintReport",
    "ProjectContext",
    "all_checkers",
    "checker_by_rule",
    "run_lint",
]
