"""Diagnostic model for ``repro lint``.

A :class:`Diagnostic` is one finding: a rule id, a location, a message,
and a fix hint.  The ``key`` field is a *location-insensitive* stable
identifier (usually ``QualifiedName:detail``) so baseline entries keep
matching a grandfathered finding when unrelated edits move it to a
different line.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field


@dataclass(frozen=True, slots=True)
class Diagnostic:
    """One lint finding."""

    #: Rule identifier, e.g. ``"REP101"``.
    rule: str
    #: Path of the offending file, relative to the lint root.
    path: str
    #: 1-based source line of the finding.
    line: int
    #: 0-based column of the finding.
    col: int
    #: Human-readable statement of the violation.
    message: str
    #: How to fix it (or how to suppress it when it is intentional).
    hint: str = ""
    #: Stable, line-insensitive identity used for baseline matching.
    key: str = ""

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.rule)

    def baseline_key(self) -> tuple[str, str, str]:
        """Identity used to match this finding against a baseline entry."""
        return (self.rule, self.path, self.key)

    def format_text(self) -> str:
        text = f"{self.path}:{self.line}:{self.col + 1}: {self.rule} {self.message}"
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text

    def to_json(self) -> dict:
        return asdict(self)


@dataclass
class CheckerStats:
    """Per-checker bookkeeping surfaced in ``--format json`` output."""

    rule: str
    name: str
    files_checked: int = 0
    findings: int = 0
    suppressed: int = 0
    extra: dict = field(default_factory=dict)
