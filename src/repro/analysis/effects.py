"""Inter-procedural effect inference (DESIGN.md §13).

The per-file rules (REP1xx-REP6xx) pattern-match one AST at a time;
the REP7xx family needs whole-program answers: *is this callable pure,
transitively?*  This module builds that answer in three passes over the
shared :class:`~repro.analysis.context.FileContext` list:

1. **Index** — every module function and class in the linted tree,
   class attribute types inferred from ``__init__`` assignments and
   annotations, and the re-export alias map from package ``__init__``
   files, so dotted names resolve to definitions.
2. **Extract** — a per-function abstract interpretation over an
   *aliasing root* lattice: every local is tracked back to a root
   (parameter, attribute-of-parameter, module global, shared cache
   view, fresh allocation, constant, deterministic fresh-seeded RNG,
   unknown).  Mutations, I/O, RNG draws and clock reads are recorded
   as direct :class:`Effect` entries; calls are recorded as
   :class:`CallSite` entries with the roots of their arguments.  The
   same walk discovers memo sites (probe + install on one container),
   RNG constructions/flows, and writes through shared views.
3. **Propagate** — a monotone fixpoint over the call graph lifts each
   callee effect through the caller's argument roots, so purity is
   derived transitively, not asserted.

Effects on *audited* state are classified benign and excluded from the
purity verdict: mutations of config-listed module-level caches
(``effect_benign_globals``) and self-mutations inside config-listed
memo classes (``effect_memo_classes``) are memoization bookkeeping,
observationally pure by the byte-identical-report contract the memos
already test.  Everything else counts.

Known resolution limits (see DESIGN.md §13): dynamic dispatch through
``getattr``, properties invoked by attribute read, nested
functions/lambdas called later, and flow-sensitive joins (the last
textual assignment to a name wins) — all degrade to the conservative
``unknown`` root or an ``calls-unknown`` effect rather than a wrong
"pure" verdict.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.analysis.config import LintConfig
from repro.analysis.context import FileContext

# ---------------------------------------------------------------------------
# Effect and root vocabulary
# ---------------------------------------------------------------------------

#: Effect kinds, in severity-ish order.  ``mutates-shared`` is a write
#: through an escaped cache value or shared view (REP702's domain).
EFFECT_KINDS = (
    "mutates-param", "mutates-global", "mutates-shared",
    "mutates-unknown", "io", "rng", "time", "calls-unknown",
)


@dataclass(frozen=True)
class Effect:
    """One inferred side effect, attributed to the function it arose in."""

    __slots__ = ("kind", "detail", "origin")

    kind: str
    detail: str
    origin: str

    def render(self) -> str:
        return f"{self.kind}({self.detail}) from {self.origin}"


# Roots are plain tuples so they hash and compare structurally:
#   ("param", name)          value reachable from a parameter
#   ("attr", base, name)     attribute of another root (depth-capped)
#   ("global", dotted)       module-level binding
#   ("func", dotted)         a function/class object
#   ("shared", desc)         escaped cache value / shared view
#   ("fresh",)               allocated inside this function
#   ("const",)               immutable literal
#   ("rngfresh",)            fresh RNG seeded from explicit arguments
#   ("unknown",)
_FRESH = ("fresh",)
_CONST = ("const",)
_RNGFRESH = ("rngfresh",)
_UNKNOWN = ("unknown",)

_ATTR_DEPTH_CAP = 3


def root_desc(root: tuple) -> str:
    """Human-readable spelling of a root for diagnostics."""
    kind = root[0]
    if kind == "param":
        return root[1]
    if kind == "attr":
        return f"{root_desc(root[1])}.{root[2]}"
    if kind == "global":
        return root[1]
    if kind == "func":
        return root[1]
    if kind == "shared":
        return root[1]
    if kind == "rngfresh":
        return "<fresh seeded rng>"
    return f"<{kind}>"


# ---------------------------------------------------------------------------
# Call classification tables
# ---------------------------------------------------------------------------

_RNG_CTORS = {
    "random.Random", "random.SystemRandom",
    "numpy.random.default_rng", "numpy.random.RandomState",
    "numpy.random.Generator", "np.random.default_rng",
}

_WALL_CLOCK = {
    "time.time", "time.monotonic", "time.perf_counter",
    "time.time_ns", "time.monotonic_ns", "time.perf_counter_ns",
    "time.process_time", "datetime.datetime.now",
    "datetime.datetime.utcnow", "datetime.date.today",
}

#: Module-level draws on the ambient (shared, unseeded) RNG.
_AMBIENT_RNG_PREFIXES = ("random.", "numpy.random.", "secrets.")

_ENTROPY_SOURCES = {
    "os.urandom", "os.getrandom", "uuid.uuid1", "uuid.uuid4",
    "secrets.token_bytes", "secrets.token_hex",
}

_IO_CALLS = {
    "print", "input", "open", "breakpoint",
}
_IO_PREFIXES = (
    "os.", "sys.", "shutil.", "subprocess.", "socket.", "logging.",
    "tempfile.", "io.", "pickle.dump", "pickle.load", "json.dump",
    "json.load", "pathlib.Path.write", "pathlib.Path.read",
)

#: Stdlib / numpy prefixes whose calls are pure functions of their
#: arguments (results rooted fresh).  ``numpy.random`` is carved out
#: above; ``os``/``sys`` are carved out as I/O before this is checked.
_PURE_PREFIXES = (
    "math.", "cmath.", "hashlib.", "hmac.", "struct.", "itertools.",
    "functools.", "operator.", "zlib.", "binascii.", "base64.",
    "bisect.bisect", "heapq.merge", "heapq.nlargest", "heapq.nsmallest",
    "statistics.", "string.", "textwrap.", "re.", "json.dumps",
    "json.loads", "copy.copy", "copy.deepcopy", "numpy.", "np.",
    "collections.", "dataclasses.replace", "dataclasses.fields",
    "dataclasses.asdict", "enum.", "fractions.", "decimal.",
    "typing.", "abc.", "contextlib.",
)

_PURE_BUILTINS = {
    "len", "range", "min", "max", "sum", "abs", "sorted", "enumerate",
    "zip", "map", "filter", "list", "dict", "set", "tuple", "frozenset",
    "bytes", "bytearray", "memoryview", "int", "float", "str", "bool",
    "complex", "repr", "hash", "isinstance", "issubclass", "divmod",
    "round", "pow", "ord", "chr", "all", "any", "reversed", "slice",
    "format", "iter", "type", "callable", "hasattr", "getattr", "id",
    "object", "super", "vars", "property", "staticmethod",
    "classmethod", "NotImplemented", "hex", "oct", "bin", "ascii",
    # Exception construction is pure; raising is control flow, not an
    # effect (callers observing purity never observe a raise-and-catch).
    "Exception", "BaseException", "ValueError", "TypeError", "KeyError",
    "IndexError", "LookupError", "AttributeError", "RuntimeError",
    "NotImplementedError", "StopIteration", "ArithmeticError",
    "ZeroDivisionError", "OverflowError", "AssertionError", "OSError",
    "IOError", "EOFError", "MemoryError", "RecursionError",
    "UnicodeDecodeError", "UnicodeEncodeError", "Warning",
    "DeprecationWarning", "UserWarning",
}

#: ``f(x)`` builtins that mutate an argument: name -> arg index.
_MUTATING_BUILTINS = {"next": 0, "setattr": 0, "delattr": 0}

#: ``mod.f(x)`` stdlib calls that mutate an argument.
_MUTATING_DOTTED = {
    "heapq.heappush": 0, "heapq.heappop": 0, "heapq.heapify": 0,
    "heapq.heappushpop": 0, "heapq.heapreplace": 0,
    "bisect.insort": 0, "bisect.insort_left": 0,
    "bisect.insort_right": 0, "random.shuffle": 0,
}

#: Method names that mutate their receiver, on any receiver type.
_MUTATING_METHODS = {
    "append", "extend", "insert", "remove", "pop", "popitem", "clear",
    "update", "setdefault", "add", "discard", "sort", "reverse",
    "move_to_end", "appendleft", "popleft", "extendleft", "rotate",
    "fill", "put", "push", "setdefault", "__setitem__", "insort",
}

#: Method names assumed pure on any receiver (readers/formatters).
_PURE_METHODS = {
    "get", "keys", "values", "items", "copy", "count", "index", "join",
    "split", "rsplit", "strip", "lstrip", "rstrip", "startswith",
    "endswith", "encode", "decode", "format", "replace", "lower",
    "upper", "hex", "digest", "hexdigest", "bit_length", "to_bytes",
    "as_posix", "tobytes", "astype", "tolist", "most_common", "find",
    "rfind", "partition", "rpartition", "zfill", "ljust", "rjust",
    "title", "capitalize", "isdigit", "stats", "total_seconds",
    "is_integer", "as_integer_ratio", "from_bytes", "fromkeys",
    "mean", "std", "cumsum", "searchsorted", "nonzero", "reshape",
    "view", "item", "any", "all", "sum", "min", "max", "argmin",
    "argmax", "identity", "validate",
    # The memo verifier's hooks (repro.verify.MemoVerifier): hit-replay
    # sampling and column freezing are verification instrumentation on
    # an opt-in attribute, not data-plane effects.
    "on_hit", "freeze_array",
}

#: Methods that perform I/O on their receiver.
_IO_METHODS = {
    "write", "writelines", "read", "readline", "readlines", "flush",
    "write_text", "write_bytes", "read_text", "read_bytes", "mkdir",
    "unlink", "rmdir", "touch", "rename", "send", "recv", "close",
    "info", "warning", "error", "debug", "exception", "log",
}

#: Draw methods on an RNG-typed receiver.
_RNG_DRAW_METHODS = {
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "gauss", "betavariate", "expovariate",
    "triangular", "getrandbits", "normal", "integers",
    "standard_normal", "bytes", "permutation", "vonmisesvariate",
    "lognormvariate", "paretovariate", "weibullvariate", "binomial",
}

_RNG_TYPE = "random.Random"


# ---------------------------------------------------------------------------
# Project index structures
# ---------------------------------------------------------------------------

class FunctionInfo:
    """One function/method: AST, signature, and inferred effect state."""

    __slots__ = (
        "qualname", "module", "rel_path", "ctx", "node", "name",
        "class_qualname", "binds_self", "is_generator", "params",
        "vararg", "kwarg", "param_types", "return_type", "decorators",
        "direct", "benign", "effects", "calls", "memo_sites",
        "rng_ctors", "rng_flows", "rng_returns", "rng_stores",
        "shared_writes",
    )

    def __init__(self, qualname: str, ctx: FileContext, node,
                 class_qualname: Optional[str]):
        self.qualname = qualname
        self.module = ctx.module or "<unknown>"
        self.rel_path = ctx.rel_path
        self.ctx = ctx
        self.node = node
        self.name = node.name
        self.class_qualname = class_qualname
        self.decorators: set[str] = set()
        for deco in node.decorator_list:
            target = deco.func if isinstance(deco, ast.Call) else deco
            dotted = _syntactic_dotted(target)
            if dotted:
                self.decorators.add(dotted)
        self.binds_self = (class_qualname is not None
                           and "staticmethod" not in self.decorators)
        self.is_generator = any(
            isinstance(sub, (ast.Yield, ast.YieldFrom))
            for sub in _own_nodes(node))
        args = node.args
        self.params = [a.arg for a in args.posonlyargs + args.args]
        self.params += [a.arg for a in args.kwonlyargs]
        self.vararg = args.vararg.arg if args.vararg else None
        self.kwarg = args.kwarg.arg if args.kwarg else None
        self.param_types: dict[str, Optional[str]] = {}
        self.return_type: Optional[str] = None
        # Filled by the extractor / fixpoint:
        self.direct: set[Effect] = set()
        self.benign: set[Effect] = set()
        self.effects: set[Effect] = set()
        self.calls: list[CallSite] = []
        self.memo_sites: list[MemoSite] = []
        self.rng_ctors: list[RngCtor] = []
        self.rng_flows: list[RngFlow] = []
        self.rng_returns: list[ast.AST] = []
        self.rng_stores: list[tuple[ast.AST, str]] = []
        self.shared_writes: list[tuple[ast.AST, str]] = []

    @property
    def is_pure(self) -> bool:
        return not self.effects

    def short(self) -> str:
        prefix = self.module + "."
        return self.qualname[len(prefix):] \
            if self.qualname.startswith(prefix) else self.qualname


class ClassInfo:
    """One class: methods, bases, inferred attribute types."""

    __slots__ = ("qualname", "module", "node", "bases", "methods",
                 "attr_types")

    def __init__(self, qualname: str, module: str, node: ast.ClassDef):
        self.qualname = qualname
        self.module = module
        self.node = node
        self.bases: list[str] = []
        self.methods: dict[str, FunctionInfo] = {}
        self.attr_types: dict[str, Optional[str]] = {}


class CallSite:
    """One call to a project-resolved target, with argument roots."""

    __slots__ = ("node", "callee", "recv", "args", "kwargs", "is_ctor")

    def __init__(self, node: ast.Call, callee: FunctionInfo,
                 recv: Optional[tuple], args: list[tuple],
                 kwargs: dict[str, tuple], is_ctor: bool):
        self.node = node
        self.callee = callee
        self.recv = recv
        self.args = args
        self.kwargs = kwargs
        self.is_ctor = is_ctor


class MemoSite:
    """A probe+install pair on one container inside one function."""

    __slots__ = ("fn", "container", "probes", "installs")

    def __init__(self, fn: FunctionInfo, container: str):
        self.fn = fn
        self.container = container
        self.probes: list[ast.AST] = []
        #: (install node, producer descriptors) — each producer is
        #: ("project", FunctionInfo) | ("pure", desc) | ("impure",
        #: kind, desc) | ("unknown", desc).
        self.installs: list[tuple[ast.AST, list[tuple]]] = []


class RngCtor:
    """One RNG construction, with its seed provenance."""

    __slots__ = ("node", "ctor", "explicit", "taints")

    def __init__(self, node: ast.Call, ctor: str, explicit: bool,
                 taints: list[str]):
        self.node = node
        self.ctor = ctor
        self.explicit = explicit
        self.taints = taints


class RngFlow:
    """An RNG value passed into a call (tracked or escaping)."""

    __slots__ = ("node", "target_desc", "callee", "param_name",
                 "same_module")

    def __init__(self, node: ast.AST, target_desc: str,
                 callee: Optional[FunctionInfo], param_name: Optional[str],
                 same_module: bool):
        self.node = node
        self.target_desc = target_desc
        self.callee = callee
        self.param_name = param_name
        self.same_module = same_module


def _syntactic_dotted(node: ast.AST) -> Optional[str]:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _own_nodes(func) -> Iterable[ast.AST]:
    stack = list(func.body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


# ---------------------------------------------------------------------------
# The analysis
# ---------------------------------------------------------------------------

class EffectAnalysis:
    """Whole-program effect summaries over a set of file contexts."""

    def __init__(self, contexts: Iterable[FileContext],
                 config: Optional[LintConfig] = None):
        self.config = config if config is not None else LintConfig()
        self.contexts = list(contexts)
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        #: dotted re-export -> defining dotted name (package __init__).
        self.aliases: dict[str, str] = {}
        #: module -> {local def name -> dotted qualname}
        self._module_defs: dict[str, dict[str, str]] = {}
        #: module -> names bound by module-level assignments.
        self._module_globals: dict[str, set[str]] = {}
        #: (fn, callsite node, desc, origin) — shared writes discovered
        #: during propagation (a callee mutated a param the caller
        #: bound to a shared root).
        self.shared_lifts: list[tuple] = []
        self._benign_globals = set(self.config.effect_benign_globals)
        self._memo_classes = set(self.config.effect_memo_classes)
        self._index()
        self._infer_attr_types()
        for fn in self.functions.values():
            _Extractor(self, fn).run()
        self._propagate()
        self._collect_memo_sites()

    # -- pass 1: index ------------------------------------------------------

    def _index(self) -> None:
        for ctx in self.contexts:
            module = ctx.module
            if module is None:
                continue
            defs = self._module_defs.setdefault(module, {})
            mglobals = self._module_globals.setdefault(module, set())
            for stmt in ctx.tree.body:
                if isinstance(stmt, ast.Assign):
                    for target in stmt.targets:
                        if isinstance(target, ast.Name):
                            mglobals.add(target.id)
                elif isinstance(stmt, ast.AnnAssign) and \
                        isinstance(stmt.target, ast.Name):
                    mglobals.add(stmt.target.id)
                if isinstance(stmt, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                    qual = f"{module}.{stmt.name}"
                    defs[stmt.name] = qual
                    self.functions[qual] = FunctionInfo(qual, ctx, stmt,
                                                        None)
                elif isinstance(stmt, ast.ClassDef):
                    qual = f"{module}.{stmt.name}"
                    defs[stmt.name] = qual
                    cls = ClassInfo(qual, module, stmt)
                    self.classes[qual] = cls
                    for sub in stmt.body:
                        if isinstance(sub, (ast.FunctionDef,
                                            ast.AsyncFunctionDef)):
                            mqual = f"{qual}.{sub.name}"
                            fn = FunctionInfo(mqual, ctx, sub, qual)
                            cls.methods[sub.name] = fn
                            self.functions[mqual] = fn
            # Package __init__ re-exports: alias exported name to the
            # defining module's qualname.
            if ctx.path.name == "__init__.py":
                for local, target in ctx.imports.items():
                    self.aliases[f"{module}.{local}"] = target
        # Resolve base-class names now that every class is indexed.
        for cls in self.classes.values():
            ctx = None
            for c in self.contexts:
                if c.module == cls.module:
                    ctx = c
                    break
            for base in cls.node.bases:
                dotted = self._resolve_symbolic(ctx, base) if ctx else None
                if dotted:
                    dotted = self.canonical(dotted)
                    if dotted in self.classes:
                        cls.bases.append(dotted)
        # Signature types need the class index.
        for fn in self.functions.values():
            node = fn.node
            args = node.args
            for arg in (args.posonlyargs + args.args + args.kwonlyargs):
                typ = self._ann_type(fn.ctx, arg.annotation)
                if typ is not None:
                    fn.param_types[arg.arg] = typ
            fn.return_type = self._ann_type(fn.ctx, node.returns)

    def canonical(self, dotted: str) -> str:
        """Follow package re-export aliases to the defining module."""
        seen = 0
        while dotted in self.aliases and seen < 5:
            dotted = self.aliases[dotted]
            seen += 1
        return dotted

    def _resolve_symbolic(self, ctx: FileContext,
                          node: ast.AST) -> Optional[str]:
        """Dotted name of an expression: imports, then module defs."""
        resolved = ctx.resolve(node)
        if resolved is not None:
            return resolved
        dotted = _syntactic_dotted(node)
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        defs = self._module_defs.get(ctx.module or "", {})
        if head in defs:
            base = defs[head]
            return f"{base}.{rest}" if rest else base
        return None

    def resolve_name(self, ctx: FileContext,
                     name: str) -> Optional[str]:
        """Dotted target of a bare name (import or module-level def)."""
        target = ctx.imports.get(name)
        if target is not None:
            return target
        defs = self._module_defs.get(ctx.module or "", {})
        return defs.get(name)

    def lookup_function(self, dotted: str) -> Optional[FunctionInfo]:
        return self.functions.get(self.canonical(dotted))

    def lookup_class(self, dotted: str) -> Optional[ClassInfo]:
        return self.classes.get(self.canonical(dotted))

    def resolve_method(self, class_qualname: str,
                       name: str) -> Optional[FunctionInfo]:
        """Method lookup through the project-visible base-class chain."""
        seen: set[str] = set()
        stack = [class_qualname]
        while stack:
            qual = stack.pop(0)
            if qual in seen:
                continue
            seen.add(qual)
            cls = self.classes.get(qual)
            if cls is None:
                continue
            if name in cls.methods:
                return cls.methods[name]
            stack.extend(cls.bases)
        return None

    def attr_type(self, class_qualname: str,
                  attr: str) -> Optional[str]:
        seen: set[str] = set()
        stack = [class_qualname]
        while stack:
            qual = stack.pop(0)
            if qual in seen:
                continue
            seen.add(qual)
            cls = self.classes.get(qual)
            if cls is None:
                continue
            if attr in cls.attr_types:
                return cls.attr_types[attr]
            stack.extend(cls.bases)
        return None

    # -- pass 1b: annotation / attribute types ------------------------------

    def _ann_type(self, ctx: FileContext,
                  ann: Optional[ast.AST]) -> Optional[str]:
        """Project class (or RNG) named by an annotation, if any."""
        if ann is None:
            return None
        if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
            try:
                ann = ast.parse(ann.value, mode="eval").body
            except SyntaxError:
                return None
        if isinstance(ann, ast.BinOp) and isinstance(ann.op, ast.BitOr):
            return (self._ann_type(ctx, ann.left)
                    or self._ann_type(ctx, ann.right))
        if isinstance(ann, ast.Subscript):
            head = _syntactic_dotted(ann.value) or ""
            if head.split(".")[-1] in ("Optional", "Union"):
                inner = ann.slice
                elts = inner.elts if isinstance(inner, ast.Tuple) \
                    else [inner]
                for elt in elts:
                    typ = self._ann_type(ctx, elt)
                    if typ is not None:
                        return typ
            return None
        if isinstance(ann, (ast.Name, ast.Attribute)):
            dotted = self._resolve_symbolic(ctx, ann)
            if dotted is None and isinstance(ann, ast.Name):
                dotted = self.resolve_name(ctx, ann.id)
            if dotted is None:
                return None
            dotted = self.canonical(dotted)
            if dotted in _RNG_CTORS:
                return _RNG_TYPE
            if dotted in self.classes:
                return dotted
        return None

    def _expr_type(self, ctx: FileContext, fn: FunctionInfo,
                   expr: ast.AST) -> Optional[str]:
        """Syntactic type of a ``self.x = expr`` right-hand side."""
        if isinstance(expr, ast.IfExp):
            return (self._expr_type(ctx, fn, expr.body)
                    or self._expr_type(ctx, fn, expr.orelse))
        if isinstance(expr, ast.BoolOp):
            for value in expr.values:
                typ = self._expr_type(ctx, fn, value)
                if typ is not None:
                    return typ
            return None
        if isinstance(expr, ast.Call):
            dotted = self._resolve_symbolic(ctx, expr.func)
            if dotted is None:
                return None
            dotted = self.canonical(dotted)
            if dotted in _RNG_CTORS:
                return _RNG_TYPE
            if dotted in self.classes:
                return dotted
            callee = self.functions.get(dotted)
            if callee is not None:
                return callee.return_type
            return None
        if isinstance(expr, ast.Name):
            return fn.param_types.get(expr.id)
        return None

    def _infer_attr_types(self) -> None:
        for cls in self.classes.values():
            # Class-level annotations (dataclass fields included).
            ctx = None
            for fn in cls.methods.values():
                ctx = fn.ctx
                break
            for stmt in cls.node.body:
                if isinstance(stmt, ast.AnnAssign) and \
                        isinstance(stmt.target, ast.Name) and ctx:
                    typ = self._ann_type(ctx, stmt.annotation)
                    if typ is not None:
                        cls.attr_types.setdefault(stmt.target.id, typ)
            # ``self.x = expr`` in methods, __init__ first.
            methods = sorted(cls.methods.values(),
                             key=lambda f: f.name != "__init__")
            for fn in methods:
                for node in _own_nodes(fn.node):
                    if not isinstance(node, ast.Assign):
                        continue
                    if len(node.targets) != 1:
                        continue
                    target = node.targets[0]
                    if not (isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and fn.params
                            and target.value.id == fn.params[0]):
                        continue
                    typ = self._expr_type(fn.ctx, fn, node.value)
                    if typ is not None:
                        cls.attr_types.setdefault(target.attr, typ)

    # -- pass 3: fixpoint propagation ---------------------------------------

    def _propagate(self) -> None:
        for fn in self.functions.values():
            fn.effects = set(fn.direct)
        changed = True
        rounds = 0
        while changed and rounds < 50:
            changed = False
            rounds += 1
            for fn in self.functions.values():
                new = set(fn.direct)
                for cs in fn.calls:
                    pmap = self._param_map(cs)
                    for eff in cs.callee.effects:
                        lifted = self._lift(eff, pmap, fn, cs)
                        if lifted is not None:
                            new.add(lifted)
                if new != fn.effects:
                    fn.effects = new
                    changed = True

    def _param_map(self, cs: CallSite) -> dict[str, tuple]:
        callee = cs.callee
        pmap: dict[str, tuple] = {}
        params = list(callee.params)
        if callee.binds_self and params:
            if cs.is_ctor:
                pmap[params[0]] = _FRESH
            elif cs.recv is not None:
                pmap[params[0]] = cs.recv
            params = params[1:]
        n_pos = len(callee.node.args.posonlyargs) \
            + len(callee.node.args.args)
        if callee.binds_self:
            n_pos -= 1
        positional = params[:n_pos]
        for i, root in enumerate(cs.args):
            if i < len(positional):
                pmap[positional[i]] = root
            elif callee.vararg is not None:
                # Fold extra positionals into the vararg conservatively.
                prev = pmap.get(callee.vararg)
                pmap[callee.vararg] = root if prev in (None, _CONST) \
                    else _UNKNOWN if prev != root else root
        for name, root in cs.kwargs.items():
            if name in callee.params:
                pmap[name] = root
            elif callee.kwarg is not None:
                pmap[callee.kwarg] = _UNKNOWN
        return pmap

    def _lift(self, eff: Effect, pmap: dict[str, tuple],
              fn: FunctionInfo, cs: CallSite) -> Optional[Effect]:
        if eff.kind != "mutates-param":
            return eff
        head, _, tail = eff.detail.partition(".")
        root = pmap.get(head)
        if root is None:
            # Defaulted (unpassed) parameter: the mutation acts on the
            # callee's own default object, invisible to this caller.
            return None
        return self._mutation_effect(root, tail, eff.origin, fn, cs)

    def _mutation_effect(self, root: tuple, tail: str, origin: str,
                         fn: Optional[FunctionInfo],
                         cs: Optional[CallSite]) -> Optional[Effect]:
        """Map a mutation through ``root`` onto the caller's frame."""
        kind = root[0]
        if kind in ("fresh", "const", "rngfresh", "func"):
            return None
        if kind == "param":
            detail = root[1] + ("." + tail if tail else "")
            return Effect("mutates-param", detail, origin)
        if kind == "attr":
            base, path = root, []
            while base[0] == "attr":
                path.append(base[2])
                base = base[1]
            path = list(reversed(path))
            full_tail = ".".join(path + ([tail] if tail else []))
            return self._mutation_effect(base, full_tail, origin, fn, cs)
        if kind == "global":
            if root[1] in self._benign_globals:
                return None
            return Effect("mutates-global", root[1], origin)
        if kind == "shared":
            if fn is not None and cs is not None:
                self.shared_lifts.append(
                    (fn, cs.node, root[1], origin))
            return Effect("mutates-shared", root[1], origin)
        return Effect("mutates-unknown",
                      root_desc(root) + ("." + tail if tail else ""),
                      origin)

    # -- memo sites ---------------------------------------------------------

    def _collect_memo_sites(self) -> None:
        """Pair probes with installs per container, per function."""
        for fn in self.functions.values():
            fn.memo_sites = [site for site in fn.memo_sites
                             if site.probes and site.installs]

    def all_memo_sites(self) -> list[MemoSite]:
        out = []
        for fn in self.functions.values():
            out.extend(fn.memo_sites)
        return out

    # -- reporting ----------------------------------------------------------

    def describe(self, qualname: str) -> str:
        """Text summary of one function's inferred effects."""
        fn = self.lookup_function(qualname)
        if fn is None:
            known = sorted(q for q in self.functions
                           if q.endswith("." + qualname.split(".")[-1]))
            hint = f" (did you mean: {', '.join(known[:5])}?)" \
                if known else ""
            return f"no such function: {qualname}{hint}"
        lines = [f"{fn.qualname}  [{fn.rel_path}:{fn.node.lineno}]"]
        verdict = "PURE" if fn.is_pure else "IMPURE"
        lines.append(f"  verdict: {verdict}")
        for eff in sorted(fn.effects,
                          key=lambda e: (e.kind, e.detail, e.origin)):
            lines.append(f"  effect: {eff.render()}")
        for eff in sorted(fn.benign,
                          key=lambda e: (e.kind, e.detail, e.origin)):
            lines.append(f"  benign: {eff.render()}")
        callees = sorted({cs.callee.qualname for cs in fn.calls})
        if callees:
            lines.append("  calls: " + ", ".join(callees))
        for site in fn.memo_sites:
            lines.append(f"  memo site: {site.container} "
                         f"({len(site.probes)} probe(s), "
                         f"{len(site.installs)} install(s))")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Per-function extraction
# ---------------------------------------------------------------------------

class _Extractor:
    """Extract one function's direct effects, calls, and sites."""

    def __init__(self, analysis: EffectAnalysis, fn: FunctionInfo):
        self.a = analysis
        self.fn = fn
        self.ctx = fn.ctx
        self.config = analysis.config
        #: name -> (root, type)
        self.env: dict[str, tuple] = {}
        #: name -> every expression assigned to it (producer chains).
        self.assigns: dict[str, list[ast.AST]] = {}
        #: id(Call node) -> classification tuple (see MemoSite).
        self.call_info: dict[int, tuple] = {}
        self.globals_declared: set[str] = set()
        self._sites: dict[tuple, MemoSite] = {}
        self._raw_installs: list[tuple] = []
        for p in fn.params:
            self.env[p] = (("param", p), fn.param_types.get(p))
        if fn.vararg:
            self.env[fn.vararg] = (("param", fn.vararg), None)
        if fn.kwarg:
            self.env[fn.kwarg] = (("param", fn.kwarg), None)

    def run(self) -> None:
        for stmt in self.fn.node.body:
            self.stmt(stmt)
        # Pair installs with probed containers, resolve producers.
        for root, node, value_expr in self._raw_installs:
            site = self._sites.get(root)
            if site is None:
                site = MemoSite(self.fn, self._container_desc(root))
                self._sites[root] = site
            site.installs.append((node, self._producers(value_expr)))
        self.fn.memo_sites = list(self._sites.values())

    # -- memo bookkeeping ---------------------------------------------------

    def _container_desc(self, root: tuple) -> str:
        desc = root_desc(root)
        if root[0] == "attr" and self.fn.class_qualname:
            base = root
            while base[0] == "attr":
                base = base[1]
            if base == ("param", self.fn.params[0]):
                cls = self.fn.class_qualname.rsplit(".", 1)[-1]
                return f"{cls}{desc[len(self.fn.params[0]):]}"
        return desc

    def _memo_container(self, root: tuple) -> bool:
        """True for containers that persist beyond this call.

        A memo must outlive the computation it caches: module globals
        and attributes reached from ``self`` qualify.  A container
        received as a bare parameter is a caller-owned accumulator
        (``merge_segments``'s ``stats`` dict), not a memo — its
        mutation is still tracked as ``mutates-param``.
        """
        if root[0] == "global":
            return True
        if root[0] != "attr":
            return False
        base = root
        while base[0] == "attr":
            base = base[1]
        return bool(self.fn.binds_self and self.fn.params
                    and base == ("param", self.fn.params[0]))

    def _probe(self, root: tuple, node: ast.AST) -> None:
        if not self._memo_container(root):
            return
        site = self._sites.get(root)
        if site is None:
            site = MemoSite(self.fn, self._container_desc(root))
            self._sites[root] = site
        site.probes.append(node)

    def _install(self, root: tuple, node: ast.AST,
                 value_expr: Optional[ast.AST]) -> None:
        if not self._memo_container(root) or value_expr is None:
            return
        self._raw_installs.append((root, node, value_expr))

    def _producers(self, expr: ast.AST) -> list[tuple]:
        """Classified calls feeding an installed memo value."""
        out: list[tuple] = []
        seen: set[str] = set()
        stack: list[ast.AST] = [expr]
        while stack:
            node = stack.pop()
            if node is None:
                continue
            if isinstance(node, ast.Call):
                info = self.call_info.get(id(node))
                if info is None:
                    desc = _syntactic_dotted(node.func) or "<call>"
                    info = ("unknown", desc)
                out.append(info)
                stack.extend(node.args)
                stack.extend(kw.value for kw in node.keywords)
            elif isinstance(node, ast.Name):
                if node.id not in seen:
                    seen.add(node.id)
                    stack.extend(self.assigns.get(node.id, []))
            elif isinstance(node, ast.IfExp):
                stack.extend((node.body, node.orelse))
            elif isinstance(node, (ast.Tuple, ast.List, ast.Set)):
                stack.extend(node.elts)
            elif isinstance(node, ast.BinOp):
                stack.extend((node.left, node.right))
            elif isinstance(node, (ast.Attribute, ast.Subscript,
                                   ast.Starred, ast.UnaryOp)):
                stack.append(node.value
                             if not isinstance(node, ast.UnaryOp)
                             else node.operand)
            elif isinstance(node, (ast.ListComp, ast.SetComp,
                                   ast.DictComp, ast.GeneratorExp)):
                stack.extend(sub for sub in ast.walk(node)
                             if isinstance(sub, ast.Call))
        return out

    # -- effect recording ---------------------------------------------------

    def _record_mutation(self, root: tuple, tail: str,
                         node: ast.AST) -> None:
        eff = self.a._mutation_effect(root, tail, self.fn.qualname,
                                      None, None)
        if eff is None:
            if root[0] == "global" and \
                    root[1] in self.a._benign_globals:
                self.fn.benign.add(Effect("mutates-global", root[1],
                                          self.fn.qualname))
            return
        if eff.kind == "mutates-param" and self.fn.binds_self \
                and self.fn.params \
                and eff.detail.split(".")[0] == self.fn.params[0] \
                and self.fn.class_qualname in self.a._memo_classes:
            self.fn.benign.add(eff)
            return
        if eff.kind == "mutates-shared":
            self.fn.shared_writes.append((node, eff.detail))
        self.fn.direct.add(eff)

    def _effect(self, kind: str, detail: str) -> None:
        self.fn.direct.add(Effect(kind, detail, self.fn.qualname))

    def _typ_of_root(self, root: tuple) -> Optional[str]:
        kind = root[0]
        if kind == "param":
            if self.fn.binds_self and self.fn.params \
                    and root[1] == self.fn.params[0]:
                return self.fn.class_qualname
            return self.fn.param_types.get(root[1])
        if kind == "attr":
            base_typ = self._typ_of_root(root[1])
            if base_typ is not None and base_typ in self.a.classes:
                return self.a.attr_type(base_typ, root[2])
            return None
        if kind == "rngfresh":
            return _RNG_TYPE
        return None

    @staticmethod
    def _index_root(root: tuple) -> tuple:
        kind = root[0]
        if kind == "global":
            return ("shared", f"{root[1]}[…]")
        if kind in ("param", "attr", "shared", "unknown"):
            return root
        return _FRESH

    # -- statements ---------------------------------------------------------

    def stmt(self, node: ast.AST) -> None:
        if isinstance(node, ast.Assign):
            value_val = self.eval(node.value)
            for target in node.targets:
                self._assign(target, value_val, node.value)
        elif isinstance(node, ast.AnnAssign):
            typ = self.a._ann_type(self.ctx, node.annotation)
            if node.value is not None:
                value_val = self.eval(node.value)
                if typ is not None:
                    value_val = (value_val[0], typ)
                self._assign(node.target, value_val, node.value)
        elif isinstance(node, ast.AugAssign):
            self.eval(node.value)
            target = node.target
            if isinstance(target, ast.Name):
                # Rebinding a local; ``global`` names are mutations.
                if target.id in self.globals_declared:
                    self._record_mutation(
                        ("global",
                         f"{self.fn.module}.{target.id}"), "", node)
            elif isinstance(target, ast.Attribute):
                base = self.eval(target.value)
                self._record_mutation(base[0], target.attr, node)
            elif isinstance(target, ast.Subscript):
                base = self.eval(target.value)
                self.eval(target.slice)
                self._record_mutation(base[0], "", node)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            iter_val = self.eval(node.iter)
            elem = (self._index_root(iter_val[0]), None)
            self._assign(node.target, elem, None)
            for sub in node.body:
                self.stmt(sub)
            for sub in node.orelse:
                self.stmt(sub)
        elif isinstance(node, ast.While):
            self.eval(node.test)
            for sub in node.body + node.orelse:
                self.stmt(sub)
        elif isinstance(node, ast.If):
            self.eval(node.test)
            for sub in node.body + node.orelse:
                self.stmt(sub)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                val = self.eval(item.context_expr)
                if item.optional_vars is not None:
                    self._assign(item.optional_vars,
                                 (val[0], val[1]), item.context_expr)
            for sub in node.body:
                self.stmt(sub)
        elif isinstance(node, ast.Try):
            for sub in node.body + node.orelse + node.finalbody:
                self.stmt(sub)
            for handler in node.handlers:
                if handler.name:
                    self.env[handler.name] = (_UNKNOWN, None)
                for sub in handler.body:
                    self.stmt(sub)
        elif isinstance(node, ast.Return):
            if node.value is not None:
                val = self.eval(node.value)
                if val[1] == _RNG_TYPE or val[0] == _RNGFRESH:
                    self.fn.rng_returns.append(node)
        elif isinstance(node, ast.Expr):
            self.eval(node.value)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self.env.pop(target.id, None)
                elif isinstance(target, (ast.Subscript, ast.Attribute)):
                    base = self.eval(target.value)
                    self._record_mutation(base[0], "", node)
        elif isinstance(node, ast.Raise):
            if node.exc is not None:
                self.eval(node.exc)
            if node.cause is not None:
                self.eval(node.cause)
        elif isinstance(node, ast.Assert):
            self.eval(node.test)
            if node.msg is not None:
                self.eval(node.msg)
        elif isinstance(node, (ast.Global, ast.Nonlocal)):
            self.globals_declared.update(node.names)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            pass
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.ClassDef)):
            self.env[node.name] = (_CONST, None)
        # Pass/Break/Continue: nothing to do.

    def _assign(self, target: ast.AST, val: tuple,
                value_expr: Optional[ast.AST]) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = val
            if value_expr is not None:
                self.assigns.setdefault(target.id, []).append(value_expr)
            if target.id in self.globals_declared:
                self._record_mutation(
                    ("global", f"{self.fn.module}.{target.id}"),
                    "", target)
        elif isinstance(target, ast.Attribute):
            base = self.eval(target.value)
            self._record_mutation(base[0], target.attr, target)
            if val[1] == _RNG_TYPE or val[0] == _RNGFRESH:
                if base[0] != ("param", self.fn.params[0]
                               if self.fn.params else ""):
                    self.fn.rng_stores.append(
                        (target, root_desc(base[0])))
        elif isinstance(target, ast.Subscript):
            base = self.eval(target.value)
            self.eval(target.slice)
            self._record_mutation(base[0], "", target)
            self._install(base[0], target, value_expr)
            if val[1] == _RNG_TYPE or val[0] == _RNGFRESH:
                self.fn.rng_stores.append((target, root_desc(base[0])))
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._assign(elt, (_UNKNOWN, None), value_expr)
        elif isinstance(target, ast.Starred):
            self._assign(target.value, (_UNKNOWN, None), value_expr)

    # -- expressions --------------------------------------------------------

    def eval(self, node: ast.AST) -> tuple:
        """(root, type) of an expression, recording effects en route."""
        if node is None or isinstance(node, ast.Constant):
            return (_CONST, None)
        if isinstance(node, ast.Name):
            return self._eval_name(node)
        if isinstance(node, ast.Attribute):
            return self._eval_attribute(node)
        if isinstance(node, ast.Subscript):
            base = self.eval(node.value)
            self.eval(node.slice)
            return (self._index_root(base[0]), None)
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            for elt in node.elts:
                self.eval(elt)
            return (_FRESH, None)
        if isinstance(node, ast.Dict):
            for key in node.keys:
                if key is not None:
                    self.eval(key)
            for value in node.values:
                self.eval(value)
            return (_FRESH, None)
        if isinstance(node, ast.BinOp):
            self.eval(node.left)
            self.eval(node.right)
            return (_FRESH, None)
        if isinstance(node, ast.UnaryOp):
            self.eval(node.operand)
            return (_CONST, None)
        if isinstance(node, ast.BoolOp):
            roots = [self.eval(value) for value in node.values]
            for val in roots:
                if val[0] != _CONST:
                    return val
            return (_CONST, None)
        if isinstance(node, ast.Compare):
            self.eval(node.left)
            for op, comparator in zip(node.ops, node.comparators):
                val = self.eval(comparator)
                if isinstance(op, (ast.In, ast.NotIn)):
                    self._probe(val[0], node)
            return (_CONST, None)
        if isinstance(node, ast.IfExp):
            self.eval(node.test)
            body = self.eval(node.body)
            orelse = self.eval(node.orelse)
            return body if body[0] != _CONST else orelse
        if isinstance(node, ast.JoinedStr):
            for value in node.values:
                if isinstance(value, ast.FormattedValue):
                    self.eval(value.value)
            return (_CONST, None)
        if isinstance(node, ast.FormattedValue):
            self.eval(node.value)
            return (_CONST, None)
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                             ast.GeneratorExp)):
            for gen in node.generators:
                iter_val = self.eval(gen.iter)
                elem = (self._index_root(iter_val[0]), None)
                self._assign(gen.target, elem, None)
                for test in gen.ifs:
                    self.eval(test)
            if isinstance(node, ast.DictComp):
                self.eval(node.key)
                self.eval(node.value)
            else:
                self.eval(node.elt)
            return (_FRESH, None)
        if isinstance(node, ast.Starred):
            return self.eval(node.value)
        if isinstance(node, ast.NamedExpr):
            val = self.eval(node.value)
            self._assign(node.target, val, node.value)
            return val
        if isinstance(node, (ast.Await, ast.Yield, ast.YieldFrom)):
            if node.value is not None:
                self.eval(node.value)
            return (_UNKNOWN, None)
        if isinstance(node, ast.Slice):
            for part in (node.lower, node.upper, node.step):
                if part is not None:
                    self.eval(part)
            return (_CONST, None)
        if isinstance(node, ast.Lambda):
            return (_CONST, None)
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self.eval(child)
        return (_UNKNOWN, None)

    def _eval_name(self, node: ast.Name) -> tuple:
        if node.id in self.env:
            return self.env[node.id]
        dotted = self.a.resolve_name(self.ctx, node.id)
        if dotted is not None:
            dotted = self.a.canonical(dotted)
            if dotted in self.a.functions or dotted in self.a.classes \
                    or dotted in _RNG_CTORS:
                return (("func", dotted), None)
            return (("global", dotted), None)
        module = self.fn.module
        if node.id in self.a._module_globals.get(module, set()):
            return (("global", f"{module}.{node.id}"), None)
        if node.id in _PURE_BUILTINS or node.id in _IO_CALLS \
                or node.id in _MUTATING_BUILTINS:
            return (("func", f"builtins.{node.id}"), None)
        return (_UNKNOWN, None)

    def _eval_attribute(self, node: ast.Attribute) -> tuple:
        dotted = self.a._resolve_symbolic(self.ctx, node)
        if dotted is not None:
            dotted = self.a.canonical(dotted)
            if dotted in self.a.functions or dotted in self.a.classes \
                    or dotted in _RNG_CTORS:
                return (("func", dotted), None)
            return (("global", dotted), None)
        base = self.eval(node.value)
        base_root, base_typ = base
        if base_typ is None:
            base_typ = self._typ_of_root(base_root)
        # Shared views exposed as attributes (ChunkBatch columns).
        if base_typ is not None:
            for cls, attrs in self.config.shared_view_attrs.items():
                if base_typ == cls and node.attr in attrs:
                    short = cls.rsplit(".", 1)[-1]
                    return (("shared", f"{short}.{node.attr}"), None)
        # Simulated-clock read.
        if node.attr == "now":
            desc = root_desc(base_root)
            if (base_typ or "").endswith(".Environment") \
                    or desc.endswith("env") or desc.endswith("_env"):
                self._effect("time", f"reads {desc}.now (sim clock)")
                return (_CONST, None)
        depth = 0
        probe = base_root
        while probe[0] == "attr":
            depth += 1
            probe = probe[1]
        if depth >= _ATTR_DEPTH_CAP:
            return (_UNKNOWN, None)
        root = ("attr", base_root, node.attr)
        typ = None
        if base_typ is not None and base_typ in self.a.classes:
            typ = self.a.attr_type(base_typ, node.attr)
        # Keep the attribute root even on fresh/const/unknown bases:
        # ``append = out.append`` must stay a bound method on ``out``
        # (mutations of fresh-rooted chains are dropped downstream).
        return (root, typ)

    # -- calls --------------------------------------------------------------

    def _eval_call(self, node: ast.Call) -> tuple:
        args = []
        has_star = False
        for arg in node.args:
            if isinstance(arg, ast.Starred):
                has_star = True
                args.append(self.eval(arg.value))
            else:
                args.append(self.eval(arg))
        kwargs = {}
        for kw in node.keywords:
            val = self.eval(kw.value)
            if kw.arg is None:
                has_star = True
            else:
                kwargs[kw.arg] = val
        func = node.func
        if isinstance(func, ast.Name):
            if func.id in self.env:
                root, _typ = self.env[func.id]
                if root[0] == "func":
                    return self._call_dotted(node, root[1], args,
                                             kwargs, has_star)
                if root[0] == "attr":
                    recv_root = root[1]
                    recv_typ = self._typ_of_root(recv_root)
                    return self._call_method(node, (recv_root, recv_typ),
                                             root[2], args, kwargs,
                                             has_star, node.args)
                self._effect("calls-unknown",
                             f"call through local {func.id!r}")
                self._flag_rng_flows(node, f"local {func.id!r}",
                                     None, args, kwargs)
                return (_UNKNOWN, None)
            dotted = self.a.resolve_name(self.ctx, func.id)
            if dotted is not None:
                return self._call_dotted(node, dotted, args, kwargs,
                                         has_star)
            return self._call_builtin(node, func.id, args)
        if isinstance(func, ast.Attribute):
            # ``super().m(...)``: resolve in the base-class chain.
            if isinstance(func.value, ast.Call) \
                    and isinstance(func.value.func, ast.Name) \
                    and func.value.func.id == "super" \
                    and self.fn.class_qualname:
                cls = self.a.classes.get(self.fn.class_qualname)
                for base in (cls.bases if cls else []):
                    m = self.a.resolve_method(base, func.attr)
                    if m is not None:
                        recv = ("param", self.fn.params[0]) \
                            if self.fn.params else _UNKNOWN
                        return self._project_call(node, m, recv, args,
                                                  kwargs, False)
                self._effect("calls-unknown", f"super().{func.attr}")
                return (_UNKNOWN, None)
            dotted = self.a._resolve_symbolic(self.ctx, func)
            if dotted is not None:
                return self._call_dotted(node, dotted, args, kwargs,
                                         has_star)
            base = self.eval(func.value)
            return self._call_method(node, base, func.attr, args,
                                     kwargs, has_star, node.args)
        self.eval(func)
        self._effect("calls-unknown", "indirect call expression")
        self.call_info[id(node)] = ("unknown", "<indirect>")
        return (_UNKNOWN, None)

    def _call_builtin(self, node: ast.Call, name: str,
                      args: list[tuple]) -> tuple:
        if name in _MUTATING_BUILTINS:
            idx = _MUTATING_BUILTINS[name]
            if idx < len(args):
                self._record_mutation(args[idx][0], "", node)
            self.call_info[id(node)] = ("benign", name)
            return (_UNKNOWN, None)
        if name in _IO_CALLS:
            self._effect("io", name)
            self.call_info[id(node)] = ("impure", "io", name)
            return (_FRESH, None)
        if name in _PURE_BUILTINS:
            self.call_info[id(node)] = ("pure", name)
            return (_FRESH, None)
        self._effect("calls-unknown", name)
        self.call_info[id(node)] = ("unknown", name)
        return (_UNKNOWN, None)

    def _call_dotted(self, node: ast.Call, dotted: str,
                     args: list[tuple], kwargs: dict[str, tuple],
                     has_star: bool) -> tuple:
        dotted = self.a.canonical(dotted)
        if dotted.startswith("builtins."):
            return self._call_builtin(node, dotted[len("builtins."):],
                                      args)
        callee = self.a.functions.get(dotted)
        if callee is not None:
            return self._project_call(node, callee, None, args, kwargs,
                                      False)
        cls = self.a.classes.get(dotted)
        if cls is not None:
            init = self.a.resolve_method(dotted, "__init__")
            if init is not None:
                self._project_call(node, init, None, args, kwargs, True)
            else:
                self.call_info[id(node)] = ("pure", f"{dotted}()")
            self._flag_rng_flows(node, dotted, None, args, kwargs)
            return (_FRESH, dotted)
        if dotted in _RNG_CTORS:
            explicit = bool(node.args or node.keywords)
            taints = self._seed_taints(node)
            self.fn.rng_ctors.append(
                RngCtor(node, dotted, explicit, taints))
            if dotted == "random.SystemRandom":
                self._effect("rng", f"{dotted} (entropy-seeded)")
                self.call_info[id(node)] = ("impure", "rng", dotted)
                return (_FRESH, _RNG_TYPE)
            if not explicit:
                self._effect("rng", f"unseeded {dotted}")
                self.call_info[id(node)] = ("impure", "rng", dotted)
                return (_FRESH, _RNG_TYPE)
            self.call_info[id(node)] = ("pure", dotted)
            return (_RNGFRESH, _RNG_TYPE)
        if dotted in _WALL_CLOCK:
            self._effect("time", dotted)
            self.call_info[id(node)] = ("impure", "time", dotted)
            return (_CONST, None)
        if dotted in _ENTROPY_SOURCES:
            self._effect("rng", dotted)
            self.call_info[id(node)] = ("impure", "rng", dotted)
            return (_CONST, None)
        if dotted in _MUTATING_DOTTED:
            idx = _MUTATING_DOTTED[dotted]
            if idx < len(args):
                self._record_mutation(args[idx][0], "", node)
            if dotted == "random.shuffle":
                self._effect("rng", dotted)
                self.call_info[id(node)] = ("impure", "rng", dotted)
            else:
                self.call_info[id(node)] = ("benign", dotted)
            return (_CONST, None)
        if dotted.startswith(_AMBIENT_RNG_PREFIXES):
            self._effect("rng", dotted)
            self.call_info[id(node)] = ("impure", "rng", dotted)
            return (_CONST, None)
        if dotted in _IO_CALLS or dotted.startswith(_IO_PREFIXES):
            self._effect("io", dotted)
            self.call_info[id(node)] = ("impure", "io", dotted)
            return (_FRESH, None)
        if dotted.startswith(_PURE_PREFIXES):
            self.call_info[id(node)] = ("pure", dotted)
            return (_FRESH, None)
        self._effect("calls-unknown", dotted)
        self.call_info[id(node)] = ("unknown", dotted)
        self._flag_rng_flows(node, dotted, None, args, kwargs)
        return (_UNKNOWN, None)

    def _project_call(self, node: ast.Call, callee: FunctionInfo,
                      recv: Optional[tuple], args: list[tuple],
                      kwargs: dict[str, tuple],
                      is_ctor: bool) -> tuple:
        cs = CallSite(node, callee, recv,
                      [a[0] for a in args],
                      {k: v[0] for k, v in kwargs.items()}, is_ctor)
        self.fn.calls.append(cs)
        self.call_info[id(node)] = (
            "project-ctor" if is_ctor else "project", callee, cs)
        self._flag_rng_flows(node, callee.qualname, callee, args, kwargs)
        if is_ctor:
            return (_FRESH, callee.class_qualname)
        root = _FRESH
        canonical = self.a.canonical(callee.qualname)
        if canonical in self.config.shared_view_providers:
            root = ("shared", f"{callee.short()}() view")
        else:
            backing = self.config.effect_cache_providers.get(canonical)
            if backing is not None:
                # The provider hands out a cache *container* owned by
                # an audited benign global; installs into it are the
                # memoization itself.
                root = ("global", backing)
        return (root, callee.return_type)

    def _call_method(self, node: ast.Call, base: tuple, attr: str,
                     args: list[tuple], kwargs: dict[str, tuple],
                     has_star: bool, raw_args: list[ast.AST]) -> tuple:
        base_root, base_typ = base
        if base_typ is None:
            base_typ = self._typ_of_root(base_root)
        # Memo bookkeeping is independent of how the call resolves.
        if attr == "get" and args:
            self._probe(base_root, node)
        if attr == "put" and raw_args:
            self._install(base_root, node, raw_args[-1])
        # RNG draws.
        if base_typ == _RNG_TYPE or base_root == _RNGFRESH:
            if attr in _RNG_DRAW_METHODS or attr in ("seed", "setstate"):
                if base_root != _RNGFRESH:
                    self._effect(
                        "rng", f"draw {root_desc(base_root)}.{attr}()")
                    self.call_info[id(node)] = (
                        "impure", "rng", f"{root_desc(base_root)}.{attr}")
                else:
                    self.fn.benign.add(Effect(
                        "rng", f"fresh-seeded local draw .{attr}()",
                        self.fn.qualname))
                    self.call_info[id(node)] = ("benign", attr)
                if attr == "shuffle" and args:
                    self._record_mutation(args[0][0], "", node)
                return (_CONST, None)
            self.call_info[id(node)] = ("pure", attr)
            return (_CONST, None)
        # Project method through the receiver's inferred class.
        if base_typ is not None and base_typ in self.a.classes:
            m = self.a.resolve_method(base_typ, attr)
            if m is not None:
                result = self._project_call(node, m, base_root, args,
                                            kwargs, False)
                if attr in ("get", "digest") \
                        and base_typ in self.a._memo_classes:
                    short = base_typ.rsplit(".", 1)[-1]
                    return (("shared", f"{short}.{attr}() value"),
                            result[1])
                return result
        desc = f"{root_desc(base_root)}.{attr}"
        if attr in _MUTATING_METHODS:
            self._record_mutation(base_root, "", node)
            benign = (base_root[0] == "global"
                      and base_root[1] in self.a._benign_globals) \
                or base_root in (_FRESH, _CONST)
            self.call_info[id(node)] = (
                ("benign", desc) if benign else ("impure", "mutates",
                                                 desc))
            return (self._index_root(base_root)
                    if attr in ("pop", "popitem") else _CONST, None)
        if attr in _IO_METHODS:
            self._effect("io", desc)
            self.call_info[id(node)] = ("impure", "io", desc)
            return (_UNKNOWN, None)
        if attr in _PURE_METHODS:
            self.call_info[id(node)] = ("pure", desc)
            if attr == "get":
                return (self._index_root(base_root), None)
            return (_FRESH, None)
        if attr in _RNG_DRAW_METHODS:
            low = root_desc(base_root).lower()
            if "rng" in low or "random" in low:
                self._effect("rng", f"draw {desc}()")
                self.call_info[id(node)] = ("impure", "rng", desc)
                return (_CONST, None)
        if base_root in (_FRESH, _CONST, _RNGFRESH):
            self.call_info[id(node)] = ("pure", desc)
            return (_FRESH, None)
        self._effect("calls-unknown", desc)
        self.call_info[id(node)] = ("unknown", desc)
        self._flag_rng_flows(node, desc, None, args, kwargs)
        return (_UNKNOWN, None)

    # -- RNG provenance -----------------------------------------------------

    def _seed_taints(self, node: ast.Call) -> list[str]:
        taints = []
        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            for sub in ast.walk(arg):
                if isinstance(sub, ast.Call):
                    info = self.call_info.get(id(sub))
                    if info and info[0] == "impure" \
                            and info[1] in ("time", "rng"):
                        taints.append(info[2])
        return taints

    def _flag_rng_flows(self, node: ast.Call, target_desc: str,
                        callee: Optional[FunctionInfo],
                        args: list[tuple],
                        kwargs: dict[str, tuple]) -> None:
        """Record RNG-typed values crossing into this call."""
        rng_positions: list[tuple[Optional[str], tuple]] = []
        if callee is not None:
            params = list(callee.params)
            if callee.binds_self and params:
                params = params[1:]
            for i, val in enumerate(args):
                name = params[i] if i < len(params) else callee.vararg
                rng_positions.append((name, val))
            for name, val in kwargs.items():
                rng_positions.append((name, val))
        else:
            for val in args:
                rng_positions.append((None, val))
            for name, val in kwargs.items():
                rng_positions.append((name, val))
        for name, val in rng_positions:
            if val[1] == _RNG_TYPE or val[0] == _RNGFRESH:
                same = callee is not None \
                    and callee.module == self.fn.module
                self.fn.rng_flows.append(RngFlow(
                    node, target_desc, callee, name, same))
