"""CPU-parallel compression (paper §3.2(1)).

"The compute is parallelized by the CPU by assigning a computing thread
that runs the previously studied compression algorithm to each chunk."
Functionally that is just the serial codec per chunk; the parallelism is
the timed pipeline running many of these tasks across the simulated
hardware threads.  This module supplies the per-chunk functional work and
its cycle cost.

Expansion guard: if the codec output is not smaller than the input, the
chunk is stored raw (``compressed_size == size``), the standard
primary-storage behaviour for incompressible data.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Optional, Union

from repro.compression.lzss import LzssCodec
from repro.compression.memo import CodecMemo
from repro.compression.quicklz import QuickLzCodec
from repro.cpu.costs import CpuCosts, DEFAULT_COSTS
from repro.errors import CompressionError
from repro.types import Chunk

Codec = Union[LzssCodec, QuickLzCodec]

#: Entry budget of the batched dispatch's cross-window result memo.
RESULT_MEMO_ENTRIES = 4096


@dataclass
class CompressionResult:
    """Outcome of compressing one chunk."""

    compressed_size: int
    cpu_cycles: float
    #: Encoded container (payload mode) or None (descriptor mode / raw).
    blob: Optional[bytes]
    #: True when the chunk was stored uncompressed (expansion guard).
    stored_raw: bool = False


class CpuCompressor:
    """Per-chunk CPU compression: the paper's parallel QuickLZ baseline."""

    def __init__(self, codec: Optional[Codec] = None,
                 costs: CpuCosts = DEFAULT_COSTS,
                 memo: Optional[CodecMemo] = None):
        self.codec = codec if codec is not None else QuickLzCodec(memo=memo)
        if memo is not None and getattr(self.codec, "memo", None) is None:
            self.codec.memo = memo
        self.costs = costs
        self.chunks_compressed = 0
        self.bytes_in = 0
        self.bytes_out = 0
        #: Cross-window result memo for :meth:`compress_window` (LRU).
        self._result_memo: OrderedDict[Any, CompressionResult] = \
            OrderedDict()
        #: Optional :class:`repro.verify.MemoVerifier` replaying
        #: sampled result-memo hits against a fresh :meth:`compress`.
        self.verifier = None

    def compress(self, chunk: Chunk) -> CompressionResult:
        """Compress one chunk (functionally in payload mode).

        A chunk already fingerprinted by the hashing stage hands its
        SHA-1 to the codec as a ready-made memo key; unfingerprinted
        chunks (dedup-disabled baselines) let the memo hash for itself.
        """
        if chunk.has_payload:
            blob = self.codec.encode(chunk.payload,
                                     fingerprint=chunk.fingerprint)
            if len(blob) < chunk.size:
                size, stored_raw, out_blob = len(blob), False, blob
            else:
                size, stored_raw, out_blob = chunk.size, True, None
            ratio = chunk.size / size
        else:
            ratio = chunk.effective_ratio()
            size = max(1, int(chunk.size / ratio))
            stored_raw = size >= chunk.size
            out_blob = None
        cycles = self.costs.lz_encode_cycles(chunk.size, ratio)
        chunk.compressed_size = size
        self.chunks_compressed += 1
        self.bytes_in += chunk.size
        self.bytes_out += size
        return CompressionResult(compressed_size=size, cpu_cycles=cycles,
                                 blob=out_blob, stored_raw=stored_raw)

    def compress_window(self, chunks: list[Chunk]) -> list[CompressionResult]:
        """Batched codec dispatch over a functional-plane window.

        Chunks are grouped under a content key — fingerprint when the
        hashing stage ran, payload bytes otherwise, and the descriptor
        triple the cost model reads for metadata-only chunks.  The first
        sighting of a key runs :meth:`compress` for real; repeats (both
        within this window and across earlier windows, through a bounded
        LRU result memo) replay its result, skipping the codec (and
        even the codec memo probe) entirely.  Every codec is a pure
        function of its input, so the replayed ``CompressionResult``
        (and the per-chunk ``compressed_size`` assignment and the
        compressor counters) is exactly what a per-chunk
        :meth:`compress` would have produced.
        """
        results: list[CompressionResult] = []
        append = results.append
        memo = self._result_memo
        memo_get = memo.get
        move_to_end = memo.move_to_end
        compress = self.compress
        size_sum = 0
        out_sum = 0
        replays = 0
        for chunk in chunks:
            payload = chunk.payload
            if chunk.fingerprint is not None:
                key = chunk.fingerprint
            elif payload is not None:
                key = payload
            else:
                key = (chunk.size, chunk.comp_ratio, chunk.compressed_size)
            result = memo_get(key)
            if result is None:
                result = compress(chunk)
                if len(memo) >= RESULT_MEMO_ENTRIES:
                    memo.popitem(last=False)
                memo[key] = result
            else:
                move_to_end(key)
                chunk.compressed_size = result.compressed_size
                replays += 1
                size_sum += chunk.size
                out_sum += result.compressed_size
                if self.verifier is not None:
                    self.verifier.on_hit(
                        "result-memo", result,
                        lambda c=chunk: self._fresh_result(c))
            append(result)
        if replays:
            self.chunks_compressed += replays
            self.bytes_in += size_sum
            self.bytes_out += out_sum
        return results

    def _fresh_result(self, chunk: Chunk) -> CompressionResult:
        """What :meth:`compress` would produce, without its effects.

        Verification-only: runs the real compress on a shadow copy of
        the chunk, then rolls the compressor counters back, so the
        replayed mutations being checked are not themselves double
        counted.
        """
        import copy

        shadow = copy.copy(chunk)
        saved = (self.chunks_compressed, self.bytes_in, self.bytes_out)
        try:
            return self.compress(shadow)
        finally:
            (self.chunks_compressed, self.bytes_in,
             self.bytes_out) = saved

    def decompress(self, blob: bytes) -> bytes:
        """Round-trip helper for volume reads."""
        if not hasattr(self.codec, "decode"):
            raise CompressionError("codec cannot decode")
        return self.codec.decode(blob)

    def achieved_ratio(self) -> float:
        """Aggregate original/compressed over everything compressed."""
        if self.bytes_out == 0:
            return 1.0
        return self.bytes_in / self.bytes_out

    def stats(self) -> dict[str, int]:
        """Flat counter mapping for the metrics registry."""
        return {
            "chunks_compressed": self.chunks_compressed,
            "bytes_in": self.bytes_in,
            "bytes_out": self.bytes_out,
        }
