"""CPU-parallel compression (paper §3.2(1)).

"The compute is parallelized by the CPU by assigning a computing thread
that runs the previously studied compression algorithm to each chunk."
Functionally that is just the serial codec per chunk; the parallelism is
the timed pipeline running many of these tasks across the simulated
hardware threads.  This module supplies the per-chunk functional work and
its cycle cost.

Expansion guard: if the codec output is not smaller than the input, the
chunk is stored raw (``compressed_size == size``), the standard
primary-storage behaviour for incompressible data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.compression.lzss import LzssCodec
from repro.compression.memo import CodecMemo
from repro.compression.quicklz import QuickLzCodec
from repro.cpu.costs import CpuCosts, DEFAULT_COSTS
from repro.errors import CompressionError
from repro.types import Chunk

Codec = Union[LzssCodec, QuickLzCodec]


@dataclass
class CompressionResult:
    """Outcome of compressing one chunk."""

    compressed_size: int
    cpu_cycles: float
    #: Encoded container (payload mode) or None (descriptor mode / raw).
    blob: Optional[bytes]
    #: True when the chunk was stored uncompressed (expansion guard).
    stored_raw: bool = False


class CpuCompressor:
    """Per-chunk CPU compression: the paper's parallel QuickLZ baseline."""

    def __init__(self, codec: Optional[Codec] = None,
                 costs: CpuCosts = DEFAULT_COSTS,
                 memo: Optional[CodecMemo] = None):
        self.codec = codec if codec is not None else QuickLzCodec(memo=memo)
        if memo is not None and getattr(self.codec, "memo", None) is None:
            self.codec.memo = memo
        self.costs = costs
        self.chunks_compressed = 0
        self.bytes_in = 0
        self.bytes_out = 0

    def compress(self, chunk: Chunk) -> CompressionResult:
        """Compress one chunk (functionally in payload mode).

        A chunk already fingerprinted by the hashing stage hands its
        SHA-1 to the codec as a ready-made memo key; unfingerprinted
        chunks (dedup-disabled baselines) let the memo hash for itself.
        """
        if chunk.has_payload:
            blob = self.codec.encode(chunk.payload,
                                     fingerprint=chunk.fingerprint)
            if len(blob) < chunk.size:
                size, stored_raw, out_blob = len(blob), False, blob
            else:
                size, stored_raw, out_blob = chunk.size, True, None
            ratio = chunk.size / size
        else:
            ratio = chunk.effective_ratio()
            size = max(1, int(chunk.size / ratio))
            stored_raw = size >= chunk.size
            out_blob = None
        cycles = self.costs.lz_encode_cycles(chunk.size, ratio)
        chunk.compressed_size = size
        self.chunks_compressed += 1
        self.bytes_in += chunk.size
        self.bytes_out += size
        return CompressionResult(compressed_size=size, cpu_cycles=cycles,
                                 blob=out_blob, stored_raw=stored_raw)

    def decompress(self, blob: bytes) -> bytes:
        """Round-trip helper for volume reads."""
        if not hasattr(self.codec, "decode"):
            raise CompressionError("codec cannot decode")
        return self.codec.decode(blob)

    def achieved_ratio(self) -> float:
        """Aggregate original/compressed over everything compressed."""
        if self.bytes_out == 0:
            return 1.0
        return self.bytes_in / self.bytes_out

    def stats(self) -> dict[str, int]:
        """Flat counter mapping for the metrics registry."""
        return {
            "chunks_compressed": self.chunks_compressed,
            "bytes_in": self.bytes_in,
            "bytes_out": self.bytes_out,
        }
