"""Delta compression against similar chunks, with resemblance sketches.

Deduplication only removes *identical* chunks; primary-storage streams
are full of *near*-identical ones (a VM image rebuilt with one changed
timestamp, a record updated in place).  The standard answer in the
literature the paper sits in (Shilane et al., DEC) is delta compression:
detect a resemblant stored chunk via a cheap sketch, then encode only
the difference.  This module provides both halves:

* :func:`sketch` — super-feature resemblance sketches: min-hashes of the
  chunk's Rabin gram set, grouped into super-features; two chunks
  sharing any super-feature are overwhelmingly likely to be similar.
* :class:`DeltaCodec` — a copy/insert delta (xdelta/VCDIFF-class):
  the target is parsed greedily into COPY(source_offset, length) ops
  against the reference and INSERT literals, byte-serialized.

Delta container format (big-endian)::

    [u32 target_length][ops]
    op 0x01: COPY   [u32 source_offset][u16 length]
    op 0x00: INSERT [u16 length][literal bytes]
"""

from __future__ import annotations

import struct
from typing import Optional

from repro.compression.lz_common import common_prefix_length_pair
from repro.errors import CompressionError, CorruptStreamError

#: Gram width for both sketching and delta matching.
_GRAM = 8
#: Multiplicative hash constant (Knuth).
_MULT = 0x9E3779B97F4A7C15
_MASK64 = (1 << 64) - 1

_MIN_COPY = 12          # COPY costs 7 bytes; shorter matches stay literal
_MAX_COPY = 0xFFFF
_MAX_INSERT = 0xFFFF


def _gram_hash(data: bytes, pos: int) -> int:
    value = int.from_bytes(data[pos:pos + _GRAM], "little")
    return (value * _MULT) & _MASK64


def sketch(data: bytes, n_features: int = 4) -> tuple[int, ...]:
    """Super-feature resemblance sketch of ``data``.

    Each feature is the minimum of the gram hashes under a distinct
    permutation (min-hash); similar chunks share most grams, so their
    minima — and thus their features — collide with high probability.
    """
    if n_features < 1:
        raise CompressionError(f"need >= 1 feature, got {n_features}")
    if len(data) < _GRAM:
        return tuple(_gram_hash(data + b"\x00" * _GRAM, 0) + i
                     for i in range(n_features))
    minima = [None] * n_features
    step = 1 if len(data) < 2048 else 2  # sample grams on big chunks
    for pos in range(0, len(data) - _GRAM + 1, step):
        base = _gram_hash(data, pos)
        for feature in range(n_features):
            permuted = (base * (2 * feature + 3) + feature) & _MASK64
            if minima[feature] is None or permuted < minima[feature]:
                minima[feature] = permuted
    return tuple(minima)


class SimilarityIndex:
    """Feature -> chunk-id map for resemblance detection."""

    def __init__(self, n_features: int = 4):
        self.n_features = n_features
        self._by_feature: dict[tuple[int, int], int] = {}
        self.lookups = 0
        self.matches = 0

    def insert(self, chunk_id: int, chunk_sketch: tuple[int, ...]) -> None:
        """Register a stored chunk's sketch."""
        for slot, feature in enumerate(chunk_sketch):
            self._by_feature.setdefault((slot, feature), chunk_id)

    def find_similar(self,
                     chunk_sketch: tuple[int, ...]) -> Optional[int]:
        """Chunk id sharing any super-feature, or None."""
        self.lookups += 1
        for slot, feature in enumerate(chunk_sketch):
            chunk_id = self._by_feature.get((slot, feature))
            if chunk_id is not None:
                self.matches += 1
                return chunk_id
        return None

    def __len__(self) -> int:
        return len(self._by_feature)


class DeltaCodec:
    """Copy/insert delta encoding of a target against a reference."""

    def encode(self, reference: bytes, target: bytes) -> bytes:
        """Delta of ``target`` against ``reference``."""
        out = bytearray(struct.pack(">I", len(target)))
        index: dict[int, int] = {}
        for pos in range(0, max(0, len(reference) - _GRAM + 1)):
            index.setdefault(_gram_hash(reference, pos), pos)

        literals = bytearray()

        def flush_literals() -> None:
            start = 0
            while start < len(literals):
                piece = literals[start:start + _MAX_INSERT]
                out.append(0x00)
                out.extend(struct.pack(">H", len(piece)))
                out.extend(piece)
                start += len(piece)
            literals.clear()

        pos = 0
        n = len(target)
        while pos < n:
            match_pos = None
            if pos + _GRAM <= n:
                match_pos = index.get(_gram_hash(target, pos))
            if match_pos is not None:
                # Extend the gram match forward as far as it goes.
                limit = min(n - pos, len(reference) - match_pos, _MAX_COPY)
                length = common_prefix_length_pair(
                    reference, match_pos, target, pos, limit)
                # And backward into pending literals.  This stays a
                # per-byte walk: it compares *reversed* suffixes against
                # a mutable bytearray, and the pending-literal run it can
                # absorb is short — slice probes buy nothing here.
                back = 0
                while (back < len(literals) and back < match_pos  # repro-lint: disable=REP502
                       and length + back < _MAX_COPY
                       and reference[match_pos - back - 1]
                       == literals[-1 - back]):
                    back += 1
                if length >= _MIN_COPY:
                    if back:
                        del literals[-back:]
                    flush_literals()
                    out.append(0x01)
                    out.extend(struct.pack(">IH", match_pos - back,
                                           length + back))
                    pos += length
                    continue
            literals.append(target[pos])
            pos += 1
        flush_literals()
        return bytes(out)

    def decode(self, reference: bytes, delta: bytes) -> bytes:
        """Reconstruct the target from the reference and its delta."""
        if len(delta) < 4:
            raise CorruptStreamError("delta shorter than its header")
        (target_length,) = struct.unpack(">I", delta[:4])
        out = bytearray()
        pos = 4
        while len(out) < target_length:
            if pos >= len(delta):
                raise CorruptStreamError("delta truncated mid-stream")
            op = delta[pos]
            pos += 1
            if op == 0x01:
                if pos + 6 > len(delta):
                    raise CorruptStreamError("delta truncated in COPY")
                offset, length = struct.unpack(">IH", delta[pos:pos + 6])
                pos += 6
                if offset + length > len(reference):
                    raise CorruptStreamError(
                        f"COPY [{offset}, +{length}) outside the "
                        f"{len(reference)}-byte reference")
                out.extend(reference[offset:offset + length])
            elif op == 0x00:
                if pos + 2 > len(delta):
                    raise CorruptStreamError("delta truncated in INSERT")
                (length,) = struct.unpack(">H", delta[pos:pos + 2])
                pos += 2
                if pos + length > len(delta):
                    raise CorruptStreamError("delta INSERT overruns")
                out.extend(delta[pos:pos + length])
                pos += length
            else:
                raise CorruptStreamError(f"unknown delta op {op:#x}")
        if len(out) != target_length:
            raise CompressionError(
                f"delta expands to {len(out)}, header says {target_length}")
        return bytes(out)

    def ratio(self, reference: bytes, target: bytes) -> float:
        """target size / delta size."""
        if not target:
            return 1.0
        return len(target) / len(self.encode(reference, target))
