"""Shared LZ machinery: parameters, tokens, and the canonical container.

All LZ paths in the library (serial LZSS, the GPU segment-parallel path
after post-processing) produce the same *token* representation — a list of
:class:`Literal` and :class:`Match` — and the same serialized container,
so one decoder handles every producer.  That mirrors the paper's design:
the GPU emits raw match candidates and the CPU refines them into the same
stream format the storage system already understands.

Container format (big-endian)::

    [u32 original_length][flag/token stream ...]

Token stream: groups of up to 8 tokens share one flags byte; bit i of the
flags byte (LSB first) is 1 for a match, 0 for a literal.  A literal is
one raw byte.  A match is two bytes: ``dddddddd dddd llll`` — a 12-bit
backward distance (1-based) and a 4-bit length encoding ``length -
min_match``.
"""

from __future__ import annotations

import struct
from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable, Optional, Union

from repro.errors import CompressionError, CorruptStreamError


@dataclass(frozen=True)
class LzParams:
    """Window geometry shared by every LZ path."""

    window: int = 4096
    min_match: int = 3
    max_match: int = 18

    def __post_init__(self) -> None:
        if self.window < 2 or self.window > 4096:
            raise CompressionError(
                f"window must be in [2, 4096] for 12-bit distances, "
                f"got {self.window}")
        if self.min_match < 2:
            raise CompressionError(f"min_match too small: {self.min_match}")
        if self.max_match < self.min_match:
            raise CompressionError("max_match < min_match")
        if self.max_match - self.min_match > 15:
            raise CompressionError(
                "match length range exceeds the 4-bit length field")


DEFAULT_PARAMS = LzParams()


# -- data-plane fast-path primitives (DESIGN.md §9) -------------------------

#: Bounded cache of rolling-key arrays, keyed by buffer *contents*.  The
#: CPU and GPU compression paths both key their match tables off the same
#: rolling 3-byte groups, and in a dedup pipeline the same 4 KiB payload
#: is routinely scanned more than once (both codecs in a comparison run,
#: several segment threads per chunk), so the array is worth sharing.
_KEY3_CACHE: "OrderedDict[bytes, list[int]]" = OrderedDict()
_KEY3_CACHE_ENTRIES = 16


def key3_array(data: bytes) -> list[int]:
    """Rolling 24-bit keys: ``keys[i] = data[i]<<16 | data[i+1]<<8 | data[i+2]``.

    The shared per-chunk hash array of the data-plane fast path: computed
    once per chunk and reused by every match finder over that chunk (the
    serial LZSS parse, each GPU segment thread, and — after one further
    multiplicative mix — the QuickLZ table).  A single zip-slice
    comprehension beats per-position indexing by ~1.7x in CPython, and a
    small content-keyed cache shares the array across consumers of the
    same buffer.  Callers must treat the result as read-only.
    """
    if len(data) < 3:
        return []
    if type(data) is bytes:
        cached = _KEY3_CACHE.get(data)
        if cached is not None:
            _KEY3_CACHE.move_to_end(data)
            return cached
    keys = [(a << 16) | (b << 8) | c
            for a, b, c in zip(data, data[1:], data[2:])]
    if type(data) is bytes:
        _KEY3_CACHE[data] = keys
        while len(_KEY3_CACHE) > _KEY3_CACHE_ENTRIES:
            _KEY3_CACHE.popitem(last=False)
    return keys


def cached_key3_array(data: bytes) -> "Optional[list[int]]":
    """The already-cached rolling-key array for ``data``, or None.

    A peek that never computes: consumers with their own derived form
    (the QuickLZ table mix) use it to reuse a shared array when one
    exists without forcing the two-pass derive when one does not.
    """
    if type(data) is bytes:
        return _KEY3_CACHE.get(data)
    return None


def common_prefix_length(data: bytes, a: int, b: int, limit: int) -> int:
    """Longest common prefix of ``data[a:]`` and ``data[b:]``, capped.

    Byte-identical to the naive ``while data[a+i] == data[b+i]`` scan the
    fast path replaced.  Short prefixes (the common case when a hash
    candidate fizzles) stay on an inline byte scan; once eight bytes
    agree, the scan switches to ``startswith`` slice probes (C memcmp) on
    geometrically doubling spans, then binary-searches the first mismatch
    inside the failing span.  Overlapping ranges are fine — both probes
    read the same immutable buffer, so prefix equality is still plain
    byte equality.
    """
    if limit <= 0:
        return 0
    scan = 8 if limit > 8 else limit
    length = 0
    # The audited per-byte exception REP502 points everyone else at:
    # bounded to 8 bytes, it beats slice setup for the short prefixes
    # that dominate fizzled hash candidates.
    while length < scan and data[a + length] == data[b + length]:  # repro-lint: disable=REP502
        length += 1
    if length < scan or length == limit:
        return length
    starts = data.startswith
    if starts(data[b + length:b + limit], a + length):
        return limit
    span = 8
    while True:
        rest = limit - length
        if span > rest:
            span = rest
        if starts(data[b + length:b + length + span], a + length):
            length += span
            span <<= 1
        else:
            break
    # The first mismatch lies inside the failing span: binary-search the
    # largest extra prefix (prefix equality is monotone in its length).
    lo, hi = 0, span - 1
    while lo < hi:
        mid = (lo + hi + 1) >> 1
        if starts(data[b + length:b + length + mid], a + length):
            lo = mid
        else:
            hi = mid - 1
    return length + lo


def common_prefix_length_pair(abuf: bytes, a: int, bbuf: bytes, b: int,
                              limit: int) -> int:
    """Longest common prefix of ``abuf[a:]`` and ``bbuf[b:]``, capped.

    The cross-buffer sibling of :func:`common_prefix_length`, for scans
    that extend a match between *two* buffers (the delta codec's
    reference/target walk).  Same structure: inline head scan for the
    short prefixes that dominate, then doubling ``startswith`` probes
    with a binary search inside the failing span.
    """
    if limit <= 0:
        return 0
    scan = 8 if limit > 8 else limit
    length = 0
    # The same audited per-byte head scan as common_prefix_length.
    while length < scan and abuf[a + length] == bbuf[b + length]:  # repro-lint: disable=REP502
        length += 1
    if length < scan or length == limit:
        return length
    starts = bbuf.startswith
    if starts(abuf[a + length:a + limit], b + length):
        return limit
    span = 8
    while True:
        rest = limit - length
        if span > rest:
            span = rest
        if starts(abuf[a + length:a + length + span], b + length):
            length += span
            span <<= 1
        else:
            break
    lo, hi = 0, span - 1
    while lo < hi:
        mid = (lo + hi + 1) >> 1
        if starts(abuf[a + length:a + length + mid], b + length):
            lo = mid
        else:
            hi = mid - 1
    return length + lo


def copy_match(out: bytearray, distance: int, length: int) -> None:
    """Append ``length`` bytes from ``distance`` back onto ``out``.

    Byte-identical to the per-byte ``out.append(out[start + i])`` loop
    for every distance/length combination — an overlapping copy is a
    periodic extension with period ``distance``, which slice replication
    reproduces exactly — but runs as a handful of C-level copies.
    """
    start = len(out) - distance
    if distance >= length:
        out += out[start:start + length]
        return
    period = out[start:]
    reps, rem = divmod(length, distance)
    out += period * reps
    if rem:
        out += period[:rem]


@dataclass(frozen=True)
class Literal:
    """A single uncompressed byte."""

    value: int

    def __post_init__(self) -> None:
        if not 0 <= self.value <= 255:
            raise CompressionError(f"invalid literal byte {self.value}")


@dataclass(frozen=True)
class Match:
    """A backward reference: copy ``length`` bytes from ``distance`` back."""

    distance: int
    length: int

    def validate(self, params: LzParams) -> None:
        """Raise unless the match fits the container's bit fields."""
        if not 1 <= self.distance <= params.window:
            raise CompressionError(f"match distance {self.distance} "
                                   f"outside window {params.window}")
        if not params.min_match <= self.length <= params.max_match:
            raise CompressionError(f"match length {self.length} outside "
                                   f"[{params.min_match}, {params.max_match}]")


Token = Union[Literal, Match]


def token_output_length(tokens: Iterable[Token]) -> int:
    """Plaintext bytes the token sequence expands to."""
    total = 0
    for token in tokens:
        total += token.length if isinstance(token, Match) else 1
    return total


def tokens_to_bytes(tokens: list[Token], original_length: int,
                    params: LzParams = DEFAULT_PARAMS) -> bytes:
    """Serialize a token list into the canonical container."""
    if original_length != token_output_length(tokens):
        raise CompressionError(
            f"token stream expands to {token_output_length(tokens)} bytes "
            f"but header claims {original_length}")
    out = bytearray(struct.pack(">I", original_length))
    for group_start in range(0, len(tokens), 8):
        group = tokens[group_start:group_start + 8]
        flags = 0
        body = bytearray()
        for bit, token in enumerate(group):
            if isinstance(token, Match):
                token.validate(params)
                flags |= 1 << bit
                distance = token.distance - 1          # 1-based -> 12 bits
                length = token.length - params.min_match
                body.append((distance >> 4) & 0xFF)
                body.append(((distance & 0x0F) << 4) | (length & 0x0F))
            else:
                body.append(token.value)
        out.append(flags)
        out.extend(body)
    return bytes(out)


def bytes_to_tokens(blob: bytes,
                    params: LzParams = DEFAULT_PARAMS) -> tuple[list[Token], int]:
    """Parse the canonical container back into (tokens, original_length)."""
    if len(blob) < 4:
        raise CorruptStreamError("container shorter than its header")
    (original_length,) = struct.unpack(">I", blob[:4])
    tokens: list[Token] = []
    produced = 0
    pos = 4
    while produced < original_length:
        if pos >= len(blob):
            raise CorruptStreamError("container truncated mid-stream")
        flags = blob[pos]
        pos += 1
        for bit in range(8):
            if produced >= original_length:
                break
            if flags & (1 << bit):
                if pos + 2 > len(blob):
                    raise CorruptStreamError("container truncated in a match")
                hi, lo = blob[pos], blob[pos + 1]
                pos += 2
                distance = ((hi << 4) | (lo >> 4)) + 1
                length = (lo & 0x0F) + params.min_match
                if distance > produced:
                    raise CorruptStreamError(
                        f"match reaches {distance} bytes back with only "
                        f"{produced} bytes produced")
                tokens.append(Match(distance, length))
                produced += length
            else:
                if pos + 1 > len(blob):
                    raise CorruptStreamError(
                        "container truncated in a literal")
                tokens.append(Literal(blob[pos]))
                pos += 1
                produced += 1
    if produced != original_length:
        raise CorruptStreamError(
            f"stream expands to {produced} bytes, header says "
            f"{original_length}")
    return tokens, original_length


def decode_tokens(tokens: Iterable[Token]) -> bytes:
    """Expand a token sequence into plaintext."""
    out = bytearray()
    for token in tokens:
        if isinstance(token, Match):
            if token.distance > len(out):
                raise CorruptStreamError(
                    f"match distance {token.distance} exceeds produced "
                    f"output {len(out)}")
            # Overlapping copies expand as a periodic extension; copy_match
            # reproduces the per-byte semantics with slice copies.
            copy_match(out, token.distance, token.length)
        else:
            out.append(token.value)
    return bytes(out)


def compression_ratio(original: int, compressed: int) -> float:
    """original/compressed, guarding the degenerate empty case."""
    if compressed <= 0:
        return 1.0 if original == 0 else float("inf")
    return original / compressed
