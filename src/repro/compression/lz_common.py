"""Shared LZ machinery: parameters, tokens, and the canonical container.

All LZ paths in the library (serial LZSS, the GPU segment-parallel path
after post-processing) produce the same *token* representation — a list of
:class:`Literal` and :class:`Match` — and the same serialized container,
so one decoder handles every producer.  That mirrors the paper's design:
the GPU emits raw match candidates and the CPU refines them into the same
stream format the storage system already understands.

Container format (big-endian)::

    [u32 original_length][flag/token stream ...]

Token stream: groups of up to 8 tokens share one flags byte; bit i of the
flags byte (LSB first) is 1 for a match, 0 for a literal.  A literal is
one raw byte.  A match is two bytes: ``dddddddd dddd llll`` — a 12-bit
backward distance (1-based) and a 4-bit length encoding ``length -
min_match``.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Iterable, Union

from repro.errors import CompressionError, CorruptStreamError


@dataclass(frozen=True)
class LzParams:
    """Window geometry shared by every LZ path."""

    window: int = 4096
    min_match: int = 3
    max_match: int = 18

    def __post_init__(self) -> None:
        if self.window < 2 or self.window > 4096:
            raise CompressionError(
                f"window must be in [2, 4096] for 12-bit distances, "
                f"got {self.window}")
        if self.min_match < 2:
            raise CompressionError(f"min_match too small: {self.min_match}")
        if self.max_match < self.min_match:
            raise CompressionError("max_match < min_match")
        if self.max_match - self.min_match > 15:
            raise CompressionError(
                "match length range exceeds the 4-bit length field")


DEFAULT_PARAMS = LzParams()


@dataclass(frozen=True)
class Literal:
    """A single uncompressed byte."""

    value: int

    def __post_init__(self) -> None:
        if not 0 <= self.value <= 255:
            raise CompressionError(f"invalid literal byte {self.value}")


@dataclass(frozen=True)
class Match:
    """A backward reference: copy ``length`` bytes from ``distance`` back."""

    distance: int
    length: int

    def validate(self, params: LzParams) -> None:
        """Raise unless the match fits the container's bit fields."""
        if not 1 <= self.distance <= params.window:
            raise CompressionError(f"match distance {self.distance} "
                                   f"outside window {params.window}")
        if not params.min_match <= self.length <= params.max_match:
            raise CompressionError(f"match length {self.length} outside "
                                   f"[{params.min_match}, {params.max_match}]")


Token = Union[Literal, Match]


def token_output_length(tokens: Iterable[Token]) -> int:
    """Plaintext bytes the token sequence expands to."""
    total = 0
    for token in tokens:
        total += token.length if isinstance(token, Match) else 1
    return total


def tokens_to_bytes(tokens: list[Token], original_length: int,
                    params: LzParams = DEFAULT_PARAMS) -> bytes:
    """Serialize a token list into the canonical container."""
    if original_length != token_output_length(tokens):
        raise CompressionError(
            f"token stream expands to {token_output_length(tokens)} bytes "
            f"but header claims {original_length}")
    out = bytearray(struct.pack(">I", original_length))
    for group_start in range(0, len(tokens), 8):
        group = tokens[group_start:group_start + 8]
        flags = 0
        body = bytearray()
        for bit, token in enumerate(group):
            if isinstance(token, Match):
                token.validate(params)
                flags |= 1 << bit
                distance = token.distance - 1          # 1-based -> 12 bits
                length = token.length - params.min_match
                body.append((distance >> 4) & 0xFF)
                body.append(((distance & 0x0F) << 4) | (length & 0x0F))
            else:
                body.append(token.value)
        out.append(flags)
        out.extend(body)
    return bytes(out)


def bytes_to_tokens(blob: bytes,
                    params: LzParams = DEFAULT_PARAMS) -> tuple[list[Token], int]:
    """Parse the canonical container back into (tokens, original_length)."""
    if len(blob) < 4:
        raise CorruptStreamError("container shorter than its header")
    (original_length,) = struct.unpack(">I", blob[:4])
    tokens: list[Token] = []
    produced = 0
    pos = 4
    while produced < original_length:
        if pos >= len(blob):
            raise CorruptStreamError("container truncated mid-stream")
        flags = blob[pos]
        pos += 1
        for bit in range(8):
            if produced >= original_length:
                break
            if flags & (1 << bit):
                if pos + 2 > len(blob):
                    raise CorruptStreamError("container truncated in a match")
                hi, lo = blob[pos], blob[pos + 1]
                pos += 2
                distance = ((hi << 4) | (lo >> 4)) + 1
                length = (lo & 0x0F) + params.min_match
                if distance > produced:
                    raise CorruptStreamError(
                        f"match reaches {distance} bytes back with only "
                        f"{produced} bytes produced")
                tokens.append(Match(distance, length))
                produced += length
            else:
                if pos + 1 > len(blob):
                    raise CorruptStreamError(
                        "container truncated in a literal")
                tokens.append(Literal(blob[pos]))
                pos += 1
                produced += 1
    if produced != original_length:
        raise CorruptStreamError(
            f"stream expands to {produced} bytes, header says "
            f"{original_length}")
    return tokens, original_length


def decode_tokens(tokens: Iterable[Token]) -> bytes:
    """Expand a token sequence into plaintext."""
    out = bytearray()
    for token in tokens:
        if isinstance(token, Match):
            if token.distance > len(out):
                raise CorruptStreamError(
                    f"match distance {token.distance} exceeds produced "
                    f"output {len(out)}")
            start = len(out) - token.distance
            # Overlapping copies are legal and must be byte-by-byte.
            for i in range(token.length):
                out.append(out[start + i])
        else:
            out.append(token.value)
    return bytes(out)


def compression_ratio(original: int, compressed: int) -> float:
    """original/compressed, guarding the degenerate empty case."""
    if compressed <= 0:
        return 1.0 if original == 0 else float("inf")
    return original / compressed
