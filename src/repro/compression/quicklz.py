"""QuickLZ-class fast LZ codec — the paper's CPU compression baseline.

Faithful to the *structure* of QuickLZ level 1 rather than its exact bit
layout: a single-entry hash table over 3-byte sequences (no chains —
that's what makes it fast and what costs it ratio against LZSS), greedy
emission, byte-oriented output.

Container format (big-endian)::

    [u32 original_length][stream]

Stream: groups of up to 8 tokens share a flags byte (bit=1 match).
Literal: 1 raw byte.  Match: 3 bytes ``llllllll oooooooo oooooooo`` —
length-3 (match lengths 3..258) and a 16-bit backward offset (1-based),
so matches may reference anywhere in the chunk, unlike the 4 KiB LZSS
window.
"""

from __future__ import annotations

import struct
from typing import Optional

from collections import OrderedDict

from repro.compression.lz_common import (
    cached_key3_array,
    common_prefix_length,
    copy_match,
)
from repro.compression.memo import CodecMemo, payload_fingerprint
from repro.errors import CompressionError, CorruptStreamError

_MIN_MATCH = 3
_MAX_MATCH = 258
_MAX_OFFSET = 0xFFFF
_HASH_BITS = 13


def _hash3(a: int, b: int, c: int) -> int:
    """QuickLZ-style multiplicative hash of a 3-byte group."""
    value = (a << 16) | (b << 8) | c
    return ((value * 2654435761) >> (32 - _HASH_BITS)) & ((1 << _HASH_BITS) - 1)


#: Content-keyed cache of mixed table-index arrays (see
#: :data:`repro.compression.lz_common._KEY3_CACHE` for the pattern).
_HASH_CACHE: "OrderedDict[bytes, list[int]]" = OrderedDict()
_HASH_CACHE_ENTRIES = 16


def _hash_array(data: bytes) -> list[int]:
    """Table index for every position, precomputed in one pass.

    ``_hash_array(data)[pos] == _hash3(data[pos], data[pos+1], data[pos+2])``
    for every ``pos`` with three bytes left.  The mix runs over the same
    rolling 3-byte groups as :func:`~repro.compression.lz_common.key3_array`;
    when another consumer already cached that array for this buffer the
    mix reuses it, otherwise a single fused comprehension computes the
    table indices directly.  Results are content-cached like the key
    array; callers must treat them as read-only.
    """
    if len(data) < 3:
        return []
    if type(data) is bytes:
        cached = _HASH_CACHE.get(data)
        if cached is not None:
            _HASH_CACHE.move_to_end(data)
            return cached
    shift = 32 - _HASH_BITS
    mask = (1 << _HASH_BITS) - 1
    keys = cached_key3_array(data)
    if keys is not None:
        hashes = [((key * 2654435761) >> shift) & mask for key in keys]
    else:
        hashes = [((((a << 16) | (b << 8) | c) * 2654435761) >> shift) & mask
                  for a, b, c in zip(data, data[1:], data[2:])]
    if type(data) is bytes:
        _HASH_CACHE[data] = hashes
        while len(_HASH_CACHE) > _HASH_CACHE_ENTRIES:
            _HASH_CACHE.popitem(last=False)
    return hashes


class QuickLzCodec:
    """Fast greedy LZ with a single-entry hash table."""

    #: Memo namespace — the format has no tunable parameters.
    _MEMO_TAG = "quicklz"

    def __init__(self, memo: Optional[CodecMemo] = None):
        self.memo = memo

    def encode(self, data: bytes, *,
               fingerprint: Optional[bytes] = None) -> bytes:
        """Compress ``data``; always produces a decodable container.

        ``fingerprint`` is an optional precomputed content fingerprint
        (the dedup stage's SHA-1) used as the memo key when a
        :class:`~repro.compression.memo.CodecMemo` is attached.
        """
        if self.memo is not None:
            if fingerprint is None:
                fingerprint = payload_fingerprint(data)
            cached = self.memo.get(self._MEMO_TAG, fingerprint)
            if cached is not None:
                if self.memo.verifier is not None:
                    self.memo.verifier.on_hit(
                        "codec:" + self._MEMO_TAG, cached,
                        lambda: self._encode(data))
                return cached
        blob = self._encode(data)
        if self.memo is not None:
            self.memo.put(self._MEMO_TAG, fingerprint, blob)
        return blob

    def _encode(self, data: bytes) -> bytes:
        n = len(data)
        out = bytearray(struct.pack(">I", n))
        table: list[int] = [-1] * (1 << _HASH_BITS)
        # hashes[pos] is valid for every pos <= last (pos + 3 <= n).
        hashes = _hash_array(data)
        last = n - _MIN_MATCH
        append = out.append
        cpl = common_prefix_length

        pos = 0
        # One iteration per 8-token flag group: the flags byte is patched
        # in once its group is fully emitted, and a group is only opened
        # when at least one token follows — so the stream never carries a
        # trailing empty flags byte and needs no trim pass.
        while pos < n:
            flags = 0
            flag_pos = len(out)
            append(0)  # placeholder for this group's flags byte
            bit = 0
            while bit < 8 and pos < n:
                if pos <= last:
                    key = hashes[pos]
                    candidate = table[key]
                    table[key] = pos
                    # The first-byte guard rejects hash collisions without
                    # the prefix-scan call; a first-byte mismatch would be
                    # length 0 anyway.
                    if (candidate >= 0 and pos - candidate <= _MAX_OFFSET
                            and data[candidate] == data[pos]):
                        limit = n - pos
                        if limit > _MAX_MATCH:
                            limit = _MAX_MATCH
                        length = cpl(data, candidate, pos, limit)
                        if length >= _MIN_MATCH:
                            flags |= 1 << bit
                            append(length - _MIN_MATCH)
                            off = pos - candidate - 1
                            append(off >> 8)
                            append(off & 0xFF)
                            # Seed the table sparsely inside the match
                            # (QuickLZ skips ahead; sampling keeps encode
                            # fast at a small ratio cost).
                            for inside in range(pos + 1,
                                                min(pos + length, last + 1),
                                                4):
                                table[hashes[inside]] = inside
                            pos += length
                            bit += 1
                            continue
                append(data[pos])
                pos += 1
                bit += 1
            out[flag_pos] = flags
        return bytes(out)

    def decode(self, blob: bytes) -> bytes:
        """Decompress a container produced by :meth:`encode`."""
        if len(blob) < 4:
            raise CorruptStreamError("container shorter than its header")
        (original_length,) = struct.unpack(">I", blob[:4])
        out = bytearray()
        pos = 4
        while len(out) < original_length:
            if pos >= len(blob):
                raise CorruptStreamError("container truncated mid-stream")
            flags = blob[pos]
            pos += 1
            for bit in range(8):
                if len(out) >= original_length:
                    break
                if flags & (1 << bit):
                    if pos + 3 > len(blob):
                        raise CorruptStreamError(
                            "container truncated in a match")
                    length = blob[pos] + _MIN_MATCH
                    offset = ((blob[pos + 1] << 8) | blob[pos + 2]) + 1
                    pos += 3
                    if offset > len(out):
                        raise CorruptStreamError(
                            f"match offset {offset} exceeds produced "
                            f"output {len(out)}")
                    copy_match(out, offset, length)
                else:
                    out.append(blob[pos])
                    pos += 1
        if len(out) != original_length:
            raise CompressionError(
                f"decoded {len(out)} bytes, expected {original_length}")
        return bytes(out)

    def ratio(self, data: bytes) -> float:
        """Achieved compression ratio (original/compressed) on ``data``."""
        if not data:
            return 1.0
        return len(data) / len(self.encode(data))
