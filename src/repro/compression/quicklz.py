"""QuickLZ-class fast LZ codec — the paper's CPU compression baseline.

Faithful to the *structure* of QuickLZ level 1 rather than its exact bit
layout: a single-entry hash table over 3-byte sequences (no chains —
that's what makes it fast and what costs it ratio against LZSS), greedy
emission, byte-oriented output.

Container format (big-endian)::

    [u32 original_length][stream]

Stream: groups of up to 8 tokens share a flags byte (bit=1 match).
Literal: 1 raw byte.  Match: 3 bytes ``llllllll oooooooo oooooooo`` —
length-3 (match lengths 3..258) and a 16-bit backward offset (1-based),
so matches may reference anywhere in the chunk, unlike the 4 KiB LZSS
window.
"""

from __future__ import annotations

import struct

from repro.errors import CompressionError, CorruptStreamError

_MIN_MATCH = 3
_MAX_MATCH = 258
_MAX_OFFSET = 0xFFFF
_HASH_BITS = 13


def _hash3(a: int, b: int, c: int) -> int:
    """QuickLZ-style multiplicative hash of a 3-byte group."""
    value = (a << 16) | (b << 8) | c
    return ((value * 2654435761) >> (32 - _HASH_BITS)) & ((1 << _HASH_BITS) - 1)


class QuickLzCodec:
    """Fast greedy LZ with a single-entry hash table."""

    def encode(self, data: bytes) -> bytes:
        """Compress ``data``; always produces a decodable container."""
        n = len(data)
        out = bytearray(struct.pack(">I", n))
        table: list[int] = [-1] * (1 << _HASH_BITS)

        flags = 0
        flag_bit = 0
        flag_pos = len(out)
        out.append(0)  # placeholder for the first flags byte
        pos = 0

        def close_group() -> None:
            nonlocal flags, flag_bit, flag_pos
            out[flag_pos] = flags
            flags = 0
            flag_bit = 0
            flag_pos = len(out)
            out.append(0)

        while pos < n:
            if flag_bit == 8:
                close_group()
            match_len = 0
            match_off = 0
            if pos + _MIN_MATCH <= n:
                key = _hash3(data[pos], data[pos + 1], data[pos + 2])
                candidate = table[key]
                table[key] = pos
                if candidate >= 0 and pos - candidate <= _MAX_OFFSET:
                    limit = min(n - pos, _MAX_MATCH)
                    length = 0
                    while (length < limit
                           and data[candidate + length] == data[pos + length]):
                        length += 1
                    if length >= _MIN_MATCH:
                        match_len = length
                        match_off = pos - candidate
            if match_len:
                flags |= 1 << flag_bit
                out.append(match_len - _MIN_MATCH)
                out.append((match_off - 1) >> 8)
                out.append((match_off - 1) & 0xFF)
                # Seed the table sparsely inside the match (QuickLZ skips
                # ahead; sampling keeps encode fast at a small ratio cost).
                for inside in range(pos + 1, pos + match_len, 4):
                    if inside + _MIN_MATCH <= n:
                        table[_hash3(data[inside], data[inside + 1],
                                     data[inside + 2])] = inside
                pos += match_len
            else:
                out.append(data[pos])
                pos += 1
            flag_bit += 1

        # Trim a trailing empty flags byte left by an exact group boundary.
        if flag_bit == 0 and flag_pos == len(out) - 1:
            del out[flag_pos]
        else:
            out[flag_pos] = flags
        return bytes(out)

    def decode(self, blob: bytes) -> bytes:
        """Decompress a container produced by :meth:`encode`."""
        if len(blob) < 4:
            raise CorruptStreamError("container shorter than its header")
        (original_length,) = struct.unpack(">I", blob[:4])
        out = bytearray()
        pos = 4
        while len(out) < original_length:
            if pos >= len(blob):
                raise CorruptStreamError("container truncated mid-stream")
            flags = blob[pos]
            pos += 1
            for bit in range(8):
                if len(out) >= original_length:
                    break
                if flags & (1 << bit):
                    if pos + 3 > len(blob):
                        raise CorruptStreamError(
                            "container truncated in a match")
                    length = blob[pos] + _MIN_MATCH
                    offset = ((blob[pos + 1] << 8) | blob[pos + 2]) + 1
                    pos += 3
                    if offset > len(out):
                        raise CorruptStreamError(
                            f"match offset {offset} exceeds produced "
                            f"output {len(out)}")
                    start = len(out) - offset
                    for i in range(length):
                        out.append(out[start + i])
                else:
                    out.append(blob[pos])
                    pos += 1
        if len(out) != original_length:
            raise CompressionError(
                f"decoded {len(out)} bytes, expected {original_length}")
        return bytes(out)

    def ratio(self, data: bytes) -> float:
        """Achieved compression ratio (original/compressed) on ``data``."""
        if not data:
            return 1.0
        return len(data) / len(self.encode(data))
