"""Fingerprint-keyed codec memoization (bounded LRU).

On duplicate-heavy corpora the functional data plane spends most of its
time re-encoding bytes it has already encoded: a dedup-*disabled*
baseline compresses every copy of a hot block, and ``ratio()`` callers
(calibration, experiments) encode the same calibration blocks over and
over.  Every codec in the library is a pure function of its input bytes,
so the encoded container can be memoized under a content fingerprint —
the same SHA-1 the dedup path already computes, which makes the cache
key free whenever the hashing stage ran first.

The memo is *correctness-neutral by construction*: a hit returns the
exact ``bytes`` object a previous encode produced, so every stream, size
and report field is byte-identical with the memo on or off.  Timing is
also untouched — simulated CPU cycles come from the cost model, not from
wall-clock encode work.

Keys are ``(codec_tag, fingerprint)``: the tag encodes the codec family
*and* its parameters (window geometry, lazy parsing, segment count), so
two differently-configured codecs never alias each other's streams.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict

from repro.errors import CompressionError

#: Default entry budget — at 4 KiB containers this is ~2 MB of cache.
DEFAULT_MEMO_ENTRIES = 512


def payload_fingerprint(data: bytes) -> bytes:
    """SHA-1 content fingerprint of ``data``.

    The single definition of the content key used by both the dedup
    hashing stage (:mod:`repro.dedup.hashing`) and the codec memo, so a
    chunk fingerprinted once upstream is a ready-made memo key.
    """
    return hashlib.sha1(data).digest()


class CodecMemo:
    """Bounded LRU of encoded containers keyed by content fingerprint."""

    __slots__ = ("capacity", "hits", "misses", "evictions", "_entries",
                 "verifier")

    def __init__(self, capacity: int = DEFAULT_MEMO_ENTRIES):
        if capacity < 1:
            raise CompressionError(
                f"memo capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._entries: OrderedDict[tuple[str, bytes], bytes] = OrderedDict()
        #: Optional :class:`repro.verify.MemoVerifier`; codec call
        #: sites replay sampled hits through it (they know the
        #: producer, the memo does not).
        self.verifier = None

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, tag: str, fingerprint: bytes) -> bytes | None:
        """The memoized container, refreshing recency; None on a miss."""
        entry = self._entries.get((tag, fingerprint))
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end((tag, fingerprint))
        self.hits += 1
        return entry

    def put(self, tag: str, fingerprint: bytes, blob: bytes) -> None:
        """Insert (or refresh) an encoding, evicting the LRU entry."""
        key = (tag, fingerprint)
        if key in self._entries:
            self._entries.move_to_end(key)
            self._entries[key] = blob
            return
        if len(self._entries) >= self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1
        self._entries[key] = blob

    def stats(self) -> dict[str, int]:
        """Counters snapshot for reports and benchmarks."""
        return {"hits": self.hits, "misses": self.misses,
                "evictions": self.evictions, "entries": len(self._entries)}
