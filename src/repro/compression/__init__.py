"""Compression engine (paper §3.2).

Two real, round-trip-verified LZ codecs plus the paper's two parallel
compression paths:

* :mod:`~repro.compression.lzss` — a textbook LZSS codec (flag-bit token
  stream, 12-bit distances, 4-bit lengths) used as the reference format.
* :mod:`~repro.compression.quicklz` — a QuickLZ-class fast byte-oriented
  LZ codec (hash-table greedy matcher), the paper's CPU baseline.
* :mod:`~repro.compression.parallel_cpu` — chunk-per-thread CPU
  compression, timed on :class:`~repro.cpu.model.SimCpu`.
* :mod:`~repro.compression.gpu_lz` — the paper's contribution: multiple
  GPU threads compress *one* chunk by splitting it into segments with
  overlapping history windows; the CPU then post-processes the raw match
  output (:mod:`~repro.compression.postprocess`) into a valid LZSS stream.
"""

from repro.compression.lz_common import (
    Literal,
    Match,
    Token,
    LzParams,
    DEFAULT_PARAMS,
    tokens_to_bytes,
    bytes_to_tokens,
    decode_tokens,
)
from repro.compression.delta import DeltaCodec, SimilarityIndex, sketch
from repro.compression.huffman import HuffmanCodec, LzssHuffmanCodec
from repro.compression.lzss import LzssCodec
from repro.compression.memo import CodecMemo, payload_fingerprint
from repro.compression.quicklz import QuickLzCodec

__all__ = [
    "DeltaCodec",
    "SimilarityIndex",
    "sketch",
    "HuffmanCodec",
    "LzssHuffmanCodec",
    "Literal",
    "Match",
    "Token",
    "LzParams",
    "DEFAULT_PARAMS",
    "tokens_to_bytes",
    "bytes_to_tokens",
    "decode_tokens",
    "LzssCodec",
    "QuickLzCodec",
    "CodecMemo",
    "payload_fingerprint",
]
