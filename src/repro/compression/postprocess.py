"""CPU post-processing of raw GPU compression output (paper §3.2(2)-(3)).

The GPU returns unrefined per-segment token lists; "the CPU must refine
the results".  Refinement here means what it meant on the testbed:

1. validate that the segments tile the chunk exactly and that every match
   stays inside the backward window (seam matches reach into the previous
   segment's overlap region — legal, because the sequential decoder has
   full history by the time it gets there);
2. stitch the per-segment token lists into one stream;
3. repair the seams: a segment thread must clamp its final match at its
   own boundary (the right neighbour's parse is not final while it runs),
   so the CPU extends seam-straddling matches into the next segment's
   leading literals;
4. pack the stream into the canonical LZSS container.

The result decodes with the ordinary :class:`~repro.compression.lzss.LzssCodec`
decoder, which is the whole point: downstream storage never knows whether
a chunk was compressed by the CPU or the GPU.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.compression.lz_common import (
    DEFAULT_PARAMS,
    Literal,
    LzParams,
    Match,
    Token,
    common_prefix_length,
    token_output_length,
    tokens_to_bytes,
)
from repro.errors import CompressionError
from repro.gpu.kernels.lz import SegmentOutput


def validate_segments(outputs: Sequence[SegmentOutput],
                      chunk_length: int,
                      params: LzParams = DEFAULT_PARAMS) -> None:
    """Raise unless the segment outputs exactly tile ``chunk_length``."""
    expected_start = 0
    for out in outputs:
        if out.start != expected_start:
            raise CompressionError(
                f"segment {out.segment_index} starts at {out.start}, "
                f"expected {expected_start}")
        span = token_output_length(out.tokens)
        if span != out.end - out.start:
            raise CompressionError(
                f"segment {out.segment_index} tokens expand to {span} "
                f"bytes, span is {out.end - out.start}")
        position = out.start
        for token in out.tokens:
            if isinstance(token, Match):
                token.validate(params)
                if token.distance > position:
                    raise CompressionError(
                        f"segment {out.segment_index} match at {position} "
                        f"reaches {token.distance} bytes back")
                position += token.length
            else:
                position += 1
        expected_start = out.end
    if expected_start != chunk_length:
        raise CompressionError(
            f"segments cover {expected_start} bytes of a "
            f"{chunk_length}-byte chunk")


def _extend_across_seam(chunk: bytes, merged: list[Token],
                        next_tokens: list[Token], seam: int,
                        params: LzParams) -> tuple[list[Token], int]:
    """Extend a match that was clamped at the seam into leading literals.

    Returns the possibly-modified ``next_tokens`` and the number of bytes
    absorbed into the previous segment's final match.
    """
    if not merged or not next_tokens:
        return next_tokens, 0
    last = merged[-1]
    if not isinstance(last, Match) or last.length >= params.max_match:
        return next_tokens, 0
    # Absorbable bytes are capped three ways: the run of leading literals,
    # the room left in the match's length field, and how far the periodic
    # extension actually keeps matching — the last is one slice-doubling
    # prefix scan instead of the old byte-at-a-time pop loop.
    cap = params.max_match - last.length
    lead = 0
    while (lead < cap and lead < len(next_tokens)
           and isinstance(next_tokens[lead], Literal)):
        lead += 1
    absorbed = common_prefix_length(
        chunk, seam - last.distance, seam, lead)
    if absorbed:
        merged[-1] = Match(distance=last.distance,
                           length=last.length + absorbed)
    return list(next_tokens[absorbed:]), absorbed


def merge_segments(chunk: bytes, outputs: Sequence[SegmentOutput],
                   params: LzParams = DEFAULT_PARAMS,
                   repair_seams: bool = True,
                   stats: Optional[dict] = None) -> list[Token]:
    """Stitch raw segment outputs into one valid token stream.

    ``stats``, when given, accumulates refinement observability:
    ``seams_extended`` (matches grown across a boundary) and
    ``seam_bytes_absorbed`` (literals they swallowed).
    """
    ordered = sorted(outputs, key=lambda o: o.segment_index)
    validate_segments(ordered, len(chunk), params)
    merged: list[Token] = []
    for out in ordered:
        tokens = list(out.tokens)
        if repair_seams and out.start > 0:
            tokens, absorbed = _extend_across_seam(
                chunk, merged, tokens, out.start, params)
            if stats is not None and absorbed:
                stats["seams_extended"] = \
                    stats.get("seams_extended", 0) + 1
                stats["seam_bytes_absorbed"] = \
                    stats.get("seam_bytes_absorbed", 0) + absorbed
        merged.extend(tokens)
    if token_output_length(merged) != len(chunk):
        raise CompressionError("seam repair corrupted the stream length")
    return merged


def refine_to_container(chunk: bytes, outputs: Sequence[SegmentOutput],
                        params: LzParams = DEFAULT_PARAMS,
                        repair_seams: bool = True,
                        stats: Optional[dict] = None) -> bytes:
    """Full post-processing: merge, repair seams, pack into the container."""
    tokens = merge_segments(chunk, outputs, params, repair_seams, stats)
    return tokens_to_bytes(tokens, len(chunk), params)
