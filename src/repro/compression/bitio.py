"""Bit-level I/O: the substrate for entropy coding.

MSB-first bit order (like DEFLATE's Huffman trees read naturally), with
explicit end-of-stream accounting so decoders never run off the end
silently.
"""

from __future__ import annotations

from repro.errors import CorruptStreamError


class BitWriter:
    """Accumulates bits MSB-first into a byte buffer."""

    def __init__(self) -> None:
        self._out = bytearray()
        self._accumulator = 0
        self._bit_count = 0
        self.bits_written = 0

    def write_bit(self, bit: int) -> None:
        """Append one bit."""
        self.write_bits(bit & 1, 1)

    def write_bits(self, value: int, width: int) -> None:
        """Append ``width`` bits of ``value`` (MSB of the field first)."""
        if width < 0:
            raise ValueError(f"negative width {width}")
        if value < 0 or (width < value.bit_length()):
            raise ValueError(f"value {value} does not fit in {width} bits")
        self._accumulator = (self._accumulator << width) | value
        self._bit_count += width
        self.bits_written += width
        while self._bit_count >= 8:
            self._bit_count -= 8
            self._out.append((self._accumulator >> self._bit_count) & 0xFF)
        self._accumulator &= (1 << self._bit_count) - 1

    def getvalue(self) -> bytes:
        """The written stream, zero-padded to a byte boundary."""
        if self._bit_count:
            tail = (self._accumulator << (8 - self._bit_count)) & 0xFF
            return bytes(self._out) + bytes([tail])
        return bytes(self._out)


class BitReader:
    """Reads bits MSB-first from a byte buffer."""

    def __init__(self, data: bytes):
        self._data = data
        self._pos = 0  # bit position

    @property
    def bits_remaining(self) -> int:
        """Bits left in the buffer (including any writer padding)."""
        return len(self._data) * 8 - self._pos

    def read_bit(self) -> int:
        """Consume one bit."""
        if self._pos >= len(self._data) * 8:
            raise CorruptStreamError("bit stream exhausted")
        byte = self._data[self._pos >> 3]
        bit = (byte >> (7 - (self._pos & 7))) & 1
        self._pos += 1
        return bit

    def read_bits(self, width: int) -> int:
        """Consume ``width`` bits as one MSB-first integer."""
        if width < 0:
            raise ValueError(f"negative width {width}")
        value = 0
        for _ in range(width):
            value = (value << 1) | self.read_bit()
        return value
