"""GPU compression path: batched segment-parallel LZ + CPU refinement.

The paper's division of labour (§3.2(2)-(3)): "the GPU performs
compression and the CPU is used for refinement."  This module adapts the
GPU LZ kernels to the pipeline's batching machinery:

* :meth:`GpuCompressor.make_kernel` builds one launch for a batch of
  chunks — :class:`~repro.gpu.kernels.lz.SegmentLzKernel` in payload mode
  (real match search), :class:`~repro.gpu.kernels.lz.DescriptorLzKernel`
  in descriptor mode;
* :meth:`GpuCompressor.split_results` fans the launch output back out to
  per-chunk raw results;
* :meth:`GpuCompressor.postprocess` is the CPU half: refine the raw
  output into the canonical container (payload mode really runs
  :func:`~repro.compression.postprocess.refine_to_container`) and report
  the refinement's CPU cycles.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

from repro.compression.lz_common import DEFAULT_PARAMS, LzParams
from repro.compression.memo import CodecMemo, payload_fingerprint
from repro.compression.parallel_cpu import CompressionResult
from repro.compression.postprocess import refine_to_container
from repro.cpu.costs import CpuCosts, DEFAULT_COSTS
from repro.errors import CompressionError
from repro.gpu.costs import DEFAULT_GPU_COSTS, GpuKernelCosts
from repro.gpu.kernel import Kernel
from repro.gpu.kernels.lz import DescriptorLzKernel, SegmentLzKernel
from repro.types import Chunk


class GpuCompressor:
    """Builds GPU compression launches and post-processes their output."""

    def __init__(self, segments_per_chunk: int = 8,
                 params: LzParams = DEFAULT_PARAMS,
                 cpu_costs: CpuCosts = DEFAULT_COSTS,
                 gpu_costs: GpuKernelCosts = DEFAULT_GPU_COSTS,
                 use_simt: bool = False,
                 memo: Optional[CodecMemo] = None):
        self.segments_per_chunk = segments_per_chunk
        self.params = params
        self.cpu_costs = cpu_costs
        self.gpu_costs = gpu_costs
        self.use_simt = use_simt
        self.memo = memo
        # The segment grid and window geometry shape the refined stream,
        # so both are part of the memo namespace.
        self._memo_tag = (f"gpu-lz/{segments_per_chunk}/{params.window}/"
                          f"{params.min_match}/{params.max_match}")
        self.chunks_compressed = 0
        self.bytes_in = 0
        self.bytes_out = 0
        #: Seam-repair observability, filled by refine_to_container.
        self.seam_stats: dict = {}

    # -- batching hooks (GpuBatcher interface) --------------------------------

    def make_kernel(self, chunks: Sequence[Chunk]) -> Kernel:
        """One launch covering ``chunks`` (all payload or all descriptor)."""
        payload_flags = {chunk.has_payload for chunk in chunks}
        if len(payload_flags) != 1:
            raise CompressionError(
                "a GPU batch must be all-payload or all-descriptor")
        if payload_flags.pop():
            return SegmentLzKernel(
                [chunk.payload for chunk in chunks],
                segments_per_chunk=self.segments_per_chunk,
                params=self.params, costs=self.gpu_costs,
                use_simt=self.use_simt)
        return DescriptorLzKernel(
            [chunk.size for chunk in chunks],
            [chunk.effective_ratio() for chunk in chunks],
            segments_per_chunk=self.segments_per_chunk,
            costs=self.gpu_costs)

    def split_results(self, chunks: Sequence[Chunk],
                      raw: Any) -> Sequence[Any]:
        """Per-chunk raw results from the launch output (1:1 already)."""
        if len(raw) != len(chunks):
            raise CompressionError(
                f"kernel returned {len(raw)} results for "
                f"{len(chunks)} chunks")
        return raw

    # -- CPU refinement -----------------------------------------------------

    def postprocess(self, chunk: Chunk, raw: Any) -> CompressionResult:
        """CPU refinement of one chunk's raw GPU output.

        Refinement is a pure function of the payload (the kernel's raw
        segment output is deterministic in it), so duplicate content is
        resolved from the fingerprint-keyed memo without re-stitching.
        """
        if chunk.has_payload:
            blob = self._refine_memoized(chunk, raw)
            if len(blob) < chunk.size:
                size, stored_raw, out_blob = len(blob), False, blob
            else:
                size, stored_raw, out_blob = chunk.size, True, None
        else:
            size = int(raw)
            stored_raw = size >= chunk.size
            size = min(size, chunk.size)
            out_blob = None
        cycles = self.cpu_costs.postprocess_cycles(chunk.size)
        chunk.compressed_size = size
        self.chunks_compressed += 1
        self.bytes_in += chunk.size
        self.bytes_out += size
        return CompressionResult(compressed_size=size, cpu_cycles=cycles,
                                 blob=out_blob, stored_raw=stored_raw)

    def _refine_memoized(self, chunk: Chunk, raw: Any) -> bytes:
        if self.memo is None:
            return refine_to_container(chunk.payload, raw,
                                       params=self.params,
                                       stats=self.seam_stats)
        fingerprint = chunk.fingerprint
        if fingerprint is None:
            fingerprint = payload_fingerprint(chunk.payload)
        blob = self.memo.get(self._memo_tag, fingerprint)
        if blob is None:
            blob = refine_to_container(chunk.payload, raw,
                                       params=self.params,
                                       stats=self.seam_stats)
            self.memo.put(self._memo_tag, fingerprint, blob)
        elif self.memo.verifier is not None:
            # Verification replay passes no stats dict: seam counters
            # track *computed* refinements only (see the REP701 audit).
            self.memo.verifier.on_hit(
                "codec:" + self._memo_tag, blob,
                lambda: refine_to_container(chunk.payload, raw,
                                            params=self.params))
        return blob

    def achieved_ratio(self) -> float:
        """Aggregate original/compressed over everything compressed."""
        if self.bytes_out == 0:
            return 1.0
        return self.bytes_in / self.bytes_out

    def stats(self) -> dict[str, int]:
        """Flat counter mapping for the metrics registry."""
        counters = {
            "chunks_compressed": self.chunks_compressed,
            "bytes_in": self.bytes_in,
            "bytes_out": self.bytes_out,
            "seams_extended": 0,
            "seam_bytes_absorbed": 0,
        }
        counters.update(self.seam_stats)
        return counters
