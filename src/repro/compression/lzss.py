"""Serial LZSS codec: the library's reference compressor.

A textbook LZSS with a hash-chain match finder.  Greedy parsing by
default; optional lazy matching (one-byte lookahead) squeezes out a
slightly better ratio at a higher search cost, which the CPU cost model
prices accordingly.

This codec defines the canonical compressed format (see
:mod:`~repro.compression.lz_common`), and its decoder is the single
decoder used for *every* producer in the library, including the GPU
segment-parallel path after post-processing.
"""

from __future__ import annotations

from typing import Optional

from repro.compression.lz_common import (
    DEFAULT_PARAMS,
    Literal,
    LzParams,
    Match,
    Token,
    bytes_to_tokens,
    decode_tokens,
    tokens_to_bytes,
)
from repro.errors import CompressionError

#: Bound on hash-chain length; keeps worst-case encode cost linearish.
_MAX_CHAIN = 64


def _hash3(data: bytes, pos: int) -> int:
    """Order-sensitive 3-byte rolling key for the match-finder table."""
    return (data[pos] << 16) | (data[pos + 1] << 8) | data[pos + 2]


class MatchFinder:
    """Hash-chain search for the longest backward match at a position.

    Positions are inserted as the encoder advances; lookups only consider
    candidates no further back than the window and no earlier than
    ``min_start`` (used by the GPU segment path to clamp history to the
    overlap region).
    """

    def __init__(self, data: bytes, params: LzParams = DEFAULT_PARAMS):
        self.data = data
        self.params = params
        self._chains: dict[int, list[int]] = {}

    def insert(self, pos: int) -> None:
        """Register ``pos`` as a future match candidate."""
        if pos + 3 <= len(self.data):
            chain = self._chains.setdefault(_hash3(self.data, pos), [])
            chain.append(pos)
            if len(chain) > _MAX_CHAIN:
                del chain[0]

    def longest_match(self, pos: int,
                      min_start: int = 0) -> Optional[Match]:
        """Best match at ``pos`` whose source starts at >= ``min_start``."""
        data, params = self.data, self.params
        limit = min(len(data) - pos, params.max_match)
        if limit < params.min_match or pos + 3 > len(data):
            return None
        window_start = max(min_start, pos - params.window)
        best_len = params.min_match - 1
        best_dist = 0
        for candidate in reversed(self._chains.get(_hash3(data, pos), ())):
            if candidate < window_start:
                break
            length = 0
            while (length < limit
                   and data[candidate + length] == data[pos + length]):
                length += 1
            if length > best_len:
                best_len = length
                best_dist = pos - candidate
                if length >= limit:
                    break
        if best_len >= params.min_match:
            return Match(distance=best_dist, length=best_len)
        return None


class LzssCodec:
    """Encode/decode bytes using the canonical LZSS container."""

    def __init__(self, params: LzParams = DEFAULT_PARAMS, lazy: bool = False):
        self.params = params
        self.lazy = lazy

    # -- encoding -----------------------------------------------------------

    def encode_to_tokens(self, data: bytes) -> list[Token]:
        """Produce the token list for ``data`` (greedy or lazy parse)."""
        finder = MatchFinder(data, self.params)
        tokens: list[Token] = []
        pos = 0
        n = len(data)
        while pos < n:
            match = finder.longest_match(pos)
            if match is not None and self.lazy and pos + 1 < n:
                finder.insert(pos)
                next_match = finder.longest_match(pos + 1)
                if next_match is not None and next_match.length > match.length:
                    # Deferring wins: emit a literal, take the later match.
                    tokens.append(Literal(data[pos]))
                    pos += 1
                    continue
                match_here = match
            else:
                match_here = match
            if match_here is not None:
                tokens.append(match_here)
                for offset in range(match_here.length):
                    finder.insert(pos + offset)
                pos += match_here.length
            else:
                tokens.append(Literal(data[pos]))
                finder.insert(pos)
                pos += 1
        return tokens

    def encode(self, data: bytes) -> bytes:
        """Compress ``data`` into the canonical container."""
        tokens = self.encode_to_tokens(data)
        return tokens_to_bytes(tokens, len(data), self.params)

    # -- decoding ----------------------------------------------------------

    def decode(self, blob: bytes) -> bytes:
        """Decompress a canonical container back to plaintext."""
        tokens, original_length = bytes_to_tokens(blob, self.params)
        out = decode_tokens(tokens)
        if len(out) != original_length:
            raise CompressionError(
                f"decoded {len(out)} bytes, expected {original_length}")
        return out

    def ratio(self, data: bytes) -> float:
        """Achieved compression ratio (original/compressed) on ``data``."""
        if not data:
            return 1.0
        return len(data) / len(self.encode(data))
