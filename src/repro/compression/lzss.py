"""Serial LZSS codec: the library's reference compressor.

A textbook LZSS with a hash-chain match finder.  Greedy parsing by
default; optional lazy matching (one-byte lookahead) squeezes out a
slightly better ratio at a higher search cost, which the CPU cost model
prices accordingly.

This codec defines the canonical compressed format (see
:mod:`~repro.compression.lz_common`), and its decoder is the single
decoder used for *every* producer in the library, including the GPU
segment-parallel path after post-processing.
"""

from __future__ import annotations

import struct
from bisect import bisect_left
from collections import OrderedDict, defaultdict, deque
from typing import Optional

from repro.compression.lz_common import (
    DEFAULT_PARAMS,
    Literal,
    LzParams,
    Match,
    Token,
    bytes_to_tokens,
    common_prefix_length,
    decode_tokens,
    key3_array,
    tokens_to_bytes,
)
from repro.compression.memo import CodecMemo, payload_fingerprint
from repro.errors import CompressionError

#: Bound on hash-chain length; keeps worst-case encode cost linearish.
_MAX_CHAIN = 64


def _new_chain() -> "deque[int]":
    """Chain factory: maxlen evicts the oldest candidate on overflow,
    exactly like the append-then-drop-head list it replaces."""
    return deque(maxlen=_MAX_CHAIN)


class MatchFinder:
    """Hash-chain search for the longest backward match at a position.

    Positions are inserted as the encoder advances; lookups only consider
    candidates no further back than the window and no earlier than
    ``min_start`` (used by the GPU segment path to clamp history to the
    overlap region).

    The table is keyed by the rolling 3-byte key array
    (:func:`~repro.compression.lz_common.key3_array`), computed once for
    the whole buffer.  Callers that build several finders over the same
    buffer (the GPU segment kernel) pass the precomputed array via
    ``keys`` so it is shared rather than rebuilt per segment.
    """

    def __init__(self, data: bytes, params: LzParams = DEFAULT_PARAMS,
                 keys: Optional[list[int]] = None):
        self.data = data
        self.params = params
        self._keys = key3_array(data) if keys is None else keys
        # defaultdict so the hot insert path is a single C-level getitem;
        # lookups that must not create entries go through .get().
        self._chains: "defaultdict[int, deque[int]]" = defaultdict(_new_chain)

    def insert(self, pos: int) -> None:
        """Register ``pos`` as a future match candidate."""
        if pos + 3 <= len(self.data):
            self._chains[self._keys[pos]].append(pos)

    def insert_range(self, start: int, end: int) -> None:
        """Register every position in ``[start, end)`` as a candidate."""
        chains = self._chains
        keys = self._keys
        for pos in range(start, min(end, len(self.data) - 2)):
            chains[keys[pos]].append(pos)

    def best_match(self, pos: int,
                   min_start: int = 0) -> Optional[tuple[int, int]]:
        """``(distance, length)`` of the best match at ``pos``, or None.

        The tuple-returning core of :meth:`longest_match`; the fused
        encoder calls it directly to skip :class:`Match` construction on
        the hot path.
        """
        data, params = self.data, self.params
        n = len(data)
        if pos + 3 > n:
            return None
        limit = n - pos
        if limit > params.max_match:
            limit = params.max_match
        if limit < params.min_match:
            return None
        chain = self._chains.get(self._keys[pos])
        if not chain:
            return None
        window_start = pos - params.window
        if min_start > window_start:
            window_start = min_start
        best_len = params.min_match - 1
        best_dist = 0
        probe = pos + best_len
        cpl = common_prefix_length
        for candidate in reversed(chain):
            if candidate < window_start:
                break
            # A candidate can only improve on best_len if it also matches
            # one byte past the current best — cheap reject before the
            # prefix scan.  Ties never update best, so this preserves the
            # winning (length, distance) pair exactly.
            if data[candidate + best_len] != data[probe]:
                continue
            length = cpl(data, candidate, pos, limit)
            if length > best_len:
                best_len = length
                best_dist = pos - candidate
                if length >= limit:
                    break
                probe = pos + best_len
        if best_dist:
            return (best_dist, best_len)
        return None

    def longest_match(self, pos: int,
                      min_start: int = 0) -> Optional[Match]:
        """Best match at ``pos`` whose source starts at >= ``min_start``."""
        best = self.best_match(pos, min_start)
        if best is None:
            return None
        return Match(distance=best[0], length=best[1])


#: Content-keyed cache of per-key occurrence indexes (same pattern and
#: rationale as :data:`repro.compression.lz_common._KEY3_CACHE`).
_OCC_CACHE: "OrderedDict[bytes, dict[int, list[int]]]" = OrderedDict()
_OCC_CACHE_ENTRIES = 16


def occurrence_index(data: bytes,
                     keys: Optional[list[int]] = None) -> dict[int, list[int]]:
    """Sorted position lists per rolling key, for the whole buffer.

    The shared read-only half of the greedy fast path: built once per
    buffer (and content-cached), it answers "which earlier positions
    share this 3-byte key" for *any* query position via one bisect,
    replacing per-position hash-chain maintenance.  Callers must treat
    the index as read-only.
    """
    if type(data) is bytes:
        cached = _OCC_CACHE.get(data)
        if cached is not None:
            _OCC_CACHE.move_to_end(data)
            return cached
    if keys is None:
        keys = key3_array(data)
    occ: "defaultdict[int, list[int]]" = defaultdict(list)
    for pos, key in enumerate(keys):
        occ[key].append(pos)
    # Freeze: lookups after construction must never create entries.
    occ.default_factory = None
    if type(data) is bytes:
        _OCC_CACHE[data] = occ
        while len(_OCC_CACHE) > _OCC_CACHE_ENTRIES:
            _OCC_CACHE.popitem(last=False)
    return occ


class IndexedMatchFinder:
    """Read-only match finder over a prebuilt occurrence index.

    Byte-identical to driving a :class:`MatchFinder` through the greedy
    insert discipline — every position inserted exactly once, in
    increasing order, before any query at a later position.  Under that
    discipline the bounded chain the incremental finder would hold at a
    query is exactly the last ``_MAX_CHAIN`` occurrences of the key
    below the query position, which the index reads off with one bisect;
    candidates older than the window (or ``min_start``) terminate the
    scan in both implementations, so pre-seeded history that starts
    later than position 0 (the GPU segment overlap) is covered too.

    NOT valid for the lazy parse: its lookahead probe double-inserts
    positions, which shifts chain eviction — lazy keeps the incremental
    finder.
    """

    def __init__(self, data: bytes, params: LzParams = DEFAULT_PARAMS,
                 keys: Optional[list[int]] = None,
                 index: Optional[dict[int, list[int]]] = None):
        self.data = data
        self.params = params
        self._keys = key3_array(data) if keys is None else keys
        self._occ = (occurrence_index(data, self._keys)
                     if index is None else index)
        self._window = params.window
        self._min_match = params.min_match
        self._max_match = params.max_match

    def best_match(self, pos: int,
                   min_start: int = 0) -> Optional[tuple[int, int]]:
        """``(distance, length)`` of the best match at ``pos``, or None."""
        data = self.data
        n = len(data)
        if pos + 3 > n:
            return None
        limit = n - pos
        if limit > self._max_match:
            limit = self._max_match
        if limit < self._min_match:
            return None
        occ_k = self._occ.get(self._keys[pos])
        if occ_k is None:
            return None
        i = bisect_left(occ_k, pos)
        if i == 0:
            return None
        window_start = pos - self._window
        if min_start > window_start:
            window_start = min_start
        stop = i - _MAX_CHAIN
        if stop < 0:
            stop = 0
        best_len = self._min_match - 1
        best_dist = 0
        probe = pos + best_len
        cpl = common_prefix_length
        for idx in range(i - 1, stop - 1, -1):
            candidate = occ_k[idx]
            if candidate < window_start:
                break
            if data[candidate + best_len] != data[probe]:
                continue
            length = cpl(data, candidate, pos, limit)
            if length > best_len:
                best_len = length
                best_dist = pos - candidate
                if length >= limit:
                    break
                probe = pos + best_len
        if best_dist:
            return (best_dist, best_len)
        return None

    def longest_match(self, pos: int,
                      min_start: int = 0) -> Optional[Match]:
        """Best match at ``pos`` whose source starts at >= ``min_start``."""
        best = self.best_match(pos, min_start)
        if best is None:
            return None
        return Match(distance=best[0], length=best[1])


class LzssCodec:
    """Encode/decode bytes using the canonical LZSS container."""

    def __init__(self, params: LzParams = DEFAULT_PARAMS, lazy: bool = False,
                 memo: Optional[CodecMemo] = None):
        self.params = params
        self.lazy = lazy
        self.memo = memo
        # Window geometry and parse strategy change the stream, so they
        # are part of the memo namespace.
        self._memo_tag = (f"lzss/{params.window}/{params.min_match}/"
                          f"{params.max_match}/"
                          f"{'lazy' if lazy else 'greedy'}")

    # -- encoding -----------------------------------------------------------

    def encode_to_tokens(self, data: bytes) -> list[Token]:
        """Produce the token list for ``data`` (greedy or lazy parse)."""
        finder = MatchFinder(data, self.params)
        tokens: list[Token] = []
        pos = 0
        n = len(data)
        while pos < n:
            match = finder.longest_match(pos)
            if match is not None and self.lazy and pos + 1 < n:
                finder.insert(pos)
                next_match = finder.longest_match(pos + 1)
                if next_match is not None and next_match.length > match.length:
                    # Deferring wins: emit a literal, take the later match.
                    tokens.append(Literal(data[pos]))
                    pos += 1
                    continue
                match_here = match
            else:
                match_here = match
            if match_here is not None:
                tokens.append(match_here)
                finder.insert_range(pos, pos + match_here.length)
                pos += match_here.length
            else:
                tokens.append(Literal(data[pos]))
                finder.insert(pos)
                pos += 1
        return tokens

    def encode(self, data: bytes, *,
               fingerprint: Optional[bytes] = None) -> bytes:
        """Compress ``data`` into the canonical container.

        ``fingerprint`` is an optional precomputed content fingerprint
        used as the memo key when a memo is attached.
        """
        if self.memo is not None:
            if fingerprint is None:
                fingerprint = payload_fingerprint(data)
            cached = self.memo.get(self._memo_tag, fingerprint)
            if cached is not None:
                if self.memo.verifier is not None:
                    self.memo.verifier.on_hit(
                        "codec:" + self._memo_tag, cached,
                        lambda: self._encode_fresh(data))
                return cached
        blob = self._encode_fresh(data)
        if self.memo is not None:
            self.memo.put(self._memo_tag, fingerprint, blob)
        return blob

    def _encode_fresh(self, data: bytes) -> bytes:
        """One full encode, bypassing the memo (miss path + verifier)."""
        if self.lazy:
            tokens = self.encode_to_tokens(data)
            return tokens_to_bytes(tokens, len(data), self.params)
        return self._encode_greedy(data)

    def _encode_greedy(self, data: bytes) -> bytes:
        """Greedy parse fused with container packing.

        Byte-identical to ``tokens_to_bytes(self.encode_to_tokens(data),
        ...)`` for the greedy parse — same candidate chains (via
        :class:`IndexedMatchFinder`), same decisions, same 8-token flag
        groups — minus the incremental chain maintenance, the
        intermediate Token objects, and the second serialization pass.
        """
        n = len(data)
        out = bytearray(struct.pack(">I", n))
        if n == 0:
            return bytes(out)
        finder = IndexedMatchFinder(data, self.params)
        best = finder.best_match
        occ = finder._occ
        keys = finder._keys
        min_match = self.params.min_match
        last = n - 3
        append = out.append
        pos = 0
        # One iteration per 8-token flag group; a group is only opened
        # when at least one token follows, which reproduces the grouping
        # (and the no-trailing-flags-byte property) of tokens_to_bytes.
        while pos < n:
            flags = 0
            flag_pos = len(out)
            append(0)  # placeholder for this group's flags byte
            bit = 0
            while bit < 8 and pos < n:
                m = None
                if pos <= last:
                    # occ[keys[pos]] always exists and contains pos; an
                    # earlier occurrence is required for any candidate.
                    if occ[keys[pos]][0] < pos:
                        m = best(pos)
                if m is not None:
                    distance, length = m
                    flags |= 1 << bit
                    d = distance - 1  # 1-based -> 12 bits
                    append((d >> 4) & 0xFF)
                    append(((d & 0x0F) << 4) | ((length - min_match) & 0x0F))
                    pos += length
                else:
                    append(data[pos])
                    pos += 1
                bit += 1
            out[flag_pos] = flags
        return bytes(out)

    # -- decoding ----------------------------------------------------------

    def decode(self, blob: bytes) -> bytes:
        """Decompress a canonical container back to plaintext."""
        tokens, original_length = bytes_to_tokens(blob, self.params)
        out = decode_tokens(tokens)
        if len(out) != original_length:
            raise CompressionError(
                f"decoded {len(out)} bytes, expected {original_length}")
        return out

    def ratio(self, data: bytes) -> float:
        """Achieved compression ratio (original/compressed) on ``data``."""
        if not data:
            return 1.0
        return len(data) / len(self.encode(data))
