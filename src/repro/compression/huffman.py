"""Canonical Huffman entropy coder, and an LZ+entropy combined codec.

The paper's LZ output still carries byte-level redundancy (literal
bytes, skewed length/distance fields); a DEFLATE-style entropy stage on
top is the standard "optional extension" of every LZ storage stack, so
it ships here: a canonical Huffman coder over bytes, plus
:class:`LzssHuffmanCodec`, which entropy-codes the canonical LZSS
container.

Container format (big-endian)::

    [u32 original_length][code-length table][bit stream]

Code-length table: ``u16 n_symbols`` then ``n_symbols`` pairs of
``(u8 symbol, u8 length)``; lengths are canonical, so the table alone
reconstructs the codebook.  Degenerate single-symbol inputs store the
symbol with length 1.
"""

from __future__ import annotations

import heapq
import struct
from collections import Counter
from typing import Optional

from repro.compression.bitio import BitReader, BitWriter
from repro.compression.lzss import LzssCodec
from repro.compression.memo import CodecMemo, payload_fingerprint
from repro.errors import CorruptStreamError

#: Cap on code length so lengths fit comfortably and tables stay sane.
MAX_CODE_LENGTH = 15


def _code_lengths(frequencies: Counter) -> dict[int, int]:
    """Huffman code length per symbol (package-style via a heap)."""
    if not frequencies:
        return {}
    if len(frequencies) == 1:
        return {next(iter(frequencies)): 1}
    # Heap of (weight, tiebreak, symbols-with-depths).
    heap: list[tuple[int, int, list[tuple[int, int]]]] = []
    for tiebreak, (symbol, weight) in enumerate(sorted(
            frequencies.items())):
        heap.append((weight, tiebreak, [(symbol, 0)]))
    heapq.heapify(heap)
    counter = len(heap)
    while len(heap) > 1:
        w1, _t1, s1 = heapq.heappop(heap)
        w2, _t2, s2 = heapq.heappop(heap)
        merged = [(sym, depth + 1) for sym, depth in s1 + s2]
        counter += 1
        heapq.heappush(heap, (w1 + w2, counter, merged))
    lengths = {symbol: depth for symbol, depth in heap[0][2]}
    if max(lengths.values()) > MAX_CODE_LENGTH:
        # Flatten overlong codes; canonical assignment keeps it valid as
        # long as Kraft holds, which this crude clamp preserves by
        # re-running on a flattened distribution.
        flattened = Counter({symbol: max(1, weight >> 3)
                             for symbol, weight in frequencies.items()})
        return _code_lengths(flattened)
    return lengths


def _canonical_codes(lengths: dict[int, int]) -> dict[int, tuple[int, int]]:
    """Symbol -> (code, length), assigned canonically."""
    code = 0
    previous_length = 0
    codes: dict[int, tuple[int, int]] = {}
    for symbol, length in sorted(lengths.items(),
                                 key=lambda item: (item[1], item[0])):
        code <<= (length - previous_length)
        codes[symbol] = (code, length)
        code += 1
        previous_length = length
    return codes


class _DecodeNode:
    __slots__ = ("children", "symbol")

    def __init__(self) -> None:
        self.children: list[Optional["_DecodeNode"]] = [None, None]
        self.symbol: Optional[int] = None


def _decode_tree(lengths: dict[int, int]) -> _DecodeNode:
    root = _DecodeNode()
    for symbol, (code, length) in _canonical_codes(lengths).items():
        node = root
        for bit_index in range(length - 1, -1, -1):
            bit = (code >> bit_index) & 1
            if node.children[bit] is None:
                node.children[bit] = _DecodeNode()
            node = node.children[bit]
            if node.symbol is not None:
                raise CorruptStreamError("code-length table is not "
                                         "prefix-free")
        if node.children[0] or node.children[1]:
            raise CorruptStreamError("code-length table is not prefix-free")
        node.symbol = symbol
    return root


class HuffmanCodec:
    """Canonical Huffman coding over raw bytes."""

    #: Memo namespace — the codec has no tunable parameters.
    _MEMO_TAG = "huffman"

    def __init__(self, memo: Optional[CodecMemo] = None):
        self.memo = memo

    def encode(self, data: bytes, *,
               fingerprint: Optional[bytes] = None) -> bytes:
        """Compress ``data``; empty input yields an empty container.

        ``fingerprint`` is an optional precomputed content fingerprint
        used as the memo key when a memo is attached.
        """
        if self.memo is not None:
            if fingerprint is None:
                fingerprint = payload_fingerprint(data)
            cached = self.memo.get(self._MEMO_TAG, fingerprint)
            if cached is not None:
                if self.memo.verifier is not None:
                    self.memo.verifier.on_hit(
                        "codec:" + self._MEMO_TAG, cached,
                        lambda: self._encode(data))
                return cached
        blob = self._encode(data)
        if self.memo is not None:
            self.memo.put(self._MEMO_TAG, fingerprint, blob)
        return blob

    def _encode(self, data: bytes) -> bytes:
        out = bytearray(struct.pack(">I", len(data)))
        if not data:
            out.extend(struct.pack(">H", 0))
            return bytes(out)
        lengths = _code_lengths(Counter(data))
        codes = _canonical_codes(lengths)
        out.extend(struct.pack(">H", len(lengths)))
        for symbol in sorted(lengths):
            out.append(symbol)
            out.append(lengths[symbol])
        writer = BitWriter()
        for byte in data:
            code, length = codes[byte]
            writer.write_bits(code, length)
        out.extend(writer.getvalue())
        return bytes(out)

    def decode(self, blob: bytes) -> bytes:
        """Decompress a container produced by :meth:`encode`."""
        if len(blob) < 6:
            raise CorruptStreamError("container shorter than its header")
        (original_length,) = struct.unpack(">I", blob[:4])
        (n_symbols,) = struct.unpack(">H", blob[4:6])
        if original_length == 0:
            return b""
        if n_symbols == 0:
            raise CorruptStreamError("no codebook for non-empty payload")
        table_end = 6 + 2 * n_symbols
        if len(blob) < table_end:
            raise CorruptStreamError("container truncated in codebook")
        lengths: dict[int, int] = {}
        for i in range(n_symbols):
            symbol = blob[6 + 2 * i]
            length = blob[7 + 2 * i]
            if not 1 <= length <= MAX_CODE_LENGTH:
                raise CorruptStreamError(
                    f"invalid code length {length} for symbol {symbol}")
            if symbol in lengths:
                raise CorruptStreamError(f"duplicate symbol {symbol}")
            lengths[symbol] = length
        root = _decode_tree(lengths)
        reader = BitReader(blob[table_end:])
        out = bytearray()
        while len(out) < original_length:
            node = root
            while node.symbol is None:
                bit = reader.read_bit()
                node = node.children[bit]
                if node is None:
                    raise CorruptStreamError("invalid code in bit stream")
            out.append(node.symbol)
        return bytes(out)

    def ratio(self, data: bytes) -> float:
        """Achieved ratio (original/compressed) on ``data``."""
        if not data:
            return 1.0
        return len(data) / len(self.encode(data))


class LzssHuffmanCodec:
    """DEFLATE-style two-stage codec: LZSS matching + Huffman entropy.

    Plugs into everything that accepts a codec (e.g.
    :class:`~repro.storage.volume.ReducedVolume`); typically squeezes a
    further 10-25% out of the LZSS container on text-like data.
    """

    def __init__(self, lazy: bool = True, memo: Optional[CodecMemo] = None):
        self._lz = LzssCodec(lazy=lazy)
        self._entropy = HuffmanCodec()
        self.memo = memo
        self._memo_tag = f"lzss-huffman/{'lazy' if lazy else 'greedy'}"

    def encode(self, data: bytes, *,
               fingerprint: Optional[bytes] = None) -> bytes:
        """Compress: LZ stage then entropy stage.

        ``fingerprint`` is an optional precomputed content fingerprint
        used as the memo key when a memo is attached — it memoizes the
        whole two-stage product, so a hit skips both stages.
        """
        if self.memo is not None:
            if fingerprint is None:
                fingerprint = payload_fingerprint(data)
            cached = self.memo.get(self._memo_tag, fingerprint)
            if cached is not None:
                if self.memo.verifier is not None:
                    self.memo.verifier.on_hit(
                        "codec:" + self._memo_tag, cached,
                        lambda: self._entropy.encode(
                            self._lz.encode(data)))
                return cached
        blob = self._entropy.encode(self._lz.encode(data))
        if self.memo is not None:
            self.memo.put(self._memo_tag, fingerprint, blob)
        return blob

    def decode(self, blob: bytes) -> bytes:
        """Decompress: entropy stage then LZ stage."""
        return self._lz.decode(self._entropy.decode(blob))

    def ratio(self, data: bytes) -> float:
        """Achieved ratio (original/compressed) on ``data``."""
        if not data:
            return 1.0
        return len(data) / len(self.encode(data))
