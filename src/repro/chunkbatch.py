"""Array-native chunk windows for the batched functional plane.

The per-chunk functional plane pays a Python frame, a dataclass
``__init__`` and a ``__post_init__`` validation per chunk — measurable
at descriptor-mode benchmark scale, where millions of chunks are pure
accounting.  A :class:`ChunkBatch` holds one *window* of chunks as
contiguous arrays (numpy ``int64`` offsets/sizes plus object columns
for payloads/fingerprints), validates the whole window once, and
materializes slotted :class:`~repro.types.Chunk` objects through a
hoisted fast constructor that skips the per-instance re-validation.

Invariant (DESIGN.md §12): a materialized window is *element-wise
equal* to the chunks the per-chunk path would have produced — batching
here is a layout change, never a semantic one.  REP504 patrols the
modules of this plane for regressions to per-chunk loops.

The module sits beside :mod:`repro.types` (not under ``repro.core``) so
the workload generators can emit batches without importing the core
package — ``repro.core.calibration`` imports the workload layer, and a
batch container inside ``repro.core`` would close an import cycle.
"""

from __future__ import annotations

from itertools import islice
from typing import Iterable, Iterator, Optional, Sequence

import numpy as np

from repro.errors import ConfigError
from repro.types import Chunk, FINGERPRINT_BYTES

__all__ = ["ChunkBatch", "iter_windows"]

#: Reusable empty columns for descriptor-only / payload-only windows.
_chunk_new = Chunk.__new__


class ChunkBatch:
    """One contiguous window of chunk descriptors.

    ``offsets`` and ``sizes`` are ``int64`` numpy arrays; ``payloads``,
    ``fingerprints`` and ``comp_ratios`` are per-chunk object columns
    (``None`` entries follow the same payload/descriptor-mode rules as
    :class:`~repro.types.Chunk`).
    """

    __slots__ = ("offsets", "sizes", "payloads", "fingerprints",
                 "comp_ratios")

    def __init__(self, offsets: np.ndarray, sizes: np.ndarray,
                 payloads: Sequence[Optional[bytes]],
                 fingerprints: Sequence[Optional[bytes]],
                 comp_ratios: Sequence[Optional[float]],
                 validate: bool = True):
        self.offsets = offsets
        self.sizes = sizes
        self.payloads = payloads
        self.fingerprints = fingerprints
        self.comp_ratios = comp_ratios
        if validate:
            self.validate()

    def __len__(self) -> int:
        return len(self.sizes)

    # -- construction -------------------------------------------------------

    @classmethod
    def from_chunks(cls, chunks: Sequence[Chunk]) -> "ChunkBatch":
        """Column-split an already-validated chunk sequence."""
        offsets = np.fromiter((c.offset for c in chunks), dtype=np.int64,
                              count=len(chunks))
        sizes = np.fromiter((c.size for c in chunks), dtype=np.int64,
                            count=len(chunks))
        return cls(offsets, sizes,
                   [c.payload for c in chunks],
                   [c.fingerprint for c in chunks],
                   [c.comp_ratio for c in chunks],
                   validate=False)

    # -- whole-window validation (hoisted Chunk.__post_init__) ---------------

    def validate(self) -> None:
        """One pass of the per-chunk ``__post_init__`` checks."""
        n = len(self.sizes)
        if not (len(self.offsets) == len(self.payloads)
                == len(self.fingerprints) == len(self.comp_ratios) == n):
            raise ConfigError("ragged chunk-batch columns")
        if n == 0:
            return
        if int(self.sizes.min()) <= 0:
            bad = int(self.sizes[self.sizes <= 0][0])
            raise ConfigError(f"invalid chunk size {bad}")
        if int(self.offsets.min()) < 0:
            bad = int(self.offsets[self.offsets < 0][0])
            raise ConfigError(f"invalid chunk offset {bad}")
        sizes = self.sizes.tolist()
        for payload, size in zip(self.payloads, sizes):
            if payload is not None and len(payload) != size:
                raise ConfigError(
                    f"payload length {len(payload)} != size {size}")
        for fingerprint in self.fingerprints:
            if fingerprint is not None \
                    and len(fingerprint) != FINGERPRINT_BYTES:
                raise ConfigError(
                    f"fingerprint must be {FINGERPRINT_BYTES} bytes")

    # -- materialization ----------------------------------------------------

    def materialize(self) -> list[Chunk]:
        """Slotted :class:`Chunk` objects, element-wise equal to the
        per-chunk construction of the same descriptors.

        Validation already ran over the whole window, so the fast
        constructor skips ``__post_init__``; ``tolist()`` converts the
        numpy scalars back to plain ints so downstream accounting sums
        (and JSON report serialization) see native Python integers.
        """
        new = _chunk_new
        out = []
        append = out.append
        for offset, size, payload, fingerprint, comp_ratio in zip(
                self.offsets.tolist(), self.sizes.tolist(),
                self.payloads, self.fingerprints, self.comp_ratios):
            chunk = new(Chunk)
            chunk.offset = offset
            chunk.size = size
            chunk.payload = payload
            chunk.fingerprint = fingerprint
            chunk.comp_ratio = comp_ratio
            chunk.is_duplicate = None
            chunk.compressed_size = None
            chunk.tenant = None
            append(chunk)
        return out


def iter_windows(chunks: Iterable[Chunk],
                 window: int) -> Iterator[list[Chunk]]:
    """Successive ``window``-sized lists from a chunk iterable.

    The batched feeder's materialization step: pulling a window up
    front lets the functional passes (hashing, codec dispatch) run once
    per window instead of once per chunk, while admission below stays
    strictly per-chunk (the timed plane is untouched).
    """
    if window < 1:
        raise ConfigError(f"invalid window size {window}")
    iterator = iter(chunks)
    while True:
        out = list(islice(iterator, window))
        if not out:
            return
        yield out
