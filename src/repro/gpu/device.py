"""The timed GPU device: command queue, launch overheads, kernel timing.

:class:`GpuDevice` serializes work through a single in-order command queue
(the 2012-era OpenCL runtime the paper's testbed used had exactly that
behaviour), charges a fixed launch overhead plus a host sync overhead per
kernel, prices PCIe transfers through :class:`~repro.gpu.pcie.PcieLink`,
and converts each kernel's :class:`~repro.gpu.kernel.KernelCost` into
simulated time using the device's lane count, occupancy, clock and memory
bandwidth.

The in-order queue is a load-bearing modelling choice: when deduplication
*and* compression both use the GPU (integration mode ``GPU_BOTH``),
latency-sensitive index lookups queue behind multi-millisecond compression
batches — the contention that makes ``GPU_COMP`` the winning mode in the
paper's Fig. 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

import numpy as np

from repro.errors import ConfigError
from repro.gpu.kernel import Kernel, KernelCost
from repro.gpu.memory import DeviceBuffer, DeviceMemory
from repro.gpu.pcie import PCIE2_X16, PcieLink, PcieSpec
from repro.obs.stages import TRACK_GPU_QUEUE
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.sim import Environment, Resource
from repro.sim.resources import PriorityResource


@dataclass(frozen=True)
class GpuSpec:
    """Static description of a GPU."""

    name: str
    compute_units: int
    lanes_per_cu: int
    freq_hz: float
    mem_bandwidth_bps: float
    mem_capacity_bytes: int
    #: Fixed host-side cost to get a kernel running (driver + doorbell).
    launch_overhead_s: float
    #: Fixed host-visible completion cost (sync, event readback).
    sync_overhead_s: float
    #: Fraction of theoretical lanes a real-world kernel keeps busy
    #: (register pressure, scheduling gaps).
    occupancy: float = 0.25

    def __post_init__(self) -> None:
        if min(self.compute_units, self.lanes_per_cu) < 1:
            raise ConfigError("invalid lane geometry")
        if min(self.freq_hz, self.mem_bandwidth_bps,
               self.mem_capacity_bytes) <= 0:
            raise ConfigError("invalid rates/capacity")
        if not 0.0 < self.occupancy <= 1.0:
            raise ConfigError(f"invalid occupancy {self.occupancy}")
        if min(self.launch_overhead_s, self.sync_overhead_s) < 0:
            raise ConfigError("negative overheads")

    @property
    def total_lanes(self) -> int:
        """Raw SIMD lane count."""
        return self.compute_units * self.lanes_per_cu

    @property
    def effective_lanes(self) -> float:
        """Lanes the timing model assumes are doing useful work."""
        return self.total_lanes * self.occupancy


#: The paper's testbed GPU (Tahiti XT: 32 CUs x 64 lanes @ 925 MHz, 3 GiB).
RADEON_HD_7970 = GpuSpec(
    name="AMD Radeon HD 7970",
    compute_units=32,
    lanes_per_cu=64,
    freq_hz=925e6,
    mem_bandwidth_bps=264e9,
    mem_capacity_bytes=3 * 1024**3,
    launch_overhead_s=55e-6,
    sync_overhead_s=65e-6,
    occupancy=0.25,
)


@dataclass
class LaunchRecord:
    """One completed kernel launch, for traces and utilization reports."""

    name: str
    submit_time: float
    start_time: float
    end_time: float
    queue_wait: float
    kernel_time: float


class GpuDevice:
    """A GPU attached to a simulation environment."""

    def __init__(self, env: Environment, spec: GpuSpec = RADEON_HD_7970,
                 pcie: Optional[PcieSpec] = None, name: str = "gpu",
                 priority_queue: bool = False,
                 tracer: Tracer = NULL_TRACER):
        self.env = env
        self.spec = spec
        self.name = name
        self.tracer = tracer
        #: Priority scheduling on the command queue is the extension
        #: experiment A13 studies; the paper's 2012-era runtime is the
        #: plain in-order queue (the default).
        self.priority_queue = priority_queue
        if priority_queue:
            self.queue = PriorityResource(env, capacity=1,
                                          name=f"{name}-queue")
        else:
            self.queue = Resource(env, capacity=1, name=f"{name}-queue")
        self.memory = DeviceMemory(spec.mem_capacity_bytes)
        self.pcie = PcieLink(pcie or PCIE2_X16)
        self.launches: list[LaunchRecord] = []
        self.kernels_launched = 0

    # -- timing ------------------------------------------------------------

    def kernel_time(self, cost: KernelCost) -> float:
        """Simulated execution time of a kernel with the given footprint."""
        lanes = min(self.spec.effective_lanes, float(cost.threads))
        compute = cost.lane_cycles_total / (lanes * self.spec.freq_hz)
        memory = (cost.bytes_read + cost.bytes_written) / \
            self.spec.mem_bandwidth_bps
        critical = cost.critical_path_cycles / self.spec.freq_hz
        return max(compute, memory, critical)

    def launch_time(self, kernel: Kernel) -> float:
        """End-to-end time of one launch excluding queueing: overheads,
        PCIe in, kernel, PCIe out."""
        return (self.spec.launch_overhead_s
                + self.pcie.transfer_time(kernel.bytes_in())
                + self.kernel_time(kernel.cost())
                + self.pcie.transfer_time(kernel.bytes_out())
                + self.spec.sync_overhead_s)

    # -- simulation processes ------------------------------------------------

    def launch(self, kernel: Kernel, priority: int = 0) -> Generator:
        """Process body: run ``kernel`` through the command queue.

        ``priority`` orders *waiting* launches on a priority queue
        (lower = sooner); ignored on the default in-order queue.
        Returns the kernel's functional result.  Usage::

            result = yield from gpu.launch(my_kernel)
        """
        submit = self.env.now
        request = (self.queue.request(priority) if self.priority_queue
                   else self.queue.request())
        with request as req:
            yield req
            start = self.env.now
            # Run the functional half first: kernels may refine their cost
            # estimate with measured execution statistics (e.g. SIMT
            # divergence), and the timing below should use the refined cost.
            result = kernel.execute()
            duration = self.launch_time(kernel)
            self.pcie.record(kernel.bytes_in(), to_device=True)
            self.pcie.record(kernel.bytes_out(), to_device=False)
            yield self.env.timeout(duration)
            self.kernels_launched += 1
            record = LaunchRecord(
                name=kernel.name,
                submit_time=submit,
                start_time=start,
                end_time=self.env.now,
                queue_wait=start - submit,
                kernel_time=duration,
            )
            self.launches.append(record)
            if self.tracer.enabled:
                # Occupancy span only ([start, end]); the submit->start
                # wait would overlap the previous launch's slice on the
                # serialized queue track, so it rides along as an attr.
                attrs = kernel.describe()
                attrs["queue_wait_s"] = record.queue_wait
                attrs["priority"] = priority
                self.tracer.record(
                    kernel.name, None, start=start,
                    end=record.end_time, resource=TRACK_GPU_QUEUE,
                    attrs=attrs)
        return result

    def transfer_to_device(self, buffer: DeviceBuffer,
                           array: np.ndarray) -> Generator:
        """Process body: timed host-to-device copy into ``buffer``."""
        with self.queue.request() as req:
            yield req
            yield self.env.timeout(self.pcie.transfer_time(array.nbytes))
            buffer.write(array)
            self.pcie.record(array.nbytes, to_device=True)

    def transfer_from_device(self, buffer: DeviceBuffer) -> Generator:
        """Process body: timed device-to-host copy out of ``buffer``.

        Returns the buffer contents.
        """
        with self.queue.request() as req:
            yield req
            data = buffer.read()
            yield self.env.timeout(self.pcie.transfer_time(data.nbytes))
            self.pcie.record(data.nbytes, to_device=False)
        return data

    # -- reporting --------------------------------------------------------

    def utilization(self, until: Optional[float] = None) -> float:
        """Fraction of time the command queue was busy."""
        return self.queue.monitor.utilization(until)

    def mean_queue_wait(self) -> float:
        """Mean time launches spent waiting behind other work."""
        if not self.launches:
            return 0.0
        return sum(l.queue_wait for l in self.launches) / len(self.launches)

    def __repr__(self) -> str:
        return (f"<GpuDevice {self.spec.name}: {self.spec.compute_units} CUs, "
                f"{self.kernels_launched} launches>")
