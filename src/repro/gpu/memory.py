"""Device-memory model: a tracking allocator for GPU buffers.

The allocator enforces the device's capacity (the HD 7970 has 3 GiB) and
keeps usage statistics.  Buffer *contents* live host-side in numpy arrays —
the simulation runs on one machine — but the ownership discipline mirrors a
real device: host code must go through an explicit PCIe transfer (timed by
:class:`~repro.gpu.pcie.PcieLink`) before a kernel may read the data.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import GpuMemoryError


class DeviceBuffer:
    """A single allocation in device global memory."""

    def __init__(self, memory: "DeviceMemory", nbytes: int, label: str):
        self._memory = memory
        self.nbytes = nbytes
        self.label = label
        self.freed = False
        #: Host-side backing store; set by transfers or kernel writes.
        self.data: Optional[np.ndarray] = None
        #: True once host data has been transferred in (or a kernel wrote it).
        self.valid = False

    def write(self, array: np.ndarray) -> None:
        """Install host data into the buffer (call after a timed transfer)."""
        self._check_alive()
        if array.nbytes > self.nbytes:
            raise GpuMemoryError(
                f"{self.label}: writing {array.nbytes} B into a "
                f"{self.nbytes} B buffer")
        self.data = array
        self.valid = True

    def read(self) -> np.ndarray:
        """Fetch the buffer contents (call after a timed transfer out)."""
        self._check_alive()
        if not self.valid or self.data is None:
            raise GpuMemoryError(f"{self.label}: reading an unwritten buffer")
        return self.data

    def free(self) -> None:
        """Release the allocation back to the device."""
        self._check_alive()
        self._memory._release(self)
        self.freed = True
        self.data = None
        self.valid = False

    def _check_alive(self) -> None:
        if self.freed:
            raise GpuMemoryError(f"{self.label}: use after free")

    def __repr__(self) -> str:
        state = "freed" if self.freed else ("valid" if self.valid else "raw")
        return f"<DeviceBuffer {self.label}: {self.nbytes} B, {state}>"


class DeviceMemory:
    """Global-memory allocator with capacity enforcement and statistics."""

    def __init__(self, capacity_bytes: int):
        if capacity_bytes <= 0:
            raise GpuMemoryError(f"invalid capacity: {capacity_bytes}")
        self.capacity_bytes = capacity_bytes
        self.used_bytes = 0
        self.peak_bytes = 0
        self.live_buffers: list[DeviceBuffer] = []
        self.total_allocs = 0

    def alloc(self, nbytes: int, label: str = "buffer") -> DeviceBuffer:
        """Allocate ``nbytes`` of global memory."""
        if nbytes <= 0:
            raise GpuMemoryError(f"{label}: invalid allocation size {nbytes}")
        if self.used_bytes + nbytes > self.capacity_bytes:
            raise GpuMemoryError(
                f"{label}: out of device memory "
                f"({self.used_bytes + nbytes} > {self.capacity_bytes} B)")
        buffer = DeviceBuffer(self, nbytes, label)
        self.live_buffers.append(buffer)
        self.used_bytes += nbytes
        self.peak_bytes = max(self.peak_bytes, self.used_bytes)
        self.total_allocs += 1
        return buffer

    def _release(self, buffer: DeviceBuffer) -> None:
        if buffer not in self.live_buffers:
            raise GpuMemoryError(f"{buffer.label}: double free")
        self.live_buffers.remove(buffer)
        self.used_bytes -= buffer.nbytes

    @property
    def free_bytes(self) -> int:
        """Bytes still available on the device."""
        return self.capacity_bytes - self.used_bytes

    def __repr__(self) -> str:
        return (f"<DeviceMemory {self.used_bytes}/{self.capacity_bytes} B "
                f"used, {len(self.live_buffers)} buffers>")
