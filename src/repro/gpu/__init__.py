"""Simulated GPU substrate.

The paper offloads indexing and compression to a Radeon HD 7970.  No GPU
is available in this environment, so this package provides a *functional +
timed* device model (see DESIGN.md §2):

* **Functional**: kernels in :mod:`repro.gpu.kernels` are written against a
  SIMT execution API (:mod:`repro.gpu.simt`) — grids, workgroups, threads,
  local memory, barriers — and really compute their results (index hit/miss
  pairs, LZ matches, fingerprints).
* **Timed**: each kernel also reports a :class:`~repro.gpu.kernel.KernelCost`
  (lane cycles, critical-path cycles, bytes moved), from which
  :class:`~repro.gpu.device.GpuDevice` derives simulated execution time,
  including the fixed kernel-launch latency that drives the paper's
  "CPU indexing beats GPU indexing" result, and the PCIe transfer costs
  that make batching matter.

The device serializes launches through a single command queue, which is
what creates the dedup/compression contention the paper's integration
experiment (Fig. 2) is about.
"""

from repro.gpu.device import GpuDevice, GpuSpec, RADEON_HD_7970
from repro.gpu.kernel import Kernel, KernelCost
from repro.gpu.memory import DeviceBuffer, DeviceMemory
from repro.gpu.pcie import PcieLink, PcieSpec
from repro.gpu.simt import SimtGrid, ThreadCtx, WorkgroupCtx

__all__ = [
    "GpuDevice",
    "GpuSpec",
    "RADEON_HD_7970",
    "Kernel",
    "KernelCost",
    "DeviceBuffer",
    "DeviceMemory",
    "PcieLink",
    "PcieSpec",
    "SimtGrid",
    "ThreadCtx",
    "WorkgroupCtx",
]
