"""PCIe transfer cost model.

The paper's first GPU consideration (§3.1(2)) is that "the data used for
the calculation must be transferred from the system memory to the GPU
device memory".  This module prices those transfers: a fixed per-transfer
setup latency (DMA descriptor, doorbell, completion interrupt) plus a
bandwidth term.  Small transfers are latency-bound, which — together with
kernel-launch overhead — is why tiny inline batches favour the CPU.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class PcieSpec:
    """Static description of the host-device link."""

    name: str
    #: Effective (not theoretical) one-direction bandwidth in bytes/second.
    bandwidth_bps: float
    #: Fixed per-transfer latency in seconds.
    setup_latency_s: float

    def __post_init__(self) -> None:
        if self.bandwidth_bps <= 0:
            raise ConfigError(f"invalid bandwidth: {self.bandwidth_bps}")
        if self.setup_latency_s < 0:
            raise ConfigError(f"invalid latency: {self.setup_latency_s}")


#: PCIe 2.0 x16 as the HD 7970 testbed would see it (~6 GB/s effective).
PCIE2_X16 = PcieSpec(name="PCIe 2.0 x16", bandwidth_bps=6.0e9,
                     setup_latency_s=8e-6)


class PcieLink:
    """Transfer-time calculator plus traffic accounting."""

    def __init__(self, spec: PcieSpec = PCIE2_X16):
        self.spec = spec
        self.bytes_to_device = 0
        self.bytes_from_device = 0
        self.transfer_count = 0

    def transfer_time(self, nbytes: int) -> float:
        """Seconds to move ``nbytes`` one way across the link."""
        if nbytes < 0:
            raise ConfigError(f"negative transfer size: {nbytes}")
        if nbytes == 0:
            return 0.0
        return self.spec.setup_latency_s + nbytes / self.spec.bandwidth_bps

    def record(self, nbytes: int, to_device: bool) -> None:
        """Account a completed transfer for the traffic report."""
        self.transfer_count += 1
        if to_device:
            self.bytes_to_device += nbytes
        else:
            self.bytes_from_device += nbytes

    def __repr__(self) -> str:
        return (f"<PcieLink {self.spec.name}: "
                f"{self.bytes_to_device} B in / "
                f"{self.bytes_from_device} B out>")
