"""Kernel framework: functional execution plus a timing cost report.

A :class:`Kernel` bundles the two halves of the substitution described in
DESIGN.md: :meth:`Kernel.execute` really computes the kernel's output on
the host (usually via :class:`~repro.gpu.simt.SimtGrid` or a vectorized
numpy equivalent), and :meth:`Kernel.cost` reports the resource footprint
from which :class:`~repro.gpu.device.GpuDevice` derives simulated time.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any

from repro.errors import KernelError


@dataclass(frozen=True, slots=True)
class KernelCost:
    """Resource footprint of one kernel launch.

    The device turns this into a duration as::

        time = max(compute, memory, critical_path)

        compute       = lane_cycles_total / (effective lanes * freq)
        memory        = (bytes_read + bytes_written) / device bandwidth
        critical_path = critical_path_cycles / freq      (latency floor)

    ``critical_path_cycles`` is the longest *serial* chain any single
    thread executes; small launches cannot beat it no matter how many
    lanes are idle, which is exactly why tiny inline index batches lose
    to the CPU in the paper's preliminary experiment.
    """

    name: str
    threads: int
    lane_cycles_total: float
    critical_path_cycles: float
    bytes_read: float
    bytes_written: float

    def __post_init__(self) -> None:
        if self.threads <= 0:
            raise KernelError(f"{self.name}: no threads")
        if min(self.lane_cycles_total, self.critical_path_cycles,
               self.bytes_read, self.bytes_written) < 0:
            raise KernelError(f"{self.name}: negative cost component")


class Kernel(ABC):
    """A launchable GPU kernel: functional output + cost estimate."""

    # Slot-free base so slotted subclasses really drop their __dict__;
    # unslotted subclasses still get one automatically.
    __slots__ = ()

    #: Human-readable kernel name used in traces and error messages.
    name: str = "kernel"

    @abstractmethod
    def execute(self) -> Any:
        """Run the kernel functionally and return its result."""

    @abstractmethod
    def cost(self) -> KernelCost:
        """Estimate the launch's resource footprint for the timing model."""

    #: Bytes that must cross PCIe to the device before launch.
    def bytes_in(self) -> int:
        return 0

    #: Bytes that must cross PCIe back to the host after launch.
    def bytes_out(self) -> int:
        return 0

    def describe(self) -> dict[str, Any]:
        """Trace attributes for one launch of this kernel."""
        return {
            "kernel": self.name,
            "bytes_in": self.bytes_in(),
            "bytes_out": self.bytes_out(),
        }
