"""Linear-bin fingerprint lookup kernel (paper §3.1(2)).

The GPU keeps each bin as a *linear table* rather than a tree: one thread
per lookup scans its whole bin with coalesced, branch-free compares (a
tree walk would diverge and scatter loads).  The kernel returns, for each
query, the matching slot number or -1 — the paper's "index number and a
hit/miss information pair".  All other chunk metadata stays in host
memory, so the result pairs are the only traffic back across PCIe.

The scan is deliberately *not* cut short on a hit: real SIMT code would
pay for the full bin anyway because the wavefront's other lanes keep
scanning.  The cost model charges the full scan for the same reason.

Two functional execution paths compute identical results:

* vectorized numpy (default; used by the timed pipeline), and
* a per-thread SIMT path through :class:`~repro.gpu.simt.SimtGrid`
  (``use_simt=True``), which exercises the same workgroup geometry a real
  kernel would use and feeds the divergence statistics tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

import numpy as np

from repro.errors import KernelError
from repro.gpu.costs import DEFAULT_GPU_COSTS, GpuKernelCosts
from repro.gpu.kernel import Kernel, KernelCost
from repro.gpu.simt import SimtGrid

#: Bytes shipped to the device per query: bin id (u4) + suffix (u8 x 2).
QUERY_BYTES = 20
#: Bytes returned per query: slot number + hit flag packed in 8 bytes.
RESULT_BYTES = 8


@dataclass(slots=True)
class LookupBatch:
    """A batch of fingerprint lookups, one per GPU thread."""

    bin_ids: np.ndarray   # u4, shape (n,)
    lo: np.ndarray        # u8, shape (n,)
    hi: np.ndarray        # u8, shape (n,)

    def __post_init__(self) -> None:
        n = len(self.bin_ids)
        if len(self.lo) != n or len(self.hi) != n:
            raise KernelError("query component lengths disagree")
        if n == 0:
            raise KernelError("empty lookup batch")

    def __len__(self) -> int:
        return len(self.bin_ids)

    @classmethod
    def from_queries(
            cls, queries: Sequence[tuple[int, int, int]]) -> "LookupBatch":
        """Build a batch from (bin_id, suffix_lo, suffix_hi) triples."""
        n = len(queries)
        if n == 0:
            return cls(bin_ids=np.empty(0, dtype=np.uint32),
                       lo=np.empty(0, dtype=np.uint64),
                       hi=np.empty(0, dtype=np.uint64))
        # One C-level conversion pass instead of three generator sweeps.
        arr = np.asarray(queries, dtype=np.uint64).reshape(n, 3)
        return cls(bin_ids=arr[:, 0].astype(np.uint32),
                   lo=np.ascontiguousarray(arr[:, 1]),
                   hi=np.ascontiguousarray(arr[:, 2]))

    @classmethod
    def from_arrays(cls, bin_ids: np.ndarray, lo: np.ndarray,
                    hi: np.ndarray) -> "LookupBatch":
        """Build a batch from pre-decomposed query component arrays."""
        return cls(bin_ids=np.ascontiguousarray(bin_ids, dtype=np.uint32),
                   lo=np.ascontiguousarray(lo, dtype=np.uint64),
                   hi=np.ascontiguousarray(hi, dtype=np.uint64))


class BinLookupKernel(Kernel):
    """One launch of the linear-bin lookup over a query batch.

    ``table`` maps bin id to ``(lo_array, hi_array, count)`` where the
    arrays are the bin's device-resident linear storage and ``count`` is
    the number of valid leading slots.
    """

    name = "bin_lookup"

    __slots__ = ("batch", "table", "costs", "use_simt",
                 "workgroup_size", "_entries_scanned",
                 "_longest_bin", "_cost_cache")

    def __init__(self, batch: LookupBatch,
                 table: Mapping[int, tuple[np.ndarray, np.ndarray, int]],
                 costs: GpuKernelCosts = DEFAULT_GPU_COSTS,
                 use_simt: bool = False,
                 workgroup_size: int = 64):
        self.batch = batch
        self.table = table
        self.costs = costs
        self.use_simt = use_simt
        self.workgroup_size = workgroup_size
        self._entries_scanned: Optional[int] = None
        self._longest_bin: Optional[int] = None
        self._cost_cache: Optional[KernelCost] = None

    # -- functional execution ------------------------------------------------

    def execute(self) -> np.ndarray:
        """Return an i8 array of slot numbers (-1 for miss) per query."""
        if self.use_simt:
            return self._execute_simt()
        return self._execute_vectorized()

    def _bin_view(self, bin_id: int) -> tuple[np.ndarray, np.ndarray, int]:
        entry = self.table.get(int(bin_id))
        if entry is None:
            return (np.empty(0, dtype=np.uint64),
                    np.empty(0, dtype=np.uint64), 0)
        return entry

    def _execute_vectorized(self) -> np.ndarray:
        n = len(self.batch)
        slots = np.full(n, -1, dtype=np.int64)
        scanned = 0
        bin_ids = self.batch.bin_ids
        qlo = self.batch.lo
        qhi = self.batch.hi
        # Group queries by bin so each bin's compare runs once per batch;
        # the group boundaries come from one C-level neighbour compare.
        order = np.argsort(bin_ids, kind="stable")
        sorted_bins = bin_ids[order]
        starts = np.nonzero(
            np.r_[True, sorted_bins[1:] != sorted_bins[:-1]])[0]
        ends = np.append(starts[1:], n)
        for s, e in zip(starts.tolist(), ends.tolist()):
            idx = order[s:e]
            lo_arr, hi_arr, count = self._bin_view(int(sorted_bins[s]))
            scanned += count * (e - s)
            if count:
                valid_lo = lo_arr[:count]
                valid_hi = hi_arr[:count]
                # One 2-D broadcast compare for the whole group; argmax
                # picks the first matching slot, as the scan order did.
                eq = (valid_lo[None, :] == qlo[idx, None]) \
                    & (valid_hi[None, :] == qhi[idx, None])
                hit_any = eq.any(axis=1)
                if hit_any.any():
                    slots[idx[hit_any]] = eq[hit_any].argmax(axis=1)
        self._entries_scanned = scanned
        return slots

    def _execute_simt(self) -> np.ndarray:
        n = len(self.batch)
        slots = np.full(n, -1, dtype=np.int64)
        scanned = [0]
        batch = self.batch

        def kernel_fn(ctx):
            qi = ctx.global_id
            if qi >= n:
                return
            lo_arr, hi_arr, count = self._bin_view(int(batch.bin_ids[qi]))
            # Branch-free full scan, exactly what the device would run.
            for slot in range(count):
                ctx.work(1)
                if lo_arr[slot] == batch.lo[qi] and \
                        hi_arr[slot] == batch.hi[qi] and slots[qi] < 0:
                    slots[qi] = slot
            scanned[0] += count

        wg = self.workgroup_size
        global_size = ((n + wg - 1) // wg) * wg
        SimtGrid(global_size=global_size, local_size=wg).run(kernel_fn)
        self._entries_scanned = scanned[0]
        return slots

    # -- timing -------------------------------------------------------------

    def _scanned(self) -> int:
        if self._entries_scanned is None:
            # Cost may be requested before execution (the device prices the
            # launch up front); derive the scan volume from the table once,
            # walking each distinct bin a single time.
            uniq, counts = np.unique(self.batch.bin_ids, return_counts=True)
            self._entries_scanned = sum(
                self._bin_view(int(bid))[2] * int(reps)
                for bid, reps in zip(uniq, counts))
        return self._entries_scanned

    def cost(self) -> KernelCost:
        # The batch and table view are fixed per launch, so the price is
        # derived once and memoized: cost-before-execute == cost-after.
        if self._cost_cache is not None:
            return self._cost_cache
        scanned = self._scanned()
        n = len(self.batch)
        if self._longest_bin is None:
            self._longest_bin = max(
                (self._bin_view(int(bid))[2]
                 for bid in np.unique(self.batch.bin_ids)),
                default=0)
        c = self.costs
        self._cost_cache = KernelCost(
            name=self.name,
            threads=n,
            lane_cycles_total=(scanned * c.index_entry_lane_cycles
                               + n * c.index_fixed_lane_cycles),
            critical_path_cycles=(self._longest_bin
                                  * c.index_entry_latency_cycles),
            bytes_read=scanned * c.index_entry_bytes,
            bytes_written=n * RESULT_BYTES,
        )
        return self._cost_cache

    def bytes_in(self) -> int:
        return len(self.batch) * QUERY_BYTES

    def bytes_out(self) -> int:
        return len(self.batch) * RESULT_BYTES
