"""GPU kernels: functional output plus timing cost reports.

* :mod:`~repro.gpu.kernels.indexing` — linear-bin fingerprint lookup, the
  GPU side of bin-based deduplication (paper §3.1(2)).
* :mod:`~repro.gpu.kernels.lz` — segment-parallel LZ match search with
  overlapping history windows, the GPU side of compression (paper §3.2(2)).
* :mod:`~repro.gpu.kernels.sha1` — batched chunk fingerprinting, available
  as a co-processor path for the hashing stage.
"""

from repro.gpu.kernels.indexing import BinLookupKernel, LookupBatch
from repro.gpu.kernels.indexing_tiled import TiledBinLookupKernel
from repro.gpu.kernels.lz import DescriptorLzKernel, SegmentLzKernel
from repro.gpu.kernels.sha1 import Sha1Kernel

__all__ = [
    "BinLookupKernel",
    "LookupBatch",
    "TiledBinLookupKernel",
    "DescriptorLzKernel",
    "SegmentLzKernel",
    "Sha1Kernel",
]
