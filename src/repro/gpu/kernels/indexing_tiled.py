"""Workgroup-tiled bin lookup: the paper's local-memory variant.

§3.1(2): "This continuous data layout is useful when utilizing the GPU's
local memory.  This is because copying data from GPU global memory to
local memory can be done naturally if the thread accesses the data
continuously."

Where :class:`~repro.gpu.kernels.indexing.BinLookupKernel` has every
thread stream its bin from *global* memory, this variant assigns one
workgroup per bin: the workgroup's threads cooperatively stage the bin
into local memory tile by tile (coalesced — each thread copies one
entry per round), barrier, then every thread compares its own queries
against the tile.  Global traffic drops from ``queries x bin_size`` to
``bin_size`` per bin, at the cost of a barrier per tile.

Functionally identical to the simple kernel (tests assert it); the cost
model reflects the smaller global footprint and the cheaper (local)
compares, making this the kernel of choice once several queries share a
bin per batch.
"""

from __future__ import annotations

from typing import Mapping, Optional

import numpy as np

from repro.errors import KernelError
from repro.gpu.costs import DEFAULT_GPU_COSTS, GpuKernelCosts
from repro.gpu.kernel import Kernel, KernelCost
from repro.gpu.kernels.indexing import (
    LookupBatch,
    QUERY_BYTES,
    RESULT_BYTES,
)
from repro.gpu.simt import SimtGrid

#: Local-memory compares cost far less than dependent global loads.
LOCAL_COMPARE_CYCLES = 6.0
#: Cycles to stage one entry global -> local (coalesced copy slot).
STAGE_CYCLES_PER_ENTRY = 10.0
#: Barrier cost per tile round, per thread.
BARRIER_CYCLES = 40.0


class TiledBinLookupKernel(Kernel):
    """One workgroup per bin, bins staged through local memory."""

    name = "bin_lookup_tiled"

    __slots__ = ("batch", "table", "costs", "workgroup_size",
                 "tile_entries", "use_simt", "_by_bin",
                 "_entries_staged", "_cost_cache")

    def __init__(self, batch: LookupBatch,
                 table: Mapping[int, tuple[np.ndarray, np.ndarray, int]],
                 costs: GpuKernelCosts = DEFAULT_GPU_COSTS,
                 workgroup_size: int = 64,
                 tile_entries: int = 256,
                 use_simt: bool = False):
        if tile_entries < 1:
            raise KernelError(f"invalid tile size {tile_entries}")
        self.batch = batch
        self.table = table
        self.costs = costs
        self.workgroup_size = workgroup_size
        self.tile_entries = tile_entries
        self.use_simt = use_simt
        # Group query indices by bin: one workgroup handles one bin.
        self._by_bin: dict[int, list[int]] = {}
        for qi, bin_id in enumerate(batch.bin_ids.tolist()):
            self._by_bin.setdefault(bin_id, []).append(qi)
        self._entries_staged: Optional[int] = None
        self._cost_cache: Optional[KernelCost] = None

    # -- functional execution ------------------------------------------------

    def _bin_view(self, bin_id: int) -> tuple[np.ndarray, np.ndarray, int]:
        entry = self.table.get(bin_id)
        if entry is None:
            return (np.empty(0, dtype=np.uint64),
                    np.empty(0, dtype=np.uint64), 0)
        return entry

    def execute(self) -> np.ndarray:
        if self.use_simt:
            return self._execute_simt()
        return self._execute_vectorized()

    def _execute_vectorized(self) -> np.ndarray:
        slots = np.full(len(self.batch), -1, dtype=np.int64)
        staged = 0
        qlo = self.batch.lo
        qhi = self.batch.hi
        for bin_id, query_indices in self._by_bin.items():
            lo_arr, hi_arr, count = self._bin_view(bin_id)
            staged += count
            if not count:
                continue
            valid_lo = lo_arr[:count]
            valid_hi = hi_arr[:count]
            # One 2-D broadcast compare per bin (the whole workgroup's
            # queries at once); argmax picks the first matching slot.
            idx = np.asarray(query_indices)
            eq = (valid_lo[None, :] == qlo[idx, None]) \
                & (valid_hi[None, :] == qhi[idx, None])
            hit_any = eq.any(axis=1)
            if hit_any.any():
                slots[idx[hit_any]] = eq[hit_any].argmax(axis=1)
        self._entries_staged = staged
        return slots

    def _execute_simt(self) -> np.ndarray:
        """Cooperative staging with real barriers through the executor."""
        slots = np.full(len(self.batch), -1, dtype=np.int64)
        bins = list(self._by_bin.items())
        staged_total = [0]
        batch = self.batch
        wg = self.workgroup_size

        def kernel_fn(ctx):
            group_bin = bins[ctx.group.group_id]
            bin_id, query_indices = group_bin
            lo_arr, hi_arr, count = self._bin_view(bin_id)
            tile = self.tile_entries
            for tile_start in range(0, max(count, 1), tile):
                tile_end = min(count, tile_start + tile)
                # Cooperative, coalesced staging: thread t copies
                # entries tile_start+t, tile_start+t+wg, ...
                local_lo = ctx.group.local_mem.setdefault("lo", {})
                local_hi = ctx.group.local_mem.setdefault("hi", {})
                for j in range(tile_start + ctx.local_id, tile_end, wg):
                    local_lo[j] = lo_arr[j]
                    local_hi[j] = hi_arr[j]
                    ctx.work(1)
                    if ctx.local_id == 0:
                        staged_total[0] += 1
                yield  # barrier: the tile is fully staged
                # Each thread scans the tile for its own queries.
                for qi in query_indices[ctx.local_id::wg]:
                    for j in range(tile_start, tile_end):
                        ctx.work(1)
                        if (local_lo[j] == batch.lo[qi]
                                and local_hi[j] == batch.hi[qi]
                                and slots[qi] < 0):
                            slots[qi] = j
                yield  # barrier: done with the tile, safe to overwrite

        if bins:
            SimtGrid(global_size=len(bins) * wg,
                     local_size=wg).run(kernel_fn)
        # local_id==0 misses entries other lanes staged; recount exactly.
        self._entries_staged = sum(self._bin_view(b)[2]
                                   for b, _q in bins)
        return slots

    # -- timing -------------------------------------------------------------

    def _staged(self) -> int:
        if self._entries_staged is None:
            self._entries_staged = sum(
                self._bin_view(bin_id)[2] for bin_id in self._by_bin)
        return self._entries_staged

    def cost(self) -> KernelCost:
        # Batch and table view are fixed per launch: derive once, memoize.
        if self._cost_cache is not None:
            return self._cost_cache
        staged = self._staged()  # each bin read from global ONCE
        n = len(self.batch)
        compares = 0
        longest_bin = 0
        for bin_id, qis in self._by_bin.items():
            count = self._bin_view(bin_id)[2]
            compares += count * len(qis)
            if count > longest_bin:
                longest_bin = count
        tiles = -(-max(longest_bin, 1) // self.tile_entries)
        c = self.costs
        lane_cycles = (staged * STAGE_CYCLES_PER_ENTRY
                       + compares * LOCAL_COMPARE_CYCLES
                       + n * c.index_fixed_lane_cycles
                       + tiles * BARRIER_CYCLES * n)
        # Critical path: stage one tile (amortized across the workgroup)
        # plus scan it locally, per tile.
        per_tile = (self.tile_entries * STAGE_CYCLES_PER_ENTRY
                    / self.workgroup_size
                    + self.tile_entries * LOCAL_COMPARE_CYCLES
                    + BARRIER_CYCLES)
        self._cost_cache = KernelCost(
            name=self.name,
            threads=len(self._by_bin) * self.workgroup_size,
            lane_cycles_total=lane_cycles,
            critical_path_cycles=tiles * per_tile,
            bytes_read=staged * c.index_entry_bytes,
            bytes_written=n * RESULT_BYTES,
        )
        return self._cost_cache

    def bytes_in(self) -> int:
        return len(self.batch) * QUERY_BYTES

    def bytes_out(self) -> int:
        return len(self.batch) * RESULT_BYTES
