"""Segment-parallel LZ match-search kernel (paper §3.2(2)).

Ozsoy et al.'s GPU LZ assumes inputs large enough to feed the whole
device; a 4 KiB storage chunk is not.  The paper's answer — implemented
here — is to compress *many chunks at once* and to put *multiple threads
on each chunk*: the chunk is cut into segments, every thread runs an LZ
match search over its own segment, and adjacent threads overlap by the
history-window size so matches may reach back across the segment seam.

The kernel's output is deliberately *raw*: per-segment token lists that
have not been stitched into a single valid stream ("The GPU's compression
results are not refined in GPU due to performance issues").  The CPU-side
refinement lives in :mod:`repro.compression.postprocess`.

Two kernel classes share one cost model:

* :class:`SegmentLzKernel` — payload mode: really searches matches (via
  the same :class:`~repro.compression.lzss.MatchFinder` the CPU codec
  uses, clamped to the segment + overlap), optionally through the SIMT
  executor so divergence is *measured*.
* :class:`DescriptorLzKernel` — descriptor mode for large timed runs:
  no payload, synthetic output sizes from the workload's compression
  ratio, analytic divergence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.compression.lz_common import (
    DEFAULT_PARAMS,
    Literal,
    LzParams,
    Match,
    Token,
    key3_array,
)
from repro.compression.lzss import IndexedMatchFinder, occurrence_index
from repro.errors import KernelError
from repro.gpu.costs import DEFAULT_GPU_COSTS, GpuKernelCosts
from repro.gpu.kernel import Kernel, KernelCost
from repro.gpu.simt import SimtGrid, SimtStats


def _lz_cost(name: str, threads: int, total_bytes: int, segment_bytes: int,
             costs: GpuKernelCosts,
             measured: Optional[SimtStats] = None) -> KernelCost:
    """Shared cost formula for both LZ kernel flavours.

    With measured SIMT statistics, lane cycles are charged for the slots a
    lockstep wavefront actually burns; otherwise the analytic divergence
    factor stands in.
    """
    if measured is not None and measured.wavefront_slot_units > 0:
        # slot_units = lane-slots a lockstep wavefront burns, so the
        # intra-wavefront imbalance is already *measured*; only the
        # per-lane branch serialization factor remains analytic.
        lane_cycles = (measured.wavefront_slot_units
                       * costs.lz_work_unit_cycles
                       * costs.lz_lane_serial_factor)
    else:
        lane_cycles = (total_bytes * costs.lz_work_unit_cycles
                       * costs.lz_divergence_factor)
    return KernelCost(
        name=name,
        threads=threads,
        lane_cycles_total=lane_cycles + threads * costs.lz_fixed_lane_cycles,
        critical_path_cycles=segment_bytes * costs.lz_critical_cycles_per_byte,
        bytes_read=total_bytes * costs.lz_bytes_read_factor,
        bytes_written=total_bytes,  # raw, unrefined match records
    )


@dataclass
class SegmentOutput:
    """Raw output of one segment thread: tokens covering [start, end)."""

    chunk_index: int
    segment_index: int
    start: int
    end: int
    tokens: list[Token]


class SegmentLzKernel(Kernel):
    """Payload-mode segment-parallel LZ search over a batch of chunks."""

    name = "segment_lz"

    def __init__(self, chunks: Sequence[bytes], segments_per_chunk: int = 8,
                 params: LzParams = DEFAULT_PARAMS,
                 costs: GpuKernelCosts = DEFAULT_GPU_COSTS,
                 use_simt: bool = False,
                 workgroup_size: int = 64):
        if not chunks:
            raise KernelError("empty chunk batch")
        if segments_per_chunk < 1:
            raise KernelError(
                f"invalid segment count {segments_per_chunk}")
        self.chunks = list(chunks)
        self.segments_per_chunk = segments_per_chunk
        self.params = params
        self.costs = costs
        self.use_simt = use_simt
        self.workgroup_size = workgroup_size
        self._stats: Optional[SimtStats] = None

    # -- functional execution ------------------------------------------------

    def _segment_bounds(self, chunk: bytes,
                        segment_index: int) -> tuple[int, int]:
        seg_len = max(1, (len(chunk) + self.segments_per_chunk - 1)
                      // self.segments_per_chunk)
        start = segment_index * seg_len
        end = min(len(chunk), start + seg_len)
        return start, end

    def _search_segment(self, chunk: bytes, start: int, end: int,
                        work_hook=None,
                        keys: Optional[list[int]] = None,
                        index: Optional[dict] = None) -> list[Token]:
        """Greedy LZ parse of chunk[start:end] with overlap history.

        The finder sees exactly the history a per-segment incremental
        finder would have been seeded with — the ``window`` bytes before
        the segment (the overlap region the paper describes) plus every
        position already parsed — so matches may reference backwards
        across the seam; they are valid in the final sequential stream
        because the decoder has full history by then.

        ``keys``/``index`` are the chunk's precomputed rolling-key array
        and occurrence index, shared read-only by every segment thread
        over the same chunk.  Each thread's *candidate chains* are still
        private as far as the output is concerned: the index reproduces
        the bounded chain each thread's own finder would hold (see
        :class:`~repro.compression.lzss.IndexedMatchFinder`).
        """
        finder = IndexedMatchFinder(chunk, self.params,
                                    keys=keys, index=index)
        best = finder.best_match
        tokens: list[Token] = []
        append = tokens.append
        pos = start
        while pos < end:
            if work_hook is not None:
                work_hook(1)
            m = best(pos)
            if m is not None and pos + m[1] <= end:
                append(Match(distance=m[0], length=m[1]))
                pos += m[1]
            else:
                append(Literal(chunk[pos]))
                pos += 1
        return tokens

    def execute(self) -> list[list[SegmentOutput]]:
        """Return raw per-segment outputs, grouped by chunk."""
        n_threads = len(self.chunks) * self.segments_per_chunk
        outputs: list[list[Optional[SegmentOutput]]] = [
            [None] * self.segments_per_chunk for _ in self.chunks]
        # One rolling-key array and occurrence index per chunk, shared
        # read-only by all its segment threads (computed lazily so idle
        # grid slots pay nothing).
        shared: dict[int, tuple[list[int], dict]] = {}

        def run_thread(thread_id: int, work_hook=None) -> None:
            chunk_index, segment_index = divmod(
                thread_id, self.segments_per_chunk)
            chunk = self.chunks[chunk_index]
            start, end = self._segment_bounds(chunk, segment_index)
            if start >= end:
                # Chunk shorter than the segment grid: this thread idles,
                # exactly like a real kernel's out-of-range guard.
                return
            state = shared.get(chunk_index)
            if state is None:
                keys = key3_array(chunk)
                state = shared[chunk_index] = (
                    keys, occurrence_index(chunk, keys))
            tokens = self._search_segment(chunk, start, end, work_hook,
                                          state[0], state[1])
            outputs[chunk_index][segment_index] = SegmentOutput(
                chunk_index=chunk_index, segment_index=segment_index,
                start=start, end=end, tokens=tokens)

        if self.use_simt:
            wg = self.workgroup_size
            global_size = ((n_threads + wg - 1) // wg) * wg

            def kernel_fn(ctx):
                if ctx.global_id < n_threads:
                    run_thread(ctx.global_id, work_hook=ctx.work)

            self._stats = SimtGrid(
                global_size=global_size, local_size=wg).run(kernel_fn)
        else:
            for thread_id in range(n_threads):
                run_thread(thread_id)
        return [list(filter(None, per_chunk)) for per_chunk in outputs]

    # -- timing -------------------------------------------------------------

    def cost(self) -> KernelCost:
        total = sum(len(c) for c in self.chunks)
        longest = max(len(c) for c in self.chunks)
        segment_bytes = (longest + self.segments_per_chunk - 1) \
            // self.segments_per_chunk
        return _lz_cost(self.name,
                        len(self.chunks) * self.segments_per_chunk,
                        total, segment_bytes, self.costs, self._stats)

    def bytes_in(self) -> int:
        return sum(len(c) for c in self.chunks)

    def bytes_out(self) -> int:
        # Raw token records flow back for CPU refinement; roughly half the
        # input volume for typical primary-storage data.
        return sum(len(c) for c in self.chunks) // 2


class DescriptorLzKernel(Kernel):
    """Descriptor-mode LZ kernel for large timed runs (no payloads).

    ``chunk_ratios`` carries the workload generator's per-chunk achieved
    compression ratio; the kernel's synthetic result is the compressed
    size each chunk would have.
    """

    name = "segment_lz"

    def __init__(self, chunk_sizes: Sequence[int],
                 chunk_ratios: Sequence[float],
                 segments_per_chunk: int = 8,
                 costs: GpuKernelCosts = DEFAULT_GPU_COSTS):
        if not chunk_sizes:
            raise KernelError("empty chunk batch")
        if len(chunk_sizes) != len(chunk_ratios):
            raise KernelError("sizes/ratios length mismatch")
        if segments_per_chunk < 1:
            raise KernelError(f"invalid segment count {segments_per_chunk}")
        self.chunk_sizes = list(chunk_sizes)
        self.chunk_ratios = [max(1.0, r) for r in chunk_ratios]
        self.segments_per_chunk = segments_per_chunk
        self.costs = costs

    def execute(self) -> list[int]:
        """Synthetic compressed sizes implied by the workload's ratios."""
        return [max(1, int(size / ratio)) for size, ratio
                in zip(self.chunk_sizes, self.chunk_ratios)]

    def cost(self) -> KernelCost:
        total = sum(self.chunk_sizes)
        longest = max(self.chunk_sizes)
        segment_bytes = (longest + self.segments_per_chunk - 1) \
            // self.segments_per_chunk
        return _lz_cost(self.name,
                        len(self.chunk_sizes) * self.segments_per_chunk,
                        total, segment_bytes, self.costs)

    def bytes_in(self) -> int:
        return sum(self.chunk_sizes)

    def bytes_out(self) -> int:
        return sum(self.chunk_sizes) // 2
