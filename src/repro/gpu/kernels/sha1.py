"""Batched SHA-1 fingerprint kernel.

Hashing is the embarrassingly parallel dedup stage ("there is no data
dependency between chunks"), so a GPU co-processor path for it exists
even though the default scheduler keeps hashing on the CPU.  One thread
hashes one chunk; SHA-1's rounds are strictly sequential *within* a
chunk, which sets the kernel's latency floor.
"""

from __future__ import annotations

import hashlib
from typing import Sequence

from repro.errors import KernelError
from repro.gpu.costs import DEFAULT_GPU_COSTS, GpuKernelCosts
from repro.gpu.kernel import Kernel, KernelCost

#: SHA-1 digest size in bytes.
DIGEST_BYTES = 20


class Sha1Kernel(Kernel):
    """One launch hashing a batch of chunks, one thread per chunk."""

    name = "sha1"

    def __init__(self, chunks: Sequence[bytes],
                 costs: GpuKernelCosts = DEFAULT_GPU_COSTS):
        if not chunks:
            raise KernelError("empty chunk batch")
        self.chunks = list(chunks)
        self.costs = costs

    def execute(self) -> list[bytes]:
        """Return the SHA-1 digest of every chunk, in order."""
        return [hashlib.sha1(chunk).digest() for chunk in self.chunks]

    def cost(self) -> KernelCost:
        total = sum(len(c) for c in self.chunks)
        longest = max(len(c) for c in self.chunks)
        c = self.costs
        return KernelCost(
            name=self.name,
            threads=len(self.chunks),
            lane_cycles_total=(total * c.sha1_lane_cycles_per_byte
                               + len(self.chunks) * c.sha1_fixed_lane_cycles),
            critical_path_cycles=longest * c.sha1_critical_cycles_per_byte,
            bytes_read=float(total),
            bytes_written=float(len(self.chunks) * DIGEST_BYTES),
        )

    def bytes_in(self) -> int:
        return sum(len(c) for c in self.chunks)

    def bytes_out(self) -> int:
        return len(self.chunks) * DIGEST_BYTES
