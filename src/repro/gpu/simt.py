"""Functional SIMT execution model.

Kernels are written as per-thread Python callables taking a
:class:`ThreadCtx`.  :class:`SimtGrid` executes them with OpenCL-style
geometry: a global range split into workgroups, each workgroup sharing a
local-memory dict and synchronizing at barriers.

Two kinds of kernel function are supported:

* a plain function — runs to completion, no barriers;
* a generator — every ``yield`` is a workgroup barrier; the executor runs
  all threads of a workgroup phase by phase and raises if threads disagree
  on the number of barriers (barrier divergence, illegal on real devices).

Threads report their dynamic work with :meth:`ThreadCtx.work`.  The
executor aggregates work per *wavefront* (64 consecutive threads on GCN)
and computes wavefront efficiency = mean/max work per wavefront — the
SIMT-divergence proxy the timing model and the paper's design discussion
(§3.1(2): "many branch operations can degrade computational performance")
care about.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import KernelError


@dataclass
class SimtStats:
    """Aggregate statistics from one grid execution."""

    threads: int = 0
    workgroups: int = 0
    barriers: int = 0
    work_units: float = 0.0
    #: Sum over wavefronts of (max thread work in wavefront).
    wavefront_slot_units: float = 0.0

    @property
    def wavefront_efficiency(self) -> float:
        """mean/max work ratio across wavefronts (1.0 = no divergence).

        On a SIMT device a wavefront occupies its lanes for as long as its
        *slowest* lane works, so charged slots are ``sum(max)`` while useful
        work is ``sum(total)/width``.
        """
        if self.wavefront_slot_units == 0:
            return 1.0
        return self.work_units / (self.wavefront_slot_units or 1.0)


class WorkgroupCtx:
    """Shared state of one workgroup: id, size, local memory."""

    def __init__(self, group_id: int, local_size: int):
        self.group_id = group_id
        self.local_size = local_size
        #: OpenCL ``__local`` memory: shared scratch, visible after barriers.
        self.local_mem: dict[str, Any] = {}


class ThreadCtx:
    """Per-thread execution context handed to kernel functions."""

    def __init__(self, global_id: int, local_id: int, group: WorkgroupCtx,
                 stats: SimtStats):
        self.global_id = global_id
        self.local_id = local_id
        self.group = group
        self._stats = stats
        self.work_done = 0.0

    def work(self, units: float) -> None:
        """Report ``units`` of dynamic work (used for divergence stats)."""
        if units < 0:
            raise KernelError("negative work units")
        self.work_done += units
        self._stats.work_units += units


class SimtGrid:
    """Executes a kernel function over an OpenCL-style ND-range (1D)."""

    def __init__(self, global_size: int, local_size: int,
                 wavefront_width: int = 64):
        if global_size <= 0:
            raise KernelError(f"invalid global size {global_size}")
        if local_size <= 0 or global_size % local_size != 0:
            raise KernelError(
                f"global size {global_size} is not a multiple of "
                f"local size {local_size}")
        if wavefront_width <= 0:
            raise KernelError(f"invalid wavefront width {wavefront_width}")
        self.global_size = global_size
        self.local_size = local_size
        self.wavefront_width = wavefront_width

    def run(self, kernel_fn: Callable[..., Any], *args: Any) -> SimtStats:
        """Execute ``kernel_fn(ctx, *args)`` for every thread in the range."""
        stats = SimtStats(threads=self.global_size,
                          workgroups=self.global_size // self.local_size)
        is_generator = inspect.isgeneratorfunction(kernel_fn)
        for group_id in range(stats.workgroups):
            group = WorkgroupCtx(group_id, self.local_size)
            threads = [
                ThreadCtx(group_id * self.local_size + lid, lid, group, stats)
                for lid in range(self.local_size)
            ]
            if is_generator:
                self._run_group_phased(kernel_fn, threads, args, stats)
            else:
                for ctx in threads:
                    kernel_fn(ctx, *args)
            self._account_wavefronts(threads, stats)
        return stats

    def _run_group_phased(self, kernel_fn: Callable[..., Any],
                          threads: list[ThreadCtx], args: tuple,
                          stats: SimtStats) -> None:
        generators = [kernel_fn(ctx, *args) for ctx in threads]
        live = list(range(len(generators)))
        phase = 0
        while live:
            finished: list[int] = []
            paused: list[int] = []
            for idx in live:
                try:
                    next(generators[idx])
                    paused.append(idx)
                except StopIteration:
                    finished.append(idx)
            if paused and finished:
                raise KernelError(
                    f"barrier divergence in workgroup at phase {phase}: "
                    f"{len(paused)} threads hit a barrier while "
                    f"{len(finished)} finished")
            if paused:
                stats.barriers += 1
            live = paused
            phase += 1

    def _account_wavefronts(self, threads: list[ThreadCtx],
                            stats: SimtStats) -> None:
        # Lockstep lanes: a wavefront occupies every one of its lanes for as
        # long as its slowest lane works, so it burns peak * lane_count slots.
        width = self.wavefront_width
        for start in range(0, len(threads), width):
            wave = threads[start:start + width]
            peak = max(t.work_done for t in wave)
            stats.wavefront_slot_units += peak * len(wave)
