"""GPU kernel cost constants.

Per-kernel cycle/byte constants used by the kernels in
:mod:`repro.gpu.kernels` to build their :class:`~repro.gpu.kernel.KernelCost`
reports.  As with :mod:`repro.cpu.costs`, these are calibration constants:
DESIGN.md §6 explains how they were pinned against the paper's anchors.

Two constants deserve a note:

* ``index_entry_latency_cycles`` — the *serial* per-entry cost of the
  linear bin scan.  A thread walks its bin with dependent loads; local
  memory tiling hides part but not all of the latency.  This term creates
  the per-launch floor that makes small inline index batches lose to the
  CPU (paper §3.1(3)).
* ``lz_divergence_factor`` — LZ byte-matching is the SIMT worst case:
  every lane takes data-dependent branches, so a wavefront's lanes
  serialize heavily.  In payload mode the SIMT executor *measures* the
  inefficiency; in descriptor mode (large timed runs) this factor stands
  in for the measurement.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class GpuKernelCosts:
    """Cycle constants for the GPU-side kernels."""

    # -- bin-lookup (indexing) kernel ---------------------------------------
    #: Throughput lane-cycles per bin entry scanned.
    index_entry_lane_cycles: float = 40.0
    #: Serial per-entry cycles on one thread's scan (critical path term).
    index_entry_latency_cycles: float = 200.0
    #: Fixed lane-cycles per lookup (setup, result write).
    index_fixed_lane_cycles: float = 2_000.0
    #: Bytes of table data read per entry scanned.
    index_entry_bytes: float = 24.0

    # -- segment-parallel LZ kernel -----------------------------------------
    #: Useful lane-cycles per byte-step of match search.
    lz_work_unit_cycles: float = 25.0
    #: Wavefront serialization multiplier assumed in descriptor mode
    #: (intra-wavefront imbalance x per-lane branch serialization).
    lz_divergence_factor: float = 36.0
    #: Per-lane branch-serialization multiplier applied when the SIMT
    #: executor has *measured* the wavefront imbalance (payload mode).
    lz_lane_serial_factor: float = 27.0
    #: Device-memory bytes touched per input byte during search.
    lz_bytes_read_factor: float = 3.0
    #: Serial cycles per byte on one segment thread's critical path.
    lz_critical_cycles_per_byte: float = 300.0
    #: Fixed lane-cycles per segment thread.
    lz_fixed_lane_cycles: float = 1_500.0

    # -- SHA-1 fingerprint kernel --------------------------------------------
    #: Lane-cycles per byte hashed (SHA-1 vectorizes well on GCN).
    sha1_lane_cycles_per_byte: float = 8.0
    #: Fixed lane-cycles per chunk hashed.
    sha1_fixed_lane_cycles: float = 1_200.0
    #: Serial cycles per byte on one chunk's hash chain (SHA-1 rounds are
    #: strictly sequential within a chunk).
    sha1_critical_cycles_per_byte: float = 12.0

    def with_overrides(self, **kwargs: float) -> "GpuKernelCosts":
        """Return a copy with the given constants replaced."""
        return replace(self, **kwargs)


#: Calibrated default table (see DESIGN.md §6 and EXPERIMENTS.md).
DEFAULT_GPU_COSTS = GpuKernelCosts()
