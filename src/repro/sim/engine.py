"""Core discrete-event simulation engine.

The engine is deliberately small but complete: events with callbacks, a
binary-heap event calendar, generator-based processes, timeouts, process
interrupts, and ``AllOf``/``AnyOf`` condition events.  The public surface
mirrors SimPy closely enough that anyone who has read SimPy code can read
the timed components of this library.

Determinism: given the same process structure, two runs produce identical
schedules.  Ties in time are broken first by an explicit integer priority
and then by insertion order, never by object identity.

Hot path: zero-delay events (``succeed()``, process termination,
``Initialize``) dominate pipeline runs, so they bypass the heap entirely
and go onto per-priority run queues (plain deques) serviced under the
same global (time, priority, insertion-order) key as the calendar — see
DESIGN.md §7 for the invariants.  ``Event``/``Timeout``/``Process`` are
``__slots__`` classes and ``Timeout`` inlines its scheduling, because
event allocation is the next-largest cost after heap churn.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Generator, Iterable, Optional

from repro.errors import SanitizerError, SimulationError

#: Default scheduling priority.  Lower values fire earlier at equal times.
NORMAL = 1
#: Priority used for events that must fire before normal ones at equal times.
URGENT = 0

_PENDING = object()


class Interrupt(Exception):
    """Thrown into a process that another process interrupted.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A happening that processes can wait on.

    An event starts *pending*; it becomes *triggered* when scheduled with a
    value (or an exception) and *processed* once its callbacks have run.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok = True
        #: Set when a failure value was consumed by a waiting process, so the
        #: engine does not complain about an unhandled failure.
        self._defused = False

    @property
    def triggered(self) -> bool:
        """True once the event has a value and is on (or past) the calendar."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once the event's callbacks have been executed."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        if not self.triggered:
            raise SimulationError("event value not yet available")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or the exception it failed with)."""
        if self._value is _PENDING:
            raise SimulationError("event value not yet available")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        env = self.env
        env._eid += 1
        env._normal.append((env._eid, self))
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed with ``exception``."""
        if self.triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError(f"{exception!r} is not an exception")
        self._ok = False
        self._value = exception
        self.env._schedule(self, NORMAL, 0.0)
        return self

    def _trigger_now(self, value: Any = None) -> None:
        """Trigger successfully and run callbacks synchronously.

        Fast-path internal: skips the calendar entirely, so it is only
        safe from inside another event's callback chain, where the
        engine is already dispatching at the current time — the waiter
        resumes exactly where a zero-delay follow-up event would have
        resumed it, minus the run-queue hop.
        """
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        callbacks, self.callbacks = self.callbacks, None
        for callback in callbacks:
            callback(self)

    def __repr__(self) -> str:
        state = "processed" if self.processed else (
            "triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at 0x{id(self):x}>"


class Timeout(Event):
    """An event that fires ``delay`` time units after it is created."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay!r}")
        # Event.__init__ and _schedule are inlined: Timeout creation is
        # the hottest allocation site in timed pipeline runs.
        self.env = env
        self.callbacks = []
        self._value = value
        self._ok = True
        self._defused = False
        self.delay = delay
        env._eid += 1
        if delay == 0.0:
            env._normal.append((env._eid, self))
        else:
            heapq.heappush(env._queue,
                           (env._now + delay, NORMAL, env._eid, self))


class Initialize(Event):
    """Internal event used to start a process at its creation time."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process"):
        super().__init__(env)
        self._ok = True
        self._value = None
        self.callbacks.append(process._resume)
        env._schedule(self, URGENT, 0.0)


class Process(Event):
    """A generator-based simulation process.

    The wrapped generator yields :class:`Event` instances.  The process is
    itself an event that triggers with the generator's return value, so
    processes can wait on other processes.
    """

    __slots__ = ("_generator", "_target")

    def __init__(self, env: "Environment", generator: Generator):
        if not hasattr(generator, "throw"):
            raise SimulationError(
                f"{generator!r} is not a generator — did you call the "
                "process function?")
        super().__init__(env)
        self._generator = generator
        env._alive_processes += 1
        self._target: Optional[Event] = Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return self._value is _PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if not self.is_alive:
            raise SimulationError(f"{self!r} has terminated; cannot interrupt")
        if self is self.env.active_process:
            raise SimulationError("a process cannot interrupt itself")
        event = Event(self.env)
        event._ok = False
        event._value = Interrupt(cause)
        event._defused = True
        event.callbacks.append(self._resume)
        self.env._schedule(event, URGENT, 0.0)
        # Stop listening to whatever we were waiting for; we are resumed by
        # the interrupt event instead.  The old target may still fire — the
        # stale callback is removed so it cannot resume us twice.
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._target = None

    def _resume(self, event: Event) -> None:
        self.env._active_process = self
        while True:
            try:
                if event._ok:
                    next_event = self._generator.send(event._value)
                else:
                    event._defused = True
                    exc = event._value
                    next_event = self._generator.throw(exc)
            except StopIteration as stop:
                self._ok = True
                self._value = stop.value
                self.env._alive_processes -= 1
                self.env._schedule(self, NORMAL, 0.0)
                break
            except BaseException as exc:
                self._ok = False
                self._value = exc
                self._defused = False
                self.env._alive_processes -= 1
                self.env._schedule(self, NORMAL, 0.0)
                break

            if not isinstance(next_event, Event):
                exc = SimulationError(
                    f"process yielded a non-event: {next_event!r}")
                event = Event(self.env)
                event._ok = False
                event._value = exc
                event._defused = True
                continue

            if next_event.callbacks is not None:
                # Event not yet processed: wait for it.
                next_event.callbacks.append(self._resume)
                self._target = next_event
                break
            # Event already processed: feed its value back immediately.
            event = next_event

        self.env._active_process = None


class _Condition(Event):
    """Base for AllOf / AnyOf composite events."""

    __slots__ = ("_events", "_count")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self._events = list(events)
        self._count = 0
        for event in self._events:
            if event.env is not env:
                raise SimulationError("cannot mix events from different envs")
        if self._satisfied():
            self.succeed(self._collect())
            return
        for event in self._events:
            if event.callbacks is None:
                # Already processed before the condition was created.
                self._observe(event)
            else:
                event.callbacks.append(self._observe)

    def _observe(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self._count += 1
        if self._satisfied():
            self.succeed(self._collect())

    def _satisfied(self) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError

    def _collect(self) -> dict[Event, Any]:
        # Only events whose callbacks have run count as fired; a Timeout
        # carries its value from creation but has not happened yet.
        return {e: e._value for e in self._events
                if e.callbacks is None and e._ok}


class AllOf(_Condition):
    """Event that fires once *all* of the given events have fired."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._count >= len(self._events)


class AnyOf(_Condition):
    """Event that fires once *any* of the given events has fired."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._count >= 1 or not self._events


class Environment:
    """The simulation environment: clock plus event calendar.

    Two run queues front the heap calendar: events scheduled with zero
    delay land on ``_urgent`` (priority :data:`URGENT`) or ``_normal``
    (priority :data:`NORMAL`) and are serviced without any ``heapq``
    traffic.  Every entry on a run queue carries time ``now`` by
    construction, so the clock can only advance off the heap once both
    run queues are empty — :meth:`step` merges the three sources under
    the exact (time, priority, insertion-order) key the heap alone used
    to enforce.
    """

    __slots__ = ("_now", "_queue", "_urgent", "_normal", "_eid",
                 "_active_process", "_trace", "_finishables",
                 "_alive_processes")

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, int, Event]] = []
        #: Zero-delay run queues; entries are (eid, event) at time `now`.
        self._urgent: deque[tuple[int, Event]] = deque()
        self._normal: deque[tuple[int, Event]] = deque()
        self._eid = 0
        self._active_process: Optional[Process] = None
        #: Optional schedule trace: when set to a list, every processed
        #: event appends ``(time, event-type-name)`` — the hook the
        #: golden-schedule determinism tests record through.
        self._trace: Optional[list] = None
        #: Objects (resources, stores) that can report end-of-run leaks.
        self._finishables: list = []
        #: Live process count, maintained by Process itself.
        self._alive_processes = 0

    @property
    def now(self) -> float:
        """Current simulated time (seconds by convention in this library)."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    # -- end-of-run sanitizer ----------------------------------------------

    def register_finishable(self, obj: Any) -> None:
        """Enroll ``obj`` in :meth:`finish_check`.

        ``obj`` must expose ``finish_violations() -> list[str]``
        returning a description of every leak it still holds (occupied
        slots, parked waiters, ...).  Resources and stores register
        themselves at construction.
        """
        self._finishables.append(obj)

    def finish_check(self) -> None:
        """Assert the simulation wound down cleanly.

        Raises :class:`~repro.errors.SanitizerError` if, after the run,
        any process is still alive, any event is still scheduled, or a
        registered resource reports leaked state.  Call it after a full
        drain (``run(until=None)``); a horizon-limited run legitimately
        leaves work pending.
        """
        problems: list[str] = []
        if self._alive_processes:
            problems.append(
                f"{self._alive_processes} process(es) still alive "
                f"(generator never finished)")
        pending = len(self._queue) + len(self._urgent) + len(self._normal)
        if pending:
            problems.append(
                f"{pending} event(s) still scheduled on the calendar")
        for obj in self._finishables:
            for violation in obj.finish_violations():
                problems.append(violation)
        if problems:
            detail = "; ".join(problems)
            raise SanitizerError(
                f"finish_check failed at t={self._now}: {detail}")

    # -- event factories --------------------------------------------------

    def event(self) -> Event:
        """Create a fresh pending event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires after ``delay`` time units."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator) -> Process:
        """Register ``generator`` as a process starting now."""
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Composite event firing when all ``events`` have fired."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Composite event firing when any of ``events`` has fired."""
        return AnyOf(self, events)

    # -- scheduling --------------------------------------------------------

    def _schedule(self, event: Event, priority: int, delay: float) -> None:
        self._eid += 1
        if delay == 0.0:
            if priority == NORMAL:
                self._normal.append((self._eid, event))
                return
            if priority == URGENT:
                self._urgent.append((self._eid, event))
                return
        heapq.heappush(
            self._queue, (self._now + delay, priority, self._eid, event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        if self._urgent or self._normal:
            return self._now
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process the single next event.

        The next event is the minimum of the heap head and the two
        run-queue heads under the (time, priority, insertion-order)
        key.  Run-queue entries sit at time ``now``, so a heap entry
        only beats them at that exact time, on (priority, eid).
        """
        queue = self._queue
        entry = None
        if self._urgent:
            if queue:
                head = queue[0]
                # Exact tie check is sound: run-queue entries carry the
                # very `now` the heap timestamps are compared against.
                if head[0] == self._now and (  # repro-lint: disable=REP501
                        head[1] < URGENT or (head[1] == URGENT
                                             and head[2] < self._urgent[0][0])):
                    entry = heapq.heappop(queue)
            if entry is None:
                event = self._urgent.popleft()[1]
        elif self._normal:
            if queue:
                head = queue[0]
                if head[0] == self._now and (  # repro-lint: disable=REP501
                        head[1] < NORMAL or (head[1] == NORMAL
                                             and head[2] < self._normal[0][0])):
                    entry = heapq.heappop(queue)
            if entry is None:
                event = self._normal.popleft()[1]
        elif queue:
            entry = heapq.heappop(queue)
        else:
            raise SimulationError("no scheduled events")
        if entry is not None:
            when = entry[0]
            if when < self._now:
                raise SimulationError(
                    f"event scheduled in the past: {when} < {self._now}")
            self._now = when
            event = entry[3]
        if self._trace is not None:
            self._trace.append((self._now, type(event).__name__))
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)
        if not event._ok and not event._defused:
            exc = event._value
            raise exc

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run the simulation.

        ``until`` may be ``None`` (run until the calendar drains), a time, or
        an :class:`Event` (run until that event has been processed, returning
        its value).
        """
        stop_event: Optional[Event] = None
        stop_time = float("inf")
        if isinstance(until, Event):
            stop_event = until
        elif until is not None:
            stop_time = float(until)
            if stop_time < self._now:
                raise SimulationError(
                    f"until={stop_time} lies in the past (now={self._now})")

        step = self.step
        if stop_time == float("inf"):
            # Hot loop: no time horizon to watch, so skip peek().
            if stop_event is None:
                while self._queue or self._urgent or self._normal:
                    step()
            else:
                while (self._queue or self._urgent or self._normal) \
                        and stop_event.callbacks is not None:
                    step()
        else:
            while self._queue or self._urgent or self._normal:
                if stop_event is not None and stop_event.callbacks is None:
                    break
                if self.peek() > stop_time:
                    self._now = stop_time
                    break
                step()

        if stop_event is not None:
            if not stop_event.triggered:
                raise SimulationError(
                    "run() finished but the until-event never fired")
            if not stop_event._ok:
                raise stop_event._value
            return stop_event._value
        if until is not None and self._now < stop_time \
                and not (self._queue or self._urgent or self._normal):
            # Calendar drained before the requested horizon: the clock still
            # advances to the horizon so utilization math stays consistent.
            self._now = stop_time
        return None
