"""Discrete-event simulation substrate.

A small, dependency-free, deterministic event-driven simulator in the style
of SimPy.  Processes are Python generators that ``yield`` events (timeouts,
resource requests, store gets/puts); the :class:`~repro.sim.engine.Environment`
advances a virtual clock and resumes processes when their events fire.

Every *timed* component of the reproduction (CPU cores, the GPU, the PCIe
link, the SSD) is built on this engine, which is what lets a single-core
Python process report faithful multi-core / accelerator throughput numbers.
"""

from repro.sim.engine import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    Process,
    Timeout,
)
from repro.sim.resources import Request, Resource, Store, UtilizationMonitor

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "Timeout",
    "Request",
    "Resource",
    "Store",
    "UtilizationMonitor",
]
