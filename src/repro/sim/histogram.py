"""Log-bucketed latency histogram.

Fixed memory regardless of sample count, ~2.3% bucket resolution —
enough for the P50/P99/P99.9 reporting the latency experiments need.
Buckets are powers of ``base`` starting at ``floor``; percentile queries
interpolate within a bucket.
"""

from __future__ import annotations

import math
from typing import Iterable

from repro.errors import ConfigError


class LatencyHistogram:
    """Accumulates nonnegative samples into logarithmic buckets."""

    def __init__(self, floor: float = 1e-6, base: float = 1.047,
                 n_buckets: int = 1024):
        if floor <= 0 or base <= 1.0 or n_buckets < 2:
            raise ConfigError("invalid histogram geometry")
        self.floor = floor
        self.base = base
        self._log_base = math.log(base)
        self._counts = [0] * n_buckets
        self.count = 0
        self.total = 0.0
        self.peak = 0.0
        #: Samples beyond the last bucket's range.  They are clamped
        #: into the last bucket for percentile math (whose only honest
        #: answer up there is the peak anyway), but the clamp is counted
        #: so a mis-sized histogram is visible in the summary instead of
        #: silently flattening the tail.
        self.overflow = 0

    def _bucket(self, value: float) -> int:
        if value <= self.floor:
            return 0
        index = int(math.log(value / self.floor) / self._log_base) + 1
        last = len(self._counts) - 1
        if index > last:
            self.overflow += 1
            return last
        return index

    def _bucket_upper(self, index: int) -> float:
        if index == 0:
            return self.floor
        return self.floor * self.base ** index

    def record(self, value: float) -> None:
        """Add one sample (seconds, by convention)."""
        if value < 0:
            raise ConfigError(f"negative sample {value}")
        self._counts[self._bucket(value)] += 1
        self.count += 1
        self.total += value
        self.peak = max(self.peak, value)

    def record_many(self, values: Iterable[float]) -> None:
        """Add many samples."""
        for value in values:
            self.record(value)

    @property
    def mean(self) -> float:
        """Arithmetic mean of all samples."""
        return self.total / self.count if self.count else 0.0

    def percentile(self, fraction: float) -> float:
        """Sample value at the given quantile (e.g. 0.99 for P99)."""
        if not 0.0 <= fraction <= 1.0:
            raise ConfigError(f"invalid percentile {fraction}")
        if self.count == 0:
            return 0.0
        target = fraction * self.count
        running = 0
        last = len(self._counts) - 1
        for index, bucket_count in enumerate(self._counts):
            running += bucket_count
            if running >= target:
                if index == last:
                    # Overflow bucket: its only honest upper bound is
                    # the observed peak.
                    return self.peak
                return min(self._bucket_upper(index), self.peak)
        return self.peak

    def summary(self) -> dict[str, float]:
        """Mean, the standard percentiles, and the overflow count."""
        return {
            "mean": self.mean,
            "p50": self.percentile(0.50),
            "p99": self.percentile(0.99),
            "p999": self.percentile(0.999),
            "max": self.peak,
            "overflow": float(self.overflow),
        }
