"""Shared-resource primitives for the simulation engine.

:class:`Resource` models a counted resource (CPU hardware threads, the GPU
command queue, SSD channels) with FIFO granting.  :class:`Store` models a
producer/consumer queue between pipeline stages.  Both record enough history
to report time-weighted utilization, which the benchmark harness surfaces as
"CPU utilization" / "GPU utilization" in the paper-style reports.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Optional

from repro.errors import ResourceError
from repro.sim.engine import Environment, Event


class UtilizationMonitor:
    """Time-weighted occupancy accounting for a counted resource."""

    __slots__ = ("_env", "_capacity", "_level", "_last_change", "_area",
                 "_peak", "_start")

    def __init__(self, env: Environment, capacity: int):
        self._env = env
        self._capacity = capacity
        self._level = 0
        self._last_change = env.now
        self._area = 0.0  # integral of level over time
        self._peak = 0
        self._start = env.now

    def change(self, delta: int) -> None:
        """Record the occupancy changing by ``delta`` at the current time."""
        now = self._env._now
        level = self._level
        self._area += level * (now - self._last_change)
        level += delta
        self._level = level
        if level > self._peak:
            self._peak = level
        self._last_change = now

    @property
    def level(self) -> int:
        """Current occupancy."""
        return self._level

    @property
    def peak(self) -> int:
        """Maximum occupancy observed."""
        return self._peak

    def utilization(self, until: Optional[float] = None) -> float:
        """Mean fraction of capacity in use from creation until ``until``."""
        end = self._env.now if until is None else until
        elapsed = end - self._start
        if elapsed <= 0:
            return 0.0
        area = self._area + self._level * (end - self._last_change)
        return area / (elapsed * self._capacity)

    def busy_time(self, until: Optional[float] = None) -> float:
        """Total resource-seconds of occupancy (area under the level curve)."""
        end = self._env.now if until is None else until
        return self._area + self._level * (end - self._last_change)


class Request(Event):
    """A pending claim on a :class:`Resource`.

    The event triggers (with the request itself as value) once the resource
    grants a slot.  Release the slot with :meth:`Resource.release` or by
    using the request as a context manager inside a process::

        with cpu.request() as req:
            yield req
            yield env.timeout(work)
    """

    __slots__ = ("resource", "granted")

    def __init__(self, resource: "Resource"):
        super().__init__(resource.env)
        self.resource = resource
        self.granted = False
        resource._enqueue(self)

    def cancel(self) -> None:
        """Withdraw an ungranted request (no-op if already granted)."""
        if not self.granted:
            self.resource._withdraw(self)

    def _grant(self) -> None:
        """Fire the grant; subclasses may react without an event."""
        self.succeed(self)

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        if self.granted:
            self.resource.release(self)
        else:
            self.cancel()


class Resource:
    """A counted FIFO resource (e.g. N identical CPU hardware threads)."""

    __slots__ = ("env", "capacity", "name", "users", "queue",
                 "_fast_held", "monitor")

    def __init__(self, env: Environment, capacity: int = 1,
                 name: str = "resource"):
        if capacity < 1:
            raise ResourceError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.name = name
        self.users: list[Request] = []
        self.queue: deque[Request] = deque()
        #: Slots held through the anonymous fast path (no Request object).
        self._fast_held = 0
        self.monitor = UtilizationMonitor(env, capacity)
        env.register_finishable(self)

    @property
    def count(self) -> int:
        """Number of slots currently granted."""
        return len(self.users) + self._fast_held

    def request(self) -> Request:
        """Claim a slot; the returned event fires when the slot is granted."""
        return Request(self)

    def release(self, request: Request) -> None:
        """Return a granted slot to the pool."""
        try:
            self.users.remove(request)
        except ValueError:
            raise ResourceError(
                f"{self.name}: releasing a request that is not granted")
        queue = self.queue
        if queue:
            # Waiters only exist while the pool is full, so exactly one
            # waiter inherits the slot; occupancy is unchanged and the
            # monitor needs no update for the handoff.
            nxt = queue.popleft()
            self.users.append(nxt)
            nxt.granted = True
            nxt._grant()
        else:
            self.monitor.change(-1)

    # -- uncontended fast path ---------------------------------------------

    def try_acquire(self) -> bool:
        """Claim a slot synchronously when nobody waits and one is free.

        This is the allocation-free fast path for the common uncontended
        acquire: no :class:`Request` object, no grant event, no calendar
        round-trip.  Returns ``True`` on success, in which case the
        caller owns one anonymous slot and must hand it back with
        :meth:`release_acquired` (occupancy accounting is identical to
        the ``request()`` path).  Returns ``False`` when a waiter queue
        exists or the pool is exhausted — callers then fall back to
        ``request()`` so FIFO fairness is preserved.
        """
        if not self.queue and len(self.users) + self._fast_held \
                < self.capacity:
            self._fast_held += 1
            self.monitor.change(+1)
            return True
        return False

    def release_acquired(self) -> None:
        """Return a slot taken with :meth:`try_acquire`."""
        if self._fast_held < 1:
            raise ResourceError(
                f"{self.name}: release_acquired without try_acquire")
        self._fast_held -= 1
        queue = self.queue
        if queue:
            # Slot handoff: net occupancy unchanged (see release()).
            nxt = queue.popleft()
            self.users.append(nxt)
            nxt.granted = True
            nxt._grant()
        else:
            self.monitor.change(-1)

    # -- end-of-run sanitizer ----------------------------------------------

    def _waiting(self) -> int:
        return len(self.queue)

    def finish_violations(self) -> list[str]:
        """Leaks still held at end of run, for ``Environment.finish_check``."""
        out: list[str] = []
        held = len(self.users) + self._fast_held
        if held:
            out.append(
                f"resource `{self.name}`: {held} slot(s) still held "
                f"({self._fast_held} anonymous via try_acquire)")
        waiting = self._waiting()
        if waiting:
            out.append(
                f"resource `{self.name}`: {waiting} request(s) still "
                f"waiting for a slot")
        return out

    # -- internals ---------------------------------------------------------

    def _enqueue(self, request: Request) -> None:
        self.queue.append(request)
        self._grant_waiters()

    def _withdraw(self, request: Request) -> None:
        try:
            self.queue.remove(request)
        except ValueError:
            pass

    def _grant_waiters(self) -> None:
        while self.queue and \
                len(self.users) + self._fast_held < self.capacity:
            request = self.queue.popleft()
            self.users.append(request)
            request.granted = True
            self.monitor.change(+1)
            request._grant()


class PriorityRequest(Request):
    """A resource claim with an explicit priority (lower = sooner)."""

    __slots__ = ("priority",)

    def __init__(self, resource: "PriorityResource", priority: int):
        self.priority = priority
        super().__init__(resource)


class PriorityResource(Resource):
    """A counted resource granting waiters by priority, then FIFO.

    Used for the GPU command queue when the priority-scheduling
    extension is on: latency-critical index batches overtake queued
    compression batches (work already *running* is never preempted —
    real devices don't preempt kernels either).
    """

    __slots__ = ("_heap", "_seq")

    def __init__(self, env: Environment, capacity: int = 1,
                 name: str = "priority-resource"):
        super().__init__(env, capacity, name)
        self._heap: list[tuple[int, int, PriorityRequest]] = []
        self._seq = 0

    def request(self, priority: int = 0) -> PriorityRequest:
        """Claim a slot at the given priority."""
        return PriorityRequest(self, priority)

    def try_acquire(self) -> bool:
        """Uncontended fast path; waiters live on the heap here."""
        if not self._heap and len(self.users) + self._fast_held \
                < self.capacity:
            self._fast_held += 1
            self.monitor.change(+1)
            return True
        return False

    def release(self, request: Request) -> None:
        """Return a granted slot to the pool."""
        try:
            self.users.remove(request)
        except ValueError:
            raise ResourceError(
                f"{self.name}: releasing a request that is not granted")
        if self._heap:
            # Slot handoff to the best waiter: occupancy unchanged.
            _priority, _seq, nxt = heapq.heappop(self._heap)
            self.users.append(nxt)
            nxt.granted = True
            nxt._grant()
        else:
            self.monitor.change(-1)

    def release_acquired(self) -> None:
        """Return a slot taken with :meth:`try_acquire`."""
        if self._fast_held < 1:
            raise ResourceError(
                f"{self.name}: release_acquired without try_acquire")
        self._fast_held -= 1
        if self._heap:
            _priority, _seq, nxt = heapq.heappop(self._heap)
            self.users.append(nxt)
            nxt.granted = True
            nxt._grant()
        else:
            self.monitor.change(-1)

    def _waiting(self) -> int:
        return len(self._heap)

    # -- internals: heap-ordered waiting ----------------------------------------

    def _enqueue(self, request: Request) -> None:
        priority = getattr(request, "priority", 0)
        self._seq += 1
        heapq.heappush(self._heap, (priority, self._seq, request))
        self._grant_waiters()

    def _withdraw(self, request: Request) -> None:
        for i, (_p, _s, waiting) in enumerate(self._heap):
            if waiting is request:
                self._heap[i] = self._heap[-1]
                self._heap.pop()
                heapq.heapify(self._heap)
                return

    def _grant_waiters(self) -> None:
        while self._heap and \
                len(self.users) + self._fast_held < self.capacity:
            _priority, _seq, request = heapq.heappop(self._heap)
            self.users.append(request)
            request.granted = True
            self.monitor.change(+1)
            request._grant()


class StorePut(Event):
    __slots__ = ("item", "_store")

    def __init__(self, store: "Store", item: Any):
        super().__init__(store.env)
        self.item = item
        self._store = store
        store._put_queue.append(self)
        store._dispatch()

    def cancel(self) -> None:
        """Withdraw the offer if the store has not accepted it yet."""
        if not self.triggered:
            try:
                self._store._put_queue.remove(self)
            except ValueError:
                pass


class StoreGet(Event):
    __slots__ = ("_store",)

    def __init__(self, store: "Store"):
        super().__init__(store.env)
        self._store = store
        store._get_queue.append(self)
        store._dispatch()

    def cancel(self) -> None:
        """Stop waiting for an item (used for get-with-timeout patterns).

        A get that already received an item cannot be cancelled.
        """
        if not self.triggered:
            try:
                self._store._get_queue.remove(self)
            except ValueError:
                pass


class Store:
    """A FIFO item queue with optional capacity, linking pipeline stages."""

    __slots__ = ("env", "capacity", "name", "items", "_put_queue",
                 "_get_queue", "peak_items")

    def __init__(self, env: Environment, capacity: float = float("inf"),
                 name: str = "store"):
        if capacity <= 0:
            raise ResourceError(f"capacity must be positive, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.name = name
        self.items: deque[Any] = deque()
        self._put_queue: deque[StorePut] = deque()
        self._get_queue: deque[StoreGet] = deque()
        #: Peak number of buffered items, for backpressure diagnostics.
        self.peak_items = 0
        env.register_finishable(self)

    def put(self, item: Any) -> StorePut:
        """Offer ``item``; the event fires once the store has room."""
        return StorePut(self, item)

    def get(self) -> StoreGet:
        """Take the oldest item; the event fires once an item is available."""
        return StoreGet(self)

    @property
    def level(self) -> int:
        """Number of items currently buffered."""
        return len(self.items)

    def finish_violations(self) -> list[str]:
        """Parked waiters at end of run (buffered items are legitimate)."""
        out: list[str] = []
        if self._put_queue:
            out.append(f"store `{self.name}`: {len(self._put_queue)} "
                       f"put(s) never accepted")
        if self._get_queue:
            out.append(f"store `{self.name}`: {len(self._get_queue)} "
                       f"get(s) never satisfied")
        return out

    def _dispatch(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            while self._put_queue and len(self.items) < self.capacity:
                put = self._put_queue.popleft()
                self.items.append(put.item)
                self.peak_items = max(self.peak_items, len(self.items))
                put.succeed()
                progressed = True
            while self._get_queue and self.items:
                get = self._get_queue.popleft()
                get.succeed(self.items.popleft())
                progressed = True
