"""Command-line interface: ``python -m repro <command>``.

Six commands cover the library's everyday uses:

* ``run`` — one timed pipeline run on the simulated testbed
  (``--trace`` also writes a Chrome ``trace_event`` file);
* ``trace`` — a traced run: Perfetto-loadable trace JSON plus the
  critical-path latency attribution (DESIGN.md §10);
* ``calibrate`` — the paper's dummy-I/O mode chooser, with platform knobs;
* ``evaluate`` — the paper's §4 evaluation at a chosen scale;
* ``codec`` — compress/decompress a real file with the bundled codecs
  (round-trip verified), reporting the achieved ratio;
* ``lint`` — the project's AST invariant checker (determinism,
  sim-protocol, slots coverage, layering, float-time hygiene).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Optional, Sequence

from repro.bench.experiments import (
    SSD_IOPS,
    e2_dedup,
    e3_compression,
    e4_integration,
)
from repro.bench.reporting import BarChart, Table
from repro.compression import LzssCodec, QuickLzCodec
from repro.core.calibration import calibrate_mode, run_mode
from repro.core.modes import IntegrationMode
from repro.cpu.model import CpuSpec, I7_2600K
from repro.gpu.device import GpuSpec, RADEON_HD_7970

#: GPU presets selectable from the command line.
GPU_PRESETS: dict[str, Optional[GpuSpec]] = {
    "testbed": RADEON_HD_7970,
    "weak": GpuSpec(name="entry dGPU", compute_units=4, lanes_per_cu=32,
                    freq_hz=600e6, mem_bandwidth_bps=28e9,
                    mem_capacity_bytes=1024**3,
                    launch_overhead_s=180e-6, sync_overhead_s=180e-6,
                    occupancy=0.2),
    "none": None,
}


def _add_workload_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--chunks", type=int, default=16384,
                        help="stream length in 4 KiB chunks")
    parser.add_argument("--dedup-ratio", type=float, default=2.0,
                        help="workload deduplication dial")
    parser.add_argument("--comp-ratio", type=float, default=2.0,
                        help="workload compression dial")
    parser.add_argument("--seed", type=int, default=1234,
                        help="workload RNG seed")


def _add_platform_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--cpu-cores", type=int, default=I7_2600K.cores)
    parser.add_argument("--cpu-threads", type=int,
                        default=I7_2600K.threads)
    parser.add_argument("--cpu-ghz", type=float,
                        default=I7_2600K.freq_hz / 1e9)
    parser.add_argument("--gpu", choices=sorted(GPU_PRESETS),
                        default="testbed", help="GPU preset")


def _platform_from(args: argparse.Namespace) -> dict:
    cpu_spec = CpuSpec(name="cli", cores=args.cpu_cores,
                       threads=args.cpu_threads,
                       freq_hz=args.cpu_ghz * 1e9)
    return {"cpu_spec": cpu_spec, "gpu_spec": GPU_PRESETS[args.gpu]}


def _dump_trace(tracer, out_path: str) -> int:
    """Write a run's Chrome trace and report schema problems."""
    from repro.obs import chrome_trace, validate_chrome_trace

    payload = chrome_trace(tracer.spans)
    problems = validate_chrome_trace(payload)
    with open(out_path, "w") as handle:
        json.dump(payload, handle)
    print(f"\ntrace: {len(payload['traceEvents'])} events -> "
          f"{out_path}")
    if problems:
        for problem in problems:
            print(f"trace schema problem: {problem}", file=sys.stderr)
        return 1
    return 0


def _run_tenants(args: argparse.Namespace, mode: IntegrationMode,
                 platform: dict, tracer) -> int:
    """``repro run --tenants``: one multi-tenant timed run."""
    from repro import PipelineConfig
    from repro.errors import WorkloadError
    from repro.tenancy import TenantMix
    from repro.tenancy.runner import run_tenant_mix

    try:
        with open(args.tenants) as handle:
            mix = TenantMix.from_json(handle.read())
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except WorkloadError as exc:
        print(f"error: {args.tenants}: {exc}", file=sys.stderr)
        return 2
    config = PipelineConfig(tenancy_policy=args.tenancy_policy,
                            tenancy_cache_entries=args.tenancy_cache,
                            verify_memos=args.verify_memos)
    started = time.time()
    report = run_tenant_mix(mix, mode, args.chunks, base_config=config,
                            tracer=tracer, payload=args.payload,
                            **platform)
    pipeline = report.pipeline
    table = Table(f"tenant mix: {len(mix.tenants)} tenant(s), "
                  f"{mode.value}, {args.chunks} chunks, "
                  f"policy {report.policy}", ["metric", "value"])
    table.add_row("throughput", f"{pipeline.iops / 1e3:.1f} K IOPS")
    table.add_row("ingest", f"{pipeline.mb_per_s:.1f} MB/s")
    table.add_row("inline hit rate", f"{report.inline_hit_rate:.1%}")
    table.add_row("dedup inline", f"{report.inline_dedup_ratio:.2f}x")
    table.add_row("dedup effective",
                  f"{report.effective_dedup_ratio:.2f}x")
    table.add_row("dedup oracle", f"{report.oracle_dedup_ratio:.2f}x")
    table.add_row("oracle recovery", f"{report.recovery_fraction:.1%}")
    if report.compaction:
        table.add_row("compaction epochs",
                      str(report.compaction["epochs"]))
        table.add_row("compaction reclaimed",
                      f"{report.compaction['reclaimed_bytes'] / 1e6:.1f}"
                      " MB")
    table.add_row("wall time", f"{time.time() - started:.1f} s")
    table.print()
    per_tenant = Table("per-tenant accounting",
                       ["tenant", "chunks", "hit rate", "skips",
                        "recovered", "p99 latency"])
    for entry in report.tenants:
        p99 = entry.latency.get("p99", 0.0)
        per_tenant.add_row(entry.name, entry.chunks,
                           f"{entry.inline_hit_rate:.1%}", entry.skips,
                           entry.recovered, f"{p99 * 1e6:.0f} us")
    per_tenant.print()
    if tracer is not None:
        return _dump_trace(tracer, args.trace)
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    mode = IntegrationMode(args.mode)
    platform = _platform_from(args)
    if platform["gpu_spec"] is None and (mode.gpu_for_dedup
                                         or mode.gpu_for_compression):
        print(f"error: mode {mode.value} needs a GPU (use --gpu)",
              file=sys.stderr)
        return 2
    tracer = None
    if args.trace:
        from repro.obs import SimTracer
        tracer = SimTracer()
    if args.tenants:
        return _run_tenants(args, mode, platform, tracer)
    base_config = None
    if args.verify_memos:
        from repro import PipelineConfig
        base_config = PipelineConfig(verify_memos=True)
    started = time.time()
    report = run_mode(mode, args.chunks, dedup_ratio=args.dedup_ratio,
                      comp_ratio=args.comp_ratio, seed=args.seed,
                      tracer=tracer, payload=args.payload,
                      base_config=base_config, **platform)
    table = Table(f"pipeline run: {mode.value}, {args.chunks} chunks "
                  f"(dedup {args.dedup_ratio} x comp {args.comp_ratio})",
                  ["metric", "value"])
    table.add_row("throughput", f"{report.iops / 1e3:.1f} K IOPS")
    table.add_row("ingest", f"{report.mb_per_s:.1f} MB/s")
    table.add_row("vs SSD write IOPS", f"{report.iops / SSD_IOPS:.2f}x")
    table.add_row("mean chunk latency",
                  f"{report.mean_latency_s * 1e6:.0f} us")
    table.add_row("cpu utilization", f"{report.cpu_utilization:.1%}")
    table.add_row("gpu utilization", f"{report.gpu_utilization:.1%}")
    table.add_row("dedup ratio", f"{report.dedup_ratio:.2f}x")
    table.add_row("compression ratio", f"{report.comp_ratio:.2f}x")
    table.add_row("total reduction", f"{report.reduction_ratio:.2f}x")
    table.add_row("NAND programmed",
                  f"{report.nand_bytes_written / 1e6:.1f} MB")
    table.add_row("wall time", f"{time.time() - started:.1f} s")
    table.print()
    if tracer is not None:
        return _dump_trace(tracer, args.trace)
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    from repro.bench.tracing import build_trace_bundle
    from repro.obs import write_chrome_trace

    mode = IntegrationMode(args.mode)
    platform = _platform_from(args)
    if platform["gpu_spec"] is None and (mode.gpu_for_dedup
                                         or mode.gpu_for_compression):
        print(f"error: mode {mode.value} needs a GPU (use --gpu)",
              file=sys.stderr)
        return 2
    chunks = 1024 if args.quick else args.chunks
    bundle = build_trace_bundle(mode, chunks,
                                dedup_ratio=args.dedup_ratio,
                                comp_ratio=args.comp_ratio,
                                seed=args.seed, **platform)
    critical = bundle["critical_path"]
    if args.format == "json":
        print(critical.to_json())
    else:
        print(critical.render())
    if args.format == "summary":
        return 0
    write_chrome_trace(args.out, bundle["spans"])
    print(f"\ntrace: {len(bundle['payload']['traceEvents'])} events, "
          f"{len(bundle['spans'])} spans -> {args.out} "
          "(load in Perfetto / chrome://tracing)")
    if bundle["problems"]:
        for problem in bundle["problems"]:
            print(f"trace schema problem: {problem}", file=sys.stderr)
        return 1
    return 0


def cmd_calibrate(args: argparse.Namespace) -> int:
    result = calibrate_mode(dummy_chunks=args.chunks,
                            dedup_ratio=args.dedup_ratio,
                            comp_ratio=args.comp_ratio,
                            seed=args.seed, **_platform_from(args))
    print(result.table())
    print(f"\n-> commit to {result.best_mode.value} "
          f"({result.speedup_over_cpu_only():.2f}x over CPU-only)")
    return 0


def cmd_evaluate(args: argparse.Namespace) -> int:
    n = args.chunks
    print(f"paper evaluation at {n} chunks "
          f"({n * 4096 // 1024**2} MiB) per run\n")

    results = e2_dedup(n_chunks=n)
    cpu, gpu = results["cpu_only"], results["gpu_assisted"]
    print(f"S4(1) dedup: CPU {cpu.iops / 1e3:.1f} K, "
          f"GPU-assisted {gpu.iops / 1e3:.1f} K "
          f"(+{gpu.speedup_over(cpu) - 1:.1%}; paper +15.0%), "
          f"{gpu.iops / SSD_IOPS:.2f}x SSD (paper ~3x)")

    rows = e3_compression(ratios=(1.2, 2.0, 4.0), n_chunks=max(n // 2, 1))
    table = Table("S4(2) compression", ["comp ratio", "CPU K IOPS",
                                        "GPU K IOPS", "GPU/CPU"])
    for row in rows:
        table.add_row(row.comp_ratio, row.cpu_iops / 1e3,
                      row.gpu_iops / 1e3, f"{row.gpu_advantage:.2f}x")
    table.print()

    integration = e4_integration(n_chunks=n)
    chart = BarChart("S4(3) / Fig. 2: integration modes", unit=" K IOPS")
    for mode in IntegrationMode.all_modes():
        chart.add_bar(mode.value, integration[mode].iops / 1e3)
    chart.print()
    best = integration[IntegrationMode.GPU_COMP]
    base = integration[IntegrationMode.CPU_ONLY]
    print(f"GPU-for-compression: +{best.speedup_over(base) - 1:.1%} "
          "over CPU-only (paper +89.7%)")
    return 0


def _render_result(result) -> None:
    """Generic pretty-printer for experiment return shapes."""
    import dataclasses

    def show_value(value):
        if isinstance(value, float):
            return f"{value:.4g}"
        return str(value)

    if dataclasses.is_dataclass(result) and not isinstance(result, type):
        for field_info in dataclasses.fields(result):
            print(f"  {field_info.name}: "
                  f"{show_value(getattr(result, field_info.name))}")
        return
    if isinstance(result, dict):
        for key, value in result.items():
            label = getattr(key, "value", key)
            if hasattr(value, "iops"):
                print(f"  {label}: {value.iops / 1e3:.1f} K IOPS")
            elif hasattr(value, "table"):
                print(f"--- {label} ---")
                print(value.table())
            else:
                print(f"  {label}: {show_value(value)}")
        return
    if isinstance(result, list) and result \
            and dataclasses.is_dataclass(result[0]):
        columns = [f.name for f in dataclasses.fields(result[0])]
        table = Table("result", columns)
        for row in result:
            table.add_row(*(show_value(getattr(row, c))
                            for c in columns))
        table.print()
        return
    if hasattr(result, "iops"):
        print(f"  {result.iops / 1e3:.1f} K IOPS "
              f"(counters: {result.counters})")
        return
    print(f"  {result!r}")


def _bench_planes() -> dict:
    """Perf-plane registry: name -> (title, runner, renderer).

    Runners share the harness signature (``quick``/``profile``/
    ``trace_path`` keywords); the cluster plane additionally takes the
    topology flags.
    """
    from repro.bench.cluster import render_cluster_bench, run_cluster_bench
    from repro.bench.dataplane import (
        render_dataplane_bench,
        run_dataplane_bench,
    )
    from repro.bench.dedup import render_dedup_bench, run_dedup_bench
    from repro.bench.perf import render_engine_bench, run_engine_bench
    from repro.bench.pipeline import (
        render_pipeline_bench,
        run_pipeline_bench,
    )
    from repro.bench.tenancy import (
        render_tenancy_bench,
        run_tenancy_bench,
    )

    return {
        "engine": ("engine hot-path",
                   run_engine_bench, render_engine_bench),
        "dataplane": ("data-plane hot loops",
                      run_dataplane_bench, render_dataplane_bench),
        "dedup": ("dedup index plane",
                  run_dedup_bench, render_dedup_bench),
        "pipeline": ("batched functional pipeline",
                     run_pipeline_bench, render_pipeline_bench),
        "cluster": ("cluster shard plane",
                    run_cluster_bench, render_cluster_bench),
        "tenancy": ("multi-tenant traffic plane",
                    run_tenancy_bench, render_tenancy_bench),
    }


def cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench.experiments import registry

    if args.experiment in ("engine", "dataplane", "dedup", "pipeline",
                           "cluster", "tenancy"):
        title, run, render = _bench_planes()[args.experiment]
        kwargs = {"profile": args.profile, "trace_path": args.trace}
        if args.experiment != "engine":
            kwargs["quick"] = args.quick
        if args.experiment == "cluster":
            kwargs["nodes"] = args.nodes
            kwargs["executor"] = args.executor
        started = time.time()
        results = run(**kwargs)
        if args.json:
            from repro.bench.common import json_summary
            print(json.dumps(json_summary(args.experiment, results),
                             indent=2))
        else:
            print(f"=== {title} "
                  f"(wall {time.time() - started:.1f} s) ===")
            print(render(results))
        if args.experiment == "engine":
            return 0
        return 0 if results["fields_ok"] else 1
    if args.experiment == "all":
        from repro.bench.allplanes import (
            render_all_benches,
            run_all_benches,
        )

        started = time.time()
        results = run_all_benches(quick=args.quick)
        if args.json:
            from repro.bench.allplanes import json_all_summary
            print(json.dumps(json_all_summary(results), indent=2))
        else:
            print(f"=== all bench planes "
                  f"(wall {time.time() - started:.1f} s) ===")
            print(render_all_benches(results))
        return 0 if results["fields_ok"] else 1
    experiments = registry()
    if args.experiment == "list":
        for name in experiments:
            print(name)
        print("engine")
        print("dataplane")
        print("dedup")
        print("pipeline")
        print("cluster")
        print("tenancy")
        print("all")
        return 0
    runner = experiments.get(args.experiment)
    if runner is None:
        print(f"error: unknown experiment {args.experiment!r} "
              f"(try 'repro bench list')", file=sys.stderr)
        return 2
    started = time.time()
    result = runner()
    print(f"=== {args.experiment} "
          f"(wall {time.time() - started:.1f} s) ===")
    _render_result(result)
    return 0


def cmd_codec(args: argparse.Namespace) -> int:
    codec = LzssCodec() if args.codec == "lzss" else QuickLzCodec()
    try:
        with open(args.file, "rb") as handle:
            data = handle.read(args.limit)
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not data:
        print("error: empty input", file=sys.stderr)
        return 2
    started = time.time()
    blob = codec.encode(data)
    encode_s = time.time() - started
    if codec.decode(blob) != data:
        print("error: round-trip mismatch (codec bug!)", file=sys.stderr)
        return 1
    print(f"{args.codec}: {len(data):,} B -> {len(blob):,} B "
          f"(ratio {len(data) / len(blob):.3f}x), "
          f"encoded in {encode_s:.2f} s, round-trip verified")
    return 0


#: Default committed baseline of grandfathered lint findings.
DEFAULT_BASELINE = ".repro-lint-baseline.json"


def cmd_lint(args: argparse.Namespace) -> int:
    # Imported lazily: the analysis layer is a leaf package and the
    # other commands must not pay for (or depend on) it.
    from pathlib import Path

    from repro.analysis import Baseline, LintConfig, all_checkers, run_lint
    from repro.errors import LintError

    config = LintConfig(root=Path.cwd(),
                        rules=tuple(args.rules) if args.rules else None)
    if args.list_rules:
        for checker in all_checkers(LintConfig()):
            print(f"{checker.rule}  {checker.name:<32} "
                  f"{checker.description}")
        return 0
    if args.explain:
        return _explain_rule(args.explain)

    paths = [Path(p) for p in (args.paths or ["src/repro"])]

    if args.effects:
        from repro.analysis.runner import build_project
        try:
            project = build_project(paths, config)
        except LintError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(project.effects.describe(args.effects))
        return 0 if project.effects.lookup_function(args.effects) \
            else 2

    restrict = None
    if args.changed is not False:
        ref = args.changed if isinstance(args.changed, str) \
            else "origin/main"
        restrict = _changed_files(ref)
        if restrict is None:
            print(f"error: could not diff against {ref!r}",
                  file=sys.stderr)
            return 2
        if not restrict:
            print(f"no changed python files vs {ref}")
            return 0
    baseline = None
    baseline_path = Path(args.baseline)
    if not args.no_baseline and not args.write_baseline \
            and baseline_path.exists():
        try:
            baseline = Baseline.load(baseline_path)
        except LintError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    try:
        # Explicit path arguments scan less than the full tree, so an
        # unmatched baseline entry there proves nothing — only default
        # (full-tree) runs may call entries stale.
        report = run_lint(paths, config, baseline=baseline,
                          restrict=restrict,
                          check_stale=not args.paths)
    except LintError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline:
        Baseline.from_diagnostics(report.new).save(baseline_path)
        print(f"wrote {len(report.new)} entry(ies) to {baseline_path}")
        return 0
    if args.format == "json":
        print(report.format_json())
    elif args.format == "github":
        print(report.format_github())
    else:
        print(report.format_text())
    # Stale baseline entries fail the run too: a grandfathered finding
    # that no longer occurs must be removed, or the baseline rots.
    return 0 if report.ok and not report.stale_baseline else 1


def _changed_files(ref: str) -> "set[str] | None":
    """Repo-relative ``.py`` paths changed vs ``ref`` (plus untracked)."""
    import subprocess

    def _git(*argv: str) -> "list[str] | None":
        try:
            out = subprocess.run(
                ["git", *argv], capture_output=True, text=True,
                check=True)
        except (OSError, subprocess.CalledProcessError):
            return None
        return [line for line in out.stdout.splitlines() if line]

    diffed = _git("diff", "--name-only", ref, "--", "*.py")
    if diffed is None:
        return None
    untracked = _git("ls-files", "--others", "--exclude-standard",
                     "--", "*.py") or []
    return set(diffed) | set(untracked)


def _explain_rule(rule: str) -> int:
    """Print one rule's contract: registry line plus its module doc."""
    import inspect

    from repro.analysis import LintConfig, checker_by_rule
    from repro.errors import LintError

    try:
        checker = checker_by_rule(rule, LintConfig())
    except LintError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"{checker.rule}  {checker.name}")
    print(f"  {checker.description}")
    doc = inspect.getdoc(type(checker)) or ""
    module_doc = inspect.getdoc(
        inspect.getmodule(type(checker))) or ""
    for block in (doc, module_doc):
        if block:
            print()
            for line in block.splitlines():
                print(f"  {line}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Parallel inline data reduction (Ma & Park, "
                    "PaCT 2017) on a simulated CPU/GPU/SSD testbed.")
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="one timed pipeline run")
    run.add_argument("--mode", default="gpu_comp",
                     choices=[m.value for m in IntegrationMode])
    _add_workload_args(run)
    _add_platform_args(run)
    run.add_argument("--trace", metavar="PATH", default=None,
                     help="also write a Chrome trace_event JSON of "
                          "the run")
    run.add_argument("--payload", action="store_true",
                     help="run the workload with real payload bytes "
                          "(functional data plane) instead of "
                          "descriptors")
    run.add_argument("--verify-memos", action="store_true",
                     dest="verify_memos",
                     help="runtime twin of the REP701/REP702 lint "
                          "contract: replay sampled memo hits against "
                          "fresh computation (implies extra compute; "
                          "combine with --payload)")
    run.add_argument("--tenants", metavar="SPEC_JSON", default=None,
                     help="run a multi-tenant mix from a TenantMix "
                          "JSON spec (see examples/tenant_mix.json); "
                          "--dedup-ratio/--comp-ratio/--seed are "
                          "ignored, the spec dials each tenant")
    run.add_argument("--tenancy-policy",
                     choices=("none", "shared_lru", "prioritized"),
                     default="prioritized",
                     help="inline admission policy for --tenants runs "
                          "(DESIGN.md §15)")
    run.add_argument("--tenancy-cache", type=int, default=1024,
                     metavar="ENTRIES",
                     help="inline fingerprint-cache capacity for "
                          "--tenants runs")
    run.set_defaults(func=cmd_run)

    trace = sub.add_parser(
        "trace", help="traced run: Chrome trace + critical-path report")
    trace.add_argument("--mode", default="gpu_comp",
                       choices=[m.value for m in IntegrationMode])
    _add_workload_args(trace)
    _add_platform_args(trace)
    trace.add_argument("--quick", action="store_true",
                       help="1024-chunk run (CI smoke)")
    trace.add_argument("--out", default="trace.json",
                       help="Chrome trace_event output path")
    trace.add_argument("--format", choices=("chrome", "summary", "json"),
                       default="chrome",
                       help="chrome: trace file + table; summary: "
                            "table only; json: trace file + JSON report")
    trace.set_defaults(func=cmd_trace)

    cal = sub.add_parser("calibrate",
                         help="dummy-I/O integration-mode chooser")
    _add_workload_args(cal)
    _add_platform_args(cal)
    cal.set_defaults(func=cmd_calibrate)

    ev = sub.add_parser("evaluate", help="re-run the paper's S4")
    _add_workload_args(ev)
    ev.set_defaults(func=cmd_evaluate)

    bench = sub.add_parser("bench",
                           help="run one experiment by id (or 'list')")
    bench.add_argument("experiment",
                       help="experiment id (e1..e5, a1..a14), "
                            "'engine' (simulator hot-path perf), "
                            "'dataplane' (codec hot-loop perf), "
                            "'dedup' (index-plane perf), "
                            "'pipeline' (batched functional plane), "
                            "'cluster' (sharded reduction), "
                            "'tenancy' (multi-tenant traffic), 'all', "
                            "or 'list'")
    bench.add_argument("--profile", action="store_true",
                       help="wrap 'engine'/'dataplane'/'dedup' runs "
                            "in cProfile")
    bench.add_argument("--quick", action="store_true",
                       help="dataplane/dedup: fewer repeats, skip the "
                            "E4 field re-run (identity checks still "
                            "run)")
    bench.add_argument("--trace", metavar="PATH", default=None,
                       help="engine/dataplane/dedup: also write a "
                            "Chrome trace of one traced pipeline run")
    bench.add_argument("--json", action="store_true",
                       help="perf planes: print the machine-readable "
                            "current-vs-baseline summary instead of "
                            "the table")
    bench.add_argument("--nodes", type=int, default=None,
                       help="cluster: shard count for the ingest "
                            "scenario (default 4)")
    bench.add_argument("--executor", choices=("serial", "mp"),
                       default=None,
                       help="cluster: executor for the ingest "
                            "scenario (default serial)")
    bench.set_defaults(func=cmd_bench)

    codec = sub.add_parser("codec",
                           help="compress a real file with a bundled codec")
    codec.add_argument("file", help="input file")
    codec.add_argument("--codec", choices=("lzss", "quicklz"),
                       default="quicklz")
    codec.add_argument("--limit", type=int, default=1 << 20,
                       help="max bytes to read (pure-Python codecs)")
    codec.set_defaults(func=cmd_codec)

    lint = sub.add_parser(
        "lint", help="AST invariant checker (DESIGN.md §8)")
    lint.add_argument("paths", nargs="*",
                      help="files/directories to lint "
                           "(default: src/repro)")
    lint.add_argument("--rule", action="append", dest="rules",
                      metavar="RULE",
                      help="run only this rule id/name (repeatable)")
    lint.add_argument("--changed", nargs="?", const="origin/main",
                      default=False, metavar="REF",
                      help="only report findings in files changed vs "
                           "REF (default origin/main); the whole tree "
                           "is still parsed for the call graph")
    lint.add_argument("--effects", metavar="QUALNAME",
                      help="print the inferred effect summary for one "
                           "function (e.g. module.Class.method) and exit")
    lint.add_argument("--explain", metavar="RULE",
                      help="print one rule's contract and exit")
    lint.add_argument("--format", choices=("text", "json", "github"),
                      default="text")
    lint.add_argument("--baseline", default=DEFAULT_BASELINE,
                      help="baseline file of grandfathered findings")
    lint.add_argument("--no-baseline", action="store_true",
                      help="ignore the baseline (report everything)")
    lint.add_argument("--write-baseline", action="store_true",
                      help="grandfather all current findings into the "
                           "baseline file")
    lint.add_argument("--list-rules", action="store_true",
                      help="list the registered rules and exit")
    lint.set_defaults(func=cmd_lint)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
