"""Runtime twin of the static memo-purity contract (REP701/REP702).

``repro lint`` proves *statically* that every memoized producer infers
pure and that cached values are never mutated through shared views.
Static inference has blind spots by construction — dynamic dispatch,
``getattr``, code the call-graph builder cannot resolve — so this
module re-checks the same two invariants at runtime, on a live
pipeline:

* **Replay equivalence** (the REP701 twin): a deterministic sample of
  memo *hits* is replayed against fresh computation; any divergence
  between the cached value and the recomputed one means an impure (or
  input-sensitive) producer slipped past inference.

* **Buffer freezing** (the REP702 twin): numpy columns handed out as
  shared views are marked read-only, so an in-place write through an
  escaped view raises ``ValueError`` at the write site instead of
  corrupting every aliasing consumer.

One :class:`MemoVerifier` is shared by every instrumented memo — the
codec memo, the payload-hash memo, ``compress_window``'s result memo,
vdbench's payload cache.  It registers with the simulation's
end-of-run sanitizer (``Environment.register_finishable``), so
accumulated divergences fail ``finish_check`` with a description of
the first few offending sites.

Cost: one attribute test per memo hit when attached, plus one fresh
recomputation per ``sample_every`` hits per site.  Detached (the
default), the hooks are a single ``is not None`` test.
"""

from __future__ import annotations

from typing import Any, Callable

#: Replay one hit in this many, per site (the first hit always replays,
#: so a poisoned entry is caught on its first reuse).
DEFAULT_SAMPLE_EVERY = 16

#: Cap on recorded divergences: one is fatal already, and an unbounded
#: list would balloon on a systematically corrupted memo.
_MAX_VIOLATIONS = 32


def _describe(value: Any) -> str:
    """Short, stable description of a cached/fresh value for messages."""
    if isinstance(value, (bytes, bytearray)):
        head = bytes(value[:8]).hex()
        return f"{type(value).__name__}[{len(value)}] {head}…"
    text = repr(value)
    return text if len(text) <= 64 else text[:61] + "…"


class MemoVerifier:
    """Replays sampled memo hits against fresh computation.

    The verifier is deliberately engine-agnostic: it never imports the
    memos it checks.  Instrumented code calls :meth:`on_hit` with the
    cached value and a zero-argument recompute closure; the verifier
    decides (deterministically) whether this hit is in the sample, runs
    the closure, and records any divergence.
    """

    __slots__ = ("sample_every", "hits_seen", "hits_replayed",
                 "arrays_frozen", "violations", "_counters")

    def __init__(self, sample_every: int = DEFAULT_SAMPLE_EVERY):
        if sample_every < 1:
            raise ValueError(
                f"sample_every must be >= 1, got {sample_every}")
        self.sample_every = sample_every
        self.hits_seen = 0
        self.hits_replayed = 0
        self.arrays_frozen = 0
        self.violations: list[str] = []
        #: site -> hits observed (drives the deterministic sample).
        self._counters: dict[str, int] = {}

    # -- replay equivalence (REP701 twin) ----------------------------------

    def on_hit(self, site: str, cached: Any,
               recompute: Callable[[], Any]) -> None:
        """Record one memo hit; replay it when the sample says so."""
        seen = self._counters.get(site, 0)
        self._counters[site] = seen + 1
        self.hits_seen += 1
        if seen % self.sample_every:
            return
        self.hits_replayed += 1
        fresh = recompute()
        if not self._equal(cached, fresh):
            if len(self.violations) < _MAX_VIOLATIONS:
                self.violations.append(
                    f"memo divergence at {site} (hit #{seen + 1}): "
                    f"cached {_describe(cached)} != fresh "
                    f"{_describe(fresh)} — the memoized producer is "
                    f"not a pure function of the memo key")

    @staticmethod
    def _equal(cached: Any, fresh: Any) -> bool:
        if cached is fresh:
            return True
        if hasattr(cached, "shape") or hasattr(fresh, "shape"):
            import numpy
            return bool(numpy.array_equal(cached, fresh))
        return bool(cached == fresh)

    # -- buffer freezing (REP702 twin) -------------------------------------

    def freeze_array(self, array: Any) -> Any:
        """Mark a shared numpy view read-only (idempotent, in place).

        Returns the same array: cached columns must stay the *identical
        object* so report byte-identity is untouched; only the
        writeable flag changes, turning an aliasing write into an
        immediate ``ValueError`` at the offending site.
        """
        flags = getattr(array, "flags", None)
        if flags is not None and flags.writeable:
            array.flags.writeable = False
            self.arrays_frozen += 1
        return array

    # -- end-of-run sanitizer protocol --------------------------------------

    def finish_violations(self) -> list[str]:
        """Divergences for ``Environment.finish_check`` (empty = clean)."""
        return list(self.violations)

    def stats(self) -> dict[str, int]:
        """Counters snapshot for tests and diagnostics."""
        return {"hits_seen": self.hits_seen,
                "hits_replayed": self.hits_replayed,
                "arrays_frozen": self.arrays_frozen,
                "violations": len(self.violations)}
