"""repro — parallel inline data reduction for SSD primary storage.

A from-scratch reproduction of Ma & Park, *Parallelizing Inline Data
Reduction Operations for Primary Storage Systems* (PaCT 2017): bin-based
deduplication and segment-parallel LZ compression spread across a
multi-core CPU and a GPU, with the whole testbed (CPU, GPU, PCIe, SSD)
provided as functional + timed simulators so the paper's evaluation
reruns on any machine.

Quick taste (functional volume)::

    from repro import ReducedVolume

    volume = ReducedVolume()
    volume.write(0, b"hello world" * 1024)
    volume.write(65536, b"hello world" * 1024)   # deduplicates
    assert volume.read(0, 4096) == (b"hello world" * 1024)[:4096]
    print(volume.reduction_ratio())

Quick taste (timed evaluation)::

    from repro.core import IntegrationMode
    from repro.core.calibration import run_mode

    report = run_mode(IntegrationMode.GPU_COMP, n_chunks=8192)
    print(f"{report.iops / 1e3:.1f} K IOPS")

See DESIGN.md for the architecture and EXPERIMENTS.md for the
paper-vs-measured record.
"""

from repro.core.calibration import calibrate_mode, run_mode
from repro.core.config import PipelineConfig
from repro.core.modes import IntegrationMode
from repro.core.pipeline import ReductionPipeline
from repro.core.stats import PipelineReport
from repro.errors import ReproError
from repro.storage.volume import ReducedVolume
from repro.types import Chunk, DEFAULT_CHUNK_SIZE
from repro.workload.vdbench import VdbenchStream

__version__ = "1.0.0"

__all__ = [
    "calibrate_mode",
    "run_mode",
    "PipelineConfig",
    "IntegrationMode",
    "ReductionPipeline",
    "PipelineReport",
    "ReproError",
    "ReducedVolume",
    "Chunk",
    "DEFAULT_CHUNK_SIZE",
    "VdbenchStream",
    "__version__",
]
