"""repro — parallel inline data reduction for SSD primary storage.

A from-scratch reproduction of Ma & Park, *Parallelizing Inline Data
Reduction Operations for Primary Storage Systems* (PaCT 2017): bin-based
deduplication and segment-parallel LZ compression spread across a
multi-core CPU and a GPU, with the whole testbed (CPU, GPU, PCIe, SSD)
provided as functional + timed simulators so the paper's evaluation
reruns on any machine.

Quick taste (functional volume)::

    from repro import ReducedVolume

    volume = ReducedVolume()
    volume.write(0, b"hello world" * 1024)
    volume.write(65536, b"hello world" * 1024)   # deduplicates
    assert volume.read(0, 4096) == (b"hello world" * 1024)[:4096]
    print(volume.reduction_ratio())

Quick taste (timed evaluation)::

    from repro.core import IntegrationMode
    from repro.core.calibration import run_mode

    report = run_mode(IntegrationMode.GPU_COMP, n_chunks=8192)
    print(f"{report.iops / 1e3:.1f} K IOPS")

See DESIGN.md for the architecture and EXPERIMENTS.md for the
paper-vs-measured record.
"""

# Re-exports are lazy (PEP 562): tooling entry points that never touch
# the data plane (``repro lint``) must not pay the numpy/core import.
_EXPORTS = {
    "calibrate_mode": "repro.core.calibration",
    "run_mode": "repro.core.calibration",
    "PipelineConfig": "repro.core.config",
    "IntegrationMode": "repro.core.modes",
    "ReductionPipeline": "repro.core.pipeline",
    "PipelineReport": "repro.core.stats",
    "ReproError": "repro.errors",
    "ReducedVolume": "repro.storage.volume",
    "Chunk": "repro.types",
    "DEFAULT_CHUNK_SIZE": "repro.types",
    "VdbenchStream": "repro.workload.vdbench",
}

__version__ = "1.0.0"


def __getattr__(name: str):
    module = _EXPORTS.get(name)
    if module is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}")
    import importlib
    value = getattr(importlib.import_module(module), name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))

__all__ = [
    "calibrate_mode",
    "run_mode",
    "PipelineConfig",
    "IntegrationMode",
    "ReductionPipeline",
    "PipelineReport",
    "ReproError",
    "ReducedVolume",
    "Chunk",
    "DEFAULT_CHUNK_SIZE",
    "VdbenchStream",
    "__version__",
]
