"""ReducedVolume: a functional block volume with inline data reduction.

The user-facing glue for payload-mode use: writes run the real reduction
path (chunk, SHA-1, bin-buffer/bin-tree indexing, LZ compression), reads
resolve the logical map and *really decompress*, so ``read(write(x)) ==
x`` is a provable property — several tests and the quickstart example
prove it.

This class is deliberately untimed (no simulation environment): it is
the API a downstream application would use, while the timed
:class:`~repro.core.pipeline.ReductionPipeline` answers the performance
questions.  Both are built from the same engine pieces.
"""

from __future__ import annotations

import zlib
from typing import Optional

from repro.compression.delta import DeltaCodec, SimilarityIndex, sketch
from repro.compression.parallel_cpu import Codec, CpuCompressor
from repro.dedup.chunking import FixedChunker
from repro.dedup.engine import DedupEngine
from repro.dedup.hashing import fingerprint_chunk
from repro.errors import BlockRangeError, MetadataError
from repro.obs import MetricsRegistry
from repro.types import DEFAULT_CHUNK_SIZE


class ReducedVolume:
    """Block volume whose write path deduplicates and compresses inline."""

    def __init__(self, chunk_size: int = DEFAULT_CHUNK_SIZE,
                 codec: Optional[Codec] = None,
                 prefix_bytes: int = 2,
                 bin_buffer_capacity: int = 64,
                 bin_buffer_total: Optional[int] = 4096,
                 enable_compression: bool = True,
                 verify_checksums: bool = True,
                 enable_delta: bool = False):
        self.chunk_size = chunk_size
        self.enable_compression = enable_compression
        #: End-to-end integrity: store a plaintext CRC-32 per unique
        #: chunk and verify it on every read.
        self.verify_checksums = verify_checksums
        #: Delta-compress near-duplicates against resemblant stored
        #: chunks (DEC-class).  Only non-delta chunks register in the
        #: similarity index, so reconstruction chains have depth <= 1.
        self.enable_delta = enable_delta
        self._similarity = SimilarityIndex() if enable_delta else None
        self._delta_codec = DeltaCodec()
        #: Chunks stored as deltas (observability).
        self.deltas_stored = 0
        self.chunker = FixedChunker(chunk_size)
        self.engine = DedupEngine(prefix_bytes=prefix_bytes,
                                  bin_buffer_capacity=bin_buffer_capacity,
                                  bin_buffer_total=bin_buffer_total)
        self.compressor = CpuCompressor(codec=codec)
        #: Sequential-destage ledger: bytes grouped by flushed bin.
        self.destaged_bytes = 0

    # -- write path (the paper's Fig. 1, functionally) -------------------------

    def write(self, offset: int, data: bytes) -> None:
        """Write ``data`` at ``offset`` (must be chunk-aligned)."""
        if offset % self.chunk_size != 0:
            raise BlockRangeError(
                f"offset {offset} is not {self.chunk_size}-aligned")
        if not data:
            return
        for chunk in self.chunker.chunk(data, base_offset=offset):
            self._write_chunk(chunk)

    def _write_chunk(self, chunk) -> None:
        fingerprint_chunk(chunk)
        outcome = self.engine.cpu_index(chunk)
        if outcome.duplicate:
            self.engine.commit_duplicate(chunk)
            return
        delta_base_id = None
        chunk_sketch = None
        blob = None
        if self._similarity is not None:
            chunk_sketch = sketch(chunk.payload)
            base_id = self._similarity.find_similar(chunk_sketch)
            if base_id is not None:
                base = self.engine.metadata.get_record(base_id)
                base_plain = self._materialize(base)
                delta = self._delta_codec.encode(base_plain,
                                                 chunk.payload)
                if len(delta) < chunk.size // 2:
                    blob = delta
                    chunk.compressed_size = len(delta)
                    delta_base_id = base_id
        if delta_base_id is None:
            if self.enable_compression:
                result = self.compressor.compress(chunk)
                blob = chunk.payload if result.stored_raw else result.blob
            else:
                chunk.compressed_size = chunk.size
                blob = chunk.payload
        checksum = (zlib.crc32(chunk.payload)
                    if self.verify_checksums else None)
        _cycles, batch, was_unique = self.engine.commit_unique(
            chunk, blob, checksum=checksum)
        if was_unique:
            record = self.engine.metadata.lookup(chunk.fingerprint)
            if delta_base_id is not None:
                record.delta_base_id = delta_base_id
                self.engine.metadata.add_delta_ref(delta_base_id)
                self.deltas_stored += 1
            elif self._similarity is not None:
                # Only full (non-delta) chunks serve as delta bases.
                self._similarity.insert(record.physical_id, chunk_sketch)
        if batch is not None:
            self.destaged_bytes += batch.payload_bytes

    # -- read path ----------------------------------------------------------

    def read(self, offset: int, size: int) -> bytes:
        """Read ``size`` bytes from ``offset`` (both chunk-aligned extents).

        Raises :class:`~repro.errors.MetadataError` for unmapped ranges.
        """
        if offset % self.chunk_size != 0:
            raise BlockRangeError(
                f"offset {offset} is not {self.chunk_size}-aligned")
        out = bytearray()
        position = offset
        while len(out) < size:
            record = self.engine.metadata.resolve(position)
            plaintext = self._materialize(record)
            if (self.verify_checksums and record.checksum is not None
                    and zlib.crc32(plaintext) != record.checksum):
                raise MetadataError(
                    f"checksum mismatch for chunk at logical {position} "
                    f"(physical id {record.physical_id}): stored data "
                    "is corrupt")
            out.extend(plaintext)
            position += record.size
        if len(out) < size:
            raise MetadataError(f"short read at offset {offset}")
        return bytes(out[:size])

    def clone_range(self, src_offset: int, dst_offset: int,
                    size: int) -> None:
        """Instant copy: point ``dst`` at ``src``'s chunks by reference.

        No data moves — refcounts go up, exactly how dedup-aware
        primary stores implement snapshots and VM clones.  Later writes
        to either range diverge naturally (the overwrite path drops one
        reference and maps new content).  Extents must be chunk-aligned
        and fully mapped.
        """
        if src_offset % self.chunk_size or dst_offset % self.chunk_size \
                or size % self.chunk_size:
            raise BlockRangeError("clone extents must be chunk-aligned")
        if not (dst_offset + size <= src_offset
                or src_offset + size <= dst_offset):
            raise BlockRangeError("clone ranges must not overlap")
        metadata = self.engine.metadata
        for delta in range(0, size, self.chunk_size):
            record = metadata.resolve(src_offset + delta)
            metadata.map_logical_record(dst_offset + delta, record,
                                        record.size)

    def discard(self, offset: int, size: int) -> None:
        """TRIM a chunk-aligned extent."""
        if offset % self.chunk_size or size % self.chunk_size:
            raise BlockRangeError("discard extents must be chunk-aligned")
        for position in range(offset, offset + size, self.chunk_size):
            self.engine.metadata.unmap_logical(position)

    def _materialize(self, record) -> bytes:
        """Plaintext of a stored record (decompress or delta-apply)."""
        if record.blob is None:
            raise MetadataError(
                f"chunk {record.physical_id} has no stored payload "
                "(descriptor-mode record?)")
        if record.delta_base_id is not None:
            base = self.engine.metadata.get_record(record.delta_base_id)
            return self._delta_codec.decode(self._materialize(base),
                                            record.blob)
        if record.compressed_size < record.size:
            return self.compressor.decompress(record.blob)
        return record.blob

    def scrub(self) -> dict[str, int]:
        """Background-integrity scan: verify every mapped chunk's CRC.

        Walks the logical map, decompresses each stored chunk once, and
        checks it against its stored checksum — what a primary array's
        patrol scrubber does to catch silent bit-rot before a user read
        hits it.  Returns counters; corrupt offsets are reported, not
        raised, so one bad chunk does not abort the scan.
        """
        scanned = verified = corrupt = unverifiable = 0
        corrupt_offsets: list[int] = []
        for offset in sorted(self.engine.metadata._logical):
            record = self.engine.metadata.resolve(offset)
            scanned += 1
            if record.blob is None or record.checksum is None:
                unverifiable += 1
                continue
            try:
                ok = zlib.crc32(self._materialize(record)) \
                    == record.checksum
            except Exception:
                ok = False
            if ok:
                verified += 1
            else:
                corrupt += 1
                corrupt_offsets.append(offset)
        return {"scanned": scanned, "verified": verified,
                "corrupt": corrupt, "unverifiable": unverifiable,
                "corrupt_offsets": corrupt_offsets}

    # -- lifecycle -------------------------------------------------------------

    def restart(self) -> None:
        """Clean restart: staged data destages, the RAM index is lost.

        Data remains readable; previously stored content can no longer
        be deduplicated against (paper §3.1's RAM-only index policy).
        """
        for batch in self.engine.restart():
            self.destaged_bytes += batch.payload_bytes

    # -- accounting ----------------------------------------------------------

    @property
    def logical_bytes(self) -> int:
        """Bytes the volume serves."""
        return self.engine.metadata.logical_bytes

    @property
    def physical_bytes(self) -> int:
        """Bytes the stored chunks occupy after reduction."""
        return self.engine.metadata.physical_bytes

    def reduction_ratio(self) -> float:
        """Combined dedup x compression space win."""
        return self.engine.metadata.reduction_ratio()

    def dedup_ratio(self) -> float:
        """Deduplication-only space win."""
        return self.engine.metadata.dedup_ratio()

    def metrics(self,
                registry: Optional[MetricsRegistry] = None) -> MetricsRegistry:
        """Publish the volume's statistics into a metrics registry.

        Absorbs the dedup engine's counter dict, the compressor's
        running totals, and the volume-level ledgers under dotted
        namespaces (``dedup.*``, ``compress.cpu.*``, ``volume.*``) so
        callers read one deterministic snapshot instead of spelunking
        component objects.  Idempotent: re-publishing into the same
        registry applies only the increase since the last call.
        """
        if registry is None:
            registry = MetricsRegistry()
        registry.absorb_counters("dedup", self.engine.counters)
        registry.absorb_counters("compress.cpu", self.compressor.stats())
        registry.absorb_counters("volume", {
            "deltas_stored": self.deltas_stored,
            "destaged_bytes": self.destaged_bytes,
        })
        # Mapped-byte totals shrink on discard/TRIM, so they are gauges.
        registry.gauge("volume.logical_bytes").set(float(self.logical_bytes))
        registry.gauge("volume.physical_bytes").set(float(self.physical_bytes))
        registry.gauge("volume.reduction_ratio").set(self.reduction_ratio())
        registry.gauge("volume.dedup_ratio").set(self.dedup_ratio())
        return registry
