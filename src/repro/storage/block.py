"""Block-device request model.

Minimal but explicit: a request has a kind, a byte offset, a size, and a
sequentiality hint (set by the destage path for bin-buffer flushes, which
the paper deliberately shapes into "appropriate sequential writes for the
SSD").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import BlockRangeError


class RequestKind(enum.Enum):
    """What a block request asks the device to do."""

    READ = "read"
    WRITE = "write"
    TRIM = "trim"


@dataclass(frozen=True)
class BlockRequest:
    """One I/O submitted to a block device."""

    kind: RequestKind
    offset: int
    size: int
    #: True when the submitter knows this continues a sequential stream.
    sequential: bool = False

    def __post_init__(self) -> None:
        if self.offset < 0:
            raise BlockRangeError(f"negative offset {self.offset}")
        if self.size <= 0:
            raise BlockRangeError(f"non-positive size {self.size}")

    @property
    def end(self) -> int:
        """First byte past the request."""
        return self.offset + self.size

    def validate_against(self, capacity_bytes: int) -> None:
        """Raise unless the request fits the device."""
        if self.end > capacity_bytes:
            raise BlockRangeError(
                f"{self.kind.value} [{self.offset}, {self.end}) exceeds "
                f"device capacity {capacity_bytes}")
