"""Chunk metadata: logical map, refcounts, and space accounting.

The deduplication destage stage records every chunk here.  The store
answers the two questions a primary storage system must always answer:

* *reconstruction* — which stored chunk backs logical offset X?
* *space accounting* — how many logical bytes are served from how many
  physical bytes (the deduplication and compression ratios the workload
  dials in must come back out of this ledger, which several tests check).

Structure mirrors a real primary store: chunks live in a table keyed by
**physical id** (the durable side); the **fingerprint map** on top of it
is exactly the RAM-resident index the paper describes — and, like the
paper's index, it can be lost without losing data:
:meth:`MetadataStore.detach_fingerprint_index` models a restart after
which old chunks remain readable by offset but can no longer be found by
content, so rewritten duplicates get stored twice ("the deduplication
module cannot find some duplicate data.  However that is not a big
deal" — quantified by experiment A9).

In payload mode records also carry the compressed blob so a volume read
can really decompress and return the original bytes, plus a CRC of the
plaintext for end-to-end verification.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import MetadataError


@dataclass(slots=True)
class ChunkRecord:
    """One stored chunk."""

    fingerprint: bytes
    physical_id: int
    size: int
    compressed_size: int
    refcount: int = 1
    #: Compressed payload (payload mode only).
    blob: Optional[bytes] = None
    #: CRC-32 of the *plaintext*, for end-to-end read verification.
    checksum: Optional[int] = None
    #: When set, ``blob`` is a delta against this base chunk's plaintext.
    delta_base_id: Optional[int] = None
    #: Delta records referencing this chunk as their base.  A base stays
    #: live (and its bytes accounted) while deltas depend on it, even at
    #: logical refcount zero.
    delta_refs: int = 0

    @property
    def live(self) -> bool:
        return self.refcount > 0 or self.delta_refs > 0


class MetadataStore:
    """Physical chunk table + fingerprint map + logical map."""

    __slots__ = ("_by_id", "_by_fingerprint", "_logical",
                 "_next_physical", "logical_bytes", "physical_bytes",
                 "restarts")

    def __init__(self) -> None:
        #: The durable side: physical id -> record.
        self._by_id: dict[int, ChunkRecord] = {}
        #: The RAM index side: fingerprint -> physical id.
        self._by_fingerprint: dict[bytes, int] = {}
        #: Logical offset -> physical id.
        self._logical: dict[int, int] = {}
        self._next_physical = 0
        # -- space ledger --
        self.logical_bytes = 0
        self.physical_bytes = 0
        #: Restarts simulated so far (fingerprint-index losses).
        self.restarts = 0

    # -- unique-chunk table ---------------------------------------------------

    def lookup(self, fingerprint: bytes) -> Optional[ChunkRecord]:
        """Record for ``fingerprint`` if it is *findable by content*.

        After a restart (detached index) old chunks are not findable
        even though they still exist and serve reads.
        """
        physical_id = self._by_fingerprint.get(fingerprint)
        return None if physical_id is None else self._by_id[physical_id]

    def store_unique(self, fingerprint: bytes, size: int,
                     compressed_size: int,
                     blob: Optional[bytes] = None,
                     checksum: Optional[int] = None) -> ChunkRecord:
        """Record a newly destaged unique chunk (born at refcount 0)."""
        if fingerprint in self._by_fingerprint:
            raise MetadataError(
                f"fingerprint {fingerprint.hex()[:12]}... already stored")
        if compressed_size <= 0 or size <= 0:
            raise MetadataError("invalid chunk sizes")
        record = ChunkRecord(
            fingerprint=fingerprint,
            physical_id=self._next_physical,
            size=size,
            compressed_size=compressed_size,
            refcount=0,
            blob=blob,
            checksum=checksum,
        )
        self._by_id[record.physical_id] = record
        self._by_fingerprint[fingerprint] = record.physical_id
        self._next_physical += 1
        # The first map_logical's add_reference accounts its bytes.
        return record

    def add_reference(self, fingerprint: bytes) -> ChunkRecord:
        """Bump the refcount of a content-findable chunk.

        Referencing an unreferenced ("zombie") record resurrects it —
        stale index hits after overwrites revive the stored chunk
        instead of dangling.
        """
        record = self.lookup(fingerprint)
        if record is None:
            raise MetadataError(
                f"no findable chunk for {fingerprint.hex()[:12]}...")
        return self._add_ref(record)

    def _add_ref(self, record: ChunkRecord) -> ChunkRecord:
        if not record.live:
            self.physical_bytes += record.compressed_size
        record.refcount += 1
        return record

    def add_delta_ref(self, physical_id: int) -> ChunkRecord:
        """A delta record now depends on this chunk as its base."""
        record = self._by_id[physical_id]
        if not record.live:
            self.physical_bytes += record.compressed_size
        record.delta_refs += 1
        return record

    def drop_reference(self, fingerprint: bytes) -> ChunkRecord:
        """Decrement a findable chunk's refcount (see ``_drop_ref``)."""
        record = self.lookup(fingerprint)
        if record is None:
            raise MetadataError(
                f"no findable chunk for {fingerprint.hex()[:12]}...")
        return self._drop_ref(record)

    def _drop_ref(self, record: ChunkRecord) -> ChunkRecord:
        """At zero the record becomes a zombie awaiting GC; the record
        (and blob) stay until :meth:`sweep_unreferenced`."""
        if record.refcount <= 0:
            raise MetadataError("refcount underflow")
        record.refcount -= 1
        if not record.live:
            self.physical_bytes -= record.compressed_size
        return record

    def _drop_delta_ref(self, physical_id: int) -> None:
        record = self._by_id.get(physical_id)
        if record is None:
            return
        if record.delta_refs <= 0:
            raise MetadataError("delta-ref underflow")
        record.delta_refs -= 1
        if not record.live:
            self.physical_bytes -= record.compressed_size

    def sweep_unreferenced(self) -> int:
        """Garbage-collect zombie records; returns bytes reclaimed.

        Callers must invalidate/rebuild any fingerprint index that might
        still point at the swept chunks, or stale hits will dangle.
        """
        zombies = [record for record in self._by_id.values()
                   if not record.live]
        reclaimed = 0
        for record in zombies:
            del self._by_id[record.physical_id]
            if self._by_fingerprint.get(record.fingerprint) \
                    == record.physical_id:
                del self._by_fingerprint[record.fingerprint]
            reclaimed += record.compressed_size
            if record.delta_base_id is not None:
                # The swept delta releases its base (which may become a
                # zombie itself, collected by the next sweep).
                self._drop_delta_ref(record.delta_base_id)
        return reclaimed

    # -- restart semantics (paper §3.1: RAM-only index) -------------------------

    def detach_fingerprint_index(self) -> int:
        """Simulate a restart: the RAM fingerprint index is gone.

        Every stored chunk remains readable through the logical map, but
        none is findable by content any more; rewritten duplicates will
        be stored again.  Returns the number of index entries lost.
        """
        lost = len(self._by_fingerprint)
        self._by_fingerprint.clear()
        self.restarts += 1
        return lost

    # -- logical map -----------------------------------------------------------

    def map_logical(self, offset: int, fingerprint: bytes, size: int) -> None:
        """Point logical ``offset`` at the chunk with ``fingerprint``.

        Acquire-before-release: on an overwrite, the new reference is
        taken first so that rewriting an offset with the *same* content
        never transiently frees the chunk it still needs.
        """
        record = self.add_reference(fingerprint)
        old_id = self._logical.get(offset)
        if old_id is not None:
            old_record = self._by_id[old_id]
            self._drop_ref(old_record)
            self.logical_bytes -= old_record.size
        self._logical[offset] = record.physical_id
        self.logical_bytes += size

    def map_logical_record(self, offset: int, record: ChunkRecord,
                           size: int) -> None:
        """Point ``offset`` at an already-resolved record.

        The by-record path works even when the fingerprint index cannot
        find the chunk (post-restart), which is what makes clones of old
        data possible.
        """
        if self._by_id.get(record.physical_id) is not record:
            raise MetadataError("record is not part of this store")
        self._add_ref(record)
        old_id = self._logical.get(offset)
        if old_id is not None:
            old_record = self._by_id[old_id]
            self._drop_ref(old_record)
            self.logical_bytes -= old_record.size
        self._logical[offset] = record.physical_id
        self.logical_bytes += size

    def resolve(self, offset: int) -> ChunkRecord:
        """Record backing logical ``offset`` (survives restarts)."""
        physical_id = self._logical.get(offset)
        if physical_id is None:
            raise MetadataError(f"logical offset {offset} is unmapped")
        record = self._by_id.get(physical_id)
        if record is None:
            raise MetadataError(
                f"logical offset {offset} points at a swept chunk")
        return record

    def unmap_logical(self, offset: int) -> None:
        """Remove the mapping at ``offset`` (TRIM semantics)."""
        physical_id = self._logical.pop(offset, None)
        if physical_id is None:
            raise MetadataError(f"logical offset {offset} is unmapped")
        record = self._drop_ref(self._by_id[physical_id])
        self.logical_bytes -= record.size

    # -- accounting ---------------------------------------------------------

    def get_record(self, physical_id: int) -> ChunkRecord:
        """Record by physical id (delta bases resolve this way)."""
        record = self._by_id.get(physical_id)
        if record is None:
            raise MetadataError(f"no chunk with physical id {physical_id}")
        return record

    @property
    def unique_chunks(self) -> int:
        """Number of distinct *live* stored chunks."""
        return sum(1 for r in self._by_id.values() if r.live)

    @property
    def zombie_chunks(self) -> int:
        """Unreferenced records awaiting garbage collection."""
        return sum(1 for r in self._by_id.values() if not r.live)

    @property
    def mapped_offsets(self) -> int:
        """Number of live logical mappings."""
        return len(self._logical)

    def reduction_ratio(self) -> float:
        """logical/physical bytes: the combined dedup x compression win."""
        if self.physical_bytes <= 0:
            return 1.0 if self.logical_bytes == 0 else float("inf")
        return self.logical_bytes / self.physical_bytes

    def dedup_ratio(self) -> float:
        """logical bytes / live stored pre-compression bytes.

        Post-restart duplicate storage shows up here as a lower ratio —
        experiment A9's metric.
        """
        unique_raw = sum(r.size for r in self._by_id.values()
                         if r.live)
        if unique_raw <= 0:
            return 1.0 if self.logical_bytes == 0 else float("inf")
        return self.logical_bytes / unique_raw

    def index_memory_bytes(self, entry_bytes: int = 32) -> int:
        """RAM the fingerprint index needs at ``entry_bytes`` per entry.

        The paper's §3.1 sizing argument: 4 TB / 8 KB chunks at 32 B per
        entry = 16 GB, reduced by prefix truncation.
        """
        return len(self._by_fingerprint) * entry_bytes

    def verify_invariants(self) -> None:
        """Cross-check the ledger against the raw tables (test hook)."""
        physical = sum(r.compressed_size for r in self._by_id.values()
                       if r.live)
        if physical != self.physical_bytes:
            raise MetadataError(
                f"physical ledger {self.physical_bytes} != table {physical}")
        refs = sum(r.refcount for r in self._by_id.values())
        if refs != len(self._logical):
            raise MetadataError(
                f"refcount total {refs} != logical mappings "
                f"{len(self._logical)}")
        expected_delta_refs: dict[int, int] = {}
        for record in self._by_id.values():
            if record.delta_base_id is not None:
                expected_delta_refs[record.delta_base_id] = \
                    expected_delta_refs.get(record.delta_base_id, 0) + 1
        for record in self._by_id.values():
            if record.delta_refs != expected_delta_refs.get(
                    record.physical_id, 0):
                raise MetadataError(
                    f"delta-ref drift on chunk {record.physical_id}")
        for fingerprint, physical_id in self._by_fingerprint.items():
            record = self._by_id.get(physical_id)
            if record is None:
                raise MetadataError("index points at a swept chunk")
            if record.fingerprint != fingerprint:
                raise MetadataError("index fingerprint mismatch")
        logical = sum(self._by_id[pid].size
                      for pid in self._logical.values())
        if logical != self.logical_bytes:
            raise MetadataError(
                f"logical ledger {self.logical_bytes} != map {logical}")
