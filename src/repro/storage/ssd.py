"""Channelled SSD timing and wear model.

Calibrated to the Samsung SSD 830 the paper benchmarks against:
~320 MB/s sustained writes, which at 4 KiB equals the ~80 K IOPS the
paper quotes, and ~520 MB/s reads.

The model is deliberately structural rather than a flat rate limiter:

* the device has N independent channels (a :class:`~repro.sim.Resource`);
* one request occupies one channel for ``per_io_overhead + pages x
  page_time``, where ``page_time`` is the NAND program/read time *per
  page per channel* — derived from the rated sequential bandwidth so the
  fully loaded device hits its spec;
* consequence, as on real hardware: a queue-depth-1 workload sees NAND
  latency and a fraction of rated throughput; the rated IOPS need
  channel-level concurrency.  The destage path's buffered, asynchronous
  writes provide exactly that.

Wear accounting (``nand_bytes_written``) is what the inline-vs-background
experiment (A6) reads out: background reduction writes data twice, inline
writes the reduced data once.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Generator, Optional

from repro.errors import BlockRangeError, ConfigError
from repro.obs.stages import (
    STAGE_SSD_READ,
    STAGE_SSD_TRIM,
    STAGE_SSD_WRITE,
    TRACK_SSD,
)
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.sim import Environment, Resource
from repro.storage.block import BlockRequest, RequestKind


@dataclass(frozen=True)
class SsdSpec:
    """Static description of an SSD."""

    name: str
    capacity_bytes: int
    channels: int
    page_bytes: int
    seq_write_bps: float
    seq_read_bps: float
    #: Per-request firmware/interface overhead (seconds).
    per_io_overhead_s: float = 2.0e-6
    #: Probability a page read needs an ECC retry round (read-disturb,
    #: marginal cells); each retry re-reads the page.
    read_retry_probability: float = 0.0
    #: Extra firmware latency per retry round (soft-decode attempt).
    retry_penalty_s: float = 250e-6

    def __post_init__(self) -> None:
        if min(self.capacity_bytes, self.channels, self.page_bytes) <= 0:
            raise ConfigError("invalid SSD geometry")
        if min(self.seq_write_bps, self.seq_read_bps) <= 0:
            raise ConfigError("invalid SSD bandwidth")
        if not 0.0 <= self.read_retry_probability < 1.0:
            raise ConfigError(
                f"invalid retry probability {self.read_retry_probability}")

    @property
    def page_program_s(self) -> float:
        """NAND program time per page on one channel."""
        return self.channels * self.page_bytes / self.seq_write_bps

    @property
    def page_read_s(self) -> float:
        """NAND read time per page on one channel."""
        return self.channels * self.page_bytes / self.seq_read_bps

    @property
    def write_iops_4k(self) -> float:
        """Rated small-write throughput — the paper's SSD yardstick."""
        per_page = self.per_io_overhead_s + self.page_program_s
        return self.channels / per_page

    @property
    def write_bps(self) -> float:
        """Rated write bandwidth at full channel concurrency."""
        return self.write_iops_4k * self.page_bytes


#: The paper's comparison device (512 GB class 830).
SAMSUNG_SSD_830 = SsdSpec(
    name="Samsung SSD 830",
    capacity_bytes=512 * 1000**3,
    channels=8,
    page_bytes=4096,
    seq_write_bps=320e6,
    seq_read_bps=520e6,
)


class SsdModel:
    """A timed SSD attached to a simulation environment."""

    def __init__(self, env: Environment, spec: SsdSpec = SAMSUNG_SSD_830,
                 name: str = "ssd", seed: int = 0,
                 tracer: Tracer = NULL_TRACER):
        self.env = env
        self.spec = spec
        self.name = name
        self.tracer = tracer
        self.channels = Resource(env, capacity=spec.channels,
                                 name=f"{name}-channels")
        self._rng = random.Random(seed)
        # -- statistics --
        self.host_bytes_written = 0
        self.host_bytes_read = 0
        #: Actual NAND program volume: the endurance metric.
        self.nand_bytes_written = 0
        self.requests_completed = 0
        self.trims = 0
        #: ECC retry rounds performed (error-injection observability).
        self.read_retries = 0

    # -- timing helpers ------------------------------------------------------

    def _pages(self, size: int) -> int:
        return -(-size // self.spec.page_bytes)  # ceil division

    def service_time(self, request: BlockRequest) -> float:
        """Channel occupancy time for one request."""
        pages = self._pages(request.size)
        if request.kind is RequestKind.WRITE:
            page_time = self.spec.page_program_s
        elif request.kind is RequestKind.READ:
            page_time = self.spec.page_read_s
        else:  # TRIM: metadata only
            return self.spec.per_io_overhead_s
        # Sequential streams let the firmware pipeline page programs
        # slightly better than scattered ones.
        efficiency = 1.0 if request.sequential else 1.05
        return self.spec.per_io_overhead_s + pages * page_time * efficiency

    # -- simulation process ----------------------------------------------------

    def submit(self, request: BlockRequest) -> Generator:
        """Process body: execute ``request`` on one channel.

        Usage::

            yield from ssd.submit(BlockRequest(RequestKind.WRITE, 0, 4096))
        """
        request.validate_against(self.spec.capacity_bytes)
        traced = self.tracer.enabled
        if traced:
            submitted = self.env.now
        with self.channels.request() as req:
            yield req
            if traced:
                granted = self.env.now
            yield self.env.timeout(self.service_time(request))
            if (request.kind is RequestKind.READ
                    and self.spec.read_retry_probability > 0.0):
                # Marginal pages need ECC retry rounds: re-read plus a
                # soft-decode penalty, repeated while the coin says so.
                while self._rng.random() < \
                        self.spec.read_retry_probability:
                    self.read_retries += 1
                    yield self.env.timeout(
                        self.spec.retry_penalty_s
                        + self.service_time(request))
        if traced:
            stage = (STAGE_SSD_WRITE if request.kind is RequestKind.WRITE
                     else STAGE_SSD_READ if request.kind is RequestKind.READ
                     else STAGE_SSD_TRIM)
            self.tracer.record(
                stage, None, start=submitted,
                queue_wait=granted - submitted, resource=TRACK_SSD,
                attrs={"bytes": request.size,
                       "sequential": request.sequential})
        self.requests_completed += 1
        if request.kind is RequestKind.WRITE:
            self.host_bytes_written += request.size
            self.nand_bytes_written += \
                self._pages(request.size) * self.spec.page_bytes
        elif request.kind is RequestKind.READ:
            self.host_bytes_read += request.size
        else:
            self.trims += 1

    def submit_vector(self, sizes: list[int],
                      sequential: bool = True) -> Generator:
        """Process body: one coalesced write covering ``sizes``.

        The batched destage fast path (shutdown drain): N write
        requests become one channel occupancy timed on the summed page
        count, while the *accounting* stays per-element — page rounding
        per size, one completed request per element — so the wear
        ledger (``nand_bytes_written``) and the request counters are
        exactly what N :meth:`submit` calls would have recorded.
        """
        spec = self.spec
        capacity = spec.capacity_bytes
        page_bytes = spec.page_bytes
        total = 0
        pages = 0
        for size in sizes:
            if size <= 0:
                raise BlockRangeError(f"non-positive size {size}")
            if size > capacity:
                raise BlockRangeError(
                    f"write [0, {size}) exceeds device "
                    f"capacity {capacity}")
            total += size
            pages += -(-size // page_bytes)  # ceil division
        if not total:
            return
        traced = self.tracer.enabled
        if traced:
            submitted = self.env.now
        efficiency = 1.0 if sequential else 1.05
        # One channel occupancy equal to the *sum* of the per-request
        # service times (firmware overhead is per element): the busy-time
        # integral the utilization monitor records is exactly what the N
        # individual submissions would have accumulated.
        service = (len(sizes) * spec.per_io_overhead_s
                   + pages * spec.page_program_s * efficiency)
        with self.channels.request() as req:
            yield req
            if traced:
                granted = self.env.now
            yield self.env.timeout(service)
        if traced:
            self.tracer.record(
                STAGE_SSD_WRITE, None, start=submitted,
                queue_wait=granted - submitted, resource=TRACK_SSD,
                attrs={"bytes": total, "sequential": sequential,
                       "vector": len(sizes)})
        self.requests_completed += len(sizes)
        self.host_bytes_written += total
        self.nand_bytes_written += pages * page_bytes

    # -- reporting --------------------------------------------------------

    def utilization(self, until: Optional[float] = None) -> float:
        """Mean fraction of channels busy."""
        return self.channels.monitor.utilization(until)

    def write_amplification(self, logical_bytes: int) -> float:
        """NAND bytes programmed per logical byte accepted."""
        if logical_bytes <= 0:
            return 0.0
        return self.nand_bytes_written / logical_bytes

    def __repr__(self) -> str:
        return (f"<SsdModel {self.spec.name}: "
                f"{self.nand_bytes_written} B programmed>")
