"""Storage substrate: SSD model, chunk metadata, and the reduced volume.

The Samsung SSD 830 in the paper's testbed plays two roles: the destage
sink for unique compressed chunks, and the ~80 K-IOPS yardstick every
throughput figure is compared against.  :class:`~repro.storage.ssd.SsdModel`
reproduces both, with channel-level concurrency (a QD-1 4 KiB write sees
realistic NAND program latency; high queue depths reach the rated
throughput) plus NAND wear accounting used by the inline-vs-background
endurance experiment (A6).

:mod:`~repro.storage.metadata` keeps the logical-to-chunk mapping and
refcounts that make deduplicated data reconstructable, and
:mod:`~repro.storage.volume` is the functional user-facing glue: a
block volume whose write path runs real dedup + compression and whose
read path provably returns the original bytes.
"""

from repro.storage.block import BlockRequest, RequestKind
from repro.storage.ftl import Ftl, FtlSpec
from repro.storage.metadata import ChunkRecord, MetadataStore
from repro.storage.ssd import SAMSUNG_SSD_830, SsdModel, SsdSpec


def __getattr__(name: str):
    # Lazy export: volume pulls in the dedup engine, which itself imports
    # storage.metadata — a cycle if resolved eagerly here (PEP 562).
    if name == "ReducedVolume":
        from repro.storage.volume import ReducedVolume
        return ReducedVolume
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "BlockRequest",
    "RequestKind",
    "Ftl",
    "FtlSpec",
    "ChunkRecord",
    "MetadataStore",
    "SAMSUNG_SSD_830",
    "SsdModel",
    "SsdSpec",
    "ReducedVolume",
]
