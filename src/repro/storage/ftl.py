"""Page-mapped log-structured FTL with greedy garbage collection.

The SSD timing model (:mod:`~repro.storage.ssd`) answers "how long does
an I/O take"; this module answers the *endurance* question properly:
flash erases in blocks but programs in pages, so overwrites invalidate
pages in place and a garbage collector must copy still-valid pages out
of victim blocks before erasing them.  Those copies are the write
amplification that multiplies NAND wear — and they explode as the
device fills, which is why inline data reduction (which keeps the
device emptier) pays *compound* endurance dividends: fewer host writes
AND a lower WA factor on each (experiment A14).

Deliberately classic: page-granularity mapping table, one open block
appended sequentially, greedy min-valid victim selection, erase counts
per block for wear reporting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigError, StorageError


@dataclass(frozen=True)
class FtlSpec:
    """Geometry of the managed flash."""

    blocks: int
    pages_per_block: int
    page_bytes: int = 4096
    #: GC starts when the free-block pool drops to this many.
    gc_low_water: int = 2

    def __post_init__(self) -> None:
        if min(self.blocks, self.pages_per_block, self.page_bytes) < 1:
            raise ConfigError("invalid FTL geometry")
        if not 1 <= self.gc_low_water < self.blocks:
            raise ConfigError(f"invalid gc_low_water {self.gc_low_water}")

    @property
    def total_pages(self) -> int:
        return self.blocks * self.pages_per_block

    @property
    def capacity_bytes(self) -> int:
        """Raw capacity (the exported capacity is up to the user; the
        gap is the overprovisioning that feeds GC)."""
        return self.total_pages * self.page_bytes


class _Block:
    __slots__ = ("index", "pages", "write_pointer", "valid", "erases")

    def __init__(self, index: int, pages_per_block: int):
        self.index = index
        #: lpn stored in each page, or None if invalid/unwritten.
        self.pages: list[Optional[int]] = [None] * pages_per_block
        self.write_pointer = 0
        self.valid = 0
        self.erases = 0

    def erase(self) -> None:
        self.pages = [None] * len(self.pages)
        self.write_pointer = 0
        self.valid = 0
        self.erases += 1


class Ftl:
    """Page-mapped FTL over ``spec.blocks`` flash blocks."""

    def __init__(self, spec: FtlSpec):
        self.spec = spec
        self._blocks = [_Block(i, spec.pages_per_block)
                        for i in range(spec.blocks)]
        self._free: list[int] = list(range(1, spec.blocks))
        self._open = self._blocks[0]
        #: lpn -> (block index, page index)
        self._mapping: dict[int, tuple[int, int]] = {}
        # -- wear statistics --
        self.host_pages_written = 0
        self.nand_pages_written = 0
        self.gc_copies = 0
        self.erases = 0

    # -- internals ---------------------------------------------------------

    def _invalidate(self, lpn: int) -> None:
        location = self._mapping.pop(lpn, None)
        if location is None:
            return
        block_index, page_index = location
        block = self._blocks[block_index]
        block.pages[page_index] = None
        block.valid -= 1

    def _program(self, lpn: int) -> None:
        """Append ``lpn`` to the open block, rolling blocks as needed."""
        if self._open.write_pointer >= self.spec.pages_per_block:
            self._roll_open_block()
        block = self._open
        page_index = block.write_pointer
        block.pages[page_index] = lpn
        block.write_pointer += 1
        block.valid += 1
        self._mapping[lpn] = (block.index, page_index)
        self.nand_pages_written += 1

    def _roll_open_block(self) -> None:
        if not self._free:
            self._collect()
        if not self._free:
            raise StorageError(
                "FTL out of space: garbage collection found no "
                "reclaimable block (device over-full)")
        self._open = self._blocks[self._free.pop()]

    def _collect(self) -> None:
        """Greedy GC: evacuate and erase min-valid closed blocks."""
        pages_per_block = self.spec.pages_per_block
        gc_low_water = self.spec.gc_low_water
        blocks = self._blocks
        free = self._free
        mapping = self._mapping
        mapping_pop = mapping.pop
        while len(free) <= gc_low_water:
            # First minimum in block order — what min() over the closed
            # blocks picks — scanned explicitly so the hot path pays no
            # generator/lambda machinery, with an early exit at valid==0
            # (the key's floor, so the first such block *is* the min).
            open_block = self._open
            victim = None
            best = 0
            for block in blocks:
                if (block is open_block
                        or block.write_pointer != pages_per_block):
                    continue
                valid = block.valid
                if victim is None or valid < best:
                    victim = block
                    best = valid
                    if valid == 0:
                        break
            if victim is None:
                return
            if best >= pages_per_block:
                # Nothing reclaimable anywhere: every page valid.
                return
            survivors = [lpn for lpn in victim.pages if lpn is not None]
            victim.erase()
            self.erases += 1
            free.append(victim.index)
            # Survivor mappings still point at the erased block; drop
            # each and re-program into the open log (inlined _program,
            # with the same roll-on-full check before every page).
            open_block = self._open
            copied = 0
            for lpn in survivors:
                mapping_pop(lpn, None)
                if open_block.write_pointer >= pages_per_block:
                    self._roll_open_block()
                    open_block = self._open
                page_index = open_block.write_pointer
                open_block.pages[page_index] = lpn
                open_block.write_pointer = page_index + 1
                open_block.valid += 1
                mapping[lpn] = (open_block.index, page_index)
                copied += 1
            if copied:
                self.gc_copies += copied
                self.nand_pages_written += copied

    # -- host interface -----------------------------------------------------

    def write(self, lpn: int) -> None:
        """Host write of one logical page."""
        if lpn < 0:
            raise ConfigError(f"invalid lpn {lpn}")
        self._invalidate(lpn)
        self._program(lpn)
        self.host_pages_written += 1
        if len(self._free) <= self.spec.gc_low_water:
            self._collect()

    def write_run(self, lpns: list[int]) -> None:
        """Host write of a run of logical pages, in order.

        State-identical to calling :meth:`write` per page — the
        invalidate/program steps are inlined with the GC check kept at
        every write, so garbage collection triggers at exactly the same
        points and the mapping, counters and erase counts all land where
        the per-page loop would put them.  Only the per-call attribute
        and method dispatch is amortized (the batched destage-accounting
        fast path).
        """
        spec = self.spec
        gc_low_water = spec.gc_low_water
        pages_per_block = spec.pages_per_block
        mapping = self._mapping
        mapping_pop = mapping.pop
        blocks = self._blocks
        free = self._free
        collect = self._collect
        programmed = 0
        for lpn in lpns:
            if lpn < 0:
                raise ConfigError(f"invalid lpn {lpn}")
            location = mapping_pop(lpn, None)
            if location is not None:
                stale = blocks[location[0]]
                stale.pages[location[1]] = None
                stale.valid -= 1
            open_block = self._open
            if open_block.write_pointer >= pages_per_block:
                self._roll_open_block()
                open_block = self._open
            page_index = open_block.write_pointer
            open_block.pages[page_index] = lpn
            open_block.write_pointer = page_index + 1
            open_block.valid += 1
            mapping[lpn] = (open_block.index, page_index)
            programmed += 1
            if len(free) <= gc_low_water:
                collect()
        # GC survivor copies went through _program (counted there); the
        # inlined host programs are settled here in one update each.
        self.host_pages_written += programmed
        self.nand_pages_written += programmed

    def trim(self, lpn: int) -> None:
        """Host discard of one logical page."""
        self._invalidate(lpn)

    def read_location(self, lpn: int) -> tuple[int, int]:
        """(block, page) backing ``lpn``; raises if unmapped."""
        location = self._mapping.get(lpn)
        if location is None:
            raise StorageError(f"lpn {lpn} is unmapped")
        return location

    # -- reporting --------------------------------------------------------

    @property
    def mapped_pages(self) -> int:
        return len(self._mapping)

    @property
    def utilization(self) -> float:
        """Fraction of raw pages holding valid data."""
        return self.mapped_pages / self.spec.total_pages

    def write_amplification(self) -> float:
        """NAND pages programmed per host page written."""
        if self.host_pages_written == 0:
            return 0.0
        return self.nand_pages_written / self.host_pages_written

    def erase_counts(self) -> list[int]:
        """Per-block erase counts (wear-leveling visibility)."""
        return [block.erases for block in self._blocks]

    def check_invariants(self) -> None:
        """Structural cross-checks (test hook)."""
        for lpn, (block_index, page_index) in self._mapping.items():
            if self._blocks[block_index].pages[page_index] != lpn:
                raise StorageError(f"mapping for lpn {lpn} is stale")
        for block in self._blocks:
            valid = sum(1 for lpn in block.pages if lpn is not None)
            if valid != block.valid:
                raise StorageError(
                    f"block {block.index} valid-count drift")
