"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still distinguishing the subsystem that failed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SimulationError(ReproError):
    """An invariant of the discrete-event simulation was violated."""


class ResourceError(SimulationError):
    """Illegal use of a simulated resource (double release, bad capacity...)."""


class SanitizerError(SimulationError):
    """End-of-run sanitizer check failed (leaked slot, live process...)."""


class LintError(ReproError):
    """The static-analysis layer was misused (bad rule id, bad baseline...)."""


class TraceError(ReproError):
    """The observability layer was misused (invalid span, unbound tracer,
    metric type conflict...)."""


class GpuError(ReproError):
    """Base class for errors in the simulated GPU substrate."""


class GpuMemoryError(GpuError):
    """Device memory allocation failed or an allocation was misused."""


class KernelError(GpuError):
    """A kernel was mis-launched or failed during simulated execution."""


class StorageError(ReproError):
    """Base class for errors in the storage substrate."""


class BlockRangeError(StorageError):
    """A block request fell outside the device's address space."""


class MetadataError(StorageError):
    """The logical-to-physical metadata became inconsistent."""


class DedupError(ReproError):
    """Base class for deduplication-engine errors."""


class IndexError_(DedupError):
    """A fingerprint-index operation failed.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`IndexError`, which has entirely different semantics.
    """


class ChunkingError(DedupError):
    """A chunker produced or was asked to produce invalid chunks."""


class CompressionError(ReproError):
    """Compression or decompression failed or produced invalid output."""


class CorruptStreamError(CompressionError):
    """A compressed stream could not be decoded."""


class ConfigError(ReproError):
    """An invalid configuration value was supplied."""


class WorkloadError(ReproError):
    """A workload generator was misconfigured."""
