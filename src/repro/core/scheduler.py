"""When-to-use-GPU decisions (paper §3.1(3) and §3.2(3)).

The paper's placement rules are asymmetric:

* **indexing** — "we decide to use GPU only when CPU utilization is full
  and there is still some work to do for indexing": a per-batch dynamic
  decision, because the CPU wins small batches outright;
* **compression** — "the GPU performs compression and the CPU is used
  for refinement": a static assignment made once (by Fig. 2 /
  calibration), because the GPU wins by ~1.9x regardless of load.

:class:`OffloadScheduler` owns the dynamic indexing decision plus its
statistics, and carries the policy overrides used by the related-work
baselines ("always" = GHOST-class, "never" = CPU-pure).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpu.model import SimCpu
from repro.errors import ConfigError

#: Valid indexing-offload policies.
POLICIES = ("saturation", "always", "never")


@dataclass
class SchedulerStats:
    """Decision counters for reporting."""

    offloaded: int = 0
    kept_local: int = 0
    skipped_idle_cpu: int = 0

    @property
    def decisions(self) -> int:
        return self.offloaded + self.kept_local

    @property
    def offload_fraction(self) -> float:
        total = self.decisions
        return self.offloaded / total if total else 0.0

    def as_counters(self) -> dict[str, int]:
        """Flat counter mapping for the metrics registry."""
        return {
            "offloaded": self.offloaded,
            "kept_local": self.kept_local,
            "skipped_idle_cpu": self.skipped_idle_cpu,
        }


class OffloadScheduler:
    """Per-chunk indexing-placement decisions."""

    def __init__(self, cpu: SimCpu, policy: str = "saturation",
                 saturation_threshold: float = 0.99,
                 gpu_available: bool = True):
        if policy not in POLICIES:
            raise ConfigError(f"unknown offload policy {policy!r}")
        if not 0.0 < saturation_threshold <= 1.0:
            raise ConfigError(
                f"invalid saturation threshold {saturation_threshold}")
        self.cpu = cpu
        self.policy = policy
        self.saturation_threshold = saturation_threshold
        self.gpu_available = gpu_available
        self.stats = SchedulerStats()

    def should_offload_index(self) -> bool:
        """Decide the current chunk's index placement."""
        if not self.gpu_available or self.policy == "never":
            self.stats.kept_local += 1
            return False
        if self.policy == "always":
            self.stats.offloaded += 1
            return True
        if self.cpu.is_saturated(self.saturation_threshold):
            self.stats.offloaded += 1
            return True
        self.stats.kept_local += 1
        self.stats.skipped_idle_cpu += 1
        return False
