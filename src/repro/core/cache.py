"""Host-side chunk cache for the read path.

Primary arrays keep a DRAM read cache of *decompressed* chunks in front
of the media; with reduction inline, the cache is where decompression
cost gets amortized — a hot chunk is decoded once, not per read.  LRU
over logical offsets, capacity in bytes.

The cache is functional + cheap-to-model: hits cost one hash-map probe
on the CPU; misses fall through to the SSD + decode path and then fill.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.errors import ConfigError


class ChunkCache:
    """LRU cache of decompressed chunks, keyed by logical offset."""

    def __init__(self, capacity_bytes: int):
        if capacity_bytes <= 0:
            raise ConfigError(f"invalid cache capacity {capacity_bytes}")
        self.capacity_bytes = capacity_bytes
        self._entries: OrderedDict[int, int] = OrderedDict()  # offset->size
        self.used_bytes = 0
        # -- statistics --
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def lookup(self, offset: int) -> bool:
        """True on a hit; touches LRU order."""
        if offset in self._entries:
            self._entries.move_to_end(offset)
            self.hits += 1
            return True
        self.misses += 1
        return False

    def fill(self, offset: int, size: int) -> None:
        """Install a chunk after a miss, evicting LRU entries to fit."""
        if size > self.capacity_bytes:
            return  # larger than the whole cache: never cacheable
        if offset in self._entries:
            self.used_bytes -= self._entries.pop(offset)
        while self.used_bytes + size > self.capacity_bytes:
            _victim, victim_size = self._entries.popitem(last=False)
            self.used_bytes -= victim_size
            self.evictions += 1
        self._entries[offset] = size
        self.used_bytes += size

    def invalidate(self, offset: int) -> None:
        """Drop a chunk (its logical offset was overwritten/trimmed)."""
        size = self._entries.pop(offset, None)
        if size is not None:
            self.used_bytes -= size
            self.invalidations += 1

    def __len__(self) -> int:
        return len(self._entries)

    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
