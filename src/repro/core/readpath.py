"""Timed read path of the reduced volume.

The paper evaluates the write path — reduction happens inline on writes
— but a primary storage system the paper's intro describes serves reads
too, and the natural question is what reduction *costs* on the read
side.  The answer this module measures: almost nothing.  A read resolves
the logical map (cheap RAM work), fetches the *compressed* extent from
the SSD, and decompresses on the CPU; LZ decode is an order of magnitude
cheaper than encode, and the SSD's page granularity means a half-size
compressed chunk still costs one page read — so read throughput stays
SSD-bound, with a small CPU tax.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Iterable, Optional, Sequence

from repro.core.cache import ChunkCache
from repro.cpu.costs import CpuCosts, DEFAULT_COSTS
from repro.cpu.model import SimCpu
from repro.errors import ConfigError
from repro.sim import Environment, Resource
from repro.storage.block import BlockRequest, RequestKind
from repro.storage.metadata import MetadataStore
from repro.storage.ssd import SsdModel


@dataclass
class ReadReport:
    """Outcome of one timed read run."""

    reads: int
    bytes_served: int
    duration_s: float
    cpu_utilization: float
    ssd_utilization: float
    mean_latency_s: float
    decompressed: int
    cache_hits: int = 0

    @property
    def iops(self) -> float:
        return self.reads / self.duration_s if self.duration_s else 0.0

    @property
    def mb_per_s(self) -> float:
        if self.duration_s <= 0:
            return 0.0
        return self.bytes_served / self.duration_s / 1e6


class ReadPipeline:
    """Serve chunk reads from a populated metadata store, timed."""

    def __init__(self, env: Environment, metadata: MetadataStore,
                 cpu: Optional[SimCpu] = None,
                 ssd: Optional[SsdModel] = None,
                 costs: CpuCosts = DEFAULT_COSTS,
                 window: int = 64,
                 decompress: bool = True,
                 cache: Optional["ChunkCache"] = None):
        if window < 1:
            raise ConfigError(f"invalid window {window}")
        self.env = env
        self.metadata = metadata
        self.cpu = cpu if cpu is not None else SimCpu(env)
        self.ssd = ssd if ssd is not None else SsdModel(env)
        self.costs = costs
        self.window = Resource(env, capacity=window, name="read-window")
        self.decompress = decompress
        #: Optional DRAM chunk cache; hits skip the SSD and the decode.
        self.cache = cache
        self._done = 0
        self._total = 0
        self._finished = env.event()
        self._latency_sum = 0.0
        self._bytes_served = 0
        self._decompressed = 0
        self._cache_hits = 0

    def _read_worker(self, offset: int, slot) -> Generator:
        admitted = self.env.now
        try:
            # Logical-map resolution: RAM work.
            yield from self.cpu.execute(self.costs.metadata_update)
            record = self.metadata.resolve(offset)
            if self.cache is not None and self.cache.lookup(offset):
                # Cache hit: one probe's worth of CPU, no media, no
                # decode (cached chunks are kept decompressed).
                yield from self.cpu.execute(self.costs.bin_buffer_probe)
                self._cache_hits += 1
                self._bytes_served += record.size
                return
            # Fetch the stored (compressed) extent.
            yield from self.ssd.submit(BlockRequest(
                RequestKind.READ, 0, record.compressed_size))
            # Decompress when the chunk was stored compressed.
            if self.decompress and record.compressed_size < record.size:
                yield from self.cpu.execute(
                    self.costs.lz_decode_cycles(record.size))
                self._decompressed += 1
            if self.cache is not None:
                self.cache.fill(offset, record.size)
            self._bytes_served += record.size
        finally:
            self._latency_sum += self.env.now - admitted
            self.window.release(slot)
            self._done += 1
            if self._done == self._total:
                self._finished.succeed()

    def _feeder(self, offsets: Iterable[int]) -> Generator:
        for offset in offsets:
            request = self.window.request()
            yield request
            self.env.process(self._read_worker(offset, request))

    def run(self, offsets: Sequence[int]) -> ReadReport:
        """Serve every offset in ``offsets`` and report."""
        if not offsets:
            raise ConfigError("need at least one read")
        self._total = len(offsets)
        self.env.process(self._feeder(offsets))
        self.env.run(until=self._finished)
        duration = self.env.now
        # Drain the calendar so any worker failure surfaces instead of
        # being lost behind the completion event.
        self.env.run()
        return ReadReport(
            reads=self._total,
            bytes_served=self._bytes_served,
            duration_s=duration,
            cpu_utilization=self.cpu.utilization(until=duration),
            ssd_utilization=self.ssd.utilization(until=duration),
            mean_latency_s=self._latency_sum / self._total,
            decompressed=self._decompressed,
            cache_hits=self._cache_hits,
        )
