"""Pipeline run reports.

Everything the paper's evaluation section talks about, in one record:
throughput (IOPS / MB/s, the paper's y-axes), the Fig. 1 decision-edge
counters, resource utilizations, achieved reduction ratios, and the
destage/endurance numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.stages import (
    CTR_BUFFER_HITS,
    CTR_GPU_HITS,
    CTR_RACE_DUPLICATES,
    CTR_TREE_HITS,
)


@dataclass
class PipelineReport:
    """Outcome of one timed pipeline run."""

    # -- throughput (the paper's headline axis) --
    chunks: int
    bytes_in: int
    duration_s: float

    # -- Fig. 1 decision edges --
    counters: dict[str, int]

    # -- resource usage --
    cpu_utilization: float
    gpu_utilization: float
    ssd_utilization: float
    gpu_kernels: int
    gpu_mean_queue_wait_s: float

    # -- reduction outcome --
    dedup_ratio: float
    comp_ratio: float
    reduction_ratio: float

    # -- destage / endurance --
    destage_batches: int
    destage_bytes: int
    nand_bytes_written: int

    # -- inline latency (admission to completion, per chunk) --
    mean_latency_s: float = 0.0
    peak_latency_s: float = 0.0
    #: mean/p50/p99/p999/max from the latency histogram.
    latency_percentiles: dict[str, float] = field(default_factory=dict)

    # -- context --
    mode: str = ""
    label: str = ""

    @property
    def iops(self) -> float:
        """Chunks (4 KiB I/Os in the paper's setup) per second."""
        return self.chunks / self.duration_s if self.duration_s > 0 else 0.0

    @property
    def mb_per_s(self) -> float:
        """Ingest throughput in MB/s."""
        if self.duration_s <= 0:
            return 0.0
        return self.bytes_in / self.duration_s / 1e6

    @property
    def duplicates_found(self) -> int:
        """Chunks resolved as duplicates on any path."""
        return (self.counters.get(CTR_GPU_HITS, 0)
                + self.counters.get(CTR_BUFFER_HITS, 0)
                + self.counters.get(CTR_TREE_HITS, 0)
                + self.counters.get(CTR_RACE_DUPLICATES, 0))

    def summary_row(self) -> str:
        """One formatted row for the benchmark tables."""
        return (f"{self.label or self.mode:<22} "
                f"{self.iops / 1e3:>9.1f} K IOPS "
                f"{self.mb_per_s:>9.1f} MB/s "
                f"cpu {self.cpu_utilization * 100:>5.1f}%  "
                f"gpu {self.gpu_utilization * 100:>5.1f}%")

    def speedup_over(self, other: "PipelineReport") -> float:
        """This run's throughput relative to ``other``'s."""
        if other.iops <= 0:
            return float("inf")
        return self.iops / other.iops
