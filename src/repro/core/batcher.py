"""Generic GPU work batcher.

Workers submit items and block on a per-item event; a dispatcher process
accumulates items into batches (up to ``batch_size``, waiting at most
``max_wait_s`` past the first item), runs one kernel launch per batch
through the device's command queue, and fans the per-item results back
out.

This is the machinery behind both GPU paths: index-lookup batches (small,
latency-sensitive) and compression batches (large, occupancy-hungry).
The paper's launch-overhead argument lives here — with tiny batches, the
fixed launch cost dominates every item's latency.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional, Sequence

from repro.errors import ConfigError
from repro.gpu.device import GpuDevice
from repro.gpu.kernel import Kernel
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.sim import Environment, Event, Store


class GpuBatcher:
    """Batches submitted items into kernel launches.

    ``make_kernel(items)`` builds the launch; ``split_results(items,
    result)`` must return one result per item, in order.
    """

    def __init__(self, env: Environment, gpu: GpuDevice,
                 make_kernel: Callable[[list[Any]], Kernel],
                 split_results: Callable[[list[Any], Any], Sequence[Any]],
                 batch_size: int, max_wait_s: float,
                 name: str = "batcher", priority: int = 0,
                 tracer: Tracer = NULL_TRACER,
                 stage: Optional[str] = None):
        if batch_size < 1:
            raise ConfigError(f"batch_size must be >= 1, got {batch_size}")
        if max_wait_s < 0:
            raise ConfigError(f"negative max_wait_s {max_wait_s}")
        self.env = env
        self.gpu = gpu
        self.make_kernel = make_kernel
        self.split_results = split_results
        self.batch_size = batch_size
        self.max_wait_s = max_wait_s
        self.name = name
        #: Launch priority on a priority-scheduled device queue.
        self.priority = priority
        self.tracer = tracer
        #: Stage name recorded per item when tracing (e.g. "gpu_index").
        self.stage = stage
        self._inbox: Store = Store(env, name=f"{name}-inbox")
        self._running = True
        self.batches_launched = 0
        self.items_processed = 0
        #: Launch-size histogram: items-per-launch -> launch count.
        #: Under-filled launches are the paper's launch-overhead tax;
        #: this makes them measurable instead of inferred.
        self.fill_counts: dict[int, int] = {}
        env.process(self._dispatch_loop())

    def submit(self, item: Any, trace_id: Optional[int] = None) -> Event:
        """Offer one item; the returned event fires with its result.

        ``trace_id`` tags the item's trace span (its chunk id) when
        tracing is on.
        """
        done = self.env.event()
        self._inbox.put((item, done, self.env.now, trace_id))
        return done

    def fill_summary(self) -> dict[str, float]:
        """Batch fill statistics: how full launches actually were.

        ``mean_fill``/``p50_fill`` are items per launch; ``fill_fraction``
        is the mean as a fraction of the configured ``batch_size`` (1.0 =
        every launch full, low values = the fixed launch overhead is
        being paid for mostly-empty batches).
        """
        counts = self.fill_counts
        launches = sum(counts.values())
        if not launches:
            return {"batches": 0, "batch_size": float(self.batch_size),
                    "mean_fill": 0.0, "p50_fill": 0.0,
                    "fill_fraction": 0.0}
        total = sum(size * n for size, n in sorted(counts.items()))
        half = (launches + 1) // 2
        cumulative = 0
        p50 = 0
        for size in sorted(counts):
            cumulative += counts[size]
            if cumulative >= half:
                p50 = size
                break
        mean = total / launches
        return {"batches": float(launches),
                "batch_size": float(self.batch_size),
                "mean_fill": mean, "p50_fill": float(p50),
                "fill_fraction": mean / self.batch_size}

    def stop(self) -> None:
        """Ask the dispatcher to exit once the inbox drains."""
        self._running = False
        # A sentinel wakes the dispatcher if it is idle.
        self._inbox.put(None)

    # -- dispatcher ------------------------------------------------------------

    def _dispatch_loop(self) -> Generator:
        while True:
            first = yield self._inbox.get()
            if first is None:
                if not self._running and self._inbox.level == 0:
                    return
                continue
            batch = [first]
            deadline = self.env.now + self.max_wait_s
            while len(batch) < self.batch_size:
                remaining = deadline - self.env.now
                if remaining <= 0:
                    break
                get = self._inbox.get()
                timeout = self.env.timeout(remaining)
                yield self.env.any_of([get, timeout])
                if get.triggered:
                    if get.value is None:
                        continue  # stop sentinel; drain what we have
                    batch.append(get.value)
                else:
                    get.cancel()
                    break
            yield from self._launch(batch)
            if not self._running and self._inbox.level == 0:
                return

    def _launch(self, batch: list[tuple]) -> Generator:
        items = [entry[0] for entry in batch]
        kernel = self.make_kernel(items)
        raw = yield from self.gpu.launch(kernel,
                                         priority=self.priority)
        results = self.split_results(items, raw)
        if len(results) != len(items):
            raise ConfigError(
                f"{self.name}: split_results returned {len(results)} "
                f"results for {len(items)} items")
        self.batches_launched += 1
        self.items_processed += len(items)
        self.fill_counts[len(items)] = \
            self.fill_counts.get(len(items), 0) + 1
        if self.tracer.enabled and self.stage is not None:
            # One span per item: submit -> launch completion.  Batching
            # delay and command-queue wait both count as queue wait; the
            # kernel's own run time is the service share.
            record = self.gpu.launches[-1]
            for _item, _done, submitted, trace_id in batch:
                self.tracer.record(
                    self.stage, trace_id, start=submitted,
                    end=record.end_time,
                    queue_wait=max(0.0, record.start_time - submitted),
                    resource=self.name,
                    attrs={"batch": len(items), "kernel": record.name})
        for entry, result in zip(batch, results):
            entry[1].succeed(result)
