"""Pipeline configuration.

One dataclass gathers every knob the experiments sweep, with the paper's
evaluation setup as defaults (4 KiB chunks, dedup-before-compression,
2-byte bin prefix, random GPU-bin replacement).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.modes import IntegrationMode
from repro.errors import ConfigError
from repro.types import DEFAULT_CHUNK_SIZE


@dataclass(frozen=True)
class PipelineConfig:
    """All tunables of the integrated reduction pipeline."""

    #: Which operations may use the GPU.
    mode: IntegrationMode = IntegrationMode.GPU_COMP
    #: Disable to run a compression-only pipeline (experiment E3).
    enable_dedup: bool = True
    #: Disable to run a dedup-only pipeline (experiment E2).
    enable_compression: bool = True

    # -- chunking ---------------------------------------------------------
    chunk_size: int = DEFAULT_CHUNK_SIZE
    content_defined: bool = False

    # -- bin index ---------------------------------------------------------
    #: Fingerprint prefix bytes = bin selector.  The paper's memory
    #: argument uses a 2-byte prefix at 4 TB scale; the pipeline default
    #: of 1 keeps the bin count proportional to the 2 GB test streams so
    #: bins actually fill and flush (see DESIGN.md).
    prefix_bytes: int = 1
    #: B-tree minimum degree for the CPU bin trees.
    btree_min_degree: int = 16
    #: Bin-buffer entries per bin before a flush.
    bin_buffer_capacity: int = 64
    #: Overall bin-buffer staging budget in entries.
    bin_buffer_total: int = 8192
    #: GPU linear-bin capacity in entries.
    gpu_bin_capacity: int = 4096

    # -- GPU batching -------------------------------------------------------
    #: Index lookups per GPU launch (small: the inline path is latency
    #: sensitive).
    gpu_index_batch: int = 256
    #: Chunks per GPU compression launch (large: compression wants
    #: occupancy).
    gpu_comp_batch: int = 256
    #: Longest a partially filled batch waits before launching anyway.
    gpu_batch_wait_s: float = 2e-3
    #: Segments per chunk in the GPU LZ kernel.
    gpu_segments_per_chunk: int = 8
    #: Use the local-memory tiled lookup kernel (paper §3.1(2)'s
    #: local-memory design) instead of the per-thread global scan.
    gpu_index_tiled: bool = False
    #: Priority scheduling on the device queue: waiting index batches
    #: overtake waiting compression batches.  Off by default — the
    #: paper's 2012-era runtime had a plain in-order queue; experiment
    #: A13 studies what this extension buys GPU_BOTH.
    gpu_queue_priority: bool = False

    # -- concurrency -------------------------------------------------------
    #: In-flight chunk window (bounds memory and queueing on the inline
    #: path; must exceed the GPU batch sizes or batches never fill).
    window: int = 1024
    #: Only offload index lookups when CPU utilization is at least this
    #: (the paper: "use GPU only when CPU utilization is full").
    cpu_saturation_threshold: float = 0.99
    #: When to send index lookups to the GPU: "saturation" is the
    #: paper's rule; "always" models GHOST-style GPU-only indexing (Kim
    #: et al., the related work the paper critiques for ignoring the
    #: faster CPU); "never" keeps indexing on the CPU even in GPU modes.
    gpu_index_policy: str = "saturation"
    #: Index concurrency discipline: "bins" is the paper's lock-free
    #: partitioned design; "global" serializes every index operation
    #: through one lock, modelling the conventional shared hash table
    #: the bins replace (the P-Dedupe-class baseline of §5).
    index_locking: str = "bins"

    # -- batched functional plane -----------------------------------------
    #: Operate the functional plane on chunk *windows* instead of one
    #: chunk at a time: the feeder materializes windows, fingerprints
    #: them in one batched hashing pass, pre-dispatches codec windows
    #: (dedup-disabled configurations), and coalesces the shutdown-drain
    #: destage into one vectored SSD request.  Timed per-chunk event
    #: ordering is untouched — only untimed functional work is batched —
    #: so reports are byte-identical with the flag off (DESIGN.md §12).
    batched_functional: bool = True
    #: Chunks per functional-plane window.
    functional_batch: int = 64

    # -- arrival shaping ------------------------------------------------------
    #: Open-loop arrival rate in chunks/second; None (default) feeds the
    #: pipeline as fast as the window admits (closed-loop, the
    #: throughput-measurement mode).  Paced arrivals expose *latency*
    #: behaviour below saturation — e.g. the GHOST-style "always offload
    #: indexing" policy paying a GPU batch round-trip per chunk.
    arrival_rate_iops: float | None = None

    # -- multi-tenant admission (repro.tenancy) ----------------------------
    #: Inline-admission policy for multi-tenant runs: "none" (default)
    #: keeps today's single-stream index path byte-identical;
    #: "shared_lru" models a conventional shared fingerprint cache;
    #: "prioritized" adds HPDedup-style locality estimation with
    #: per-tenant residency shares and inline-skip for low-locality
    #: streams (skipped chunks are recovered by out-of-line compaction).
    tenancy_policy: str = "none"
    #: Bounded inline fingerprint-cache budget (entries), shared across
    #: tenants under both non-default policies.
    tenancy_cache_entries: int = 1024
    #: Sliding-sketch window of the per-tenant locality estimator.
    tenancy_window: int = 256
    #: Below this estimated duplicate locality a stream's chunks skip
    #: inline dedup entirely ("prioritized" only).
    tenancy_skip_threshold: float = 0.05
    #: Chunks a tenant must contribute before its estimate can trigger
    #: inline skips (cold-start guard).
    tenancy_min_observe: int = 64
    #: Admissions between residency-share rebalances ("prioritized").
    tenancy_rebalance_period: int = 256
    #: Deferred chunks per out-of-line compaction epoch.
    compaction_batch: int = 256

    # -- codec memo --------------------------------------------------------
    #: Entry budget of the fingerprint-keyed codec memo shared by the
    #: CPU and GPU compression paths (0 disables).  Payload-mode only:
    #: a memo hit returns the byte-identical container a previous encode
    #: of the same content produced, so streams and report fields never
    #: move — duplicate-heavy corpora just stop paying for re-encoding.
    codec_memo_entries: int = 512

    # -- destage -----------------------------------------------------------
    #: Destage writes to the SSD model (disable to isolate the reduction
    #: path, as the paper's operation-throughput numbers do implicitly).
    destage_enabled: bool = True

    # -- diagnostics -------------------------------------------------------
    #: Run the end-of-run sanitizer (``Environment.finish_check``) after
    #: the final drain: no live processes, no scheduled events, no held
    #: resource slots.  Off by default (it is a test/debug aid).
    finish_check: bool = False
    #: Runtime twin of the REP701/REP702 static contract: freeze
    #: memoized buffers (bytes copies, read-only array views) and replay
    #: a deterministic sample of memo hits against fresh computation,
    #: reporting divergence through the end-of-run sanitizer.  Payload
    #: mode only; off by default (verification costs recomputation).
    verify_memos: bool = False

    def __post_init__(self) -> None:
        if self.chunk_size <= 0:
            raise ConfigError(f"invalid chunk_size {self.chunk_size}")
        if not 1 <= self.prefix_bytes <= 4:
            raise ConfigError(f"invalid prefix_bytes {self.prefix_bytes}")
        if self.window < 1:
            raise ConfigError(f"invalid window {self.window}")
        if min(self.gpu_index_batch, self.gpu_comp_batch) < 1:
            raise ConfigError("GPU batch sizes must be >= 1")
        if self.gpu_batch_wait_s < 0:
            raise ConfigError("negative gpu_batch_wait_s")
        if self.window < max(self.gpu_index_batch, self.gpu_comp_batch) \
                and (self.mode.gpu_for_dedup
                     or self.mode.gpu_for_compression):
            raise ConfigError(
                f"window {self.window} smaller than the GPU batch size — "
                "batches would never fill")
        if self.functional_batch < 1:
            raise ConfigError(
                f"invalid functional_batch {self.functional_batch}")
        if self.codec_memo_entries < 0:
            raise ConfigError(
                f"invalid codec_memo_entries {self.codec_memo_entries}")
        if not self.enable_dedup and not self.enable_compression:
            raise ConfigError("both reduction operations disabled")
        if self.gpu_index_policy not in ("saturation", "always", "never"):
            raise ConfigError(
                f"unknown gpu_index_policy {self.gpu_index_policy!r}")
        if self.index_locking not in ("bins", "global"):
            raise ConfigError(
                f"unknown index_locking {self.index_locking!r}")
        if self.tenancy_policy not in ("none", "shared_lru",
                                       "prioritized"):
            raise ConfigError(
                f"unknown tenancy_policy {self.tenancy_policy!r}")
        if self.tenancy_policy != "none":
            if not self.enable_dedup:
                raise ConfigError(
                    "tenancy admission needs enable_dedup=True")
            if self.tenancy_cache_entries < 1:
                raise ConfigError(
                    f"invalid tenancy_cache_entries "
                    f"{self.tenancy_cache_entries}")
            if self.tenancy_window < 1:
                raise ConfigError(
                    f"invalid tenancy_window {self.tenancy_window}")
            if not 0.0 <= self.tenancy_skip_threshold <= 1.0:
                raise ConfigError(
                    f"tenancy_skip_threshold must be in [0, 1], got "
                    f"{self.tenancy_skip_threshold}")
            if self.tenancy_min_observe < 0:
                raise ConfigError(
                    f"invalid tenancy_min_observe "
                    f"{self.tenancy_min_observe}")
            if self.tenancy_rebalance_period < 1:
                raise ConfigError(
                    f"invalid tenancy_rebalance_period "
                    f"{self.tenancy_rebalance_period}")
            if self.compaction_batch < 1:
                raise ConfigError(
                    f"invalid compaction_batch {self.compaction_batch}")

    def with_overrides(self, **kwargs) -> "PipelineConfig":
        """Copy with the given fields replaced."""
        return replace(self, **kwargs)
